//! Property-based record/replay determinism: for *randomly generated*
//! concurrent programs mixing atomics, mutexes, syscalls and console
//! output, a recording replays to identical observable behaviour under
//! both the random and queue strategies.
//!
//! This is the repository's strongest invariant: the whole §4 machinery
//! (QUEUE/SIGNAL/SYSCALL/ASYNC, PRNG seeding, desync detection) stands
//! behind the single assertion `replayed.console == recorded.console`.

use std::sync::Arc;

use proptest::prelude::*;
use sparse_rr::apps::harness::Tool;
use sparse_rr::tsan11rec::{sys, thread as tthread, Execution};
use sparse_rr::vos::{EchoPeer, PollFd};
use sparse_rr::{Atomic, MemOrder, Mutex};

/// One operation a generated thread can perform.
#[derive(Debug, Clone, Copy)]
enum Op {
    AtomicAdd(u8),
    AtomicLoadStore,
    MutexBump,
    Send(u8),
    RecvTry,
    Poll,
    Clock,
    Print(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        any::<u8>().prop_map(Op::AtomicAdd),
        Just(Op::AtomicLoadStore),
        Just(Op::MutexBump),
        any::<u8>().prop_map(Op::Send),
        Just(Op::RecvTry),
        Just(Op::Poll),
        Just(Op::Clock),
        any::<u8>().prop_map(Op::Print),
    ]
}

/// A generated program: per-thread op lists.
fn program(threads: Vec<Vec<Op>>) -> impl FnOnce() + Send + 'static {
    move || {
        let shared = Arc::new(Atomic::new(0u64));
        let guarded = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = threads
            .into_iter()
            .enumerate()
            .map(|(t, ops)| {
                let shared = Arc::clone(&shared);
                let guarded = Arc::clone(&guarded);
                tthread::spawn(move || {
                    let conn = sys::connect(Box::new(EchoPeer::new(500)));
                    for (i, op) in ops.into_iter().enumerate() {
                        match op {
                            Op::AtomicAdd(k) => {
                                shared.fetch_add(u64::from(k), MemOrder::AcqRel);
                            }
                            Op::AtomicLoadStore => {
                                let v = shared.load(MemOrder::Relaxed);
                                shared.store(v ^ 0b101, MemOrder::Release);
                            }
                            Op::MutexBump => {
                                *guarded.lock() += 1;
                            }
                            Op::Send(b) => {
                                let _ = sys::send(conn, &[b, t as u8, i as u8]);
                            }
                            Op::RecvTry => {
                                let mut buf = [0u8; 8];
                                if let Ok(n) = sys::recv(conn, &mut buf) {
                                    sys::println(&format!("t{t} recv {:?}", &buf[..n as usize]));
                                }
                            }
                            Op::Poll => {
                                let mut fds = [PollFd::readable(conn)];
                                let _ = sys::poll(&mut fds);
                            }
                            Op::Clock => {
                                let v = sys::clock_gettime().unwrap_or(0);
                                sys::println(&format!("t{t} clock {v}"));
                            }
                            Op::Print(b) => {
                                sys::println(&format!("t{t} print {b}"));
                            }
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join();
        }
        sys::println(&format!(
            "end shared={} guarded={}",
            shared.load(MemOrder::SeqCst),
            *guarded.lock()
        ));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn recorded_programs_replay_identically(
        threads in proptest::collection::vec(
            proptest::collection::vec(op_strategy(), 0..12),
            1..4,
        ),
        seed in 0u64..10_000,
        queue_mode in any::<bool>(),
    ) {
        let tool = if queue_mode { Tool::QueueRec } else { Tool::RndRec };
        let seeds = [seed, seed ^ 0xABCD];
        let (rec, demo) = Execution::new(tool.config(seeds))
            .record(program(threads.clone()));
        prop_assert!(rec.outcome.is_ok(), "record: {:?}", rec.outcome);

        let rep = Execution::new(tool.config(seeds)).replay(&demo, program(threads));
        prop_assert!(rep.outcome.is_ok(), "replay: {:?}", rep.outcome);
        prop_assert_eq!(
            rep.console_text(),
            rec.console_text(),
            "observable behaviour must reproduce"
        );
        prop_assert_eq!(rep.races, rec.races, "race findings must reproduce");
    }
}
