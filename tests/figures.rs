//! Figure-level properties exercised through the public umbrella API:
//! Figure 3 (invisible parallelism), Figure 6 (signals float to the end
//! of the preceding tick), Figure 7 (reschedules replay at their tick).

use std::sync::Arc;
use std::time::Duration;

use sparse_rr::apps::harness::Tool;
use sparse_rr::tsan11rec::{sys, thread as tthread, Execution};
use sparse_rr::vos::SignalTrigger;
use sparse_rr::{Atomic, MemOrder};

/// Figure 3: threads whose heavy work is invisible run concurrently under
/// the sparse tool; the rr baseline sequentializes them.
#[test]
fn figure3_invisible_operations_run_in_parallel() {
    const THREADS: usize = 3;
    const SLEEP_MS: u64 = 30;
    let program = || {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                tthread::spawn(|| {
                    // Invisible: a genuine wall-clock pause (e.g. heavy
                    // compute) between two visible operations.
                    std::thread::sleep(Duration::from_millis(SLEEP_MS));
                })
            })
            .collect();
        for h in handles {
            h.join();
        }
    };

    let queue = Execution::new(Tool::Queue.config([1, 2])).run(program);
    assert!(queue.outcome.is_ok(), "{:?}", queue.outcome);
    // Parallel: all sleeps overlap — comfortably under the serial sum.
    assert!(
        queue.duration < Duration::from_millis(SLEEP_MS * THREADS as u64),
        "queue wall time {:?} should reflect overlap",
        queue.duration
    );

    let rr = Execution::new(Tool::Rr.config([1, 2])).run(program);
    assert!(rr.outcome.is_ok(), "{:?}", rr.outcome);
    // Sequentialized: the rr-style baseline holds threads between
    // visible operations, so the sleeps serialize.
    assert!(
        rr.duration >= Duration::from_millis(SLEEP_MS * (THREADS as u64 - 1)),
        "rr wall time {:?} should reflect serialization",
        rr.duration
    );
}

/// Figure 6: an asynchronous signal recorded at tick *t* is raised on
/// replay at the end of the receiving thread's `Tick()` for *t* — so the
/// handler runs before the same next operation, every time.
#[test]
fn figure6_signal_floats_to_preceding_tick() {
    const SIGNO: i32 = 10;
    let program = || {
        let seen_at = Arc::new(Atomic::new(u64::MAX));
        let progress = Arc::new(Atomic::new(0u64));
        let (s, p) = (Arc::clone(&seen_at), Arc::clone(&progress));
        sparse_rr::tsan11rec::signals::set_handler(SIGNO, move || {
            // Record *when* (in op counts) the handler ran.
            s.store(p.load(MemOrder::SeqCst), MemOrder::SeqCst);
        });
        for _ in 0..30 {
            progress.fetch_add(1, MemOrder::SeqCst);
            // A syscall makes the op stream observable to the vOS trigger.
            let _ = sys::clock_gettime();
        }
        sys::println(&format!("handler at {}", seen_at.load(MemOrder::SeqCst)));
    };

    let config = || Tool::RndRec.config([3, 4]);
    let (rec, demo) = Execution::new(config())
        .setup(|vos| vos.schedule_signal(SIGNO, SignalTrigger::AfterSyscalls(9)))
        .record(program);
    assert!(rec.outcome.is_ok(), "{:?}", rec.outcome);
    assert!(
        !rec.console_text()
            .contains("handler at 18446744073709551615"),
        "handler must have run during recording: {}",
        rec.console_text()
    );

    for _ in 0..3 {
        let rep = Execution::new(config()).replay(&demo, program);
        assert!(rep.outcome.is_ok(), "{:?}", rep.outcome);
        assert_eq!(
            rep.console, rec.console,
            "the handler runs at the same logical point on every replay"
        );
    }
}

/// Figure 7: liveness reschedules are physical-time events during
/// recording, but replay applies them at their recorded ticks — so a
/// recording whose schedule was perturbed by reschedules still replays
/// to identical output.
#[test]
fn figure7_reschedules_replay_at_their_ticks() {
    let program = || {
        let counter = Arc::new(Atomic::new(0u64));
        let c = Arc::clone(&counter);
        let hog = tthread::spawn(move || {
            for _ in 0..4 {
                // Long invisible stretches force liveness reschedules.
                std::thread::sleep(Duration::from_millis(8));
                c.fetch_add(1000, MemOrder::SeqCst);
            }
        });
        for i in 0..40 {
            counter.fetch_add(i, MemOrder::SeqCst);
        }
        hog.join();
        sys::println(&format!("final={}", counter.load(MemOrder::SeqCst)));
    };

    // Liveness ON (2ms) during recording.
    let make_config = || {
        let mut c = Tool::RndRec.config([5, 6]);
        c.liveness = Some(Duration::from_millis(2));
        c
    };
    let (rec, demo) = Execution::new(make_config()).record(program);
    assert!(rec.outcome.is_ok(), "{:?}", rec.outcome);
    let reschedules = demo
        .async_events
        .iter()
        .filter(|e| {
            matches!(
                e,
                sparse_rr::substrates::replay::AsyncEvent::Reschedule { .. }
            )
        })
        .count();
    assert!(reschedules > 0, "the hog must have triggered reschedules");

    let rep = Execution::new(make_config()).replay(&demo, program);
    assert!(rep.outcome.is_ok(), "{:?}", rep.outcome);
    assert_eq!(rep.console, rec.console, "reschedules float to their ticks");
}
