//! **sparse-rr**: umbrella crate for the tsan11rec reproduction —
//! *Sparse Record and Replay with Controlled Scheduling* (PLDI 2019).
//!
//! This crate re-exports the whole workspace so examples, integration
//! tests and downstream users need a single dependency:
//!
//! * [`tsan11rec`] — the tool: controlled scheduling (`Wait()`/`Tick()`),
//!   sparse record/replay, C++11-style race detection, and the
//!   program-facing instrumentation API (`Atomic`, `Shared`, `Mutex`,
//!   `Condvar`, `thread`, `sys`, `signals`).
//! * [`vos`] — the virtual OS the programs under test run against.
//! * [`rr`] — the comprehensive sequentialized baseline.
//! * [`apps`] — every workload of the paper's evaluation.
//! * [`predict`] — predictive race detection: the weak partial order,
//!   witness-schedule synthesis, and replay-confirmed classification.
//! * [`vet`] — the static recording-soundness analyzer: flags escape
//!   hatches, Wait/Tick protocol misuse and replay-stability hazards
//!   in workload source before anything is recorded.
//! * [`plan`] — the static sparsification planner: thread-escape +
//!   lockset analysis classifying every plain-access site as
//!   `Local`/`Guarded`/`Conflict`, yielding an access plan that
//!   shrinks the recorded trace and prunes predict/explore work.
//! * [`substrates`] — the underlying vector-clock, memory-model,
//!   race-detection and demo-format crates.
//!
//! # Quickstart
//!
//! Record an execution of the paper's Figure 2 client, then replay it
//! without any live server:
//!
//! ```
//! use sparse_rr::apps::client::{client, world, ClientParams};
//! use sparse_rr::apps::harness::Tool;
//! use sparse_rr::tsan11rec::Execution;
//!
//! let params = ClientParams::default();
//! let (recorded, demo) = Execution::new(Tool::QueueRec.config([4, 8]))
//!     .setup(world(params))
//!     .record(client(params));
//! assert!(recorded.outcome.is_ok());
//!
//! // Fresh world: no server, no signal source — the demo drives it.
//! let replayed = Execution::new(Tool::QueueRec.config([4, 8]))
//!     .replay(&demo, client(params));
//! assert_eq!(replayed.console, recorded.console);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use srr_apps as apps;
pub use srr_plan as plan;
pub use srr_predict as predict;
pub use srr_rr as rr;
pub use srr_vet as vet;
pub use srr_vos as vos;
pub use tsan11rec;

/// The lower-level substrates, re-exported for direct use.
pub mod substrates {
    pub use srr_memmodel as memmodel;
    pub use srr_racedet as racedet;
    pub use srr_replay as replay;
    pub use srr_vclock as vclock;
}

// Convenience re-exports of the items nearly every user touches.
pub use tsan11rec::{
    Atomic, Condvar, Config, Demo, ExecReport, Execution, MemOrder, Mode, Mutex, Outcome, Shared,
    SparseConfig, Strategy,
};
