//! File descriptors and the poll interface types.

use std::fmt;

/// A virtual file descriptor.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fd(pub i32);

impl Fd {
    /// The raw descriptor number.
    #[must_use]
    pub fn raw(self) -> i32 {
        self.0
    }
}

impl fmt::Display for Fd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fd{}", self.0)
    }
}

/// Poll event bits (a subset of POSIX `poll(2)`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PollEvents {
    /// Data available to read / connection to accept.
    pub readable: bool,
    /// Write would not block.
    pub writable: bool,
    /// Hangup: peer closed.
    pub hup: bool,
    /// Error condition.
    pub err: bool,
}

impl PollEvents {
    /// Interest in readability only — the common case in the paper's
    /// workloads.
    pub const IN: PollEvents = PollEvents {
        readable: true,
        writable: false,
        hup: false,
        err: false,
    };

    /// Returns `true` if any bit is set.
    #[must_use]
    pub fn any(self) -> bool {
        self.readable || self.writable || self.hup || self.err
    }

    /// Packs into the classic bitmask (POLLIN=1, POLLOUT=4, POLLERR=8,
    /// POLLHUP=16) for recording in syscall buffers.
    #[must_use]
    pub fn to_bits(self) -> u8 {
        (self.readable as u8)
            | ((self.writable as u8) << 2)
            | ((self.err as u8) << 3)
            | ((self.hup as u8) << 4)
    }

    /// Inverse of [`PollEvents::to_bits`].
    #[must_use]
    pub fn from_bits(bits: u8) -> Self {
        PollEvents {
            readable: bits & 1 != 0,
            writable: bits & 4 != 0,
            err: bits & 8 != 0,
            hup: bits & 16 != 0,
        }
    }
}

/// One entry of a `poll` call: interest in, results out.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PollFd {
    /// The descriptor to query.
    pub fd: Fd,
    /// Requested events.
    pub events: PollEvents,
    /// Returned events (filled by `poll`).
    pub revents: PollEvents,
}

impl PollFd {
    /// Interest in readability of `fd`.
    #[must_use]
    pub fn readable(fd: Fd) -> Self {
        PollFd {
            fd,
            events: PollEvents::IN,
            revents: PollEvents::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poll_events_bits_roundtrip() {
        for bits in [0u8, 1, 4, 8, 16, 1 | 4, 1 | 16, 1 | 4 | 8 | 16] {
            assert_eq!(PollEvents::from_bits(bits).to_bits(), bits);
        }
    }

    #[test]
    fn any_detects_bits() {
        assert!(!PollEvents::default().any());
        assert!(PollEvents::IN.any());
        assert!(PollEvents {
            hup: true,
            ..Default::default()
        }
        .any());
    }

    #[test]
    fn pollfd_readable_constructor() {
        let p = PollFd::readable(Fd(3));
        assert_eq!(p.fd.raw(), 3);
        assert!(p.events.readable);
        assert!(!p.revents.any());
        assert_eq!(p.fd.to_string(), "fd3");
    }
}
