//! The [`Vos`] façade: fd table, syscall surface, and world state.

use std::collections::VecDeque;

use parking_lot::Mutex;

use crate::alloc::{AllocMode, Allocator};
use crate::clock::{Clock, Nanos};
use crate::device::{DeviceKind, IoctlOutcome};
use crate::errno::{Errno, SysResult};
use crate::fd::{Fd, PollFd};
use crate::net::{Connection, Peer};
use crate::rng::EnvRng;
use crate::signalsrc::{SignalSource, SignalTrigger};

/// How to construct the virtual world.
#[derive(Debug)]
pub struct VosConfig {
    /// Seed for the environment PRNG (payloads, latencies, device state).
    pub env_seed: u64,
    /// Time source.
    pub clock: Clock,
    /// Allocator policy.
    pub alloc: AllocMode,
    /// Capture an strace-style log of every syscall.
    pub strace: bool,
}

impl VosConfig {
    /// Fully deterministic world: scripted clock (1 µs per query),
    /// deterministic allocator. Tests and replay-determinism checks.
    #[must_use]
    pub fn deterministic(env_seed: u64) -> Self {
        VosConfig {
            env_seed,
            clock: Clock::scripted(1_000),
            alloc: AllocMode::Deterministic,
            strace: false,
        }
    }

    /// Realistic world: wall clock, ASLR-like allocator with per-run
    /// entropy. Record runs and benchmarks.
    #[must_use]
    pub fn realtime(env_seed: u64) -> Self {
        let entropy = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
            .unwrap_or(0x5bd1_e995);
        VosConfig {
            env_seed,
            clock: Clock::physical(),
            alloc: AllocMode::Randomized { entropy },
            strace: false,
        }
    }

    /// Replaces the allocator policy.
    #[must_use]
    pub fn with_alloc(mut self, alloc: AllocMode) -> Self {
        self.alloc = alloc;
        self
    }

    /// Enables the strace-style syscall log.
    #[must_use]
    pub fn with_strace(mut self) -> Self {
        self.strace = true;
        self
    }
}

/// Per-peer completion summary, for harness-side assertions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PeerSummary {
    /// Bytes the program received from this peer.
    pub bytes_rx: u64,
    /// Bytes the program sent to this peer.
    pub bytes_tx: u64,
    /// Whether the peer has closed its side.
    pub closed: bool,
}

enum FdEntry {
    File { name: String, offset: usize },
    PipeRead(usize),
    PipeWrite(usize),
    Conn(usize),
    Listener(usize),
    Device(usize),
    Console,
}

struct Pipe {
    buf: VecDeque<u8>,
    read_open: bool,
    write_open: bool,
}

type PeerFactory = Box<dyn FnMut(&mut EnvRng, u32) -> Box<dyn Peer> + Send>;

struct Listener {
    /// Arrival times of planned incoming connections.
    plan: VecDeque<Nanos>,
    factory: PeerFactory,
    accepted: u32,
    bound: bool,
}

struct VosInner {
    clock: Clock,
    rng: EnvRng,
    allocator: Allocator,
    fds: Vec<Option<FdEntry>>,
    files: Vec<(String, Vec<u8>)>,
    pipes: Vec<Pipe>,
    conns: Vec<Connection>,
    listeners: Vec<(u16, Listener)>,
    devices: Vec<(String, DeviceKind)>,
    signals: SignalSource,
    syscall_count: u64,
    strace: Option<Vec<String>>,
    console: Vec<u8>,
}

/// The virtual OS. Thread-safe: every method takes `&self`.
pub struct Vos {
    inner: Mutex<VosInner>,
}

impl Vos {
    /// Boots a world under `config`. Fds 0/1/2 are pre-opened as the
    /// console.
    #[must_use]
    pub fn new(config: VosConfig) -> Self {
        let inner = VosInner {
            clock: config.clock,
            rng: EnvRng::new(config.env_seed),
            allocator: Allocator::new(config.alloc, config.env_seed),
            fds: vec![
                Some(FdEntry::Console),
                Some(FdEntry::Console),
                Some(FdEntry::Console),
            ],
            files: Vec::new(),
            pipes: Vec::new(),
            conns: Vec::new(),
            listeners: Vec::new(),
            devices: Vec::new(),
            signals: SignalSource::default(),
            syscall_count: 0,
            strace: config.strace.then(Vec::new),
            console: Vec::new(),
        };
        Vos {
            inner: Mutex::new(inner),
        }
    }

    // ------------------------------------------------------------------
    // World setup (harness-facing, not syscalls)
    // ------------------------------------------------------------------

    /// Registers a listener on `port`: incoming connections arrive at the
    /// given times, each backed by a peer from `factory` (which receives
    /// the env RNG and the connection index).
    pub fn install_listener(
        &self,
        port: u16,
        arrivals: Vec<Nanos>,
        factory: impl FnMut(&mut EnvRng, u32) -> Box<dyn Peer> + Send + 'static,
    ) {
        let mut g = self.inner.lock();
        g.listeners.push((
            port,
            Listener {
                plan: arrivals.into(),
                factory: Box::new(factory),
                accepted: 0,
                bound: false,
            },
        ));
    }

    /// Registers a device under a path (e.g. `/dev/gpu`).
    pub fn install_device(&self, path: impl Into<String>, kind: DeviceKind) {
        self.inner.lock().devices.push((path.into(), kind));
    }

    /// Convenience: installs the opaque GPU device at `/dev/gpu`.
    pub fn install_gpu(&self) {
        let mut g = self.inner.lock();
        let seed = g.rng.next_u64();
        g.devices.push((
            "/dev/gpu".into(),
            DeviceKind::OpaqueGpu {
                frames: 0,
                rng: EnvRng::new(seed),
            },
        ));
    }

    /// Creates (or replaces) a file with the given contents.
    pub fn add_file(&self, path: impl Into<String>, contents: Vec<u8>) {
        let path = path.into();
        let mut g = self.inner.lock();
        if let Some(f) = g.files.iter_mut().find(|(n, _)| *n == path) {
            f.1 = contents;
        } else {
            g.files.push((path, contents));
        }
    }

    /// Schedules an asynchronous signal.
    pub fn schedule_signal(&self, signo: i32, trigger: SignalTrigger) {
        self.inner.lock().signals.schedule(signo, trigger);
    }

    /// Collects signals whose trigger has fired (called by the embedding
    /// tool at critical-section boundaries).
    pub fn take_due_signals(&self) -> Vec<i32> {
        let mut g = self.inner.lock();
        let now = g.clock.now();
        let count = g.syscall_count;
        g.signals.take_due(now, count)
    }

    /// Opens a connection to `peer` directly (program-initiated connect).
    pub fn connect(&self, peer: Box<dyn Peer>) -> Fd {
        let mut g = self.inner.lock();
        let now = g.clock.now();
        let conn = {
            let rng = &mut g.rng;
            Connection::new(peer, now, rng)
        };
        g.conns.push(conn);
        let idx = g.conns.len() - 1;
        g.push_fd(FdEntry::Conn(idx))
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// Total syscalls issued.
    #[must_use]
    pub fn syscall_count(&self) -> u64 {
        self.inner.lock().syscall_count
    }

    /// Takes the strace log (empty if strace was not enabled).
    #[must_use]
    pub fn take_strace(&self) -> Vec<String> {
        self.inner
            .lock()
            .strace
            .as_mut()
            .map(std::mem::take)
            .unwrap_or_default()
    }

    /// The console contents so far (fd 1/2 writes).
    #[must_use]
    pub fn console(&self) -> Vec<u8> {
        self.inner.lock().console.clone()
    }

    /// Publishes the vOS totals onto the unified metrics plane:
    /// syscalls issued, console bytes written, GPU frames presented and
    /// per-peer traffic. Levels go to gauges so repeated publishes
    /// (periodic snapshots) replace rather than accumulate.
    pub fn publish_metrics(&self, registry: &srr_obs::MetricsRegistry) {
        let (syscalls, console_bytes) = {
            let inner = self.inner.lock();
            (inner.syscall_count, inner.console.len() as u64)
        };
        registry.gauge("vos_syscalls").set(syscalls);
        registry.gauge("vos_console_bytes").set(console_bytes);
        registry.gauge("vos_gpu_frames").set(self.gpu_frames());
        for (i, p) in self.peer_summaries().iter().enumerate() {
            registry
                .gauge(&format!("vos_peer_bytes_rx{{peer=\"{i}\"}}"))
                .set(p.bytes_rx);
            registry
                .gauge(&format!("vos_peer_bytes_tx{{peer=\"{i}\"}}"))
                .set(p.bytes_tx);
        }
    }

    /// Per-connection traffic summaries, in connection order.
    #[must_use]
    pub fn peer_summaries(&self) -> Vec<PeerSummary> {
        let g = self.inner.lock();
        g.conns
            .iter()
            .map(|c| {
                let (bytes_rx, bytes_tx) = c.traffic();
                PeerSummary {
                    bytes_rx,
                    bytes_tx,
                    closed: c.peer_closed(),
                }
            })
            .collect()
    }

    /// The allocator's address log (the ALLOC stream for comprehensive
    /// recorders).
    #[must_use]
    pub fn alloc_log(&self) -> Vec<u64> {
        self.inner.lock().allocator.log().to_vec()
    }

    /// Whether `fd` refers to a device a comprehensive recorder cannot
    /// capture (the §5.4 NVIDIA situation).
    #[must_use]
    pub fn fd_is_opaque_device(&self, fd: Fd) -> bool {
        let g = self.inner.lock();
        match g.entry(fd) {
            Some(FdEntry::Device(d)) => g.devices[*d].1.is_opaque(),
            _ => false,
        }
    }

    /// Whether `fd` refers to a pipe endpoint. The paper (§4.4) records
    /// `read`/`write` on pipes but not on regular files; the sparse
    /// configuration needs this classification.
    #[must_use]
    pub fn fd_is_pipe(&self, fd: Fd) -> bool {
        matches!(
            self.inner.lock().entry(fd),
            Some(FdEntry::PipeRead(_) | FdEntry::PipeWrite(_))
        )
    }

    /// Whether `fd` refers to a network connection or listener.
    #[must_use]
    pub fn fd_is_socket(&self, fd: Fd) -> bool {
        matches!(
            self.inner.lock().entry(fd),
            Some(FdEntry::Conn(_) | FdEntry::Listener(_))
        )
    }

    /// Frames submitted to the GPU device (0 if none installed).
    #[must_use]
    pub fn gpu_frames(&self) -> u64 {
        let g = self.inner.lock();
        g.devices.iter().map(|(_, d)| d.frames()).sum()
    }

    // ------------------------------------------------------------------
    // Syscall surface
    // ------------------------------------------------------------------

    /// `clock_gettime`: the current virtual time in nanoseconds.
    pub fn clock_gettime(&self) -> SysResult {
        let mut g = self.inner.lock();
        g.count_syscall("clock_gettime", &[]);
        Ok(g.clock.now() as i64)
    }

    /// Allocates virtual memory; returns the address (models `malloc`).
    pub fn valloc(&self, size: u64) -> u64 {
        let mut g = self.inner.lock();
        let addr = g.allocator.alloc(size);
        if let Some(log) = &mut g.strace {
            log.push(format!("valloc({size}) = {addr:#x}"));
        }
        addr
    }

    /// `open`: opens a file or device path.
    pub fn open(&self, path: &str, create: bool) -> SysResult {
        let mut g = self.inner.lock();
        g.count_syscall("open", &[path]);
        if let Some(d) = g.devices.iter().position(|(n, _)| n == path) {
            return Ok(g.push_fd(FdEntry::Device(d)).raw() as i64);
        }
        let exists = g.files.iter().any(|(n, _)| n == path);
        if !exists {
            if !create {
                return Err(Errno::ENOENT);
            }
            g.files.push((path.to_owned(), Vec::new()));
        }
        let name = path.to_owned();
        Ok(g.push_fd(FdEntry::File { name, offset: 0 }).raw() as i64)
    }

    /// `pipe`: creates a pipe, returning `(read_end, write_end)`.
    pub fn pipe(&self) -> (Fd, Fd) {
        let mut g = self.inner.lock();
        g.count_syscall("pipe", &[]);
        g.pipes.push(Pipe {
            buf: VecDeque::new(),
            read_open: true,
            write_open: true,
        });
        let idx = g.pipes.len() - 1;
        let r = g.push_fd(FdEntry::PipeRead(idx));
        let w = g.push_fd(FdEntry::PipeWrite(idx));
        (r, w)
    }

    /// `close`.
    pub fn close(&self, fd: Fd) -> SysResult {
        let mut g = self.inner.lock();
        g.count_syscall("close", &[&fd.to_string()]);
        let entry = g.take_entry(fd).ok_or(Errno::EBADF)?;
        match entry {
            FdEntry::PipeRead(p) => g.pipes[p].read_open = false,
            FdEntry::PipeWrite(p) => g.pipes[p].write_open = false,
            FdEntry::Conn(c) => g.conns[c].program_closed = true,
            _ => {}
        }
        Ok(0)
    }

    /// `read`: files, pipes, sockets, console (EOF).
    pub fn read(&self, fd: Fd, buf: &mut [u8]) -> SysResult {
        let mut g = self.inner.lock();
        g.count_syscall("read", &[&fd.to_string(), &buf.len().to_string()]);
        g.read_inner(fd, buf)
    }

    /// `write`: files, pipes, sockets, console.
    pub fn write(&self, fd: Fd, data: &[u8]) -> SysResult {
        let mut g = self.inner.lock();
        g.count_syscall("write", &[&fd.to_string(), &data.len().to_string()]);
        g.write_inner(fd, data)
    }

    /// `recv`: sockets only.
    pub fn recv(&self, fd: Fd, buf: &mut [u8]) -> SysResult {
        let mut g = self.inner.lock();
        g.count_syscall("recv", &[&fd.to_string(), &buf.len().to_string()]);
        let c = g.conn_of(fd)?;
        let now = g.clock.now();
        g.drive_conn(c, now);
        let conn = &mut g.conns[c];
        let n = conn.read(now, buf);
        if n > 0 {
            Ok(n as i64)
        } else if conn.at_eof(now) {
            Ok(0)
        } else {
            Err(Errno::EAGAIN)
        }
    }

    /// `send`: sockets only.
    pub fn send(&self, fd: Fd, data: &[u8]) -> SysResult {
        let mut g = self.inner.lock();
        g.count_syscall("send", &[&fd.to_string(), &data.len().to_string()]);
        let c = g.conn_of(fd)?;
        let now = g.clock.now();
        let sent = {
            let VosInner { conns, rng, .. } = &mut *g;
            conns[c].program_send(now, rng, data)
        };
        if sent {
            Ok(data.len() as i64)
        } else {
            Err(Errno::EPIPE)
        }
    }

    /// `recvmsg`: like `recv` but also fills a 4-byte flags buffer
    /// (always zero here); exists because the paper's supported-syscall
    /// list includes it.
    pub fn recvmsg(&self, fd: Fd, buf: &mut [u8], flags: &mut [u8; 4]) -> SysResult {
        *flags = [0; 4];
        let r = self.recv(fd, buf);
        let mut g = self.inner.lock();
        g.rename_last_strace("recvmsg");
        r
    }

    /// `sendmsg`: alias of `send` at the wire level.
    pub fn sendmsg(&self, fd: Fd, data: &[u8]) -> SysResult {
        let r = self.send(fd, data);
        let mut g = self.inner.lock();
        g.rename_last_strace("sendmsg");
        r
    }

    /// `bind`: binds the program to a pre-installed listener port.
    pub fn bind(&self, port: u16) -> SysResult {
        let mut g = self.inner.lock();
        g.count_syscall("bind", &[&port.to_string()]);
        let idx = g
            .listeners
            .iter()
            .position(|(p, _)| *p == port)
            .ok_or(Errno::EINVAL)?;
        if g.listeners[idx].1.bound {
            return Err(Errno::EADDRINUSE);
        }
        g.listeners[idx].1.bound = true;
        Ok(g.push_fd(FdEntry::Listener(idx)).raw() as i64)
    }

    /// `accept`: accepts a pending connection, or `EAGAIN`.
    pub fn accept(&self, fd: Fd) -> SysResult {
        let mut g = self.inner.lock();
        g.count_syscall("accept", &[&fd.to_string()]);
        g.accept_inner(fd)
    }

    /// `accept4`: identical to [`Vos::accept`] in this world (the flags
    /// argument of the real call only affects fd flags we do not model).
    pub fn accept4(&self, fd: Fd) -> SysResult {
        let mut g = self.inner.lock();
        g.count_syscall("accept4", &[&fd.to_string()]);
        g.accept_inner(fd)
    }

    /// `poll`: fills `revents`, returns the count of ready entries.
    /// Never blocks — the instrumented layer loops (§3.2's trylock
    /// pattern applies to blocking syscalls too).
    pub fn poll(&self, fds: &mut [PollFd]) -> SysResult {
        let mut g = self.inner.lock();
        g.count_syscall("poll", &[&fds.len().to_string()]);
        g.poll_inner(fds)
    }

    /// `select`: readability-only variant of [`Vos::poll`], present
    /// because httpd's workaround (§5.2) switches from `epoll_wait` to
    /// the simpler interface.
    pub fn select(&self, fds: &mut [PollFd]) -> SysResult {
        let mut g = self.inner.lock();
        g.count_syscall("select", &[&fds.len().to_string()]);
        g.poll_inner(fds)
    }

    /// `epoll_wait`: present so workloads can *attempt* it — it returns
    /// `ENOTSUP`, modelling the paper's §5.2 situation where tsan11rec
    /// cannot handle epoll's union-returning interface and httpd must be
    /// switched to `poll`.
    pub fn epoll_wait(&self) -> SysResult {
        let mut g = self.inner.lock();
        g.count_syscall("epoll_wait", &[]);
        Err(Errno::ENOTSUP)
    }

    /// `ioctl` on a device fd.
    pub fn ioctl(&self, fd: Fd, request: u64, arg: &mut [u8]) -> SysResult {
        let mut g = self.inner.lock();
        g.count_syscall("ioctl", &[&fd.to_string(), &format!("{request:#x}")]);
        let d = match g.entry(fd) {
            Some(FdEntry::Device(d)) => *d,
            Some(_) => return Err(Errno::ENOTTY),
            None => return Err(Errno::EBADF),
        };
        match g.devices[d].1.ioctl(request, arg) {
            IoctlOutcome::Ok(v) => Ok(v),
            IoctlOutcome::UnknownRequest => Err(Errno::EINVAL),
        }
    }

    /// Advances a scripted clock (models a sleep without a syscall).
    pub fn advance_time(&self, delta: Nanos) {
        self.inner.lock().clock.advance(delta);
    }

    /// The current virtual time without counting a syscall.
    pub fn now(&self) -> Nanos {
        self.inner.lock().clock.now()
    }
}

impl VosInner {
    fn push_fd(&mut self, entry: FdEntry) -> Fd {
        if let Some(i) = self.fds.iter().position(Option::is_none) {
            self.fds[i] = Some(entry);
            return Fd(i as i32);
        }
        self.fds.push(Some(entry));
        Fd((self.fds.len() - 1) as i32)
    }

    fn entry(&self, fd: Fd) -> Option<&FdEntry> {
        self.fds.get(usize::try_from(fd.raw()).ok()?)?.as_ref()
    }

    fn take_entry(&mut self, fd: Fd) -> Option<FdEntry> {
        self.fds.get_mut(usize::try_from(fd.raw()).ok()?)?.take()
    }

    fn conn_of(&self, fd: Fd) -> Result<usize, Errno> {
        match self.entry(fd) {
            Some(FdEntry::Conn(c)) => Ok(*c),
            Some(_) => Err(Errno::EINVAL),
            None => Err(Errno::EBADF),
        }
    }

    fn drive_conn(&mut self, c: usize, now: Nanos) {
        let VosInner { conns, rng, .. } = self;
        conns[c].drive(now, rng);
    }

    fn count_syscall(&mut self, name: &str, args: &[&str]) {
        self.syscall_count += 1;
        if let Some(log) = &mut self.strace {
            log.push(format!("{name}({})", args.join(", ")));
        }
    }

    fn rename_last_strace(&mut self, name: &str) {
        if let Some(log) = &mut self.strace {
            if let Some(last) = log.last_mut() {
                if let Some(paren) = last.find('(') {
                    *last = format!("{name}{}", &last[paren..]);
                }
            }
        }
    }

    fn read_inner(&mut self, fd: Fd, buf: &mut [u8]) -> SysResult {
        let entry = self
            .fds
            .get(usize::try_from(fd.raw()).map_err(|_| Errno::EBADF)?);
        match entry.and_then(Option::as_ref) {
            None => Err(Errno::EBADF),
            Some(FdEntry::Console) => Ok(0), // no stdin input modelled
            Some(FdEntry::File { name, offset }) => {
                let (name, offset) = (name.clone(), *offset);
                let data = self
                    .files
                    .iter()
                    .find(|(n, _)| *n == name)
                    .map(|(_, d)| d.clone())
                    .unwrap_or_default();
                let n = buf.len().min(data.len().saturating_sub(offset));
                buf[..n].copy_from_slice(&data[offset..offset + n]);
                if let Some(FdEntry::File { offset, .. }) = self.fds[fd.raw() as usize].as_mut() {
                    *offset += n;
                }
                Ok(n as i64)
            }
            Some(FdEntry::PipeRead(p)) => {
                let p = *p;
                let pipe = &mut self.pipes[p];
                if pipe.buf.is_empty() {
                    return if pipe.write_open {
                        Err(Errno::EAGAIN)
                    } else {
                        Ok(0)
                    };
                }
                let n = buf.len().min(pipe.buf.len());
                for slot in buf.iter_mut().take(n) {
                    *slot = pipe.buf.pop_front().expect("length checked");
                }
                Ok(n as i64)
            }
            Some(FdEntry::PipeWrite(_)) => Err(Errno::EINVAL),
            Some(FdEntry::Conn(c)) => {
                let c = *c;
                let now = self.clock.now();
                self.drive_conn(c, now);
                let conn = &mut self.conns[c];
                let n = conn.read(now, buf);
                if n > 0 {
                    Ok(n as i64)
                } else if conn.at_eof(now) {
                    Ok(0)
                } else {
                    Err(Errno::EAGAIN)
                }
            }
            Some(FdEntry::Listener(_) | FdEntry::Device(_)) => Err(Errno::EINVAL),
        }
    }

    fn write_inner(&mut self, fd: Fd, data: &[u8]) -> SysResult {
        let entry = self
            .fds
            .get(usize::try_from(fd.raw()).map_err(|_| Errno::EBADF)?);
        match entry.and_then(Option::as_ref) {
            None => Err(Errno::EBADF),
            Some(FdEntry::Console) => {
                self.console.extend_from_slice(data);
                Ok(data.len() as i64)
            }
            Some(FdEntry::File { name, offset }) => {
                let (name, offset) = (name.clone(), *offset);
                let file = self
                    .files
                    .iter_mut()
                    .find(|(n, _)| *n == name)
                    .ok_or(Errno::ENOENT)?;
                if file.1.len() < offset + data.len() {
                    file.1.resize(offset + data.len(), 0);
                }
                file.1[offset..offset + data.len()].copy_from_slice(data);
                if let Some(FdEntry::File { offset, .. }) = self.fds[fd.raw() as usize].as_mut() {
                    *offset += data.len();
                }
                Ok(data.len() as i64)
            }
            Some(FdEntry::PipeWrite(p)) => {
                let p = *p;
                let pipe = &mut self.pipes[p];
                if !pipe.read_open {
                    return Err(Errno::EPIPE);
                }
                pipe.buf.extend(data.iter().copied());
                Ok(data.len() as i64)
            }
            Some(FdEntry::PipeRead(_)) => Err(Errno::EINVAL),
            Some(FdEntry::Conn(c)) => {
                let c = *c;
                let now = self.clock.now();
                let VosInner { conns, rng, .. } = self;
                if conns[c].program_send(now, rng, data) {
                    Ok(data.len() as i64)
                } else {
                    Err(Errno::EPIPE)
                }
            }
            Some(FdEntry::Listener(_) | FdEntry::Device(_)) => Err(Errno::EINVAL),
        }
    }

    fn accept_inner(&mut self, fd: Fd) -> SysResult {
        let l = match self.entry(fd) {
            Some(FdEntry::Listener(l)) => *l,
            Some(_) => return Err(Errno::EINVAL),
            None => return Err(Errno::EBADF),
        };
        let now = self.clock.now();
        let due = self.listeners[l]
            .1
            .plan
            .front()
            .is_some_and(|&at| at <= now);
        if !due {
            return Err(Errno::EAGAIN);
        }
        self.listeners[l].1.plan.pop_front();
        let idx = self.listeners[l].1.accepted;
        self.listeners[l].1.accepted += 1;
        let conn = {
            let VosInner { listeners, rng, .. } = self;
            let peer = (listeners[l].1.factory)(rng, idx);
            Connection::new(peer, now, rng)
        };
        self.conns.push(conn);
        let c = self.conns.len() - 1;
        Ok(self.push_fd(FdEntry::Conn(c)).raw() as i64)
    }

    fn poll_inner(&mut self, fds: &mut [PollFd]) -> SysResult {
        let now = self.clock.now();
        // Drive every polled connection first (lazy world advancement).
        let polled_fds: Vec<_> = fds.iter().map(|pfd| pfd.fd).collect();
        for fd in polled_fds {
            if let Some(FdEntry::Conn(c)) = self.entry(fd) {
                let c = *c;
                self.drive_conn(c, now);
            }
        }
        let mut ready = 0i64;
        for pfd in fds.iter_mut() {
            pfd.revents = Default::default();
            match self.entry(pfd.fd) {
                None => pfd.revents.err = true,
                Some(FdEntry::Conn(c)) => {
                    let conn = &self.conns[*c];
                    pfd.revents.readable = pfd.events.readable && conn.readable(now);
                    pfd.revents.hup = conn.at_eof(now);
                    pfd.revents.writable = pfd.events.writable && !conn.peer_closed();
                }
                Some(FdEntry::Listener(l)) => {
                    pfd.revents.readable = pfd.events.readable
                        && self.listeners[*l]
                            .1
                            .plan
                            .front()
                            .is_some_and(|&at| at <= now);
                }
                Some(FdEntry::PipeRead(p)) => {
                    let pipe = &self.pipes[*p];
                    pfd.revents.readable = pfd.events.readable && !pipe.buf.is_empty();
                    pfd.revents.hup = !pipe.write_open && pipe.buf.is_empty();
                }
                Some(FdEntry::PipeWrite(p)) => {
                    pfd.revents.writable = pfd.events.writable;
                    pfd.revents.hup = !self.pipes[*p].read_open;
                }
                Some(FdEntry::File { .. } | FdEntry::Console | FdEntry::Device(_)) => {
                    pfd.revents.readable = pfd.events.readable;
                    pfd.revents.writable = pfd.events.writable;
                }
            }
            if pfd.revents.any() {
                ready += 1;
            }
        }
        Ok(ready)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::{EchoPeer, RequestSourcePeer, ScriptedPeer, SilentPeer};

    fn det() -> Vos {
        Vos::new(VosConfig::deterministic(7))
    }

    #[test]
    fn console_fds_are_preopened() {
        let vos = det();
        assert_eq!(vos.write(Fd(1), b"hello "), Ok(6));
        assert_eq!(vos.write(Fd(2), b"world"), Ok(5));
        assert_eq!(vos.console(), b"hello world");
        let mut buf = [0u8; 4];
        assert_eq!(vos.read(Fd(0), &mut buf), Ok(0), "no stdin modelled");
    }

    #[test]
    fn files_roundtrip_and_track_offsets() {
        let vos = det();
        vos.add_file("/etc/config", b"key=value".to_vec());
        let fd = Fd(vos.open("/etc/config", false).unwrap() as i32);
        let mut buf = [0u8; 4];
        assert_eq!(vos.read(fd, &mut buf), Ok(4));
        assert_eq!(&buf, b"key=");
        assert_eq!(vos.read(fd, &mut buf), Ok(4));
        assert_eq!(&buf, b"valu");
        assert_eq!(vos.read(fd, &mut buf), Ok(1));
        assert_eq!(vos.read(fd, &mut buf), Ok(0), "EOF");
        assert_eq!(vos.close(fd), Ok(0));
        assert_eq!(vos.read(fd, &mut buf), Err(Errno::EBADF));
    }

    #[test]
    fn open_missing_file_fails_unless_create() {
        let vos = det();
        assert_eq!(vos.open("/no/such", false), Err(Errno::ENOENT));
        let fd = Fd(vos.open("/new", true).unwrap() as i32);
        assert_eq!(vos.write(fd, b"data"), Ok(4));
    }

    #[test]
    fn pipes_deliver_fifo_and_signal_eof() {
        let vos = det();
        let (r, w) = vos.pipe();
        let mut buf = [0u8; 8];
        assert_eq!(vos.read(r, &mut buf), Err(Errno::EAGAIN));
        assert_eq!(vos.write(w, b"abc"), Ok(3));
        assert_eq!(vos.read(r, &mut buf), Ok(3));
        assert_eq!(&buf[..3], b"abc");
        vos.close(w).unwrap();
        assert_eq!(vos.read(r, &mut buf), Ok(0), "EOF after writer closes");
    }

    #[test]
    fn pipe_write_after_reader_close_is_epipe() {
        let vos = det();
        let (r, w) = vos.pipe();
        vos.close(r).unwrap();
        assert_eq!(vos.write(w, b"x"), Err(Errno::EPIPE));
    }

    #[test]
    fn connect_send_recv_echo() {
        let vos = det();
        let fd = vos.connect(Box::new(EchoPeer::new(0)));
        assert_eq!(vos.send(fd, b"ping"), Ok(4));
        let mut buf = [0u8; 8];
        assert_eq!(vos.recv(fd, &mut buf), Ok(4));
        assert_eq!(&buf[..4], b"ping");
        assert_eq!(vos.recv(fd, &mut buf), Err(Errno::EAGAIN));
    }

    #[test]
    fn recv_on_latent_data_needs_time() {
        // Scripted clock advances 1µs per query; 10ms latency needs many
        // queries or an explicit advance.
        let vos = det();
        let fd = vos.connect(Box::new(EchoPeer::new(10_000_000)));
        vos.send(fd, b"x").unwrap();
        let mut buf = [0u8; 1];
        assert_eq!(vos.recv(fd, &mut buf), Err(Errno::EAGAIN));
        vos.advance_time(20_000_000);
        assert_eq!(vos.recv(fd, &mut buf), Ok(1));
    }

    #[test]
    fn listener_accept_flow() {
        let vos = det();
        vos.install_listener(8080, vec![0, 0], |_rng, idx| {
            Box::new(ScriptedPeer::new(vec![(
                0,
                format!("client{idx}").into_bytes(),
            )]))
        });
        let lfd = Fd(vos.bind(8080).unwrap() as i32);
        let c1 = Fd(vos.accept(lfd).unwrap() as i32);
        let c2 = Fd(vos.accept4(lfd).unwrap() as i32);
        assert_eq!(vos.accept(lfd), Err(Errno::EAGAIN), "plan exhausted");
        let mut buf = [0u8; 16];
        let n = vos.recv(c1, &mut buf).unwrap() as usize;
        assert_eq!(&buf[..n], b"client0");
        let n = vos.recv(c2, &mut buf).unwrap() as usize;
        assert_eq!(&buf[..n], b"client1");
    }

    #[test]
    fn bind_unknown_port_fails_and_rebind_is_addrinuse() {
        let vos = det();
        vos.install_listener(80, vec![], |_, _| Box::new(SilentPeer));
        assert_eq!(vos.bind(81), Err(Errno::EINVAL));
        assert!(vos.bind(80).is_ok());
        assert_eq!(vos.bind(80), Err(Errno::EADDRINUSE));
    }

    #[test]
    fn poll_reports_readiness_and_hup() {
        let vos = det();
        let echo = vos.connect(Box::new(EchoPeer::new(0)));
        let silent = vos.connect(Box::new(SilentPeer));
        vos.send(echo, b"z").unwrap();
        let mut fds = [PollFd::readable(echo), PollFd::readable(silent)];
        assert_eq!(vos.poll(&mut fds), Ok(1));
        assert!(fds[0].revents.readable);
        assert!(!fds[1].revents.any());

        let closing = vos.connect(Box::new(ScriptedPeer::closing(vec![])));
        let mut fds = [PollFd::readable(closing)];
        assert_eq!(vos.poll(&mut fds), Ok(1));
        assert!(fds[0].revents.hup);
    }

    #[test]
    fn poll_drives_lazy_peers() {
        let vos = det();
        let fd = vos.connect(Box::new(RequestSourcePeer::new(1, 5, 0)));
        let mut fds = [PollFd::readable(fd)];
        assert_eq!(vos.poll(&mut fds), Ok(1), "poll must drive the peer");
        assert!(fds[0].revents.readable);
    }

    #[test]
    fn select_mirrors_poll() {
        let vos = det();
        let fd = vos.connect(Box::new(EchoPeer::new(0)));
        vos.send(fd, b"q").unwrap();
        let mut fds = [PollFd::readable(fd)];
        assert_eq!(vos.select(&mut fds), Ok(1));
    }

    #[test]
    fn epoll_wait_is_unsupported() {
        let vos = det();
        assert_eq!(vos.epoll_wait(), Err(Errno::ENOTSUP));
    }

    #[test]
    fn ioctl_gpu_device() {
        let vos = det();
        vos.install_gpu();
        let fd = Fd(vos.open("/dev/gpu", false).unwrap() as i32);
        assert!(vos.fd_is_opaque_device(fd));
        let mut arg = [0u8; 8];
        assert_eq!(
            vos.ioctl(fd, crate::device::GPU_SUBMIT_FRAME, &mut arg),
            Ok(0)
        );
        assert_eq!(vos.gpu_frames(), 1);
        assert_eq!(vos.ioctl(fd, 0x9999, &mut arg), Err(Errno::EINVAL));
        assert_eq!(vos.ioctl(Fd(1), 1, &mut arg), Err(Errno::ENOTTY));
    }

    #[test]
    fn fd_classification() {
        let vos = det();
        let (r, w) = vos.pipe();
        let s = vos.connect(Box::new(SilentPeer));
        vos.add_file("/f", vec![]);
        let f = Fd(vos.open("/f", false).unwrap() as i32);
        assert!(vos.fd_is_pipe(r) && vos.fd_is_pipe(w));
        assert!(vos.fd_is_socket(s));
        assert!(!vos.fd_is_pipe(f) && !vos.fd_is_socket(f));
        assert!(!vos.fd_is_opaque_device(f));
    }

    #[test]
    fn signals_fire_on_schedule() {
        let vos = det();
        vos.schedule_signal(15, SignalTrigger::AfterSyscalls(2));
        assert!(vos.take_due_signals().is_empty());
        vos.clock_gettime().unwrap();
        vos.clock_gettime().unwrap();
        assert_eq!(vos.take_due_signals(), vec![15]);
        assert!(vos.take_due_signals().is_empty());
    }

    #[test]
    fn strace_logs_syscalls() {
        let vos = Vos::new(VosConfig::deterministic(1).with_strace());
        vos.clock_gettime().unwrap();
        let fd = vos.connect(Box::new(EchoPeer::new(0)));
        vos.send(fd, b"x").unwrap();
        let log = vos.take_strace();
        assert!(log.iter().any(|l| l.starts_with("clock_gettime(")));
        assert!(log.iter().any(|l| l.starts_with("send(")));
    }

    #[test]
    fn syscall_count_increments() {
        let vos = det();
        let before = vos.syscall_count();
        vos.clock_gettime().unwrap();
        vos.clock_gettime().unwrap();
        assert_eq!(vos.syscall_count(), before + 2);
    }

    #[test]
    fn valloc_allocates_and_logs() {
        let vos = det();
        let a = vos.valloc(64);
        let b = vos.valloc(64);
        assert_ne!(a, b);
        assert_eq!(vos.alloc_log(), vec![a, b]);
    }

    #[test]
    fn peer_summaries_track_traffic() {
        let vos = det();
        let fd = vos.connect(Box::new(EchoPeer::new(0)));
        vos.send(fd, b"12345").unwrap();
        let mut buf = [0u8; 8];
        vos.recv(fd, &mut buf).unwrap();
        let sums = vos.peer_summaries();
        assert_eq!(sums.len(), 1);
        assert_eq!(sums[0].bytes_tx, 5);
        assert_eq!(sums[0].bytes_rx, 5);
        assert!(!sums[0].closed);
    }

    #[test]
    fn fd_numbers_are_reused_after_close() {
        let vos = det();
        let fd1 = Fd(vos.open("/a", true).unwrap() as i32);
        vos.close(fd1).unwrap();
        let fd2 = Fd(vos.open("/b", true).unwrap() as i32);
        assert_eq!(fd1, fd2, "lowest free fd is reused, like a real kernel");
    }

    #[test]
    fn recvmsg_fills_flags_and_matches_recv() {
        let vos = det();
        let fd = vos.connect(Box::new(EchoPeer::new(0)));
        vos.sendmsg(fd, b"m").unwrap();
        let mut buf = [0u8; 4];
        let mut flags = [9u8; 4];
        assert_eq!(vos.recvmsg(fd, &mut buf, &mut flags), Ok(1));
        assert_eq!(flags, [0; 4]);
    }
}
