//! Errno values for the virtual OS.

use std::fmt;

/// Result type of every virtual syscall: a non-negative return value or an
/// [`Errno`]. The embedding tool converts this into the C convention
/// (`-1` + `errno`) when recording, matching the paper's SYSCALL stream.
pub type SysResult = Result<i64, Errno>;

/// A subset of Linux errno values, numerically compatible with x86-64.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(i32)]
pub enum Errno {
    /// Interrupted system call.
    EINTR = 4,
    /// Bad file descriptor.
    EBADF = 9,
    /// Resource temporarily unavailable (`EWOULDBLOCK`).
    EAGAIN = 11,
    /// Device or resource busy.
    EBUSY = 16,
    /// No such file or directory.
    ENOENT = 2,
    /// Invalid argument.
    EINVAL = 22,
    /// Broken pipe.
    EPIPE = 32,
    /// Operation not supported.
    ENOTSUP = 95,
    /// Connection reset by peer.
    ECONNRESET = 104,
    /// Address already in use.
    EADDRINUSE = 98,
    /// Inappropriate ioctl for device.
    ENOTTY = 25,
}

impl Errno {
    /// The numeric errno value.
    #[must_use]
    pub fn code(self) -> i32 {
        self as i32
    }

    /// The symbolic name (`"EAGAIN"` etc.).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Errno::EINTR => "EINTR",
            Errno::EBADF => "EBADF",
            Errno::EAGAIN => "EAGAIN",
            Errno::EBUSY => "EBUSY",
            Errno::ENOENT => "ENOENT",
            Errno::EINVAL => "EINVAL",
            Errno::EPIPE => "EPIPE",
            Errno::ENOTSUP => "ENOTSUP",
            Errno::ECONNRESET => "ECONNRESET",
            Errno::EADDRINUSE => "EADDRINUSE",
            Errno::ENOTTY => "ENOTTY",
        }
    }

    /// Reconstructs an errno from its numeric code, if known.
    #[must_use]
    pub fn from_code(code: i32) -> Option<Self> {
        Some(match code {
            4 => Errno::EINTR,
            9 => Errno::EBADF,
            11 => Errno::EAGAIN,
            16 => Errno::EBUSY,
            2 => Errno::ENOENT,
            22 => Errno::EINVAL,
            32 => Errno::EPIPE,
            95 => Errno::ENOTSUP,
            104 => Errno::ECONNRESET,
            98 => Errno::EADDRINUSE,
            25 => Errno::ENOTTY,
            _ => return None,
        })
    }
}

impl fmt::Display for Errno {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.name(), self.code())
    }
}

impl std::error::Error for Errno {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_match_linux() {
        assert_eq!(Errno::EAGAIN.code(), 11);
        assert_eq!(Errno::EINTR.code(), 4);
        assert_eq!(Errno::EPIPE.code(), 32);
        assert_eq!(Errno::ECONNRESET.code(), 104);
    }

    #[test]
    fn from_code_roundtrips() {
        for e in [
            Errno::EINTR,
            Errno::EBADF,
            Errno::EAGAIN,
            Errno::EBUSY,
            Errno::ENOENT,
            Errno::EINVAL,
            Errno::EPIPE,
            Errno::ENOTSUP,
            Errno::ECONNRESET,
            Errno::EADDRINUSE,
            Errno::ENOTTY,
        ] {
            assert_eq!(Errno::from_code(e.code()), Some(e));
        }
        assert_eq!(Errno::from_code(9999), None);
    }

    #[test]
    fn display_includes_name_and_code() {
        assert_eq!(Errno::EAGAIN.to_string(), "EAGAIN (11)");
    }
}
