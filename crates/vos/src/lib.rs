//! Virtual OS substrate for the tsan11rec reproduction.
//!
//! The paper's tool intercepts the glibc wrappers of a real kernel; this
//! crate plays the kernel's role, so that the same *shape* of environmental
//! nondeterminism (network payloads, readiness timing, clock values, opaque
//! device ioctls, allocator addresses, asynchronous signals) flows through
//! the interception layer while remaining controllable enough to test.
//!
//! The root object is [`Vos`]: a thread-safe façade offering the syscall
//! surface the paper's sparse recorder supports — `read`, `write`, `recv`,
//! `send`, `recvmsg`, `sendmsg`, `accept`, `accept4`, `bind`,
//! `clock_gettime`, `ioctl`, `select`, `poll` — plus files, pipes, a
//! virtual address allocator, and asynchronous signal sources.
//!
//! Network nondeterminism comes from [`Peer`] state machines standing in
//! for remote endpoints: an HTTP client swarm, the game server of §5.4, the
//! request source of Figure 2. Peers run *lazily*: the world advances when
//! the program issues syscalls, with message availability gated on the
//! virtual clock, reproducing the readiness nondeterminism that makes
//! `poll`/`recv` worth recording.
//!
//! # Example
//!
//! ```
//! use srr_vos::{EchoPeer, Vos, VosConfig};
//!
//! let vos = Vos::new(VosConfig::deterministic(42));
//! let fd = vos.connect(Box::new(EchoPeer::new(0)));
//! vos.send(fd, b"ping").unwrap();
//! let mut buf = [0u8; 16];
//! let n = vos.recv(fd, &mut buf).unwrap();
//! assert_eq!(&buf[..n as usize], b"ping");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alloc;
mod clock;
mod device;
mod errno;
mod fd;
mod net;
mod rng;
mod signalsrc;
mod world;

pub use alloc::{AllocMode, Allocator};
pub use clock::{Clock, Nanos};
pub use device::{DeviceKind, IoctlOutcome, GPU_GET_VSYNC, GPU_QUERY_MEM, GPU_SUBMIT_FRAME};
pub use errno::{Errno, SysResult};
pub use fd::{Fd, PollEvents, PollFd};
pub use net::{EchoPeer, Peer, PeerCtx, PeerId, RequestSourcePeer, ScriptedPeer, SilentPeer};
pub use rng::EnvRng;
pub use signalsrc::SignalTrigger;
pub use world::{Vos, VosConfig};
