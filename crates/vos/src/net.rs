//! The virtual network: connections and peer state machines.
//!
//! A [`Peer`] stands in for the remote endpoint of one connection — the
//! HTTP client of §5.2, the game server of §5.4, the request source of
//! Figure 2. Peers run *lazily*: the world pokes them when the program
//! issues a syscall that could observe their traffic. Data they send is
//! stamped with an availability time, so readiness (`poll` saying "not
//! yet") reflects the virtual clock rather than the scheduler's whims —
//! that is precisely the environmental nondeterminism the SYSCALL stream
//! exists to record.

use std::collections::VecDeque;

use crate::clock::Nanos;
use crate::rng::EnvRng;

/// Identifier of a peer/connection within the world.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PeerId(pub u32);

/// What a peer may do when poked.
pub struct PeerCtx<'a> {
    now: Nanos,
    rng: &'a mut EnvRng,
    outgoing: &'a mut VecDeque<(Nanos, Vec<u8>)>,
    close: &'a mut bool,
}

impl PeerCtx<'_> {
    /// Current virtual time.
    #[must_use]
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// The environment's PRNG (independent of the tool's scheduling PRNG).
    pub fn rng(&mut self) -> &mut EnvRng {
        self.rng
    }

    /// Sends `data` to the program, available immediately.
    pub fn send(&mut self, data: impl Into<Vec<u8>>) {
        let now = self.now;
        self.outgoing.push_back((now, data.into()));
    }

    /// Sends `data` to the program, available after `delay` nanoseconds.
    pub fn send_after(&mut self, delay: Nanos, data: impl Into<Vec<u8>>) {
        let at = self.now + delay;
        self.outgoing.push_back((at, data.into()));
    }

    /// Closes the peer's side of the connection (program sees EOF once the
    /// queued data drains).
    pub fn close(&mut self) {
        *self.close = true;
    }
}

/// A remote endpoint's state machine.
///
/// All methods have empty defaults so a peer implements only what it needs.
pub trait Peer: Send {
    /// The connection has been established.
    fn on_connect(&mut self, ctx: &mut PeerCtx<'_>) {
        let _ = ctx;
    }

    /// The program sent `data`.
    fn on_data(&mut self, ctx: &mut PeerCtx<'_>, data: &[u8]) {
        let _ = (ctx, data);
    }

    /// Lazy heartbeat: the program issued a syscall that could observe
    /// this connection. Called at most once per observing syscall.
    fn on_poll(&mut self, ctx: &mut PeerCtx<'_>) {
        let _ = ctx;
    }
}

/// A peer that echoes everything back after a fixed latency.
#[derive(Debug)]
pub struct EchoPeer {
    latency: Nanos,
}

impl EchoPeer {
    /// Echo with the given latency in nanoseconds.
    #[must_use]
    pub fn new(latency: Nanos) -> Self {
        EchoPeer { latency }
    }
}

impl Peer for EchoPeer {
    fn on_data(&mut self, ctx: &mut PeerCtx<'_>, data: &[u8]) {
        ctx.send_after(self.latency, data.to_vec());
    }
}

/// A peer that never speaks — dead-connection behaviour (`poll` timeouts,
/// `EAGAIN` paths).
#[derive(Debug, Default)]
pub struct SilentPeer;

impl Peer for SilentPeer {}

/// The Figure 2 server: pushes `count` fixed-size request buffers at a
/// fixed interval and counts the processed responses it receives back.
#[derive(Debug)]
pub struct RequestSourcePeer {
    remaining: u32,
    size: usize,
    interval: Nanos,
    next_at: Nanos,
    responses: u32,
    seq: u32,
}

impl RequestSourcePeer {
    /// `count` requests of `size` bytes, one every `interval` nanoseconds.
    #[must_use]
    pub fn new(count: u32, size: usize, interval: Nanos) -> Self {
        RequestSourcePeer {
            remaining: count,
            size,
            interval,
            next_at: 0,
            responses: 0,
            seq: 0,
        }
    }

    /// Responses received back so far.
    #[must_use]
    pub fn responses(&self) -> u32 {
        self.responses
    }
}

impl Peer for RequestSourcePeer {
    fn on_connect(&mut self, ctx: &mut PeerCtx<'_>) {
        self.next_at = ctx.now();
    }

    fn on_poll(&mut self, ctx: &mut PeerCtx<'_>) {
        while self.remaining > 0 && self.next_at <= ctx.now() {
            let mut buf = vec![0u8; self.size];
            ctx.rng().fill_bytes(&mut buf);
            // First 4 bytes are a sequence number so tests can check
            // request identity through the program's processing.
            let n = 4.min(buf.len());
            buf[..n].copy_from_slice(&self.seq.to_le_bytes()[..n]);
            self.seq += 1;
            ctx.send(buf);
            self.remaining -= 1;
            self.next_at += self.interval;
        }
    }

    fn on_data(&mut self, _ctx: &mut PeerCtx<'_>, _data: &[u8]) {
        self.responses += 1;
    }
}

/// A peer that plays a fixed script of delayed sends on connect, then
/// closes if asked to.
#[derive(Debug)]
pub struct ScriptedPeer {
    script: Vec<(Nanos, Vec<u8>)>,
    close_after: bool,
}

impl ScriptedPeer {
    /// Sends each `(delay, data)` pair relative to connection time.
    #[must_use]
    pub fn new(script: Vec<(Nanos, Vec<u8>)>) -> Self {
        ScriptedPeer {
            script,
            close_after: false,
        }
    }

    /// As [`ScriptedPeer::new`], closing the connection after the last send.
    #[must_use]
    pub fn closing(script: Vec<(Nanos, Vec<u8>)>) -> Self {
        ScriptedPeer {
            script,
            close_after: true,
        }
    }
}

impl Peer for ScriptedPeer {
    fn on_connect(&mut self, ctx: &mut PeerCtx<'_>) {
        for (delay, data) in self.script.drain(..) {
            ctx.send_after(delay, data);
        }
        if self.close_after {
            ctx.close();
        }
    }
}

/// One live connection between the program and a peer.
pub(crate) struct Connection {
    peer: Box<dyn Peer>,
    to_program: VecDeque<(Nanos, Vec<u8>)>,
    peer_closed: bool,
    pub(crate) program_closed: bool,
    bytes_rx: u64,
    bytes_tx: u64,
}

impl Connection {
    pub(crate) fn new(mut peer: Box<dyn Peer>, now: Nanos, rng: &mut EnvRng) -> Self {
        let mut to_program = VecDeque::new();
        let mut close = false;
        peer.on_connect(&mut PeerCtx {
            now,
            rng,
            outgoing: &mut to_program,
            close: &mut close,
        });
        Connection {
            peer,
            to_program,
            peer_closed: close,
            program_closed: false,
            bytes_rx: 0,
            bytes_tx: 0,
        }
    }

    /// Pokes the peer (lazy world advancement).
    pub(crate) fn drive(&mut self, now: Nanos, rng: &mut EnvRng) {
        if self.peer_closed {
            return;
        }
        let mut close = false;
        self.peer.on_poll(&mut PeerCtx {
            now,
            rng,
            outgoing: &mut self.to_program,
            close: &mut close,
        });
        self.peer_closed |= close;
    }

    /// The program sent `data` to the peer.
    pub(crate) fn program_send(&mut self, now: Nanos, rng: &mut EnvRng, data: &[u8]) -> bool {
        if self.peer_closed {
            return false;
        }
        self.bytes_tx += data.len() as u64;
        let mut close = false;
        self.peer.on_data(
            &mut PeerCtx {
                now,
                rng,
                outgoing: &mut self.to_program,
                close: &mut close,
            },
            data,
        );
        self.peer_closed |= close;
        true
    }

    /// Is data available to the program at `now`?
    pub(crate) fn readable(&self, now: Nanos) -> bool {
        self.to_program.front().is_some_and(|(at, _)| *at <= now)
    }

    /// EOF: peer closed and nothing left to read.
    pub(crate) fn at_eof(&self, now: Nanos) -> bool {
        self.peer_closed && !self.readable(now)
    }

    /// Whether the peer has closed its side.
    pub(crate) fn peer_closed(&self) -> bool {
        self.peer_closed
    }

    /// Reads available bytes into `buf` (stream semantics: spans segments).
    /// Returns bytes read; 0 means nothing available (caller maps to
    /// `EAGAIN` or EOF).
    pub(crate) fn read(&mut self, now: Nanos, buf: &mut [u8]) -> usize {
        let mut filled = 0;
        while filled < buf.len() {
            match self.to_program.front_mut() {
                Some((at, data)) if *at <= now => {
                    let n = (buf.len() - filled).min(data.len());
                    buf[filled..filled + n].copy_from_slice(&data[..n]);
                    filled += n;
                    if n == data.len() {
                        self.to_program.pop_front();
                    } else {
                        data.drain(..n);
                        break;
                    }
                }
                _ => break,
            }
        }
        self.bytes_rx += filled as u64;
        filled
    }

    /// Total bytes the program received / sent on this connection.
    pub(crate) fn traffic(&self) -> (u64, u64) {
        (self.bytes_rx, self.bytes_tx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> EnvRng {
        EnvRng::new(1)
    }

    #[test]
    fn echo_peer_roundtrips_with_latency() {
        let mut r = rng();
        let mut conn = Connection::new(Box::new(EchoPeer::new(100)), 0, &mut r);
        assert!(conn.program_send(0, &mut r, b"hi"));
        assert!(!conn.readable(50), "latency not yet elapsed");
        assert!(conn.readable(100));
        let mut buf = [0u8; 8];
        assert_eq!(conn.read(100, &mut buf), 2);
        assert_eq!(&buf[..2], b"hi");
    }

    #[test]
    fn silent_peer_never_speaks() {
        let mut r = rng();
        let mut conn = Connection::new(Box::new(SilentPeer), 0, &mut r);
        conn.drive(1_000_000_000, &mut r);
        assert!(!conn.readable(1_000_000_000));
        assert!(!conn.at_eof(1_000_000_000));
    }

    #[test]
    fn request_source_emits_on_schedule() {
        let mut r = rng();
        let mut conn = Connection::new(Box::new(RequestSourcePeer::new(3, 10, 100)), 0, &mut r);
        conn.drive(0, &mut r);
        assert!(conn.readable(0), "first request immediate");
        conn.drive(250, &mut r);
        let mut buf = [0u8; 64];
        let n = conn.read(250, &mut buf);
        assert_eq!(n, 30, "three requests of 10 bytes by t=250");
        conn.drive(10_000, &mut r);
        assert!(!conn.readable(10_000), "only 3 requests total");
    }

    #[test]
    fn request_source_sequence_numbers_are_consecutive() {
        let mut r = rng();
        let mut conn = Connection::new(Box::new(RequestSourcePeer::new(2, 8, 1)), 0, &mut r);
        conn.drive(10, &mut r);
        let mut buf = [0u8; 16];
        assert_eq!(conn.read(10, &mut buf), 16);
        assert_eq!(u32::from_le_bytes(buf[0..4].try_into().unwrap()), 0);
        assert_eq!(u32::from_le_bytes(buf[8..12].try_into().unwrap()), 1);
    }

    #[test]
    fn scripted_peer_plays_and_closes() {
        let mut r = rng();
        let mut conn = Connection::new(
            Box::new(ScriptedPeer::closing(vec![
                (0, b"a".to_vec()),
                (10, b"b".to_vec()),
            ])),
            0,
            &mut r,
        );
        assert!(conn.peer_closed());
        assert!(!conn.at_eof(0), "data still queued");
        let mut buf = [0u8; 4];
        assert_eq!(conn.read(0, &mut buf), 1);
        assert_eq!(conn.read(10, &mut buf), 1);
        assert!(conn.at_eof(10), "drained and closed");
    }

    #[test]
    fn send_to_closed_peer_fails() {
        let mut r = rng();
        let mut conn = Connection::new(Box::new(ScriptedPeer::closing(vec![])), 0, &mut r);
        assert!(!conn.program_send(0, &mut r, b"x"));
    }

    #[test]
    fn partial_reads_preserve_stream_order() {
        let mut r = rng();
        let mut conn = Connection::new(
            Box::new(ScriptedPeer::new(vec![
                (0, b"hello".to_vec()),
                (0, b"world".to_vec()),
            ])),
            0,
            &mut r,
        );
        let mut buf = [0u8; 3];
        assert_eq!(conn.read(0, &mut buf), 3);
        assert_eq!(&buf, b"hel");
        let mut rest = [0u8; 10];
        let n = conn.read(0, &mut rest);
        assert_eq!(&rest[..n], b"loworld");
    }

    #[test]
    fn traffic_counters_track_bytes() {
        let mut r = rng();
        let mut conn = Connection::new(Box::new(EchoPeer::new(0)), 0, &mut r);
        conn.program_send(0, &mut r, b"abcd");
        let mut buf = [0u8; 16];
        conn.read(0, &mut buf);
        assert_eq!(conn.traffic(), (4, 4));
    }
}
