//! The environment's own PRNG.
//!
//! Environmental nondeterminism (payload contents, latencies, device
//! readings) must be *independent* of the tool's scheduling PRNG: the whole
//! point of recording syscalls is that their outcomes are not derivable
//! from the tool's seeds. A separate SplitMix64 stream keeps the virtual
//! world deterministic per `VosConfig` seed while remaining opaque to the
//! recorder.

/// SplitMix64: tiny, fast, full-period, and stable across releases (we do
/// not use an external RNG crate here because world determinism for a given
/// seed is part of the crate's contract).
#[derive(Debug, Clone)]
pub struct EnvRng {
    state: u64,
}

impl EnvRng {
    /// Creates a generator from a seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        EnvRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`n` ≥ 1).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n >= 1);
        // Multiply-shift bounded generation; bias is negligible for the
        // world-simulation purposes of this crate.
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// Uniform value in `lo..=hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.below(hi - lo + 1)
    }

    /// A boolean that is `true` with probability `num / den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    /// Fills `buf` with pseudorandom bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = EnvRng::new(7);
        let mut b = EnvRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = EnvRng::new(1);
        let mut b = EnvRng::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_is_in_range() {
        let mut r = EnvRng::new(3);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
        }
        assert_eq!(r.below(1), 0);
    }

    #[test]
    fn range_is_inclusive() {
        let mut r = EnvRng::new(4);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2000 {
            let v = r.range(5, 7);
            assert!((5..=7).contains(&v));
            seen_lo |= v == 5;
            seen_hi |= v == 7;
        }
        assert!(seen_lo && seen_hi, "both endpoints reachable");
        assert_eq!(r.range(9, 9), 9);
    }

    #[test]
    fn chance_extremes() {
        let mut r = EnvRng::new(5);
        for _ in 0..100 {
            assert!(r.chance(1, 1));
            assert!(!r.chance(0, 1));
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = EnvRng::new(6);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(
            buf.iter().any(|&b| b != 0),
            "astronomically unlikely to be all zero"
        );
    }
}
