//! The virtual clock.

use std::time::Instant;

/// Nanoseconds since virtual boot.
pub type Nanos = u64;

/// The world's time source.
///
/// * [`Clock::Physical`] — wall time, measured from construction. Record
///   runs use this: real scheduling pressure shows up as readiness
///   nondeterminism, which is what the SYSCALL stream captures.
/// * [`Clock::Scripted`] — a counter that advances by a fixed step on every
///   query. Tests and replay-determinism checks use this: two executions
///   that issue the same queries observe the same times.
#[derive(Debug)]
pub enum Clock {
    /// Wall-clock time since construction.
    Physical {
        /// The construction instant.
        start: Instant,
    },
    /// Deterministic counter time.
    Scripted {
        /// Current time; advances on each [`Clock::now`] call.
        now: Nanos,
        /// Step added per query.
        step: Nanos,
    },
}

impl Clock {
    /// A physical clock starting now.
    #[must_use]
    pub fn physical() -> Self {
        Clock::Physical {
            start: Instant::now(),
        }
    }

    /// A scripted clock starting at zero with the given step per query.
    #[must_use]
    pub fn scripted(step: Nanos) -> Self {
        Clock::Scripted { now: 0, step }
    }

    /// The current virtual time. Scripted clocks advance by their step.
    pub fn now(&mut self) -> Nanos {
        match self {
            Clock::Physical { start } => start.elapsed().as_nanos() as Nanos,
            Clock::Scripted { now, step } => {
                *now += *step;
                *now
            }
        }
    }

    /// Advances a scripted clock by `delta` without a query (no-op on
    /// physical clocks). Used to model sleeps.
    pub fn advance(&mut self, delta: Nanos) {
        if let Clock::Scripted { now, .. } = self {
            *now += delta;
        }
    }

    /// Whether this clock is deterministic.
    #[must_use]
    pub fn is_scripted(&self) -> bool {
        matches!(self, Clock::Scripted { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripted_clock_is_deterministic() {
        let mut a = Clock::scripted(10);
        let mut b = Clock::scripted(10);
        for _ in 0..5 {
            assert_eq!(a.now(), b.now());
        }
    }

    #[test]
    fn scripted_clock_advances_per_query() {
        let mut c = Clock::scripted(100);
        assert_eq!(c.now(), 100);
        assert_eq!(c.now(), 200);
        c.advance(1000);
        assert_eq!(c.now(), 1300);
    }

    #[test]
    fn physical_clock_is_monotone() {
        let mut c = Clock::physical();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
        assert!(!c.is_scripted());
        c.advance(1_000_000_000);
        assert!(
            c.now() < 1_000_000_000,
            "advance is a no-op on physical clocks"
        );
    }
}
