//! The virtual address allocator.
//!
//! Real programs observe allocator nondeterminism through pointer values
//! (ASLR, allocation order, freelist reuse). The paper's §5.5 shows this is
//! exactly the nondeterminism tsan11rec's sparse recording does *not*
//! capture — SQLite and SpiderMonkey desynchronise on it — while rr records
//! it wholesale. This allocator reproduces that axis:
//!
//! * [`AllocMode::Randomized`] — the base address is derived from the
//!   environment seed *and per-run entropy*, so two record/replay runs see
//!   different pointer values (the SQLite failure mode);
//! * [`AllocMode::Deterministic`] — a fixed base, modelling the paper's
//!   suggested mitigation of swapping in a deterministic allocator;
//! * [`AllocMode::Scripted`] — replays a previously recorded address
//!   stream (what the rr baseline does).

use crate::rng::EnvRng;

/// Allocation address policy.
#[derive(Debug, Clone)]
pub enum AllocMode {
    /// ASLR-like: base differs between runs.
    Randomized {
        /// Per-run entropy (e.g. sampled from wall time at startup).
        entropy: u64,
    },
    /// Fixed base: identical addresses in every run.
    Deterministic,
    /// Replay a recorded address stream; falls back to deterministic
    /// when the stream runs out.
    Scripted {
        /// The recorded addresses, consumed in order.
        addresses: Vec<u64>,
    },
}

const DETERMINISTIC_BASE: u64 = 0x5555_0000_0000;
const ALIGN: u64 = 16;

/// A bump allocator over a virtual address space.
///
/// In randomized mode each allocation also gets a per-allocation jitter
/// gap, modelling freelist/pool nondeterminism: real allocators do not
/// hand out monotone addresses, and programs like SQLite observe that
/// through pointer comparisons (§5.5).
#[derive(Debug)]
pub struct Allocator {
    next: u64,
    jitter: Option<EnvRng>,
    scripted: Option<(Vec<u64>, usize)>,
    /// Every address handed out, in order (the ALLOC stream for
    /// comprehensive recorders).
    log: Vec<u64>,
}

impl Allocator {
    /// Creates an allocator under the given mode and environment seed.
    #[must_use]
    pub fn new(mode: AllocMode, env_seed: u64) -> Self {
        match mode {
            AllocMode::Randomized { entropy } => {
                let mut rng = EnvRng::new(env_seed ^ entropy);
                // A page-aligned base somewhere in a 2^40 region, like mmap
                // under ASLR.
                let base = 0x1000_0000_0000 + (rng.next_u64() % (1 << 40)) / 4096 * 4096;
                Allocator {
                    next: base,
                    jitter: Some(rng),
                    scripted: None,
                    log: Vec::new(),
                }
            }
            AllocMode::Deterministic => Allocator {
                next: DETERMINISTIC_BASE,
                jitter: None,
                scripted: None,
                log: Vec::new(),
            },
            AllocMode::Scripted { addresses } => Allocator {
                next: DETERMINISTIC_BASE,
                jitter: None,
                scripted: Some((addresses, 0)),
                log: Vec::new(),
            },
        }
    }

    /// Allocates `size` bytes; returns the virtual address.
    pub fn alloc(&mut self, size: u64) -> u64 {
        let addr = if let Some((stream, at)) = &mut self.scripted {
            if let Some(&a) = stream.get(*at) {
                *at += 1;
                a
            } else {
                let a = self.next;
                self.next += size.max(1).next_multiple_of(ALIGN);
                a
            }
        } else {
            if let Some(rng) = &mut self.jitter {
                // Freelist/pool placement nondeterminism.
                self.next += rng.below(8) * ALIGN;
            }
            let a = self.next;
            self.next += size.max(1).next_multiple_of(ALIGN);
            a
        };
        self.log.push(addr);
        addr
    }

    /// The addresses handed out so far, in order.
    #[must_use]
    pub fn log(&self) -> &[u64] {
        &self.log
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_mode_is_reproducible() {
        let mut a = Allocator::new(AllocMode::Deterministic, 1);
        let mut b = Allocator::new(AllocMode::Deterministic, 999);
        for size in [8, 100, 1, 4096] {
            assert_eq!(a.alloc(size), b.alloc(size));
        }
    }

    #[test]
    fn randomized_mode_depends_on_entropy() {
        let mut a = Allocator::new(AllocMode::Randomized { entropy: 1 }, 42);
        let mut b = Allocator::new(AllocMode::Randomized { entropy: 2 }, 42);
        assert_ne!(a.alloc(8), b.alloc(8), "different runs, different bases");
    }

    #[test]
    fn randomized_mode_same_entropy_reproduces() {
        let mut a = Allocator::new(AllocMode::Randomized { entropy: 5 }, 42);
        let mut b = Allocator::new(AllocMode::Randomized { entropy: 5 }, 42);
        assert_eq!(a.alloc(8), b.alloc(8));
    }

    #[test]
    fn addresses_are_aligned_and_disjoint() {
        let mut a = Allocator::new(AllocMode::Deterministic, 0);
        let x = a.alloc(10);
        let y = a.alloc(1);
        let z = a.alloc(100);
        assert_eq!(x % ALIGN, 0);
        assert!(y >= x + 10);
        assert!(z > y);
    }

    #[test]
    fn scripted_mode_replays_then_falls_back() {
        let mut rec = Allocator::new(AllocMode::Randomized { entropy: 3 }, 42);
        let a1 = rec.alloc(8);
        let a2 = rec.alloc(8);
        let mut rep = Allocator::new(
            AllocMode::Scripted {
                addresses: rec.log().to_vec(),
            },
            42,
        );
        assert_eq!(rep.alloc(8), a1);
        assert_eq!(rep.alloc(8), a2);
        // Stream exhausted: still functional.
        let extra = rep.alloc(8);
        assert!(extra >= DETERMINISTIC_BASE);
    }

    #[test]
    fn log_records_every_allocation() {
        let mut a = Allocator::new(AllocMode::Deterministic, 0);
        let x = a.alloc(8);
        let y = a.alloc(8);
        assert_eq!(a.log(), &[x, y]);
    }
}
