//! Virtual devices driven through `ioctl`.
//!
//! The §5.4 case studies hinge on the NVIDIA OpenGL module: a closed,
//! proprietary device whose `ioctl` traffic neither rr nor tsan11rec can
//! meaningfully record. tsan11rec's sparse answer is to *ignore* these
//! ioctls during recording and let them run natively during replay; rr has
//! no such option and simply cannot handle the games.
//!
//! [`DeviceKind::OpaqueGpu`] reproduces that device: its responses depend
//! on per-run entropy (so recording them would be required for faithful
//! replay) and it is flagged `opaque`, which the comprehensive rr-baseline
//! recorder treats as "unsupported — abort recording", matching rr's real
//! behaviour.

use crate::rng::EnvRng;

/// `ioctl` request: submit a rendered frame to the GPU.
pub const GPU_SUBMIT_FRAME: u64 = 0x4701;
/// `ioctl` request: query whether vsync has occurred.
pub const GPU_GET_VSYNC: u64 = 0x4702;
/// `ioctl` request: query free device memory.
pub const GPU_QUERY_MEM: u64 = 0x4703;
/// `ioctl` request understood by the terminal device: window size.
pub const TERM_GET_WINSZ: u64 = 0x5413; // TIOCGWINSZ

/// What kind of device an fd points at.
#[derive(Debug)]
pub enum DeviceKind {
    /// A proprietary GPU: stateful, entropy-dependent, *opaque* —
    /// comprehensive recorders must refuse it.
    OpaqueGpu {
        /// Frames submitted so far.
        frames: u64,
        /// Device-private entropy stream.
        rng: EnvRng,
    },
    /// A terminal: answers window-size queries deterministically.
    Terminal,
}

impl DeviceKind {
    /// Whether a comprehensive (rr-style) recorder can capture this
    /// device's ioctl traffic.
    #[must_use]
    pub fn is_opaque(&self) -> bool {
        matches!(self, DeviceKind::OpaqueGpu { .. })
    }

    /// Handles an ioctl request, filling `arg` and returning the outcome.
    pub fn ioctl(&mut self, request: u64, arg: &mut [u8]) -> IoctlOutcome {
        match self {
            DeviceKind::OpaqueGpu { frames, rng } => match request {
                GPU_SUBMIT_FRAME => {
                    *frames += 1;
                    // The device returns an opaque fence id the driver
                    // would wait on; it depends on device-private state.
                    let fence = rng.next_u64() ^ *frames;
                    write_u64(arg, fence);
                    IoctlOutcome::Ok(0)
                }
                GPU_GET_VSYNC => {
                    // Vsync arrival is genuinely nondeterministic.
                    let ready = rng.chance(3, 4);
                    write_u64(arg, ready as u64);
                    IoctlOutcome::Ok(0)
                }
                GPU_QUERY_MEM => {
                    let free = 512 * 1024 * 1024 - rng.below(1024 * 1024);
                    write_u64(arg, free);
                    IoctlOutcome::Ok(0)
                }
                _ => IoctlOutcome::UnknownRequest,
            },
            DeviceKind::Terminal => match request {
                TERM_GET_WINSZ => {
                    if arg.len() >= 4 {
                        arg[0] = 80; // cols
                        arg[1] = 0;
                        arg[2] = 24; // rows
                        arg[3] = 0;
                    }
                    IoctlOutcome::Ok(0)
                }
                _ => IoctlOutcome::UnknownRequest,
            },
        }
    }

    /// Frames submitted (GPU only; 0 otherwise). Used by the game workload
    /// to compute frame rates.
    #[must_use]
    pub fn frames(&self) -> u64 {
        match self {
            DeviceKind::OpaqueGpu { frames, .. } => *frames,
            DeviceKind::Terminal => 0,
        }
    }
}

/// Result of a device ioctl.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoctlOutcome {
    /// Success with a return value.
    Ok(i64),
    /// The device does not understand the request (`ENOTTY`).
    UnknownRequest,
}

fn write_u64(arg: &mut [u8], v: u64) {
    let bytes = v.to_le_bytes();
    let n = arg.len().min(8);
    arg[..n].copy_from_slice(&bytes[..n]);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpu(seed: u64) -> DeviceKind {
        DeviceKind::OpaqueGpu {
            frames: 0,
            rng: EnvRng::new(seed),
        }
    }

    #[test]
    fn gpu_is_opaque_terminal_is_not() {
        assert!(gpu(1).is_opaque());
        assert!(!DeviceKind::Terminal.is_opaque());
    }

    #[test]
    fn submit_frame_counts_and_returns_fence() {
        let mut g = gpu(1);
        let mut arg = [0u8; 8];
        assert_eq!(g.ioctl(GPU_SUBMIT_FRAME, &mut arg), IoctlOutcome::Ok(0));
        assert_eq!(g.frames(), 1);
        let fence1 = u64::from_le_bytes(arg);
        g.ioctl(GPU_SUBMIT_FRAME, &mut arg);
        let fence2 = u64::from_le_bytes(arg);
        assert_ne!(fence1, fence2);
        assert_eq!(g.frames(), 2);
    }

    #[test]
    fn gpu_responses_depend_on_entropy() {
        let mut a = gpu(1);
        let mut b = gpu(2);
        let mut arg_a = [0u8; 8];
        let mut arg_b = [0u8; 8];
        a.ioctl(GPU_SUBMIT_FRAME, &mut arg_a);
        b.ioctl(GPU_SUBMIT_FRAME, &mut arg_b);
        assert_ne!(arg_a, arg_b, "device state is per-run entropy");
    }

    #[test]
    fn vsync_fills_flag() {
        let mut g = gpu(3);
        let mut arg = [0u8; 8];
        assert_eq!(g.ioctl(GPU_GET_VSYNC, &mut arg), IoctlOutcome::Ok(0));
        assert!(arg[0] <= 1);
    }

    #[test]
    fn unknown_request_is_rejected() {
        let mut g = gpu(1);
        assert_eq!(g.ioctl(0xdead, &mut []), IoctlOutcome::UnknownRequest);
        let mut t = DeviceKind::Terminal;
        assert_eq!(t.ioctl(0xdead, &mut []), IoctlOutcome::UnknownRequest);
    }

    #[test]
    fn terminal_winsize() {
        let mut t = DeviceKind::Terminal;
        let mut arg = [0u8; 4];
        assert_eq!(t.ioctl(TERM_GET_WINSZ, &mut arg), IoctlOutcome::Ok(0));
        assert_eq!(arg, [80, 0, 24, 0]);
    }

    #[test]
    fn short_arg_buffers_are_tolerated() {
        let mut g = gpu(1);
        let mut arg = [0u8; 3];
        assert_eq!(g.ioctl(GPU_SUBMIT_FRAME, &mut arg), IoctlOutcome::Ok(0));
    }
}
