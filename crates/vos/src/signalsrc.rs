//! Asynchronous signal sources.
//!
//! The paper's Figure 2 ends via an asynchronous signal (the handler sets
//! `quit`). In the virtual OS, signals are *scheduled*: a trigger fires the
//! signal once its condition is met, and the embedding tool collects due
//! signals at its critical-section boundaries (the only points at which the
//! paper's model lets a signal become visible anyway — §4.3: a signal
//! floats to the end of the preceding `Tick()`).

use crate::clock::Nanos;

/// When a scheduled signal fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SignalTrigger {
    /// After the virtual clock passes this time.
    AtTime(Nanos),
    /// After the program has issued this many syscalls (deterministic
    /// trigger for tests).
    AfterSyscalls(u64),
}

#[derive(Debug)]
pub(crate) struct PendingSignal {
    pub signo: i32,
    pub trigger: SignalTrigger,
}

/// The set of scheduled-but-not-yet-fired signals.
#[derive(Debug, Default)]
pub(crate) struct SignalSource {
    pending: Vec<PendingSignal>,
}

impl SignalSource {
    pub(crate) fn schedule(&mut self, signo: i32, trigger: SignalTrigger) {
        self.pending.push(PendingSignal { signo, trigger });
    }

    /// Removes and returns all signals whose trigger has fired.
    pub(crate) fn take_due(&mut self, now: Nanos, syscall_count: u64) -> Vec<i32> {
        let mut due = Vec::new();
        self.pending.retain(|p| {
            let fired = match p.trigger {
                SignalTrigger::AtTime(t) => now >= t,
                SignalTrigger::AfterSyscalls(n) => syscall_count >= n,
            };
            if fired {
                due.push(p.signo);
            }
            !fired
        });
        due
    }

    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn pending_count(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_trigger_fires_at_time() {
        let mut src = SignalSource::default();
        src.schedule(15, SignalTrigger::AtTime(100));
        assert!(src.take_due(99, 0).is_empty());
        assert_eq!(src.take_due(100, 0), vec![15]);
        assert!(src.take_due(1000, 0).is_empty(), "fires once");
    }

    #[test]
    fn syscall_trigger_fires_on_count() {
        let mut src = SignalSource::default();
        src.schedule(2, SignalTrigger::AfterSyscalls(5));
        assert!(src.take_due(0, 4).is_empty());
        assert_eq!(src.take_due(0, 5), vec![2]);
    }

    #[test]
    fn multiple_signals_fire_together() {
        let mut src = SignalSource::default();
        src.schedule(1, SignalTrigger::AtTime(10));
        src.schedule(2, SignalTrigger::AtTime(10));
        src.schedule(3, SignalTrigger::AtTime(99));
        assert_eq!(src.take_due(10, 0), vec![1, 2]);
        assert_eq!(src.pending_count(), 1);
    }
}
