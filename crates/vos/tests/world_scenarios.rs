//! Multi-component vOS scenarios: several peers, pipes and devices
//! interacting the way the workloads combine them.

use srr_vos::{
    DeviceKind, EchoPeer, Errno, Fd, PollFd, RequestSourcePeer, ScriptedPeer, SignalTrigger,
    SilentPeer, Vos, VosConfig,
};

fn det(seed: u64) -> Vos {
    Vos::new(VosConfig::deterministic(seed))
}

#[test]
fn mixed_fd_poll_scenario() {
    let vos = det(1);
    let echo = vos.connect(Box::new(EchoPeer::new(0)));
    let silent = vos.connect(Box::new(SilentPeer));
    let (pr, pw) = vos.pipe();
    vos.add_file("/cfg", b"x".to_vec());
    let file = Fd(vos.open("/cfg", false).unwrap() as i32);

    vos.send(echo, b"hello").unwrap();
    vos.write(pw, b"pipe!").unwrap();

    let mut fds = [
        PollFd::readable(echo),
        PollFd::readable(silent),
        PollFd::readable(pr),
        PollFd::readable(file),
    ];
    let ready = vos.poll(&mut fds).unwrap();
    assert_eq!(ready, 3, "echo, pipe and file are readable; silent is not");
    assert!(fds[0].revents.readable);
    assert!(!fds[1].revents.any());
    assert!(fds[2].revents.readable);
    assert!(fds[3].revents.readable, "files are always ready");
}

#[test]
fn request_source_full_conversation() {
    let vos = det(2);
    let fd = vos.connect(Box::new(RequestSourcePeer::new(3, 16, 0)));
    let mut served = 0;
    let mut guard = 0;
    while served < 3 && guard < 100 {
        guard += 1;
        let mut fds = [PollFd::readable(fd)];
        let ready = vos.poll(&mut fds).unwrap();
        if ready > 0 && fds[0].revents.readable {
            let mut buf = [0u8; 16];
            let n = vos.recv(fd, &mut buf).unwrap();
            assert_eq!(n, 16);
            vos.send(fd, &buf[..n as usize]).unwrap();
            served += 1;
        }
    }
    assert_eq!(served, 3);
    let sums = vos.peer_summaries();
    assert_eq!(sums[0].bytes_rx, 48);
    assert_eq!(sums[0].bytes_tx, 48);
}

#[test]
fn two_listeners_are_independent() {
    let vos = det(3);
    vos.install_listener(80, vec![0], |_, _| {
        Box::new(ScriptedPeer::new(vec![(0, b"web".to_vec())]))
    });
    vos.install_listener(443, vec![0], |_, _| {
        Box::new(ScriptedPeer::new(vec![(0, b"tls".to_vec())]))
    });
    let web = Fd(vos.bind(80).unwrap() as i32);
    let tls = Fd(vos.bind(443).unwrap() as i32);
    let cw = Fd(vos.accept(web).unwrap() as i32);
    let ct = Fd(vos.accept(tls).unwrap() as i32);
    let mut buf = [0u8; 8];
    let n = vos.recv(cw, &mut buf).unwrap() as usize;
    assert_eq!(&buf[..n], b"web");
    let n = vos.recv(ct, &mut buf).unwrap() as usize;
    assert_eq!(&buf[..n], b"tls");
}

#[test]
fn device_and_socket_coexist() {
    let vos = det(4);
    vos.install_gpu();
    vos.install_device("/dev/tty0", DeviceKind::Terminal);
    let gpu = Fd(vos.open("/dev/gpu", false).unwrap() as i32);
    let tty = Fd(vos.open("/dev/tty0", false).unwrap() as i32);
    assert!(vos.fd_is_opaque_device(gpu));
    assert!(!vos.fd_is_opaque_device(tty), "terminals are recordable");

    let mut arg = [0u8; 8];
    vos.ioctl(gpu, srr_vos::GPU_SUBMIT_FRAME, &mut arg).unwrap();
    vos.ioctl(gpu, srr_vos::GPU_SUBMIT_FRAME, &mut arg).unwrap();
    assert_eq!(vos.gpu_frames(), 2);
}

#[test]
fn signals_and_syscall_counting_interact() {
    let vos = det(5);
    vos.schedule_signal(2, SignalTrigger::AfterSyscalls(3));
    vos.schedule_signal(15, SignalTrigger::AfterSyscalls(5));
    for _ in 0..3 {
        vos.clock_gettime().unwrap();
    }
    assert_eq!(vos.take_due_signals(), vec![2]);
    vos.clock_gettime().unwrap();
    vos.clock_gettime().unwrap();
    assert_eq!(vos.take_due_signals(), vec![15]);
}

#[test]
fn eof_and_errors_propagate_through_layers() {
    let vos = det(6);
    // Peer closes after sending one burst.
    let fd = vos.connect(Box::new(ScriptedPeer::closing(vec![(0, b"bye".to_vec())])));
    let mut buf = [0u8; 8];
    assert_eq!(vos.recv(fd, &mut buf), Ok(3));
    assert_eq!(vos.recv(fd, &mut buf), Ok(0), "EOF after drain");
    assert_eq!(vos.send(fd, b"x"), Err(Errno::EPIPE));
    vos.close(fd).unwrap();
    assert_eq!(vos.recv(fd, &mut buf), Err(Errno::EBADF));
}

#[test]
fn deterministic_worlds_replay_identically() {
    // Two identically-seeded worlds produce identical traffic —
    // the foundation of test determinism.
    let run = |seed: u64| -> Vec<u8> {
        let vos = det(seed);
        let fd = vos.connect(Box::new(RequestSourcePeer::new(2, 32, 100)));
        let mut out = Vec::new();
        for _ in 0..50 {
            let mut buf = [0u8; 32];
            if let Ok(n) = vos.recv(fd, &mut buf) {
                out.extend_from_slice(&buf[..n as usize]);
            }
        }
        out
    };
    assert_eq!(run(7), run(7));
    assert_ne!(run(7), run(8), "different seeds, different payloads");
}

#[test]
fn strace_is_complete_and_ordered() {
    let vos = Vos::new(VosConfig::deterministic(9).with_strace());
    let (pr, pw) = vos.pipe();
    vos.write(pw, b"abc").unwrap();
    let mut buf = [0u8; 4];
    vos.read(pr, &mut buf).unwrap();
    vos.close(pr).unwrap();
    let log = vos.take_strace();
    let kinds: Vec<&str> = log
        .iter()
        .map(|l| l.split('(').next().expect("kind"))
        .collect();
    assert_eq!(kinds, vec!["pipe", "write", "read", "close"]);
}
