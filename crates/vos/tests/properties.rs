//! Property-based tests for the vOS primitives against simple oracles.

use proptest::prelude::*;
use srr_vos::{AllocMode, Allocator, EchoPeer, Errno, Fd, Vos, VosConfig};

proptest! {
    /// A pipe is a FIFO byte queue: any interleaving of writes and reads
    /// observes exactly the written byte stream, in order.
    #[test]
    fn pipe_is_fifo(ops in proptest::collection::vec(
        prop_oneof![
            proptest::collection::vec(any::<u8>(), 1..20).prop_map(Some), // write chunk
            Just(None),                                                   // read attempt
        ],
        0..60,
    )) {
        let vos = Vos::new(VosConfig::deterministic(1));
        let (pr, pw) = vos.pipe();
        let mut oracle: Vec<u8> = Vec::new();
        let mut read_back: Vec<u8> = Vec::new();
        let mut written: Vec<u8> = Vec::new();
        for op in ops {
            match op {
                Some(chunk) => {
                    prop_assert_eq!(vos.write(pw, &chunk), Ok(chunk.len() as i64));
                    oracle.extend_from_slice(&chunk);
                    written.extend_from_slice(&chunk);
                }
                None => {
                    let mut buf = [0u8; 7];
                    match vos.read(pr, &mut buf) {
                        Ok(n) => read_back.extend_from_slice(&buf[..n as usize]),
                        Err(Errno::EAGAIN) => prop_assert!(read_back.len() == oracle.len()),
                        Err(e) => prop_assert!(false, "unexpected errno {e}"),
                    }
                }
            }
        }
        // Drain what remains.
        loop {
            let mut buf = [0u8; 64];
            match vos.read(pr, &mut buf) {
                Ok(n) if n > 0 => read_back.extend_from_slice(&buf[..n as usize]),
                _ => break,
            }
        }
        prop_assert_eq!(read_back, written);
    }

    /// The allocator never hands out overlapping regions, in any mode.
    #[test]
    fn allocations_never_overlap(
        sizes in proptest::collection::vec(1u64..512, 1..40),
        entropy in any::<u64>(),
        mode_pick in 0u8..2,
    ) {
        let mode = match mode_pick {
            0 => AllocMode::Deterministic,
            _ => AllocMode::Randomized { entropy },
        };
        let mut a = Allocator::new(mode, 42);
        let mut regions: Vec<(u64, u64)> = Vec::new();
        for &size in &sizes {
            let addr = a.alloc(size);
            for &(start, len) in &regions {
                let disjoint = addr + size <= start || start + len <= addr;
                prop_assert!(disjoint, "{addr:#x}+{size} overlaps {start:#x}+{len}");
            }
            regions.push((addr, size));
        }
        prop_assert_eq!(a.log().len(), sizes.len());
    }

    /// Echoed traffic is identity: whatever the program sends on an echo
    /// connection comes back byte-for-byte (after enough time).
    #[test]
    fn echo_roundtrip_identity(chunks in proptest::collection::vec(
        proptest::collection::vec(any::<u8>(), 1..50),
        1..12,
    )) {
        let vos = Vos::new(VosConfig::deterministic(5));
        let fd = vos.connect(Box::new(EchoPeer::new(0)));
        let mut sent = Vec::new();
        for c in &chunks {
            prop_assert!(vos.send(fd, c).is_ok());
            sent.extend_from_slice(c);
        }
        let mut got = Vec::new();
        let mut buf = [0u8; 64];
        loop {
            match vos.recv(fd, &mut buf) {
                Ok(n) if n > 0 => got.extend_from_slice(&buf[..n as usize]),
                _ => break,
            }
        }
        prop_assert_eq!(got, sent);
    }

    /// File write-then-read at tracked offsets is consistent.
    #[test]
    fn file_offsets_are_sequential(chunks in proptest::collection::vec(
        proptest::collection::vec(any::<u8>(), 1..30),
        1..10,
    )) {
        let vos = Vos::new(VosConfig::deterministic(7));
        let wfd = Fd(vos.open("/f", true).unwrap() as i32);
        let mut all = Vec::new();
        for c in &chunks {
            vos.write(wfd, c).unwrap();
            all.extend_from_slice(c);
        }
        let rfd = Fd(vos.open("/f", false).unwrap() as i32);
        let mut got = vec![0u8; all.len()];
        let mut at = 0;
        while at < got.len() {
            let n = vos.read(rfd, &mut got[at..]).unwrap() as usize;
            prop_assert!(n > 0);
            at += n;
        }
        prop_assert_eq!(got, all);
    }
}
