//! Differential property test: the FastTrack shadow cell must agree with a
//! naive full-history race oracle on whether *any* race exists on a
//! location, over random access/synchronization interleavings.

use proptest::prelude::*;
use srr_racedet::{AccessKind, RaceDetector};
use srr_vclock::VectorClock;

const THREADS: usize = 3;

#[derive(Debug, Clone)]
enum Step {
    /// Thread `tid` accesses the location.
    Access { tid: usize, kind: AccessKind },
    /// `from`'s clock is joined into `to` (a synchronizes-with edge).
    Sync { from: usize, to: usize },
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (
            0usize..THREADS,
            prop_oneof![Just(AccessKind::Read), Just(AccessKind::Write)]
        )
            .prop_map(|(tid, kind)| Step::Access { tid, kind }),
        (0usize..THREADS, 0usize..THREADS).prop_map(|(from, to)| Step::Sync { from, to }),
    ]
}

/// Naive oracle: remember every access with its full clock; a race exists
/// if any two accesses by different threads conflict and are unordered.
fn oracle_has_race(steps: &[Step]) -> bool {
    let mut clocks: Vec<VectorClock> = (0..THREADS)
        .map(|t| {
            let mut c = VectorClock::new();
            c.set(t, 1);
            c
        })
        .collect();
    let mut history: Vec<(usize, VectorClock, AccessKind)> = Vec::new();
    let mut racy = false;
    for step in steps {
        match step {
            Step::Access { tid, kind } => {
                clocks[*tid].tick(*tid);
                let now = clocks[*tid].clone();
                for (ptid, pclock, pkind) in &history {
                    let conflict = *kind == AccessKind::Write || *pkind == AccessKind::Write;
                    if *ptid != *tid && conflict && !pclock.le(&now) {
                        racy = true;
                    }
                }
                history.push((*tid, now, *kind));
            }
            Step::Sync { from, to } => {
                if from != to {
                    let c = clocks[*from].clone();
                    clocks[*to].join(&c);
                }
            }
        }
    }
    racy
}

/// The detector under test, run over the same steps.
fn fasttrack_has_race(steps: &[Step]) -> bool {
    let mut det = RaceDetector::new();
    let loc = det.register_location("x");
    let mut clocks: Vec<VectorClock> = (0..THREADS)
        .map(|t| {
            let mut c = VectorClock::new();
            c.set(t, 1);
            c
        })
        .collect();
    for step in steps {
        match step {
            Step::Access { tid, kind } => {
                clocks[*tid].tick(*tid);
                let c = clocks[*tid].clone();
                det.on_access(loc, *tid, &c, *kind);
            }
            Step::Sync { from, to } => {
                if from != to {
                    let c = clocks[*from].clone();
                    clocks[*to].join(&c);
                }
            }
        }
    }
    det.race_count() > 0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// FastTrack never reports a race the oracle does not see
    /// (no false positives).
    #[test]
    fn no_false_positives(steps in proptest::collection::vec(step_strategy(), 0..30)) {
        if fasttrack_has_race(&steps) {
            prop_assert!(oracle_has_race(&steps), "false positive on {steps:?}");
        }
    }

    /// FastTrack detects *some* race whenever the most recent conflicting
    /// pair races. (FastTrack is complete for "is the trace racy" on a
    /// single location except for read histories erased by an ordered
    /// write; we check the standard FastTrack guarantee: the first racy
    /// access pair in program order is caught.)
    #[test]
    fn first_race_is_caught(steps in proptest::collection::vec(step_strategy(), 0..30)) {
        // Replay prefixes: the oracle's first racy prefix must also be racy
        // for FastTrack at that same prefix.
        for n in 0..=steps.len() {
            let prefix = &steps[..n];
            if oracle_has_race(prefix) {
                prop_assert!(fasttrack_has_race(prefix),
                    "oracle saw first race in {prefix:?} but FastTrack missed it");
                break;
            }
        }
    }
}
