//! FastTrack-style dynamic data-race detection over shadow memory.
//!
//! This crate reproduces the race-detection substrate that tsan11rec
//! inherits from tsan/tsan11: every *plain* (non-atomic) access to a
//! potentially shared location is checked against the location's shadow
//! state using the accessing thread's vector clock. Two accesses race when
//! they are performed by different threads, at least one is a write, and
//! neither happens-before the other.
//!
//! The algorithm follows FastTrack (Flanagan & Freund, PLDI 2009):
//!
//! * a location's **write history** is a single [`Epoch`] — write-write
//!   races make multiple concurrent "last writes" impossible to miss;
//! * a location's **read history** adaptively switches between a single
//!   epoch (same-thread or ordered reads: the overwhelmingly common case)
//!   and a full vector clock (genuinely concurrent readers).
//!
//! Detected races are surfaced as [`RaceReport`]s through a [`RaceSink`].
//! Reporting and detection are separated because the paper's evaluation
//! (§5.2) distinguishes "race checking on, reports off" from full
//! reporting — report materialization has measurable cost on racy programs.
//!
//! # Example
//!
//! ```
//! use srr_racedet::{AccessKind, RaceDetector};
//! use srr_vclock::VectorClock;
//!
//! let mut det = RaceDetector::new();
//! let loc = det.register_location("counter");
//!
//! let mut t0 = VectorClock::new();
//! let mut t1 = VectorClock::new();
//! t0.tick(0);
//! t1.tick(1);
//!
//! det.on_access(loc, 0, &t0, AccessKind::Write);
//! det.on_access(loc, 1, &t1, AccessKind::Write); // unordered: a race
//! assert_eq!(det.race_count(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

use srr_vclock::{Epoch, TidIndex, VectorClock};

/// Whether an access reads or writes the location.
///
/// `Read < Write` (declaration order) — [`RaceSignature`] relies on the
/// ordering to normalize unordered access-kind pairs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AccessKind {
    /// A plain load.
    Read,
    /// A plain store.
    Write,
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AccessKind::Read => "read",
            AccessKind::Write => "write",
        })
    }
}

/// Identifier of a registered shared location.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LocationId(u32);

impl LocationId {
    /// The raw index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The read history of a shadow cell: an epoch in the common case, a full
/// vector clock once concurrent readers are seen ("the FastTrack switch").
#[derive(Clone, Debug)]
enum ReadState {
    Epoch(Epoch),
    Clock(VectorClock),
}

/// Shadow state for one shared location.
#[derive(Clone, Debug)]
pub struct ShadowCell {
    write: Epoch,
    read: ReadState,
}

impl Default for ShadowCell {
    fn default() -> Self {
        ShadowCell::new()
    }
}

impl ShadowCell {
    /// A cell with no recorded accesses.
    #[must_use]
    pub fn new() -> Self {
        ShadowCell {
            write: Epoch::ZERO,
            read: ReadState::Epoch(Epoch::ZERO),
        }
    }

    /// Records a read by `tid` at `clock`; returns the racing prior write's
    /// epoch if the read races.
    pub fn on_read(&mut self, tid: TidIndex, clock: &VectorClock) -> Option<Epoch> {
        let race = (!self.write.le(clock) && self.write.tid() != tid).then_some(self.write);
        let me = clock.epoch(tid);
        match &mut self.read {
            ReadState::Epoch(e) => {
                if e.tid() == tid || e.le(clock) {
                    *e = me;
                } else {
                    // Concurrent readers: inflate to a clock.
                    let mut vc = VectorClock::new();
                    vc.set(e.tid(), e.clock());
                    vc.set(tid, me.clock());
                    self.read = ReadState::Clock(vc);
                }
            }
            ReadState::Clock(vc) => vc.set(tid, me.clock()),
        }
        race
    }

    /// Records a write by `tid` at `clock`; returns the epoch of a racing
    /// prior access (write preferred over read) if one exists.
    pub fn on_write(&mut self, tid: TidIndex, clock: &VectorClock) -> Option<RacyPrior> {
        let mut racy = None;
        if !self.write.le(clock) && self.write.tid() != tid {
            racy = Some(RacyPrior {
                epoch: self.write,
                kind: AccessKind::Write,
            });
        }
        if racy.is_none() {
            match &self.read {
                ReadState::Epoch(e) => {
                    if !e.le(clock) && e.tid() != tid {
                        racy = Some(RacyPrior {
                            epoch: *e,
                            kind: AccessKind::Read,
                        });
                    }
                }
                ReadState::Clock(vc) => {
                    for (rt, rc) in vc.iter_nonzero() {
                        if rt != tid && rc > clock.get(rt) {
                            racy = Some(RacyPrior {
                                epoch: Epoch::new(rt, rc),
                                kind: AccessKind::Read,
                            });
                            break;
                        }
                    }
                }
            }
        }
        self.write = clock.epoch(tid);
        // FastTrack: a write resets the read history (any read race was
        // already reported above).
        self.read = ReadState::Epoch(Epoch::ZERO);
        racy
    }
}

/// The racing prior access discovered by a write check.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RacyPrior {
    /// Epoch of the earlier conflicting access.
    pub epoch: Epoch,
    /// Whether that access was a read or a write.
    pub kind: AccessKind,
}

/// A fully-described data race.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RaceReport {
    /// The shared location involved.
    pub location: LocationId,
    /// Human-readable label the location was registered with.
    pub label: String,
    /// The earlier access.
    pub prior_epoch: Epoch,
    /// Kind of the earlier access.
    pub prior_kind: AccessKind,
    /// The current (racing) access's thread.
    pub current_tid: TidIndex,
    /// Kind of the current access.
    pub current_kind: AccessKind,
}

impl RaceReport {
    /// The report's corpus-stable identity: the detector's
    /// `(location, pair, kind)` dedup key normalized for cross-run
    /// comparison. Locations travel by registration label (raw
    /// [`LocationId`]s are per-run), the thread pair is unordered, and so
    /// is the access-kind pair — a read racing a prior write and a write
    /// racing a prior read at the same site are the same bug.
    #[must_use]
    pub fn signature(&self) -> RaceSignature {
        let (a, b) = (self.prior_epoch.tid(), self.current_tid);
        let (ka, kb) = (self.prior_kind, self.current_kind);
        RaceSignature {
            label: self.label.clone(),
            tids: (a.min(b), a.max(b)),
            kinds: (ka.min(kb), ka.max(kb)),
        }
    }
}

impl fmt::Display for RaceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "data race on `{}`: {} by thread {} races with prior {} at {}",
            self.label, self.current_kind, self.current_tid, self.prior_kind, self.prior_epoch
        )
    }
}

/// Normalized cross-run identity of a data race (see
/// [`RaceReport::signature`]). Ordered and hashable so signature sets
/// from different runs, seeds, and machines can be compared directly;
/// the exploration corpus generalizes this key to deadlocks and desyncs.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RaceSignature {
    /// Label the location was registered with.
    pub label: String,
    /// Racing thread pair, normalized `min ≤ max`.
    pub tids: (TidIndex, TidIndex),
    /// Access kinds of the two sides, normalized `Read` before `Write`.
    pub kinds: (AccessKind, AccessKind),
}

impl RaceSignature {
    /// Compact single-token key: `label|t0,t1|rw` with `r`/`w` for the
    /// normalized kinds.
    #[must_use]
    pub fn key(&self) -> String {
        let k = |kind: AccessKind| match kind {
            AccessKind::Read => 'r',
            AccessKind::Write => 'w',
        };
        format!(
            "{}|{},{}|{}{}",
            self.label,
            self.tids.0,
            self.tids.1,
            k(self.kinds.0),
            k(self.kinds.1)
        )
    }
}

impl fmt::Display for RaceSignature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.key())
    }
}

/// Consumer of race reports.
///
/// tsan11rec hands the tool's report aggregator in here; tests use
/// [`CollectSink`].
pub trait RaceSink {
    /// Called once per detected race (deduplication is the detector's job).
    fn report(&mut self, report: RaceReport);
}

/// A [`RaceSink`] that stores every report.
#[derive(Debug, Default)]
pub struct CollectSink {
    /// The collected reports, in detection order.
    pub reports: Vec<RaceReport>,
}

impl RaceSink for CollectSink {
    fn report(&mut self, report: RaceReport) {
        self.reports.push(report);
    }
}

/// The race detector: a registry of shadow cells plus dedup and counting.
///
/// Races are counted always; full [`RaceReport`]s are materialized only when
/// reporting is enabled (the default) — mirroring the paper's
/// "Race reports" vs "No reports" configurations.
#[derive(Debug)]
pub struct RaceDetector {
    cells: Vec<ShadowCell>,
    labels: Vec<String>,
    /// Dedup key: (location, unordered thread pair, current access kind).
    seen: std::collections::HashSet<(u32, TidIndex, TidIndex, AccessKind)>,
    races: u64,
    suppressed: u64,
    reporting_enabled: bool,
    reports: Vec<RaceReport>,
    /// Pair-targeted checking: `(label, tid, tid)` armed by witness
    /// replays; [`RaceDetector::target_hit`] reports whether the detector
    /// fired there (dedup and reporting notwithstanding).
    target: Option<(String, TidIndex, TidIndex)>,
    target_hit: bool,
}

impl Default for RaceDetector {
    fn default() -> Self {
        RaceDetector::new()
    }
}

impl RaceDetector {
    /// Creates an empty detector with reporting enabled.
    #[must_use]
    pub fn new() -> Self {
        RaceDetector {
            cells: Vec::new(),
            labels: Vec::new(),
            seen: std::collections::HashSet::new(),
            races: 0,
            suppressed: 0,
            reporting_enabled: true,
            reports: Vec::new(),
            target: None,
            target_hit: false,
        }
    }

    /// Enables or disables report materialization (detection continues).
    pub fn set_reporting(&mut self, enabled: bool) {
        self.reporting_enabled = enabled;
    }

    /// Registers a shared location under a diagnostic label.
    pub fn register_location(&mut self, label: impl Into<String>) -> LocationId {
        let id = LocationId(self.cells.len() as u32);
        self.cells.push(ShadowCell::new());
        self.labels.push(label.into());
        id
    }

    /// Checks and records an access; any race is counted and (if enabled)
    /// materialized as a report.
    pub fn on_access(
        &mut self,
        loc: LocationId,
        tid: TidIndex,
        clock: &VectorClock,
        kind: AccessKind,
    ) {
        let cell = &mut self.cells[loc.index()];
        let prior = match kind {
            AccessKind::Read => cell.on_read(tid, clock).map(|epoch| RacyPrior {
                epoch,
                kind: AccessKind::Write,
            }),
            AccessKind::Write => cell.on_write(tid, clock),
        };
        if let Some(prior) = prior {
            self.record_race(loc, prior, tid, kind);
        }
    }

    fn record_race(&mut self, loc: LocationId, prior: RacyPrior, tid: TidIndex, kind: AccessKind) {
        let (a, b) = (prior.epoch.tid().min(tid), prior.epoch.tid().max(tid));
        if let Some((label, ta, tb)) = &self.target {
            let (ta, tb) = ((*ta).min(*tb), (*ta).max(*tb));
            if (ta, tb) == (a, b) && self.labels[loc.index()] == *label {
                self.target_hit = true;
            }
        }
        let key = (loc.0, a, b, kind);
        if !self.seen.insert(key) {
            self.suppressed += 1;
            return;
        }
        self.races += 1;
        if self.reporting_enabled {
            let report = RaceReport {
                location: loc,
                label: self.labels[loc.index()].clone(),
                prior_epoch: prior.epoch,
                prior_kind: prior.kind,
                current_tid: tid,
                current_kind: kind,
            };
            self.reports.push(report);
        }
    }

    /// Number of distinct races detected so far.
    #[must_use]
    pub fn race_count(&self) -> u64 {
        self.races
    }

    /// Number of race firings suppressed as duplicates of an
    /// already-reported (location, thread-pair, access-kind) site.
    #[must_use]
    pub fn suppressed_count(&self) -> u64 {
        self.suppressed
    }

    /// Arms pair-targeted checking on the location labelled `label`
    /// between threads `a` and `b` (order-insensitive).
    pub fn set_target(&mut self, label: impl Into<String>, a: TidIndex, b: TidIndex) {
        self.target = Some((label.into(), a, b));
        self.target_hit = false;
    }

    /// Whether the armed target pair raced (meaningless if no target was
    /// set).
    #[must_use]
    pub fn target_hit(&self) -> bool {
        self.target_hit
    }

    /// The materialized reports (empty if reporting was disabled).
    #[must_use]
    pub fn reports(&self) -> &[RaceReport] {
        &self.reports
    }

    /// Drains the materialized reports into `sink`.
    pub fn drain_into(&mut self, sink: &mut dyn RaceSink) {
        for r in self.reports.drain(..) {
            sink.report(r);
        }
    }

    /// Number of registered locations.
    #[must_use]
    pub fn location_count(&self) -> usize {
        self.cells.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clocks(n: usize) -> Vec<VectorClock> {
        (0..n)
            .map(|t| {
                let mut c = VectorClock::new();
                c.tick(t);
                c
            })
            .collect()
    }

    #[test]
    fn unordered_write_write_races() {
        let mut det = RaceDetector::new();
        let loc = det.register_location("x");
        let cs = clocks(2);
        det.on_access(loc, 0, &cs[0], AccessKind::Write);
        det.on_access(loc, 1, &cs[1], AccessKind::Write);
        assert_eq!(det.race_count(), 1);
        let r = &det.reports()[0];
        assert_eq!(r.current_tid, 1);
        assert_eq!(r.prior_kind, AccessKind::Write);
        assert_eq!(r.label, "x");
    }

    #[test]
    fn signatures_normalize_pair_and_kind_order() {
        // The same race seen from either side must produce one signature.
        let mut det = RaceDetector::new();
        let loc = det.register_location("x");
        let cs = clocks(3);
        det.on_access(loc, 2, &cs[2], AccessKind::Write);
        det.on_access(loc, 0, &cs[0], AccessKind::Read);
        let sig = det.reports()[0].signature();
        assert_eq!(sig.tids, (0, 2), "unordered thread pair");
        assert_eq!(sig.kinds, (AccessKind::Read, AccessKind::Write));
        assert_eq!(sig.key(), "x|0,2|rw");
        assert_eq!(sig.to_string(), sig.key());
        // Mirror-image report (read first, racing write second).
        let mut det2 = RaceDetector::new();
        let loc2 = det2.register_location("x");
        det2.on_access(loc2, 0, &cs[0], AccessKind::Read);
        det2.on_access(loc2, 2, &cs[2], AccessKind::Write);
        assert_eq!(det2.reports()[0].signature(), sig);
    }

    #[test]
    fn ordered_write_write_does_not_race() {
        let mut det = RaceDetector::new();
        let loc = det.register_location("x");
        let mut t0 = VectorClock::new();
        t0.tick(0);
        det.on_access(loc, 0, &t0, AccessKind::Write);
        // t1 synchronized with t0 (joined its clock):
        let mut t1 = VectorClock::new();
        t1.tick(1);
        t1.join(&t0);
        det.on_access(loc, 1, &t1, AccessKind::Write);
        assert_eq!(det.race_count(), 0);
    }

    #[test]
    fn unordered_write_then_read_races() {
        let mut det = RaceDetector::new();
        let loc = det.register_location("x");
        let cs = clocks(2);
        det.on_access(loc, 0, &cs[0], AccessKind::Write);
        det.on_access(loc, 1, &cs[1], AccessKind::Read);
        assert_eq!(det.race_count(), 1);
        assert_eq!(det.reports()[0].current_kind, AccessKind::Read);
    }

    #[test]
    fn unordered_read_then_write_races() {
        let mut det = RaceDetector::new();
        let loc = det.register_location("x");
        let cs = clocks(2);
        det.on_access(loc, 0, &cs[0], AccessKind::Read);
        det.on_access(loc, 1, &cs[1], AccessKind::Write);
        assert_eq!(det.race_count(), 1);
        assert_eq!(det.reports()[0].prior_kind, AccessKind::Read);
    }

    #[test]
    fn concurrent_reads_do_not_race() {
        let mut det = RaceDetector::new();
        let loc = det.register_location("x");
        let cs = clocks(3);
        det.on_access(loc, 0, &cs[0], AccessKind::Read);
        det.on_access(loc, 1, &cs[1], AccessKind::Read);
        det.on_access(loc, 2, &cs[2], AccessKind::Read);
        assert_eq!(det.race_count(), 0);
    }

    #[test]
    fn write_after_concurrent_reads_races_with_inflated_history() {
        let mut det = RaceDetector::new();
        let loc = det.register_location("x");
        let cs = clocks(3);
        det.on_access(loc, 0, &cs[0], AccessKind::Read);
        det.on_access(loc, 1, &cs[1], AccessKind::Read); // inflates to clock
        det.on_access(loc, 2, &cs[2], AccessKind::Write);
        assert_eq!(det.race_count(), 1, "racing with at least one reader");
    }

    #[test]
    fn write_ordered_after_all_readers_is_clean() {
        let mut det = RaceDetector::new();
        let loc = det.register_location("x");
        let mut t0 = VectorClock::new();
        t0.tick(0);
        let mut t1 = VectorClock::new();
        t1.tick(1);
        det.on_access(loc, 0, &t0, AccessKind::Read);
        det.on_access(loc, 1, &t1, AccessKind::Read);
        let mut t2 = VectorClock::new();
        t2.tick(2);
        t2.join(&t0);
        t2.join(&t1);
        det.on_access(loc, 2, &t2, AccessKind::Write);
        assert_eq!(det.race_count(), 0);
    }

    #[test]
    fn same_thread_accesses_never_race() {
        let mut det = RaceDetector::new();
        let loc = det.register_location("x");
        let mut t0 = VectorClock::new();
        for _ in 0..5 {
            t0.tick(0);
            det.on_access(loc, 0, &t0, AccessKind::Write);
            det.on_access(loc, 0, &t0, AccessKind::Read);
        }
        assert_eq!(det.race_count(), 0);
    }

    #[test]
    fn duplicate_races_are_deduplicated() {
        let mut det = RaceDetector::new();
        let loc = det.register_location("x");
        let mut t0 = VectorClock::new();
        let mut t1 = VectorClock::new();
        for _ in 0..10 {
            t0.tick(0);
            t1.tick(1);
            det.on_access(loc, 0, &t0, AccessKind::Write);
            det.on_access(loc, 1, &t1, AccessKind::Write);
        }
        assert_eq!(
            det.race_count(),
            1,
            "one per (location, thread-pair, access-kind) site"
        );
        assert_eq!(
            det.suppressed_count(),
            18,
            "19 firing accesses, first reported, rest suppressed"
        );
    }

    #[test]
    fn dedup_distinguishes_access_kinds() {
        let mut det = RaceDetector::new();
        let loc = det.register_location("x");
        let cs = clocks(2);
        det.on_access(loc, 0, &cs[0], AccessKind::Write);
        det.on_access(loc, 1, &cs[1], AccessKind::Read);
        det.on_access(loc, 1, &cs[1], AccessKind::Write);
        assert_eq!(det.race_count(), 2, "racy read and racy write both report");
        assert_eq!(det.suppressed_count(), 0);
    }

    #[test]
    fn target_hit_survives_dedup_and_disabled_reporting() {
        let mut det = RaceDetector::new();
        det.set_reporting(false);
        let loc = det.register_location("x");
        det.register_location("y");
        assert!(!det.target_hit());
        det.set_target("x", 1, 0); // order-insensitive
        let mut t0 = VectorClock::new();
        let mut t1 = VectorClock::new();
        for _ in 0..3 {
            t0.tick(0);
            t1.tick(1);
            det.on_access(loc, 0, &t0, AccessKind::Write);
            det.on_access(loc, 1, &t1, AccessKind::Write);
        }
        assert!(det.target_hit());
        assert!(det.reports().is_empty());
    }

    #[test]
    fn target_other_location_or_pair_does_not_hit() {
        let mut det = RaceDetector::new();
        let x = det.register_location("x");
        let y = det.register_location("y");
        det.set_target("y", 0, 1);
        let cs = clocks(3);
        det.on_access(x, 0, &cs[0], AccessKind::Write);
        det.on_access(x, 1, &cs[1], AccessKind::Write);
        assert!(!det.target_hit(), "wrong location");
        det.on_access(y, 0, &cs[0], AccessKind::Write);
        det.on_access(y, 2, &cs[2], AccessKind::Write);
        assert!(!det.target_hit(), "wrong thread pair");
        // Last write epoch is now t2's; a t1 write races as pair (1,2)...
        det.on_access(y, 1, &cs[1], AccessKind::Write);
        assert!(!det.target_hit(), "still the wrong pair");
        // ...and a t0 read against t1's write epoch is the armed pair.
        det.on_access(y, 0, &cs[0], AccessKind::Read);
        assert!(det.target_hit());
    }

    #[test]
    fn reporting_disabled_still_counts() {
        let mut det = RaceDetector::new();
        det.set_reporting(false);
        let loc = det.register_location("x");
        let cs = clocks(2);
        det.on_access(loc, 0, &cs[0], AccessKind::Write);
        det.on_access(loc, 1, &cs[1], AccessKind::Write);
        assert_eq!(det.race_count(), 1);
        assert!(det.reports().is_empty());
    }

    #[test]
    fn distinct_locations_are_independent() {
        let mut det = RaceDetector::new();
        let a = det.register_location("a");
        let b = det.register_location("b");
        let cs = clocks(2);
        det.on_access(a, 0, &cs[0], AccessKind::Write);
        det.on_access(b, 1, &cs[1], AccessKind::Write);
        assert_eq!(det.race_count(), 0);
        assert_eq!(det.location_count(), 2);
    }

    #[test]
    fn drain_into_sink() {
        let mut det = RaceDetector::new();
        let loc = det.register_location("x");
        let cs = clocks(2);
        det.on_access(loc, 0, &cs[0], AccessKind::Write);
        det.on_access(loc, 1, &cs[1], AccessKind::Write);
        let mut sink = CollectSink::default();
        det.drain_into(&mut sink);
        assert_eq!(sink.reports.len(), 1);
        assert!(det.reports().is_empty());
        assert!(sink.reports[0].to_string().contains("data race on `x`"));
    }

    #[test]
    fn report_display_is_informative() {
        let r = RaceReport {
            location: LocationId(0),
            label: "buf".into(),
            prior_epoch: Epoch::new(0, 3),
            prior_kind: AccessKind::Write,
            current_tid: 2,
            current_kind: AccessKind::Read,
        };
        let s = r.to_string();
        assert!(s.contains("read by thread 2"));
        assert!(s.contains("prior write at 3@0"));
    }
}
