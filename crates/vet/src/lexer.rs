//! A minimal Rust lexer for the vet pass.
//!
//! The vendored offline build has no `syn`, so this hand-rolled scanner
//! keeps exactly what the lints need: identifier and punctuation tokens
//! with 1-based line:column spans. Comments, string/char literals and
//! lifetimes are consumed correctly so a path spelled inside them is
//! never flagged, and `vet: allow(...)` suppression markers are lifted
//! out of comments as [`AllowMark`]s.

/// What a token is. Literals are collapsed — the lints only care that
/// one was there, never about its value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword.
    Ident(String),
    /// The `::` path separator.
    PathSep,
    /// Any other single punctuation character.
    Punct(char),
    /// A number, string, byte-string or char literal.
    Lit,
}

/// One lexed token with its source position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// Token class and (for identifiers) text.
    pub kind: TokenKind,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl Token {
    /// The identifier text, if this is an identifier token.
    #[must_use]
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// Whether this token is the given punctuation character.
    #[must_use]
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }
}

/// An inline suppression marker: `// vet: allow(kind-a, kind-b) reason`.
/// Suppresses matching findings on its own line and the line below
/// (so the marker can sit above the flagged statement).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AllowMark {
    /// Line the comment starts on.
    pub line: u32,
    /// Lint kind names listed in the marker; `*` matches every kind.
    pub kinds: Vec<String>,
}

/// A string literal's text, kept in a side table so [`TokenKind::Lit`]
/// stays value-free for the lints while the plan analysis can recover
/// location labels. Keyed by the literal token's span.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StrLit {
    /// Literal body (between the quotes, escapes left verbatim).
    pub text: String,
    /// 1-based line of the opening quote (or raw prefix).
    pub line: u32,
    /// 1-based column of the opening quote (or raw prefix).
    pub col: u32,
}

/// The lexer output: the token stream plus any inline allow markers.
#[derive(Clone, Debug, Default)]
pub struct Lexed {
    /// Tokens in source order.
    pub tokens: Vec<Token>,
    /// Inline `vet: allow(...)` markers found in comments.
    pub allows: Vec<AllowMark>,
    /// Inline `plan: allow(...)` markers found in comments.
    pub plan_allows: Vec<AllowMark>,
    /// String literal bodies, in source order (see [`StrLit`]).
    pub strings: Vec<StrLit>,
}

impl Lexed {
    /// The string literal at the given span, if the `Lit` token there
    /// was a string.
    #[must_use]
    pub fn string_at(&self, line: u32, col: u32) -> Option<&str> {
        self.strings
            .iter()
            .find(|s| s.line == line && s.col == col)
            .map(|s| s.text.as_str())
    }
}

/// Extracts `<ns> allow(a, b)` from a comment's text, if present, where
/// `ns` is a marker namespace such as `"vet:"` or `"plan:"`.
fn scan_marker(text: &str, line: u32, ns: &str) -> Option<AllowMark> {
    let at = text.find(ns)?;
    let rest = text[at + ns.len()..].trim_start();
    let rest = rest.strip_prefix("allow")?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let close = rest.find(')')?;
    let kinds: Vec<String> = rest[..close]
        .split(',')
        .map(|k| k.trim().to_owned())
        .filter(|k| !k.is_empty())
        .collect();
    if kinds.is_empty() {
        return None;
    }
    Some(AllowMark { line, kinds })
}

struct Cursor {
    chars: Vec<char>,
    i: usize,
    line: u32,
    col: u32,
}

impl Cursor {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.i).copied()?;
        self.i += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Consumes a raw string body after the `r`/`br` prefix has been seen:
/// `#`* `"` ... `"` `#`*. Returns the body text, or `None` if it was
/// not a raw string opener after all.
fn eat_raw_string(cur: &mut Cursor) -> Option<String> {
    let mut hashes = 0usize;
    while cur.peek(hashes) == Some('#') {
        hashes += 1;
    }
    if cur.peek(hashes) != Some('"') {
        return None;
    }
    for _ in 0..=hashes {
        cur.bump();
    }
    // Body: ends at `"` followed by `hashes` hashes.
    let mut text = String::new();
    loop {
        match cur.bump() {
            None => return Some(text), // unterminated: tolerate, EOF ends it
            Some('"') => {
                let mut ok = true;
                for k in 0..hashes {
                    if cur.peek(k) != Some('#') {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    for _ in 0..hashes {
                        cur.bump();
                    }
                    return Some(text);
                }
                text.push('"');
            }
            Some(c) => text.push(c),
        }
    }
}

/// Consumes a plain string body (opening quote already eaten) and
/// returns it, escapes kept verbatim.
fn eat_string(cur: &mut Cursor) -> String {
    let mut text = String::new();
    while let Some(c) = cur.bump() {
        match c {
            '\\' => {
                text.push(c);
                if let Some(e) = cur.bump() {
                    text.push(e);
                }
            }
            '"' => return text,
            _ => text.push(c),
        }
    }
    text
}

/// Lexes Rust source. Never fails: malformed input degrades to
/// punctuation tokens, which the lints simply will not match.
#[must_use]
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor {
        chars: src.chars().collect(),
        i: 0,
        line: 1,
        col: 1,
    };
    let mut out = Lexed::default();
    while let Some(c) = cur.peek(0) {
        let (line, col) = (cur.line, cur.col);
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        // Comments.
        if c == '/' && cur.peek(1) == Some('/') {
            let mut text = String::new();
            while let Some(ch) = cur.peek(0) {
                if ch == '\n' {
                    break;
                }
                text.push(ch);
                cur.bump();
            }
            if let Some(mark) = scan_marker(&text, line, "vet:") {
                out.allows.push(mark);
            }
            if let Some(mark) = scan_marker(&text, line, "plan:") {
                out.plan_allows.push(mark);
            }
            continue;
        }
        if c == '/' && cur.peek(1) == Some('*') {
            cur.bump();
            cur.bump();
            let mut depth = 1usize;
            let mut text = String::new();
            while depth > 0 {
                match (cur.peek(0), cur.peek(1)) {
                    (Some('/'), Some('*')) => {
                        depth += 1;
                        cur.bump();
                        cur.bump();
                    }
                    (Some('*'), Some('/')) => {
                        depth -= 1;
                        cur.bump();
                        cur.bump();
                    }
                    (Some(ch), _) => {
                        text.push(ch);
                        cur.bump();
                    }
                    (None, _) => break,
                }
            }
            if let Some(mark) = scan_marker(&text, line, "vet:") {
                out.allows.push(mark);
            }
            if let Some(mark) = scan_marker(&text, line, "plan:") {
                out.plan_allows.push(mark);
            }
            continue;
        }
        // String literals.
        if c == '"' {
            cur.bump();
            let text = eat_string(&mut cur);
            out.strings.push(StrLit { text, line, col });
            out.tokens.push(Token {
                kind: TokenKind::Lit,
                line,
                col,
            });
            continue;
        }
        // Lifetime or char literal.
        if c == '\'' {
            let next = cur.peek(1);
            let after = cur.peek(2);
            let lifetime = matches!(next, Some(n) if is_ident_start(n)) && after != Some('\'');
            cur.bump();
            if lifetime {
                while matches!(cur.peek(0), Some(n) if is_ident_continue(n)) {
                    cur.bump();
                }
            } else {
                while let Some(ch) = cur.bump() {
                    match ch {
                        '\\' => {
                            cur.bump();
                        }
                        '\'' => break,
                        _ => {}
                    }
                }
                out.tokens.push(Token {
                    kind: TokenKind::Lit,
                    line,
                    col,
                });
            }
            continue;
        }
        // Identifier (with raw/byte string prefix detection).
        if is_ident_start(c) {
            let mut ident = String::new();
            while matches!(cur.peek(0), Some(n) if is_ident_continue(n)) {
                ident.push(cur.peek(0).unwrap());
                cur.bump();
            }
            let raw_prefix = matches!(ident.as_str(), "r" | "b" | "br" | "rb" | "c" | "cr");
            if raw_prefix && (cur.peek(0) == Some('"') || cur.peek(0) == Some('#')) {
                if cur.peek(0) == Some('"') {
                    cur.bump();
                    let text = if ident == "b" || ident == "c" {
                        eat_string(&mut cur)
                    } else {
                        // `r"..."` with zero hashes: no escapes.
                        let mut text = String::new();
                        while let Some(ch) = cur.bump() {
                            if ch == '"' {
                                break;
                            }
                            text.push(ch);
                        }
                        text
                    };
                    out.strings.push(StrLit { text, line, col });
                    out.tokens.push(Token {
                        kind: TokenKind::Lit,
                        line,
                        col,
                    });
                    continue;
                }
                if let Some(text) = eat_raw_string(&mut cur) {
                    out.strings.push(StrLit { text, line, col });
                    out.tokens.push(Token {
                        kind: TokenKind::Lit,
                        line,
                        col,
                    });
                    continue;
                }
            }
            out.tokens.push(Token {
                kind: TokenKind::Ident(ident),
                line,
                col,
            });
            continue;
        }
        // Number literal.
        if c.is_ascii_digit() {
            while let Some(n) = cur.peek(0) {
                let float_dot = n == '.' && matches!(cur.peek(1), Some(d) if d.is_ascii_digit());
                if is_ident_continue(n) || float_dot {
                    cur.bump();
                } else {
                    break;
                }
            }
            out.tokens.push(Token {
                kind: TokenKind::Lit,
                line,
                col,
            });
            continue;
        }
        // `::` path separator.
        if c == ':' && cur.peek(1) == Some(':') {
            cur.bump();
            cur.bump();
            out.tokens.push(Token {
                kind: TokenKind::PathSep,
                line,
                col,
            });
            continue;
        }
        cur.bump();
        out.tokens.push(Token {
            kind: TokenKind::Punct(c),
            line,
            col,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| t.ident().map(str::to_owned))
            .collect()
    }

    #[test]
    fn paths_inside_strings_and_comments_are_invisible() {
        let src = r#"
            // std::thread::spawn in a comment
            /* std::time::Instant::now() in a block /* nested */ */
            let s = "std::thread::spawn";
            let r = r#inner#;
            let c = 'x';
            let lt: &'static str = s;
        "#
        .replace("r#inner#", "r#\"std::net::TcpStream\"#");
        let ids = idents(&src);
        assert!(!ids.contains(&"spawn".to_owned()), "{ids:?}");
        assert!(!ids.contains(&"Instant".to_owned()), "{ids:?}");
        assert!(!ids.contains(&"TcpStream".to_owned()), "{ids:?}");
        assert!(
            !ids.contains(&"static".to_owned()),
            "lifetimes produce no ident token"
        );
        assert!(ids.contains(&"str".to_owned()), "lexing continued past it");
    }

    #[test]
    fn spans_are_one_based_and_accurate() {
        let lexed = lex("fn main() {\n    spawn();\n}");
        let spawn = lexed
            .tokens
            .iter()
            .find(|t| t.ident() == Some("spawn"))
            .unwrap();
        assert_eq!((spawn.line, spawn.col), (2, 5));
    }

    #[test]
    fn pathsep_is_one_token() {
        let lexed = lex("std::thread::spawn");
        let kinds: Vec<_> = lexed.tokens.iter().map(|t| t.kind.clone()).collect();
        assert_eq!(
            kinds,
            vec![
                TokenKind::Ident("std".into()),
                TokenKind::PathSep,
                TokenKind::Ident("thread".into()),
                TokenKind::PathSep,
                TokenKind::Ident("spawn".into()),
            ]
        );
    }

    #[test]
    fn allow_markers_are_lifted() {
        let lexed = lex(
            "// vet: allow(raw-clock, raw-spawn) measuring harness wall time\nlet x = 1; /* vet: allow(*) */",
        );
        assert_eq!(lexed.allows.len(), 2);
        assert_eq!(lexed.allows[0].line, 1);
        assert_eq!(lexed.allows[0].kinds, vec!["raw-clock", "raw-spawn"]);
        assert_eq!(lexed.allows[1].kinds, vec!["*"]);
        assert!(scan_marker("nothing here", 1, "vet:").is_none());
        assert!(scan_marker("vet: allow()", 1, "vet:").is_none());
    }

    #[test]
    fn plan_markers_are_lifted_separately() {
        let lexed = lex(
            "// plan: allow(conflict) intentional shared scratch\nlet x = 1;\n// vet: allow(*)\n",
        );
        assert_eq!(lexed.plan_allows.len(), 1);
        assert_eq!(lexed.plan_allows[0].line, 1);
        assert_eq!(lexed.plan_allows[0].kinds, vec!["conflict"]);
        assert_eq!(lexed.allows.len(), 1);
        assert_eq!(lexed.allows[0].line, 3);
    }

    #[test]
    fn string_literals_land_in_the_side_table() {
        let lexed =
            lex("let a = Shared::new(\"cell\", 0); let b = r#\"raw body\"#; let c = \"es\\\"c\";");
        let texts: Vec<&str> = lexed.strings.iter().map(|s| s.text.as_str()).collect();
        assert_eq!(texts, vec!["cell", "raw body", "es\\\"c"]);
        // Side table spans line up with the Lit tokens they describe.
        let cell = &lexed.strings[0];
        assert_eq!(lexed.string_at(cell.line, cell.col), Some("cell"));
        assert!(lexed
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Lit && t.line == cell.line && t.col == cell.col));
        assert_eq!(lexed.string_at(99, 99), None);
    }

    #[test]
    fn char_and_float_literals_do_not_derail() {
        let ids = idents("let a = '\\n'; let b = 1.5e3; let c = 0..x.len();");
        assert!(ids.contains(&"len".to_owned()));
    }
}
