//! A minimal Rust lexer for the vet pass.
//!
//! The vendored offline build has no `syn`, so this hand-rolled scanner
//! keeps exactly what the lints need: identifier and punctuation tokens
//! with 1-based line:column spans. Comments, string/char literals and
//! lifetimes are consumed correctly so a path spelled inside them is
//! never flagged, and `vet: allow(...)` suppression markers are lifted
//! out of comments as [`AllowMark`]s.

/// What a token is. Literals are collapsed — the lints only care that
/// one was there, never about its value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword.
    Ident(String),
    /// The `::` path separator.
    PathSep,
    /// Any other single punctuation character.
    Punct(char),
    /// A number, string, byte-string or char literal.
    Lit,
}

/// One lexed token with its source position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// Token class and (for identifiers) text.
    pub kind: TokenKind,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl Token {
    /// The identifier text, if this is an identifier token.
    #[must_use]
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// Whether this token is the given punctuation character.
    #[must_use]
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }
}

/// An inline suppression marker: `// vet: allow(kind-a, kind-b) reason`.
/// Suppresses matching findings on its own line and the line below
/// (so the marker can sit above the flagged statement).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AllowMark {
    /// Line the comment starts on.
    pub line: u32,
    /// Lint kind names listed in the marker; `*` matches every kind.
    pub kinds: Vec<String>,
}

/// The lexer output: the token stream plus any inline allow markers.
#[derive(Clone, Debug, Default)]
pub struct Lexed {
    /// Tokens in source order.
    pub tokens: Vec<Token>,
    /// Inline `vet: allow(...)` markers found in comments.
    pub allows: Vec<AllowMark>,
}

/// Extracts `vet: allow(a, b)` from a comment's text, if present.
fn scan_marker(text: &str, line: u32) -> Option<AllowMark> {
    let at = text.find("vet:")?;
    let rest = text[at + 4..].trim_start();
    let rest = rest.strip_prefix("allow")?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let close = rest.find(')')?;
    let kinds: Vec<String> = rest[..close]
        .split(',')
        .map(|k| k.trim().to_owned())
        .filter(|k| !k.is_empty())
        .collect();
    if kinds.is_empty() {
        return None;
    }
    Some(AllowMark { line, kinds })
}

struct Cursor {
    chars: Vec<char>,
    i: usize,
    line: u32,
    col: u32,
}

impl Cursor {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.i).copied()?;
        self.i += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Consumes a raw string body after the `r`/`br` prefix has been seen:
/// `#`* `"` ... `"` `#`*. Returns false if it was not a raw string
/// opener after all.
fn eat_raw_string(cur: &mut Cursor) -> bool {
    let mut hashes = 0usize;
    while cur.peek(hashes) == Some('#') {
        hashes += 1;
    }
    if cur.peek(hashes) != Some('"') {
        return false;
    }
    for _ in 0..=hashes {
        cur.bump();
    }
    // Body: ends at `"` followed by `hashes` hashes.
    loop {
        match cur.bump() {
            None => return true, // unterminated: tolerate, EOF ends it
            Some('"') => {
                let mut ok = true;
                for k in 0..hashes {
                    if cur.peek(k) != Some('#') {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    for _ in 0..hashes {
                        cur.bump();
                    }
                    return true;
                }
            }
            Some(_) => {}
        }
    }
}

fn eat_string(cur: &mut Cursor) {
    // Opening quote already consumed.
    while let Some(c) = cur.bump() {
        match c {
            '\\' => {
                cur.bump();
            }
            '"' => return,
            _ => {}
        }
    }
}

/// Lexes Rust source. Never fails: malformed input degrades to
/// punctuation tokens, which the lints simply will not match.
#[must_use]
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor {
        chars: src.chars().collect(),
        i: 0,
        line: 1,
        col: 1,
    };
    let mut out = Lexed::default();
    while let Some(c) = cur.peek(0) {
        let (line, col) = (cur.line, cur.col);
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        // Comments.
        if c == '/' && cur.peek(1) == Some('/') {
            let mut text = String::new();
            while let Some(ch) = cur.peek(0) {
                if ch == '\n' {
                    break;
                }
                text.push(ch);
                cur.bump();
            }
            if let Some(mark) = scan_marker(&text, line) {
                out.allows.push(mark);
            }
            continue;
        }
        if c == '/' && cur.peek(1) == Some('*') {
            cur.bump();
            cur.bump();
            let mut depth = 1usize;
            let mut text = String::new();
            while depth > 0 {
                match (cur.peek(0), cur.peek(1)) {
                    (Some('/'), Some('*')) => {
                        depth += 1;
                        cur.bump();
                        cur.bump();
                    }
                    (Some('*'), Some('/')) => {
                        depth -= 1;
                        cur.bump();
                        cur.bump();
                    }
                    (Some(ch), _) => {
                        text.push(ch);
                        cur.bump();
                    }
                    (None, _) => break,
                }
            }
            if let Some(mark) = scan_marker(&text, line) {
                out.allows.push(mark);
            }
            continue;
        }
        // String literals.
        if c == '"' {
            cur.bump();
            eat_string(&mut cur);
            out.tokens.push(Token {
                kind: TokenKind::Lit,
                line,
                col,
            });
            continue;
        }
        // Lifetime or char literal.
        if c == '\'' {
            let next = cur.peek(1);
            let after = cur.peek(2);
            let lifetime = matches!(next, Some(n) if is_ident_start(n)) && after != Some('\'');
            cur.bump();
            if lifetime {
                while matches!(cur.peek(0), Some(n) if is_ident_continue(n)) {
                    cur.bump();
                }
            } else {
                while let Some(ch) = cur.bump() {
                    match ch {
                        '\\' => {
                            cur.bump();
                        }
                        '\'' => break,
                        _ => {}
                    }
                }
                out.tokens.push(Token {
                    kind: TokenKind::Lit,
                    line,
                    col,
                });
            }
            continue;
        }
        // Identifier (with raw/byte string prefix detection).
        if is_ident_start(c) {
            let mut ident = String::new();
            while matches!(cur.peek(0), Some(n) if is_ident_continue(n)) {
                ident.push(cur.peek(0).unwrap());
                cur.bump();
            }
            let raw_prefix = matches!(ident.as_str(), "r" | "b" | "br" | "rb" | "c" | "cr");
            if raw_prefix && (cur.peek(0) == Some('"') || cur.peek(0) == Some('#')) {
                if cur.peek(0) == Some('"') {
                    cur.bump();
                    eat_string(&mut cur);
                    out.tokens.push(Token {
                        kind: TokenKind::Lit,
                        line,
                        col,
                    });
                    continue;
                }
                if eat_raw_string(&mut cur) {
                    out.tokens.push(Token {
                        kind: TokenKind::Lit,
                        line,
                        col,
                    });
                    continue;
                }
            }
            out.tokens.push(Token {
                kind: TokenKind::Ident(ident),
                line,
                col,
            });
            continue;
        }
        // Number literal.
        if c.is_ascii_digit() {
            while let Some(n) = cur.peek(0) {
                let float_dot = n == '.' && matches!(cur.peek(1), Some(d) if d.is_ascii_digit());
                if is_ident_continue(n) || float_dot {
                    cur.bump();
                } else {
                    break;
                }
            }
            out.tokens.push(Token {
                kind: TokenKind::Lit,
                line,
                col,
            });
            continue;
        }
        // `::` path separator.
        if c == ':' && cur.peek(1) == Some(':') {
            cur.bump();
            cur.bump();
            out.tokens.push(Token {
                kind: TokenKind::PathSep,
                line,
                col,
            });
            continue;
        }
        cur.bump();
        out.tokens.push(Token {
            kind: TokenKind::Punct(c),
            line,
            col,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| t.ident().map(str::to_owned))
            .collect()
    }

    #[test]
    fn paths_inside_strings_and_comments_are_invisible() {
        let src = r#"
            // std::thread::spawn in a comment
            /* std::time::Instant::now() in a block /* nested */ */
            let s = "std::thread::spawn";
            let r = r#inner#;
            let c = 'x';
            let lt: &'static str = s;
        "#
        .replace("r#inner#", "r#\"std::net::TcpStream\"#");
        let ids = idents(&src);
        assert!(!ids.contains(&"spawn".to_owned()), "{ids:?}");
        assert!(!ids.contains(&"Instant".to_owned()), "{ids:?}");
        assert!(!ids.contains(&"TcpStream".to_owned()), "{ids:?}");
        assert!(
            !ids.contains(&"static".to_owned()),
            "lifetimes produce no ident token"
        );
        assert!(ids.contains(&"str".to_owned()), "lexing continued past it");
    }

    #[test]
    fn spans_are_one_based_and_accurate() {
        let lexed = lex("fn main() {\n    spawn();\n}");
        let spawn = lexed
            .tokens
            .iter()
            .find(|t| t.ident() == Some("spawn"))
            .unwrap();
        assert_eq!((spawn.line, spawn.col), (2, 5));
    }

    #[test]
    fn pathsep_is_one_token() {
        let lexed = lex("std::thread::spawn");
        let kinds: Vec<_> = lexed.tokens.iter().map(|t| t.kind.clone()).collect();
        assert_eq!(
            kinds,
            vec![
                TokenKind::Ident("std".into()),
                TokenKind::PathSep,
                TokenKind::Ident("thread".into()),
                TokenKind::PathSep,
                TokenKind::Ident("spawn".into()),
            ]
        );
    }

    #[test]
    fn allow_markers_are_lifted() {
        let lexed = lex(
            "// vet: allow(raw-clock, raw-spawn) measuring harness wall time\nlet x = 1; /* vet: allow(*) */",
        );
        assert_eq!(lexed.allows.len(), 2);
        assert_eq!(lexed.allows[0].line, 1);
        assert_eq!(lexed.allows[0].kinds, vec!["raw-clock", "raw-spawn"]);
        assert_eq!(lexed.allows[1].kinds, vec!["*"]);
        assert!(scan_marker("nothing here", 1).is_none());
        assert!(scan_marker("vet: allow()", 1).is_none());
    }

    #[test]
    fn char_and_float_literals_do_not_derail() {
        let ids = idents("let a = '\\n'; let b = 1.5e3; let c = 0..x.len();");
        assert!(ids.contains(&"len".to_owned()));
    }
}
