//! **`srr-vet`** — static recording-soundness analysis of workload
//! source (`srr vet`).
//!
//! Sparse record/replay is only sound when every nondeterminism source
//! a workload touches is routed through the interception layer: the
//! `tsan11rec` shims (`thread`, `sync`, `atomic`, `sys`) and the
//! `srr-vos` virtual devices (clock, rng, net, fd table). One escape —
//! a direct `std::thread::spawn`, a wall-clock read, a pointer address
//! flowing into a branch — and replay desyncs with no explanation
//! (the paper's §5.5 limitation study is exactly this, one painful
//! desync at a time). This crate closes the loop *before* recording: a
//! token/path-resolution pass over the workload's Rust source flags
//! escapes statically, with file:line:col spans and the shim to use
//! instead.
//!
//! The vendored offline build has no `syn`, so the pass is built on a
//! small hand-rolled lexer ([`lexer`]) plus `use`-declaration
//! resolution ([`resolve`]) — enough to resolve `Instant::now()` back
//! to `std::time::Instant` through imports, renames and groups.
//!
//! Three lint families ([`lints`]):
//! 1. **escape hatches** — `raw-spawn`, `raw-sync`, `raw-atomic`,
//!    `raw-clock`, `raw-rng`, `raw-net`, `raw-fs`, `raw-process`,
//!    `raw-libc`, `raw-env`;
//! 2. **Wait/Tick protocol misuse** — `tick-without-wait`,
//!    `double-tick`, `block-in-critical-section`,
//!    `visible-op-outside-critical-section`;
//! 3. **replay-stability hazards** — `address-as-value`,
//!    `hash-iter-order`.
//!
//! Intentional escapes are suppressed via inline `// vet: allow(...)`
//! markers or a checked-in allowlist file ([`allow`]). Findings reuse
//! the `srr-analysis` severity model; `deny` findings gate (CLI exit
//! 2). When a replay desyncs, [`crosslink`] joins the diverged demo
//! stream against the escape map to rank likely root causes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allow;
pub mod crosslink;
pub mod lexer;
pub mod lints;
pub mod resolve;

use std::path::{Path, PathBuf};

use srr_analysis::Severity;
use srr_obs::Json;

pub use allow::{glob_match, Allowlist};
pub use crosslink::{
    escape_map_from_json, findings_to_json, implicated_streams, rank_desync_causes, RankedCause,
};
pub use lexer::{lex, AllowMark, Lexed, StrLit, Token, TokenKind};
pub use lints::{scan_tokens, VetFinding, VetKind, ALL_KINDS};

/// The result of vetting a path set.
#[derive(Clone, Debug, Default)]
pub struct VetReport {
    /// `.rs` files scanned.
    pub scanned_files: usize,
    /// Findings that survived the allowlist, sorted by file then span.
    pub findings: Vec<VetFinding>,
    /// Findings suppressed by an allowlist entry or inline marker
    /// (severity downgraded to `allow`).
    pub allowed: Vec<VetFinding>,
}

impl VetReport {
    /// Active findings at [`Severity::Deny`] — the gate count.
    #[must_use]
    pub fn deny_count(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Deny)
            .count()
    }

    /// Active findings at [`Severity::Warn`].
    #[must_use]
    pub fn warn_count(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Warn)
            .count()
    }

    /// The full report as a JSON document (the `--json` escape map).
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "scanned_files".to_owned(),
                Json::Num(self.scanned_files as f64),
            ),
            ("deny".to_owned(), Json::Num(self.deny_count() as f64)),
            ("warn".to_owned(), Json::Num(self.warn_count() as f64)),
            ("allowed".to_owned(), Json::Num(self.allowed.len() as f64)),
            ("findings".to_owned(), findings_to_json(&self.findings)),
            (
                "allowed_findings".to_owned(),
                findings_to_json(&self.allowed),
            ),
        ])
    }
}

/// Vets one source string. `file` is the path used in spans and
/// allowlist globs. Returns `(active, allowed)` findings.
#[must_use]
pub fn vet_source(file: &str, src: &str, list: &Allowlist) -> (Vec<VetFinding>, Vec<VetFinding>) {
    let lexed = lexer::lex(src);
    let findings = lints::scan_tokens(file, &lexed);
    allow::apply(findings, &lexed.allows, list)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Collects every `.rs` file under the given paths, sorted: files are
/// taken as-is, directories are walked recursively with `target/` and
/// dot-dirs skipped. Shared by the vet and plan scanners so both see
/// the same file set.
pub fn collect_rs_files(paths: &[PathBuf]) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    for p in paths {
        if p.is_dir() {
            walk(p, &mut files)?;
        } else {
            files.push(p.clone());
        }
    }
    files.sort();
    Ok(files)
}

/// Vets every `.rs` file under the given paths (files are taken as-is,
/// directories are walked recursively, `target/` and dot-dirs are
/// skipped). Findings keep the paths as given, so allowlist globs match
/// what the user typed.
pub fn vet_paths(paths: &[PathBuf], list: &Allowlist) -> std::io::Result<VetReport> {
    let files = collect_rs_files(paths)?;
    let mut report = VetReport {
        scanned_files: files.len(),
        ..VetReport::default()
    };
    for file in &files {
        let src = std::fs::read_to_string(file)?;
        let label = file.to_string_lossy();
        let (active, allowed) = vet_source(&label, &src, list);
        report.findings.extend(active);
        report.allowed.extend(allowed);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vet_source_partitions_active_and_allowed() {
        let list = Allowlist::parse("allow raw-fs host/* host-side io").unwrap();
        let src = "fn f() {\n  std::fs::read(\"x\");\n  std::thread::spawn(|| {});\n}";
        let (active, allowed) = vet_source("host/main.rs", src, &list);
        assert_eq!(active.len(), 1);
        assert_eq!(active[0].kind, VetKind::RawSpawn);
        assert_eq!(allowed.len(), 1);
        assert_eq!(allowed[0].kind, VetKind::RawFs);
    }

    #[test]
    fn report_counts_and_json_shape() {
        let (active, allowed) = vet_source(
            "w.rs",
            "fn f() { std::thread::spawn(|| {}); std::env::var(\"X\"); }",
            &Allowlist::default(),
        );
        let report = VetReport {
            scanned_files: 1,
            findings: active,
            allowed,
        };
        assert_eq!(report.deny_count(), 1);
        assert_eq!(report.warn_count(), 1);
        let doc = report.to_json();
        assert_eq!(doc.get("deny").and_then(Json::as_f64), Some(1.0));
        assert_eq!(doc.get("warn").and_then(Json::as_f64), Some(1.0));
        let parsed = escape_map_from_json(&doc);
        assert_eq!(parsed.len(), 2);
    }

    #[test]
    fn vet_paths_walks_and_labels() {
        let dir = std::env::temp_dir().join(format!("srr-vet-walk-{}", std::process::id()));
        let sub = dir.join("sub");
        std::fs::create_dir_all(&sub).unwrap();
        std::fs::write(dir.join("a.rs"), "fn f() { std::thread::spawn(|| {}); }").unwrap();
        std::fs::write(sub.join("b.rs"), "fn g() {}").unwrap();
        std::fs::write(sub.join("notes.txt"), "std::thread::spawn").unwrap();
        let report = vet_paths(std::slice::from_ref(&dir), &Allowlist::default()).unwrap();
        assert_eq!(report.scanned_files, 2);
        assert_eq!(report.findings.len(), 1);
        assert!(report.findings[0].span.file.ends_with("a.rs"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
