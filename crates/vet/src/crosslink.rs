//! Desync ↔ escape-map cross-linking.
//!
//! `srr-obs` desync diagnostics name the demo stream that diverged
//! (`QUEUE`, `SYSCALL`, `CONSOLE`, ...). Each vet lint kind implicates
//! a characteristic set of streams — an untraced clock read surfaces as
//! a SYSCALL/CONSOLE divergence, a raw `std::thread::spawn` perturbs
//! the QUEUE schedule. Joining the two ranks the statically-found
//! escapes as likely root causes of an observed desync, which `srr
//! stats --vet` prints under the desync section.

use srr_analysis::{Severity, SourceSpan};
use srr_obs::Json;

use crate::lints::{VetFinding, VetKind};

/// The demo streams a lint kind's escape typically corrupts, most
/// characteristic first.
#[must_use]
pub fn implicated_streams(kind: VetKind) -> &'static [&'static str] {
    match kind {
        VetKind::RawClock => &["SYSCALL", "CONSOLE"],
        VetKind::RawRng => &["SYSCALL", "CONSOLE"],
        VetKind::RawSpawn => &["QUEUE"],
        VetKind::RawSync | VetKind::RawAtomic => &["QUEUE"],
        VetKind::RawNet => &["ASYNC", "SYSCALL"],
        VetKind::RawFs | VetKind::RawLibc | VetKind::RawProcess | VetKind::RawEnv => &["SYSCALL"],
        VetKind::TickWithoutWait
        | VetKind::DoubleTick
        | VetKind::BlockInCritical
        | VetKind::VisibleOpOutside => &["QUEUE"],
        VetKind::AddressAsValue | VetKind::HashIterOrder => &["CONSOLE", "QUEUE"],
    }
}

/// One ranked root-cause candidate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RankedCause {
    /// The escape finding.
    pub finding: VetFinding,
    /// 2 = the diverged stream is this kind's primary stream, 1 = a
    /// secondary stream. Non-matching escapes are dropped.
    pub score: u32,
}

/// Joins a desync's diverged stream against the escape map: every
/// finding whose kind implicates that stream, primary matches first,
/// deny before warn, then source order.
#[must_use]
pub fn rank_desync_causes(stream: &str, findings: &[VetFinding]) -> Vec<RankedCause> {
    let mut out: Vec<RankedCause> = findings
        .iter()
        .filter_map(|f| {
            let streams = implicated_streams(f.kind);
            let score = match streams.iter().position(|s| *s == stream) {
                Some(0) => 2,
                Some(_) => 1,
                None => return None,
            };
            Some(RankedCause {
                finding: f.clone(),
                score,
            })
        })
        .collect();
    out.sort_by(|a, b| {
        (b.score, b.finding.severity, &a.finding.span).cmp(&(
            a.score,
            a.finding.severity,
            &b.finding.span,
        ))
    });
    out
}

/// Serializes findings as the escape-map JSON array (`srr vet --json`).
#[must_use]
pub fn findings_to_json(findings: &[VetFinding]) -> Json {
    Json::Arr(
        findings
            .iter()
            .map(|f| {
                Json::Obj(vec![
                    ("kind".to_owned(), Json::Str(f.kind.name().to_owned())),
                    (
                        "severity".to_owned(),
                        Json::Str(f.severity.name().to_owned()),
                    ),
                    ("file".to_owned(), Json::Str(f.span.file.clone())),
                    ("line".to_owned(), Json::Num(f64::from(f.span.line))),
                    ("col".to_owned(), Json::Num(f64::from(f.span.col))),
                    ("path".to_owned(), Json::Str(f.path.clone())),
                    ("message".to_owned(), Json::Str(f.message.clone())),
                    (
                        "suggestion".to_owned(),
                        match &f.suggestion {
                            Some(s) => Json::Str(s.clone()),
                            None => Json::Null,
                        },
                    ),
                ])
            })
            .collect(),
    )
}

/// Parses an escape map back from `srr vet --json` output (the whole
/// document or just its `findings` array). Unknown kinds are skipped —
/// a newer vet writing a kind this build does not know about must not
/// break the join.
#[must_use]
pub fn escape_map_from_json(doc: &Json) -> Vec<VetFinding> {
    let arr = doc
        .get("findings")
        .and_then(Json::as_array)
        .or_else(|| doc.as_array())
        .unwrap_or(&[]);
    arr.iter()
        .filter_map(|f| {
            let kind = VetKind::parse(f.get("kind")?.as_str()?)?;
            let severity = f
                .get("severity")
                .and_then(Json::as_str)
                .and_then(Severity::parse)
                .unwrap_or_else(|| kind.severity());
            Some(VetFinding {
                kind,
                severity,
                span: SourceSpan::new(
                    f.get("file").and_then(Json::as_str).unwrap_or("?"),
                    f.get("line").and_then(Json::as_f64).unwrap_or(0.0) as u32,
                    f.get("col").and_then(Json::as_f64).unwrap_or(0.0) as u32,
                ),
                path: f
                    .get("path")
                    .and_then(Json::as_str)
                    .unwrap_or_default()
                    .to_owned(),
                message: f
                    .get("message")
                    .and_then(Json::as_str)
                    .unwrap_or_default()
                    .to_owned(),
                suggestion: f
                    .get("suggestion")
                    .and_then(Json::as_str)
                    .map(str::to_owned),
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(kind: VetKind, line: u32) -> VetFinding {
        VetFinding {
            kind,
            severity: kind.severity(),
            span: SourceSpan::new("w.rs", line, 1),
            path: "p".into(),
            message: "m".into(),
            suggestion: None,
        }
    }

    #[test]
    fn ranking_prefers_primary_stream_and_deny() {
        let map = vec![
            f(VetKind::HashIterOrder, 1), // CONSOLE primary, warn
            f(VetKind::RawSpawn, 2),      // QUEUE only
            f(VetKind::RawClock, 3),      // SYSCALL primary, CONSOLE secondary
        ];
        let ranked = rank_desync_causes("SYSCALL", &map);
        assert_eq!(ranked.len(), 1);
        assert_eq!(ranked[0].finding.kind, VetKind::RawClock);
        assert_eq!(ranked[0].score, 2);

        let ranked = rank_desync_causes("CONSOLE", &map);
        assert_eq!(ranked.len(), 2);
        // raw-clock (secondary but deny) vs hash-iter (primary but warn):
        // primary match outranks severity.
        assert_eq!(ranked[0].finding.kind, VetKind::HashIterOrder);
        assert_eq!(ranked[1].finding.kind, VetKind::RawClock);

        assert!(rank_desync_causes("SIGNAL", &[f(VetKind::RawClock, 1)]).is_empty());
    }

    #[test]
    fn queue_desync_implicates_schedule_escapes() {
        let map = vec![f(VetKind::RawSpawn, 2), f(VetKind::RawAtomic, 9)];
        let ranked = rank_desync_causes("QUEUE", &map);
        assert_eq!(ranked.len(), 2);
        assert!(ranked.iter().all(|r| r.score == 2));
    }

    #[test]
    fn escape_map_json_roundtrip() {
        let map = vec![f(VetKind::RawClock, 7), f(VetKind::AddressAsValue, 12)];
        let doc = Json::Obj(vec![("findings".to_owned(), findings_to_json(&map))]);
        let text = doc.to_pretty();
        let parsed = escape_map_from_json(&Json::parse(&text).unwrap());
        assert_eq!(parsed, map);
    }

    #[test]
    fn unknown_kinds_are_skipped_not_fatal() {
        let doc = Json::parse(
            r#"{"findings": [{"kind": "quantum-flux", "file": "x.rs", "line": 1, "col": 1}]}"#,
        )
        .unwrap();
        assert!(escape_map_from_json(&doc).is_empty());
    }

    #[test]
    fn every_kind_implicates_at_least_one_stream() {
        for k in crate::lints::ALL_KINDS {
            assert!(!implicated_streams(*k).is_empty(), "{k}");
        }
    }
}
