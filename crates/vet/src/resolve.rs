//! `use`-declaration collection and path resolution.
//!
//! The lints match *resolved* paths (`Instant::now()` must flag
//! `std::time::Instant::now` even when `Instant` was imported), so this
//! module walks the token stream once to build an alias map from every
//! `use` declaration — including groups, renames and globs — and then
//! extracts every path expression with the aliases expanded.

use std::collections::HashMap;

use crate::lexer::{Token, TokenKind};

/// One leaf of a `use` tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UseEntry {
    /// Full path of the imported item (`["std", "time", "Instant"]`).
    pub path: Vec<String>,
    /// Local name it is bound to (`Instant`, or the `as` rename).
    pub alias: String,
    /// `use foo::*;` — everything in `path` is in scope unnamed.
    pub glob: bool,
    /// 1-based line of the leaf segment.
    pub line: u32,
    /// 1-based column of the leaf segment.
    pub col: u32,
}

/// All imports of one file plus the token ranges the `use` declarations
/// occupy (so the path scan can skip them).
#[derive(Clone, Debug, Default)]
pub struct Imports {
    /// Every imported leaf.
    pub entries: Vec<UseEntry>,
    /// Local alias -> full path.
    pub aliases: HashMap<String, Vec<String>>,
    /// Half-open token index ranges covered by `use` declarations.
    pub spans: Vec<(usize, usize)>,
}

impl Imports {
    fn inside_use(&self, idx: usize) -> bool {
        self.spans.iter().any(|&(a, b)| idx >= a && idx < b)
    }
}

const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "false", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move",
    "mut", "pub", "ref", "return", "self", "Self", "static", "struct", "super", "trait", "true",
    "type", "unsafe", "use", "where", "while",
];

fn is_keyword(s: &str) -> bool {
    KEYWORDS.contains(&s)
}

/// Parses one `use` tree starting at `i` (just past `use` or inside a
/// group), appending leaves to `out`. Returns the index one past the
/// tree (at `,`, `}` or `;` — not consumed).
fn parse_use_tree(
    toks: &[Token],
    mut i: usize,
    prefix: &[String],
    out: &mut Vec<UseEntry>,
) -> usize {
    let mut path: Vec<String> = prefix.to_vec();
    loop {
        match toks.get(i).map(|t| &t.kind) {
            Some(TokenKind::Ident(seg)) if seg == "as" => {
                // Rename of the path collected so far.
                if let Some(TokenKind::Ident(alias)) = toks.get(i + 1).map(|t| &t.kind) {
                    let (line, col) = (toks[i + 1].line, toks[i + 1].col);
                    out.push(UseEntry {
                        path: path.clone(),
                        alias: alias.clone(),
                        glob: false,
                        line,
                        col,
                    });
                    return i + 2;
                }
                return i + 1;
            }
            Some(TokenKind::Ident(seg)) => {
                let (line, col) = (toks[i].line, toks[i].col);
                if seg == "self" {
                    // `use std::sync::{self, Arc}`: binds the module.
                    if let Some(last) = path.last().cloned() {
                        out.push(UseEntry {
                            path: path.clone(),
                            alias: last,
                            glob: false,
                            line,
                            col,
                        });
                    }
                    return i + 1;
                }
                path.push(seg.clone());
                i += 1;
                if matches!(toks.get(i).map(|t| &t.kind), Some(TokenKind::PathSep)) {
                    i += 1;
                    continue;
                }
                if matches!(toks.get(i).map(|t| &t.kind), Some(TokenKind::Ident(a)) if a == "as") {
                    continue; // handled by the `as` arm
                }
                out.push(UseEntry {
                    path: path.clone(),
                    alias: seg.clone(),
                    glob: false,
                    line,
                    col,
                });
                return i;
            }
            Some(TokenKind::Punct('{')) => {
                i += 1;
                loop {
                    i = parse_use_tree(toks, i, &path, out);
                    match toks.get(i).map(|t| &t.kind) {
                        Some(TokenKind::Punct(',')) => i += 1,
                        Some(TokenKind::Punct('}')) => return i + 1,
                        _ => return i,
                    }
                }
            }
            Some(TokenKind::Punct('*')) => {
                let (line, col) = (toks[i].line, toks[i].col);
                out.push(UseEntry {
                    path: path.clone(),
                    alias: String::new(),
                    glob: true,
                    line,
                    col,
                });
                return i + 1;
            }
            Some(TokenKind::PathSep) => i += 1, // leading `::std`
            _ => return i,
        }
    }
}

/// Collects every `use` declaration of the file.
#[must_use]
pub fn collect_imports(toks: &[Token]) -> Imports {
    let mut imports = Imports::default();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].ident() == Some("use") {
            let start = i;
            let mut leaves = Vec::new();
            i = parse_use_tree(toks, i + 1, &[], &mut leaves);
            // Consume through the terminating `;` if present.
            while i < toks.len() && !toks[i].is_punct(';') {
                i += 1;
            }
            let end = (i + 1).min(toks.len());
            imports.spans.push((start, end));
            for leaf in &leaves {
                if !leaf.glob && !leaf.alias.is_empty() {
                    imports
                        .aliases
                        .insert(leaf.alias.clone(), leaf.path.clone());
                }
            }
            imports.entries.extend(leaves);
        }
        i += 1;
    }
    imports
}

/// One path expression found in code, aliases already expanded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PathUse {
    /// Resolved segments.
    pub segs: Vec<String>,
    /// 1-based line of the first segment.
    pub line: u32,
    /// 1-based column of the first segment.
    pub col: u32,
    /// Number of segments as written (1 = bare identifier).
    pub written_len: usize,
    /// The token immediately after the path, for call/type heuristics.
    pub next: Option<TokenKind>,
}

/// Extracts every path expression outside `use` declarations, resolving
/// the first segment through the alias map. Bare identifiers are kept
/// only when aliased (otherwise they are just local names).
#[must_use]
pub fn collect_paths(toks: &[Token], imports: &Imports) -> Vec<PathUse> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if imports.inside_use(i) {
            i += 1;
            continue;
        }
        // A path starts at an identifier (or a leading `::`), not after
        // `.` (field/method) and not as a definition name.
        let leading_sep = matches!(toks[i].kind, TokenKind::PathSep);
        let start = if leading_sep { i + 1 } else { i };
        let Some(first) = toks.get(start).and_then(Token::ident) else {
            i += 1;
            continue;
        };
        if is_keyword(first) {
            i += 1;
            continue;
        }
        if i > 0 {
            if toks[i - 1].is_punct('.') {
                i += 1;
                continue;
            }
            if let Some(prev) = toks[i - 1].ident() {
                if matches!(
                    prev,
                    "fn" | "struct" | "enum" | "trait" | "mod" | "type" | "let" | "mut"
                ) {
                    i += 1;
                    continue;
                }
            }
        }
        let (line, col) = (toks[start].line, toks[start].col);
        let mut segs = vec![first.to_owned()];
        let mut j = start + 1;
        while matches!(toks.get(j).map(|t| &t.kind), Some(TokenKind::PathSep)) {
            match toks.get(j + 1).and_then(Token::ident) {
                // `Vec::<u8>` turbofish: the path ends before `<`.
                Some(seg) if !is_keyword(seg) => {
                    segs.push(seg.to_owned());
                    j += 2;
                }
                _ => break,
            }
        }
        let written_len = segs.len();
        if !leading_sep {
            if let Some(full) = imports.aliases.get(&segs[0]) {
                let mut resolved = full.clone();
                resolved.extend(segs.drain(1..));
                segs = resolved;
            }
        }
        out.push(PathUse {
            segs,
            line,
            col,
            written_len,
            next: toks.get(j).map(|t| t.kind.clone()),
        });
        i = j.max(i + 1);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn imports_of(src: &str) -> Imports {
        collect_imports(&lex(src).tokens)
    }

    #[test]
    fn flat_and_renamed_imports() {
        let imp = imports_of("use std::thread;\nuse std::thread::spawn as sp;");
        assert_eq!(imp.aliases["thread"], vec!["std", "thread"]);
        assert_eq!(imp.aliases["sp"], vec!["std", "thread", "spawn"]);
    }

    #[test]
    fn groups_nested_groups_and_globs() {
        let imp = imports_of(
            "use std::sync::{Arc, atomic::{AtomicU64, Ordering}, Mutex as StdMutex};\nuse std::time::*;",
        );
        assert_eq!(imp.aliases["Arc"], vec!["std", "sync", "Arc"]);
        assert_eq!(
            imp.aliases["AtomicU64"],
            vec!["std", "sync", "atomic", "AtomicU64"]
        );
        assert_eq!(
            imp.aliases["Ordering"],
            vec!["std", "sync", "atomic", "Ordering"]
        );
        assert_eq!(imp.aliases["StdMutex"], vec!["std", "sync", "Mutex"]);
        let glob = imp.entries.iter().find(|e| e.glob).expect("glob entry");
        assert_eq!(glob.path, vec!["std", "time"]);
    }

    #[test]
    fn self_in_group_binds_the_module() {
        let imp = imports_of("use std::sync::{self, Arc};");
        assert_eq!(imp.aliases["sync"], vec!["std", "sync"]);
        assert_eq!(imp.aliases["Arc"], vec!["std", "sync", "Arc"]);
    }

    #[test]
    fn paths_resolve_through_aliases() {
        let lexed = lex("use std::time::Instant;\nfn f() { let t = Instant::now(); }");
        let imp = collect_imports(&lexed.tokens);
        let paths = collect_paths(&lexed.tokens, &imp);
        let inst = paths
            .iter()
            .find(|p| p.segs.first().map(String::as_str) == Some("std"))
            .expect("resolved path");
        assert_eq!(inst.segs, vec!["std", "time", "Instant", "now"]);
        assert_eq!(inst.written_len, 2);
        assert_eq!(inst.next, Some(TokenKind::Punct('(')));
    }

    #[test]
    fn use_declarations_are_not_reported_as_paths() {
        let lexed = lex("use std::thread;");
        let imp = collect_imports(&lexed.tokens);
        assert!(collect_paths(&lexed.tokens, &imp).is_empty());
    }

    #[test]
    fn method_calls_and_fields_are_not_paths() {
        let lexed = lex("fn f() { x.spawn(); let y = a.b; }");
        let imp = collect_imports(&lexed.tokens);
        let paths = collect_paths(&lexed.tokens, &imp);
        assert!(
            !paths.iter().any(|p| p.segs == vec!["spawn".to_owned()]),
            "{paths:?}"
        );
    }
}
