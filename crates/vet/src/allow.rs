//! Allowlisting intentional escapes.
//!
//! Two mechanisms, both keyed by the lint kind name:
//!
//! * an **inline marker** — `// vet: allow(raw-clock) reason` on the
//!   flagged line or the line directly above it;
//! * an **allowlist file** — checked-in lines of the form
//!   `allow <kind|*> <file-glob> [reason...]`, so host-side code (the
//!   CLI, the harness) can keep its legitimate `std::fs`/`std::env`
//!   uses without sprinkling markers everywhere.
//!
//! Suppressed findings are not dropped: they are downgraded to
//! [`Severity::Allow`] and reported separately, so the gate output
//! still shows what was waved through and why that is safe.

use std::fmt;

use srr_analysis::Severity;

use crate::lexer::AllowMark;
use crate::lints::VetFinding;

/// One allowlist-file entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AllowEntry {
    /// Lint kind name this entry suppresses; `*` suppresses every kind.
    pub kind: String,
    /// Glob over the finding's file path (`*` crosses `/`).
    pub file_glob: String,
    /// Free-form justification (kept for reporting).
    pub reason: String,
}

impl fmt::Display for AllowEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "allow {} {}", self.kind, self.file_glob)?;
        if !self.reason.is_empty() {
            write!(f, " {}", self.reason)?;
        }
        Ok(())
    }
}

/// A parsed allowlist.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Allowlist {
    /// Entries in file order.
    pub entries: Vec<AllowEntry>,
}

impl Allowlist {
    /// Parses the `allow <kind|*> <glob> [reason...]` line format.
    /// Blank lines and `#` comments are skipped; anything else
    /// malformed is an error naming the line.
    pub fn parse(text: &str) -> Result<Allowlist, String> {
        let mut entries = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let lineno = idx + 1;
            match parts.next() {
                Some("allow") => {}
                Some(other) => {
                    return Err(format!(
                        "allowlist line {lineno}: expected `allow`, got `{other}`"
                    ))
                }
                None => continue,
            }
            let kind = parts
                .next()
                .ok_or_else(|| format!("allowlist line {lineno}: missing lint kind"))?
                .to_owned();
            let file_glob = parts
                .next()
                .ok_or_else(|| format!("allowlist line {lineno}: missing file glob"))?
                .to_owned();
            let reason = parts.collect::<Vec<_>>().join(" ");
            entries.push(AllowEntry {
                kind,
                file_glob,
                reason,
            });
        }
        Ok(Allowlist { entries })
    }

    /// Renders back to the line format ([`Allowlist::parse`] inverse).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        out
    }

    /// Whether any entry suppresses `kind` in `file`.
    #[must_use]
    pub fn matches(&self, kind: &str, file: &str) -> bool {
        self.entries.iter().any(|e| {
            (e.kind == "*" || e.kind == kind) && glob_match(&normalize_glob(&e.file_glob), file)
        })
    }
}

/// Normalizes a directory-style glob: a trailing `/` means "everything
/// under this directory", i.e. `crates/apps/` behaves like
/// `crates/apps/*`. Without this, a trailing slash silently matched
/// nothing (no file path ends in `/`).
fn normalize_glob(glob: &str) -> String {
    if glob.ends_with('/') {
        format!("{glob}*")
    } else {
        glob.to_owned()
    }
}

/// Minimal glob: `*` matches any (possibly empty) sequence including
/// `/`; `?` matches one character; everything else is literal.
#[must_use]
pub fn glob_match(pattern: &str, text: &str) -> bool {
    let pat: Vec<char> = pattern.chars().collect();
    let txt: Vec<char> = text.chars().collect();
    // Iterative backtracking matcher (the classic two-pointer form).
    let (mut p, mut t) = (0usize, 0usize);
    let (mut star, mut mark) = (None::<usize>, 0usize);
    while t < txt.len() {
        if p < pat.len() && (pat[p] == '?' || pat[p] == txt[t]) {
            p += 1;
            t += 1;
        } else if p < pat.len() && pat[p] == '*' {
            star = Some(p);
            mark = t;
            p += 1;
        } else if let Some(s) = star {
            p = s + 1;
            mark += 1;
            t = mark;
        } else {
            return false;
        }
    }
    while p < pat.len() && pat[p] == '*' {
        p += 1;
    }
    p == pat.len()
}

/// Applies inline markers and the allowlist file: suppressed findings
/// are downgraded to [`Severity::Allow`] and moved to the second list.
#[must_use]
pub fn apply(
    findings: Vec<VetFinding>,
    marks: &[AllowMark],
    list: &Allowlist,
) -> (Vec<VetFinding>, Vec<VetFinding>) {
    let mut active = Vec::new();
    let mut allowed = Vec::new();
    for mut f in findings {
        let inline = marks.iter().any(|m| {
            (m.line == f.span.line || m.line + 1 == f.span.line)
                && m.kinds.iter().any(|k| k == "*" || k == f.kind.name())
        });
        if inline || list.matches(f.kind.name(), &f.span.file) {
            f.severity = Severity::Allow;
            allowed.push(f);
        } else {
            active.push(f);
        }
    }
    (active, allowed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::lints::scan_tokens;

    #[test]
    fn parse_render_roundtrip() {
        let text = "# host-side code\nallow raw-fs crates/apps/src/bin/* CLI writes trace files\nallow * examples/legacy.rs grandfathered\n";
        let list = Allowlist::parse(text).unwrap();
        assert_eq!(list.entries.len(), 2);
        let again = Allowlist::parse(&list.render()).unwrap();
        assert_eq!(list, again);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(Allowlist::parse("deny raw-fs foo.rs").is_err());
        assert!(Allowlist::parse("allow raw-fs").is_err());
        assert!(Allowlist::parse("allow").is_err());
        assert!(Allowlist::parse("").unwrap().entries.is_empty());
    }

    #[test]
    fn glob_semantics() {
        assert!(glob_match("*", "anything/at/all.rs"));
        assert!(glob_match(
            "crates/apps/src/bin/*",
            "crates/apps/src/bin/srr.rs"
        ));
        assert!(glob_match("*.rs", "a/b/c.rs"));
        assert!(glob_match("a?c", "abc"));
        assert!(!glob_match("a?c", "ac"));
        assert!(!glob_match("examples/*", "crates/x.rs"));
        assert!(glob_match("", ""));
        assert!(!glob_match("", "x"));
    }

    #[test]
    fn trailing_slash_globs_cover_the_directory_subtree() {
        // Regression: `crates/apps/` used to match nothing because no
        // file path ends in `/`; it must behave like `crates/apps/*`.
        let list = Allowlist::parse("allow * crates/apps/ host-side tree").unwrap();
        assert!(list.matches("raw-fs", "crates/apps/src/bin/srr.rs"));
        assert!(list.matches("raw-net", "crates/apps/tests/cli.rs"));
        assert!(!list.matches("raw-fs", "crates/core/src/lib.rs"));
        // A bare `/` covers everything, like `*` does for files.
        let root = Allowlist::parse("allow * /").unwrap();
        assert!(!root.matches("raw-fs", "crates/core/src/lib.rs"));
        assert!(root.matches("raw-fs", "/abs/path.rs"));
        // Globs without the trailing slash are untouched.
        assert!(!glob_match("crates/apps/", "crates/apps/src/x.rs"));
    }

    #[test]
    fn inline_marker_suppresses_same_and_next_line() {
        let src = "// vet: allow(raw-spawn) intentional hazard fixture\nfn f() { std::thread::spawn(|| {}); }";
        let lexed = lex(src);
        let findings = scan_tokens("t.rs", &lexed);
        assert_eq!(findings.len(), 1);
        let (active, allowed) = apply(findings, &lexed.allows, &Allowlist::default());
        assert!(active.is_empty(), "{active:?}");
        assert_eq!(allowed.len(), 1);
        assert_eq!(allowed[0].severity, Severity::Allow);
    }

    #[test]
    fn file_allowlist_suppresses_by_glob() {
        let lexed = lex("fn f() { std::fs::read(\"x\"); }");
        let findings = scan_tokens("crates/apps/src/bin/srr.rs", &lexed);
        assert_eq!(findings.len(), 1);
        let list = Allowlist::parse("allow raw-fs crates/apps/src/bin/* CLI host code").unwrap();
        let (active, allowed) = apply(findings.clone(), &[], &list);
        assert!(active.is_empty());
        assert_eq!(allowed.len(), 1);
        // A different kind is not covered.
        let other = Allowlist::parse("allow raw-net crates/apps/src/bin/*").unwrap();
        let (active, _) = apply(findings, &[], &other);
        assert_eq!(active.len(), 1);
    }
}
