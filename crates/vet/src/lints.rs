//! The three vet lint families.
//!
//! 1. **Escape hatches** — resolved paths that reach a real
//!    nondeterminism source (`std::thread`, `std::sync`, `std::time`,
//!    `rand`, `libc`, `std::net`, `std::fs`, ...) instead of the
//!    `tsan11rec` shims and `srr-vos` virtual devices. Anything the
//!    interception layer cannot see cannot be recorded, and surfaces at
//!    replay time as an unexplained desync.
//! 2. **Wait/Tick protocol misuse** — in functions that drive the raw
//!    scheduler protocol: `Tick()` without a preceding `Wait()`, double
//!    `Tick()`, blocking calls inside the critical section, and visible
//!    operations outside it.
//! 3. **Replay-stability hazards** — pointer addresses flowing into
//!    values (`ptr as usize`, the paper's §5.5 SQLite/SpiderMonkey
//!    failure mode) and iteration over `HashMap`/`HashSet`, whose order
//!    varies run to run.

use std::fmt;

use srr_analysis::{Severity, SourceSpan};

use crate::lexer::{Lexed, Token, TokenKind};
use crate::resolve::{collect_imports, collect_paths, Imports, PathUse};

/// The class of a vet finding.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum VetKind {
    /// `std::thread` thread management bypassing `tsan11rec::thread`.
    RawSpawn,
    /// `std::sync`/`parking_lot` primitives bypassing the sync shims.
    RawSync,
    /// `std::sync::atomic` bypassing `tsan11rec::Atomic`.
    RawAtomic,
    /// Untraced time source (`std::time`, `std::thread::sleep`).
    RawClock,
    /// Untraced randomness (`rand`, `getrandom`, `fastrand`).
    RawRng,
    /// `std::net` bypassing the virtual network.
    RawNet,
    /// `std::fs`/stdin bypassing the virtual fd table.
    RawFs,
    /// Process control (`std::process::{Command, exit, id}`).
    RawProcess,
    /// Direct `libc` calls bypassing the instrumented syscall layer.
    RawLibc,
    /// `std::env` reads: un-recorded inputs.
    RawEnv,
    /// `Tick()` with no `Wait()` opening the critical section.
    TickWithoutWait,
    /// Two `Tick()`s without an intervening `Wait()`.
    DoubleTick,
    /// A blocking call between `Wait()` and `Tick()`.
    BlockInCritical,
    /// A visible operation outside the Wait/Tick critical section.
    VisibleOpOutside,
    /// A pointer value cast to an integer: addresses differ across
    /// runs, so any decision fed by one desyncs replay.
    AddressAsValue,
    /// Iteration over a hash collection: order varies run to run.
    HashIterOrder,
}

impl VetKind {
    /// Stable kebab-case name (CLI output, allowlists).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            VetKind::RawSpawn => "raw-spawn",
            VetKind::RawSync => "raw-sync",
            VetKind::RawAtomic => "raw-atomic",
            VetKind::RawClock => "raw-clock",
            VetKind::RawRng => "raw-rng",
            VetKind::RawNet => "raw-net",
            VetKind::RawFs => "raw-fs",
            VetKind::RawProcess => "raw-process",
            VetKind::RawLibc => "raw-libc",
            VetKind::RawEnv => "raw-env",
            VetKind::TickWithoutWait => "tick-without-wait",
            VetKind::DoubleTick => "double-tick",
            VetKind::BlockInCritical => "block-in-critical-section",
            VetKind::VisibleOpOutside => "visible-op-outside-critical-section",
            VetKind::AddressAsValue => "address-as-value",
            VetKind::HashIterOrder => "hash-iter-order",
        }
    }

    /// Parses a [`VetKind::name`] back.
    #[must_use]
    pub fn parse(s: &str) -> Option<VetKind> {
        ALL_KINDS.iter().copied().find(|k| k.name() == s)
    }

    /// Default severity of the kind.
    #[must_use]
    pub fn severity(self) -> Severity {
        match self {
            VetKind::RawEnv | VetKind::HashIterOrder => Severity::Warn,
            _ => Severity::Deny,
        }
    }
}

/// Every kind, for parsers and exhaustive reporting.
pub const ALL_KINDS: &[VetKind] = &[
    VetKind::RawSpawn,
    VetKind::RawSync,
    VetKind::RawAtomic,
    VetKind::RawClock,
    VetKind::RawRng,
    VetKind::RawNet,
    VetKind::RawFs,
    VetKind::RawProcess,
    VetKind::RawLibc,
    VetKind::RawEnv,
    VetKind::TickWithoutWait,
    VetKind::DoubleTick,
    VetKind::BlockInCritical,
    VetKind::VisibleOpOutside,
    VetKind::AddressAsValue,
    VetKind::HashIterOrder,
];

impl fmt::Display for VetKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One static finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VetFinding {
    /// Lint class.
    pub kind: VetKind,
    /// Effective severity (downgraded to `Allow` when suppressed).
    pub severity: Severity,
    /// Source position.
    pub span: SourceSpan,
    /// The offending resolved path or construct.
    pub path: String,
    /// One-line description.
    pub message: String,
    /// The shim/device to use instead, when one exists.
    pub suggestion: Option<String>,
}

impl fmt::Display for VetFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: [{}] {}: {}",
            self.span, self.severity, self.kind, self.message
        )?;
        if let Some(s) = &self.suggestion {
            write!(f, " (use {s})")?;
        }
        Ok(())
    }
}

/// Paths that look like escapes but are deterministic value types — the
/// scanner must stay quiet about them.
const ALLOWED_PREFIXES: &[&[&str]] = &[
    &["std", "sync", "Arc"],
    &["std", "sync", "Weak"],
    &["std", "time", "Duration"],
    &["std", "process", "ExitCode"],
    &["core", "time", "Duration"],
];

/// The escape table: resolved-path prefix, lint kind, replacement shim.
/// More specific prefixes come first.
const ESCAPES: &[(&[&str], VetKind, &str)] = &[
    (
        &["std", "thread", "sleep"],
        VetKind::RawClock,
        "tsan11rec::sys::sleep_ms over the virtual clock (srr-vos/src/clock.rs)",
    ),
    (
        &["std", "thread"],
        VetKind::RawSpawn,
        "tsan11rec::thread::spawn (crates/core/src/thread.rs)",
    ),
    (
        &["std", "sync", "atomic"],
        VetKind::RawAtomic,
        "tsan11rec::Atomic (crates/core/src/atomic.rs)",
    ),
    (
        &["std", "sync", "mpsc"],
        VetKind::RawSync,
        "a tsan11rec::Mutex/Condvar queue (crates/core/src/sync.rs)",
    ),
    (
        &["std", "sync"],
        VetKind::RawSync,
        "tsan11rec::{Mutex, Condvar, RwLock, Barrier} (crates/core/src/sync.rs)",
    ),
    (
        &["parking_lot"],
        VetKind::RawSync,
        "tsan11rec::{Mutex, Condvar} (crates/core/src/sync.rs)",
    ),
    (
        &["std", "time"],
        VetKind::RawClock,
        "the virtual clock device (srr-vos/src/clock.rs)",
    ),
    (
        &["rand"],
        VetKind::RawRng,
        "the virtual rng device (srr-vos/src/rng.rs)",
    ),
    (
        &["getrandom"],
        VetKind::RawRng,
        "the virtual rng device (srr-vos/src/rng.rs)",
    ),
    (
        &["fastrand"],
        VetKind::RawRng,
        "the virtual rng device (srr-vos/src/rng.rs)",
    ),
    (
        &["libc"],
        VetKind::RawLibc,
        "the instrumented syscall layer tsan11rec::sys (crates/core/src/sys.rs)",
    ),
    (
        &["std", "net"],
        VetKind::RawNet,
        "the virtual network (srr-vos/src/net.rs)",
    ),
    (
        &["std", "fs"],
        VetKind::RawFs,
        "the virtual fd table (srr-vos/src/fd.rs)",
    ),
    (
        &["std", "io", "stdin"],
        VetKind::RawFs,
        "a virtual fd (srr-vos/src/fd.rs)",
    ),
    (
        &["std", "process", "Command"],
        VetKind::RawProcess,
        "nothing — subprocesses escape the recorder entirely",
    ),
    (
        &["std", "process", "exit"],
        VetKind::RawProcess,
        "a normal return so the harness can finish the run",
    ),
    (
        &["std", "process", "abort"],
        VetKind::RawProcess,
        "a normal return so the harness can finish the run",
    ),
    (
        &["std", "process", "id"],
        VetKind::RawProcess,
        "a workload parameter (pids differ across record and replay)",
    ),
    (
        &["std", "env"],
        VetKind::RawEnv,
        "explicit workload parameters (env is an un-recorded input)",
    ),
];

fn prefix_matches(path: &[String], prefix: &[&str]) -> bool {
    path.len() >= prefix.len() && path.iter().zip(prefix.iter()).all(|(a, b)| a == b)
}

fn escape_for(path: &[String]) -> Option<(VetKind, &'static str)> {
    if ALLOWED_PREFIXES.iter().any(|p| prefix_matches(path, p)) {
        return None;
    }
    ESCAPES
        .iter()
        .find(|(prefix, _, _)| prefix_matches(path, prefix))
        .map(|&(_, kind, shim)| (kind, shim))
}

fn finding(
    kind: VetKind,
    file: &str,
    line: u32,
    col: u32,
    path: String,
    message: String,
    suggestion: Option<String>,
) -> VetFinding {
    VetFinding {
        kind,
        severity: kind.severity(),
        span: SourceSpan::new(file, line, col),
        path,
        message,
        suggestion,
    }
}

/// Family 1 over imports: flag `use` declarations that pull in a denied
/// path. Globs of denied modules are flagged here because their uses
/// are unresolvable later.
fn escape_import_lints(file: &str, imports: &Imports) -> Vec<VetFinding> {
    let mut out = Vec::new();
    for entry in &imports.entries {
        if let Some((kind, shim)) = escape_for(&entry.path) {
            let path = entry.path.join("::");
            let what = if entry.glob {
                "glob-imports"
            } else {
                "imports"
            };
            out.push(finding(
                kind,
                file,
                entry.line,
                entry.col,
                path.clone(),
                format!("{what} `{path}`, which bypasses the interception layer"),
                Some(shim.to_owned()),
            ));
        }
    }
    out
}

/// Family 1 over expressions: flag resolved paths reaching a denied
/// module. Bare aliased identifiers only count when they are used as a
/// call, type or constructor (otherwise they are just local names).
fn escape_path_lints(file: &str, paths: &[PathUse]) -> Vec<VetFinding> {
    let mut out = Vec::new();
    for p in paths {
        let Some((kind, shim)) = escape_for(&p.segs) else {
            continue;
        };
        if p.written_len == 1
            && !matches!(
                p.next,
                Some(TokenKind::Punct('('))
                    | Some(TokenKind::Punct('<'))
                    | Some(TokenKind::Punct('{'))
            )
        {
            continue;
        }
        let path = p.segs.join("::");
        out.push(finding(
            kind,
            file,
            p.line,
            p.col,
            path.clone(),
            format!("calls `{path}`, which bypasses the interception layer"),
            Some(shim.to_owned()),
        ));
    }
    out
}

/// A function body as a half-open token range.
struct FnBody {
    start: usize,
    end: usize,
}

/// Finds every `fn` body by brace matching.
fn fn_bodies(toks: &[Token]) -> Vec<FnBody> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].ident() == Some("fn") {
            // Find the opening brace of the body (skipping the
            // signature; `where` clauses do not contain braces).
            let mut j = i + 1;
            while j < toks.len() && !toks[j].is_punct('{') && !toks[j].is_punct(';') {
                j += 1;
            }
            if j < toks.len() && toks[j].is_punct('{') {
                let start = j + 1;
                let mut depth = 1usize;
                j += 1;
                while j < toks.len() && depth > 0 {
                    if toks[j].is_punct('{') {
                        depth += 1;
                    } else if toks[j].is_punct('}') {
                        depth -= 1;
                    }
                    j += 1;
                }
                out.push(FnBody { start, end: j });
            }
            i = j;
        } else {
            i += 1;
        }
    }
    out
}

#[derive(Clone, Copy, PartialEq)]
enum ProtoEvent {
    Wait,
    Tick,
}

/// Is token `i` a raw scheduler-protocol call? Either the paper's
/// `Wait(...)`/`Tick(...)` spelling, or `.wait(`/`.tick(`/`.tick_op(`
/// on a receiver whose name mentions the scheduler.
fn protocol_event(toks: &[Token], i: usize) -> Option<ProtoEvent> {
    let id = toks[i].ident()?;
    let called = matches!(
        toks.get(i + 1).map(|t| &t.kind),
        Some(TokenKind::Punct('('))
    );
    if !called {
        return None;
    }
    match id {
        "Wait" => Some(ProtoEvent::Wait),
        "Tick" => Some(ProtoEvent::Tick),
        "wait" | "tick" | "tick_op" => {
            if i >= 2 && toks[i - 1].is_punct('.') {
                if let Some(recv) = toks[i - 2].ident() {
                    if recv.to_ascii_lowercase().contains("sched") {
                        return Some(if id == "wait" {
                            ProtoEvent::Wait
                        } else {
                            ProtoEvent::Tick
                        });
                    }
                }
                // `self.sched().tick(...)`: receiver is a call result.
                if toks[i - 2].is_punct(')') {
                    for k in (0..i.saturating_sub(2)).rev().take(6) {
                        if let Some(name) = toks[k].ident() {
                            if name.to_ascii_lowercase().contains("sched") {
                                return Some(if id == "wait" {
                                    ProtoEvent::Wait
                                } else {
                                    ProtoEvent::Tick
                                });
                            }
                        }
                    }
                }
            }
            None
        }
        _ => None,
    }
}

/// Is token `i` a call that blocks the OS thread (illegal between
/// `Wait()` and `Tick()`: the scheduler owns the interleaving there)?
fn blocking_call(toks: &[Token], i: usize, paths: &[PathUse]) -> bool {
    let Some(id) = toks[i].ident() else {
        return false;
    };
    let called = matches!(
        toks.get(i + 1).map(|t| &t.kind),
        Some(TokenKind::Punct('('))
    );
    if !called {
        return false;
    }
    let method = i >= 1 && toks[i - 1].is_punct('.');
    match id {
        "sleep" | "sleep_ms" => true,
        "join" | "recv" | "recv_timeout" | "lock" | "read_line" => method,
        "wait" => {
            // Condvar-style waits block; scheduler waits were already
            // classified as protocol events.
            method && protocol_event(toks, i).is_none()
        }
        _ => paths.iter().any(|p| {
            p.line == toks[i].line && p.col == toks[i].col && {
                prefix_matches(&p.segs, &["std", "thread", "sleep"])
            }
        }),
    }
}

/// Is token `i` a visible operation (an instrumented op or virtual
/// device access) — something that must live *inside* a critical
/// section in protocol-level code?
fn visible_op(toks: &[Token], i: usize) -> bool {
    let Some(id) = toks[i].ident() else {
        return false;
    };
    let called = matches!(
        toks.get(i + 1).map(|t| &t.kind),
        Some(TokenKind::Punct('('))
    );
    if !called {
        return false;
    }
    if i >= 2 && toks[i - 1].is_punct('.') {
        if let Some(recv) = toks[i - 2].ident() {
            return recv == "vos";
        }
        return false;
    }
    // `sys::println(...)`, `tsan11rec::sys::...`: the segment before the
    // call chain names the instrumented syscall layer.
    let mut j = i;
    while j >= 2 && matches!(toks[j - 1].kind, TokenKind::PathSep) {
        j -= 2;
    }
    matches!(toks[j].ident(), Some("sys" | "tsan11rec")) && j != i || id == "syscall"
}

/// Family 2: the Wait/Tick protocol state machine, per function body,
/// only in functions that touch the raw protocol at all.
fn protocol_lints(file: &str, toks: &[Token], paths: &[PathUse]) -> Vec<VetFinding> {
    let mut out = Vec::new();
    for body in fn_bodies(toks) {
        let range = &toks[body.start..body.end];
        let aware = (0..range.len()).any(|k| protocol_event(range, k).is_some());
        if !aware {
            continue;
        }
        let mut open = false;
        let mut last: Option<ProtoEvent> = None;
        for k in 0..range.len() {
            let t = &range[k];
            if let Some(ev) = protocol_event(range, k) {
                match ev {
                    ProtoEvent::Wait => open = true,
                    ProtoEvent::Tick => {
                        if !open {
                            let kind = if last == Some(ProtoEvent::Tick) {
                                VetKind::DoubleTick
                            } else {
                                VetKind::TickWithoutWait
                            };
                            let msg = if kind == VetKind::DoubleTick {
                                "second Tick() with no intervening Wait(): the critical section was already closed"
                            } else {
                                "Tick() with no Wait() opening the critical section"
                            };
                            out.push(finding(
                                kind,
                                file,
                                t.line,
                                t.col,
                                "Tick".to_owned(),
                                msg.to_owned(),
                                Some("Wait() before every Tick() (§3.1 protocol)".to_owned()),
                            ));
                        }
                        open = false;
                    }
                }
                last = Some(ev);
                continue;
            }
            if open && blocking_call(range, k, paths) {
                out.push(finding(
                    VetKind::BlockInCritical,
                    file,
                    t.line,
                    t.col,
                    t.ident().unwrap_or("?").to_owned(),
                    "blocking call inside the Wait()/Tick() critical section stalls every other thread"
                        .to_owned(),
                    Some("move the blocking operation outside the critical section".to_owned()),
                ));
            }
            if !open && visible_op(range, k) {
                out.push(finding(
                    VetKind::VisibleOpOutside,
                    file,
                    t.line,
                    t.col,
                    t.ident().unwrap_or("?").to_owned(),
                    "visible operation outside the Wait()/Tick() critical section is invisible to the recorder"
                        .to_owned(),
                    Some("wrap the operation in Wait()/Tick() (§3.1 protocol)".to_owned()),
                ));
            }
        }
    }
    out
}

/// Family 3a: a pointer cast to an address-sized integer. Looks for
/// `as usize`-style casts with pointer evidence in the same expression
/// (`as *const`/`as *mut`, `.as_ptr()`, or a `*_ptr`/`addr` name).
fn address_as_value_lints(file: &str, toks: &[Token]) -> Vec<VetFinding> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if toks[i].ident() != Some("as") {
            continue;
        }
        let Some(target) = toks.get(i + 1).and_then(Token::ident) else {
            continue;
        };
        if !matches!(target, "usize" | "isize" | "u64" | "i64" | "u128") {
            continue;
        }
        // Scan backwards for pointer evidence, bounded to the
        // expression (stop at statement/block boundaries).
        let mut evidence = false;
        let mut back = 0usize;
        let mut j = i;
        while j > 0 && back < 16 {
            j -= 1;
            back += 1;
            match &toks[j].kind {
                TokenKind::Punct(';') | TokenKind::Punct('{') | TokenKind::Punct('}') => break,
                TokenKind::Ident(id) if id == "let" => break,
                TokenKind::Ident(id) => {
                    if id == "as"
                        && toks.get(j + 1).is_some_and(|t| t.is_punct('*'))
                        && matches!(
                            toks.get(j + 2).and_then(Token::ident),
                            Some("const" | "mut")
                        )
                    {
                        evidence = true;
                        break;
                    }
                    if matches!(id.as_str(), "as_ptr" | "as_mut_ptr" | "addr_of")
                        || id == "ptr"
                        || id.ends_with("_ptr")
                        || id == "addr"
                    {
                        evidence = true;
                        break;
                    }
                }
                _ => {}
            }
        }
        if evidence {
            out.push(finding(
                VetKind::AddressAsValue,
                file,
                toks[i].line,
                toks[i].col,
                format!("as {target}"),
                "pointer address cast to a value: allocation addresses differ across runs (§5.5 layout nondeterminism)"
                    .to_owned(),
                Some("tsan11rec::sys::valloc handles / stable ids instead of addresses".to_owned()),
            ));
        }
    }
    out
}

/// Family 3b: iteration over hash collections. Tracks names bound to
/// `HashMap`/`HashSet` per function body, then flags order-dependent
/// iteration over them.
fn hash_iter_lints(file: &str, toks: &[Token]) -> Vec<VetFinding> {
    let mut out = Vec::new();
    for body in fn_bodies(toks) {
        let range = &toks[body.start..body.end];
        // Names bound to a hash collection: `let [mut] NAME ... HashMap`
        // within the statement, or `NAME: HashMap<...>` parameters.
        let mut hashed: Vec<String> = Vec::new();
        for k in 0..range.len() {
            if range[k].ident() != Some("let") {
                continue;
            }
            let mut n = k + 1;
            if range.get(n).and_then(Token::ident) == Some("mut") {
                n += 1;
            }
            let Some(name) = range.get(n).and_then(Token::ident) else {
                continue;
            };
            let mut m = n + 1;
            while m < range.len() && !range[m].is_punct(';') && m - n < 24 {
                if matches!(range[m].ident(), Some("HashMap" | "HashSet")) {
                    hashed.push(name.to_owned());
                    break;
                }
                m += 1;
            }
        }
        if hashed.is_empty() {
            continue;
        }
        for k in 0..range.len() {
            let Some(id) = range[k].ident() else { continue };
            // `name.iter()` / `.keys()` / ... on a tracked name.
            if matches!(
                id,
                "iter" | "iter_mut" | "keys" | "values" | "values_mut" | "into_iter" | "drain"
            ) && k >= 2
                && range[k - 1].is_punct('.')
            {
                if let Some(recv) = range[k - 2].ident() {
                    if hashed.iter().any(|h| h == recv) {
                        out.push(finding(
                            VetKind::HashIterOrder,
                            file,
                            range[k].line,
                            range[k].col,
                            format!("{recv}.{id}()"),
                            format!(
                                "iteration over hash collection `{recv}`: order varies run to run, so any recorded decision it feeds will not replay"
                            ),
                            Some("a BTreeMap/BTreeSet or an explicitly sorted view".to_owned()),
                        ));
                    }
                }
            }
            // `for x in [&]name {`.
            if id == "in" {
                let mut n = k + 1;
                while n < range.len()
                    && matches!(range[n].kind, TokenKind::Punct('&') | TokenKind::Punct('*'))
                {
                    n += 1;
                }
                if range.get(n).and_then(Token::ident) == Some("mut") {
                    n += 1;
                }
                if let Some(name) = range.get(n).and_then(Token::ident) {
                    if hashed.iter().any(|h| h == name)
                        && range.get(n + 1).is_some_and(|t| t.is_punct('{'))
                    {
                        out.push(finding(
                            VetKind::HashIterOrder,
                            file,
                            range[n].line,
                            range[n].col,
                            format!("for _ in {name}"),
                            format!(
                                "iteration over hash collection `{name}`: order varies run to run, so any recorded decision it feeds will not replay"
                            ),
                            Some("a BTreeMap/BTreeSet or an explicitly sorted view".to_owned()),
                        ));
                    }
                }
            }
        }
    }
    out
}

/// Runs every lint family over one lexed file. Returns findings sorted
/// by position, deduplicated by (kind, line, path).
#[must_use]
pub fn scan_tokens(file: &str, lexed: &Lexed) -> Vec<VetFinding> {
    let imports = collect_imports(&lexed.tokens);
    let paths = collect_paths(&lexed.tokens, &imports);
    let mut findings = escape_import_lints(file, &imports);
    findings.extend(escape_path_lints(file, &paths));
    findings.extend(protocol_lints(file, &lexed.tokens, &paths));
    findings.extend(address_as_value_lints(file, &lexed.tokens));
    findings.extend(hash_iter_lints(file, &lexed.tokens));
    findings.sort_by_key(|a| (a.span.line, a.span.col, a.kind));
    findings.dedup_by(|a, b| a.kind == b.kind && a.span.line == b.span.line && a.path == b.path);
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn scan(src: &str) -> Vec<VetFinding> {
        scan_tokens("t.rs", &lex(src))
    }

    fn kinds(src: &str) -> Vec<VetKind> {
        scan(src).into_iter().map(|f| f.kind).collect()
    }

    #[test]
    fn direct_and_imported_escapes_are_flagged() {
        let ks = kinds("fn f() { std::thread::spawn(|| {}); }");
        assert_eq!(ks, vec![VetKind::RawSpawn]);
        let ks = kinds("use std::time::Instant;\nfn f() { let t = Instant::now(); }");
        assert_eq!(ks, vec![VetKind::RawClock, VetKind::RawClock]);
        let ks = kinds("use std::sync::atomic::*;");
        assert_eq!(ks, vec![VetKind::RawAtomic]);
    }

    #[test]
    fn deterministic_value_types_pass() {
        assert!(kinds(
            "use std::sync::Arc;\nuse std::time::Duration;\nfn f() { let a = Arc::new(1); let d = Duration::from_millis(5); }"
        )
        .is_empty());
    }

    #[test]
    fn shim_paths_pass() {
        assert!(kinds(
            "use tsan11rec::{thread, Mutex};\nfn f() { let t = thread::spawn(|| {}); t.join(); }"
        )
        .is_empty());
    }

    #[test]
    fn sleep_is_a_clock_escape_not_a_spawn_one() {
        let fs = scan("fn f() { std::thread::sleep(std::time::Duration::from_millis(1)); }");
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].kind, VetKind::RawClock);
    }

    #[test]
    fn protocol_misuse_detected() {
        let ks = kinds(
            "fn driver(sched: &Sched, tid: Tid) {\n  sched.tick(tid);\n  sched.tick(tid);\n  sched.wait(tid);\n  std::thread::sleep(d);\n  sched.tick(tid);\n}",
        );
        assert!(ks.contains(&VetKind::TickWithoutWait), "{ks:?}");
        assert!(ks.contains(&VetKind::DoubleTick), "{ks:?}");
        assert!(ks.contains(&VetKind::BlockInCritical), "{ks:?}");
    }

    #[test]
    fn visible_op_outside_critical_section() {
        let ks = kinds(
            "fn driver(sched: &Sched, tid: Tid) {\n  sys::println(\"early\");\n  sched.wait(tid);\n  sched.tick(tid);\n}",
        );
        assert!(ks.contains(&VetKind::VisibleOpOutside), "{ks:?}");
    }

    #[test]
    fn condvar_wait_is_not_protocol_misuse() {
        assert!(kinds("fn f(c: &Condvar, g: G) { let g = c.wait(g); }").is_empty());
    }

    #[test]
    fn address_as_value_needs_pointer_evidence() {
        let ks = kinds("fn f(x: &u8) { let a = x as *const u8 as usize; }");
        assert_eq!(ks, vec![VetKind::AddressAsValue]);
        let ks = kinds("fn f(v: &Vec<u8>) { let a = v.as_ptr() as usize; }");
        assert_eq!(ks, vec![VetKind::AddressAsValue]);
        assert!(kinds("fn f(n: u32) { let a = n as usize; }").is_empty());
    }

    #[test]
    fn hash_iteration_is_flagged_btree_is_not() {
        let ks = kinds(
            "fn f() { let m = HashMap::new(); for k in &m { use_it(k); } let s: HashSet<u32> = HashSet::new(); let v = s.iter(); }",
        );
        assert_eq!(ks, vec![VetKind::HashIterOrder, VetKind::HashIterOrder]);
        assert!(kinds("fn f() { let m = BTreeMap::new(); for k in &m { g(k); } }").is_empty());
    }

    #[test]
    fn kind_names_roundtrip() {
        for k in ALL_KINDS {
            assert_eq!(VetKind::parse(k.name()), Some(*k));
        }
        assert_eq!(VetKind::parse("bogus"), None);
    }

    #[test]
    fn findings_display_with_span_and_suggestion() {
        let fs = scan("fn f() { std::thread::spawn(|| {}); }");
        let line = fs[0].to_string();
        assert!(line.starts_with("t.rs:1:10"), "{line}");
        assert!(line.contains("[deny] raw-spawn"), "{line}");
        assert!(line.contains("tsan11rec::thread::spawn"), "{line}");
    }
}
