//! Golden-output test: the analyzer's full report over the committed
//! fixtures is pinned byte-for-byte. Any lint change that moves a span,
//! reword, or new finding shows up as a golden diff that has to be
//! reviewed and regenerated deliberately:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test -p srr-vet --test golden
//! ```

use std::path::{Path, PathBuf};

use srr_vet::{vet_source, Allowlist};

const FIXTURES: &[&str] = &["escapes.rs", "protocol.rs", "stability.rs"];

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn render_report() -> String {
    let dir = fixture_dir();
    let mut out = String::new();
    for name in FIXTURES {
        let src = std::fs::read_to_string(dir.join(name))
            .unwrap_or_else(|e| panic!("read fixture {name}: {e}"));
        let (active, allowed) = vet_source(name, &src, &Allowlist::default());
        out.push_str(&format!("== {name} ==\n"));
        for f in &active {
            out.push_str(&format!("{f}\n"));
        }
        for f in &allowed {
            out.push_str(&format!("{f} [allowed]\n"));
        }
    }
    out
}

#[test]
fn fixture_reports_match_golden_output() {
    let actual = render_report();
    let golden_path = fixture_dir().join("golden.txt");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&golden_path, &actual).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(&golden_path)
        .expect("golden.txt missing — run with UPDATE_GOLDEN=1 to create it");
    assert_eq!(
        actual, golden,
        "vet output drifted from golden.txt; rerun with UPDATE_GOLDEN=1 \
         and review the diff"
    );
}

#[test]
fn golden_fixtures_cover_every_lint_family() {
    // Guards the fixtures themselves: if an edit waters one down, the
    // golden file would still "match" — so assert the families directly.
    let report = render_report();
    for needle in [
        "raw-spawn",          // escape: std::thread
        "raw-clock",          // escape: std::time
        "raw-atomic",         // escape: std::sync::atomic
        "raw-rng",            // escape: rand
        "raw-fs",             // escape: std::fs
        "tick-without-wait",  // protocol
        "double-tick",        // protocol
        "block-in-critical",  // protocol
        "visible-op-outside", // protocol
        "address-as-value",   // stability (§5.5)
        "hash-iter-order",    // stability
        "[allowed]",          // inline waiver path
    ] {
        assert!(
            report.contains(needle),
            "fixtures lost coverage of {needle}:\n{report}"
        );
    }
    // The good driver must stay silent: no finding may point past the
    // bad driver's last line in protocol.rs.
    for line in report.lines() {
        if let Some(rest) = line.strip_prefix("protocol.rs:") {
            let lineno: usize = rest.split(':').next().unwrap().parse().unwrap();
            assert!(lineno <= 12, "good_driver tripped a lint: {line}");
        }
    }
}
