// Golden fixture: Wait/Tick protocol misuse inside a scheduler driver.
// The bad driver trips every protocol lint; the good driver below it
// must stay silent.

fn bad_driver(sched: &Scheduler, tid: Tid) {
    sys::println("before the critical section");
    sched.tick(tid);
    sched.tick(tid);
    sched.wait(tid);
    std::thread::sleep(nap());
    sched.tick(tid);
}

fn good_driver(sched: &Scheduler, tid: Tid) {
    sched.wait(tid);
    sched.tick(tid);
}
