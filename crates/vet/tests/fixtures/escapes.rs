// Golden fixture: escape hatches reached through imports, aliases and
// direct paths. Every finding here must stay byte-stable — the golden
// test pins the full report (see golden.txt; UPDATE_GOLDEN=1 refreshes).

use std::thread;
use std::time::Instant as Clock;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;

fn worker() {
    let handle = thread::spawn(|| {});
    let started = Clock::now();
    let counter = AtomicU64::new(0);
    let shared = Arc::new(0u64);
    let roll = rand::random::<u64>();
    let bytes = std::fs::read("input.txt");
    // vet: allow(raw-clock) fixture: inline waiver exercised by the golden test
    let waved = std::time::SystemTime::now();
    let _ = (handle, started, counter, shared, roll, bytes, waved);
}
