// Golden fixture: replay-stability hazards — addresses leaking into
// recorded values (§5.5) and hash-iteration order feeding visible state.

use std::collections::{HashMap, HashSet};

fn addresses(buf: &[u8]) -> usize {
    let key = buf.as_ptr() as usize;
    key
}

fn ordering() {
    let mut seen: HashMap<u64, u64> = HashMap::new();
    seen.insert(1, 2);
    for (k, v) in &seen {
        record(*k, *v);
    }
    let ids: HashSet<u64> = HashSet::new();
    let first = ids.iter().next();
    let _ = first;
}
