//! Property tests for the vet analyzer:
//!
//! * allowlist parse/render is a roundtrip over arbitrary well-formed
//!   entries, and parsing is insensitive to comments/blank lines;
//! * finding spans are *stable under formatting-only edits* — blank
//!   lines shift line numbers by exactly the number of lines inserted,
//!   trailing whitespace changes nothing, and uniform indentation
//!   shifts only columns. Span stability is what makes checked-in
//!   allowlists and golden files survive rustfmt churn.

use proptest::collection;
use proptest::prelude::*;

use srr_vet::allow::AllowEntry;
use srr_vet::{glob_match, vet_source, Allowlist, ALL_KINDS};

/// Glob alphabet: no whitespace (token separator) and no `#` (comment).
const GLYPHS: &[char] = &['a', 'b', 'z', '*', '?', '/', '.', '-', '_', '0'];
/// Reason vocabulary (joined with single spaces, the canonical form
/// `split_whitespace` + `join(" ")` normalizes to).
const WORDS: &[&str] = &[
    "host-side",
    "io",
    "fixture",
    "staging",
    "pid-unique",
    "legacy",
];

fn entry_strategy() -> impl Strategy<Value = AllowEntry> {
    (
        0usize..=ALL_KINDS.len(),
        collection::vec(0usize..GLYPHS.len(), 1..12),
        collection::vec(0usize..WORDS.len(), 0..4),
    )
        .prop_map(|(k, glyphs, words)| AllowEntry {
            kind: if k == ALL_KINDS.len() {
                "*".to_owned()
            } else {
                ALL_KINDS[k].name().to_owned()
            },
            file_glob: glyphs.into_iter().map(|g| GLYPHS[g]).collect(),
            reason: words
                .into_iter()
                .map(|w| WORDS[w])
                .collect::<Vec<_>>()
                .join(" "),
        })
}

fn allowlist_strategy() -> impl Strategy<Value = Allowlist> {
    collection::vec(entry_strategy(), 0..6).prop_map(|entries| Allowlist { entries })
}

/// Small sources that each trip at least one lint family; spans must
/// move predictably when these are reformatted.
const SNIPPETS: &[&str] = &[
    "use std::thread;\nfn f() {\n    thread::spawn(|| {});\n}\n",
    "fn drive(sched: &Sched, tid: Tid) {\n    sched.tick(tid);\n    sched.wait(tid);\n    sched.tick(tid);\n}\n",
    "fn g(buf: &[u8]) -> usize {\n    buf.as_ptr() as usize\n}\n",
    "use std::collections::HashMap;\nfn h() {\n    let m: HashMap<u8, u8> = HashMap::new();\n    for x in &m {\n        let _ = x;\n    }\n}\n",
];

/// (kind, line, col) triples of the active findings — the identity the
/// stability properties compare.
fn spans(src: &str) -> Vec<(&'static str, u32, u32)> {
    let (active, _) = vet_source("prop.rs", src, &Allowlist::default());
    active
        .iter()
        .map(|f| (f.kind.name(), f.span.line, f.span.col))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn allowlist_parse_render_roundtrip(list in allowlist_strategy()) {
        let reparsed = Allowlist::parse(&list.render()).unwrap();
        prop_assert_eq!(reparsed, list);
    }

    #[test]
    fn allowlist_parse_skips_comments_blanks_and_padding(
        list in allowlist_strategy(),
        noise in 0usize..3,
    ) {
        let mut text = String::new();
        for e in &list.entries {
            for _ in 0..noise {
                text.push_str("# noise\n\n");
            }
            text.push_str(&format!("  {e}  \n"));
        }
        text.push_str("# trailing comment\n");
        prop_assert_eq!(Allowlist::parse(&text).unwrap(), list);
    }

    #[test]
    fn prepended_blank_lines_shift_finding_lines_exactly(
        idx in 0usize..4,
        k in 0usize..9,
    ) {
        let base = spans(SNIPPETS[idx]);
        prop_assert!(!base.is_empty(), "snippet {idx} must trip a lint");
        let padded = format!("{}{}", "\n".repeat(k), SNIPPETS[idx]);
        let shifted = spans(&padded);
        prop_assert_eq!(shifted.len(), base.len());
        for (b, s) in base.iter().zip(&shifted) {
            prop_assert_eq!(b.0, s.0, "kind changed under blank-line padding");
            prop_assert_eq!(b.1 + k as u32, s.1, "line must shift by exactly {}", k);
            prop_assert_eq!(b.2, s.2, "column must not move");
        }
    }

    #[test]
    fn trailing_whitespace_is_invisible_to_spans(
        idx in 0usize..4,
        pad in 1usize..5,
        extra_newlines in 0usize..4,
    ) {
        let base = spans(SNIPPETS[idx]);
        let formatted: String = SNIPPETS[idx]
            .lines()
            .map(|l| format!("{l}{}\n", " ".repeat(pad)))
            .collect::<String>()
            + &"\n".repeat(extra_newlines);
        prop_assert_eq!(spans(&formatted), base);
    }

    #[test]
    fn uniform_indent_shifts_columns_only(idx in 0usize..4, n in 1usize..7) {
        let base = spans(SNIPPETS[idx]);
        let indented: String = SNIPPETS[idx]
            .lines()
            .map(|l| {
                if l.is_empty() {
                    "\n".to_owned()
                } else {
                    format!("{}{l}\n", " ".repeat(n))
                }
            })
            .collect();
        let shifted = spans(&indented);
        prop_assert_eq!(shifted.len(), base.len());
        for (b, s) in base.iter().zip(&shifted) {
            prop_assert_eq!(b.0, s.0);
            prop_assert_eq!(b.1, s.1, "indentation must not change lines");
            prop_assert_eq!(b.2 + n as u32, s.2, "column must shift by exactly {}", n);
        }
    }

    #[test]
    fn glob_literals_match_themselves_and_star_matches_all(
        glyphs in collection::vec(0usize..GLYPHS.len(), 0..16),
    ) {
        // Literal text: strip the wildcard glyphs out of the sample.
        let text: String = glyphs
            .into_iter()
            .map(|g| GLYPHS[g])
            .filter(|c| *c != '*' && *c != '?')
            .collect();
        prop_assert!(glob_match(&text, &text), "literal self-match: {:?}", text);
        prop_assert!(glob_match("*", &text));
        prop_assert!(glob_match(&format!("{text}*"), &text));
        prop_assert!(glob_match(&format!("*{text}"), &text));
    }
}
