//! Property tests for the vet lexer's hard cases: raw strings
//! (`r#"..."#` with arbitrary hash depth), nested block comments, and
//! lifetime ticks. The plan escape analysis walks this same token
//! stream and joins `Lit` tokens to the string side table by span, so
//! the invariants here are load-bearing for `srr plan`, not just vet:
//!
//! * content spelled *inside* raw strings and comments never becomes a
//!   token, no matter how adversarial the body;
//! * every string literal's side-table entry sits exactly on its `Lit`
//!   token's span, and the recovered text matches what was written;
//! * lifetime ticks neither eat following tokens nor emit literals.

use proptest::collection;
use proptest::prelude::*;

use srr_vet::{lex, TokenKind};

/// Raw-string body alphabet: quotes and hashes included on purpose, so
/// bodies regularly contain `"#`-like near-terminators.
const BODY: &[char] = &['a', 'z', '"', '#', '\\', '/', '*', ' ', ':', '\n'];

/// Identifier pool for surrounding code.
const IDENTS: &[&str] = &["alpha", "beta", "spawn", "lock", "cell", "r", "br"];

fn body_strategy() -> impl Strategy<Value = String> {
    collection::vec(0usize..BODY.len(), 0..24)
        .prop_map(|ix| ix.into_iter().map(|i| BODY[i]).collect())
}

/// Tokens of `src` as (kind-discriminant, line, col) triples.
fn shape(src: &str) -> Vec<(String, u32, u32)> {
    lex(src)
        .tokens
        .iter()
        .map(|t| {
            let k = match &t.kind {
                TokenKind::Ident(s) => format!("i:{s}"),
                TokenKind::PathSep => "::".to_owned(),
                TokenKind::Punct(c) => format!("p:{c}"),
                TokenKind::Lit => "lit".to_owned(),
            };
            (k, t.line, t.col)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn raw_string_bodies_are_opaque_and_recovered_verbatim(
        body in body_strategy(),
        hashes in 1usize..4,
        id in 0usize..IDENTS.len(),
    ) {
        // Ensure the body cannot terminate the literal early: the
        // terminator is `"` + hashes hashes, so cap any run of hashes
        // after a quote below the chosen depth.
        let guard = "#".repeat(hashes - 1);
        let body: String = body.replace('"', &format!("\"{guard}a"));
        let open = format!("r{}\"", "#".repeat(hashes));
        let close = format!("\"{}", "#".repeat(hashes));
        let src = format!(
            "let {} = {open}{body}{close};\nafter();",
            IDENTS[id]
        );
        let lexed = lex(&src);
        // Exactly one Lit token for the raw string, and the side table
        // recovers the body text exactly.
        let lits: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lit)
            .collect();
        prop_assert_eq!(lits.len(), 1, "src: {:?}", src);
        prop_assert_eq!(
            lexed.string_at(lits[0].line, lits[0].col),
            Some(body.as_str())
        );
        // Nothing inside the body leaked out as an identifier, and the
        // code after the literal still lexes.
        let idents: Vec<_> = lexed
            .tokens
            .iter()
            .filter_map(|t| t.ident())
            .collect();
        prop_assert!(idents.contains(&"after"), "src: {:?}", src);
        prop_assert_eq!(
            idents.iter().filter(|i| **i == "after").count(),
            1
        );
    }

    #[test]
    fn nested_block_comments_are_invisible(
        body in body_strategy(),
        depth in 1usize..4,
    ) {
        // Build a balanced nested comment: /* /* ... body ... */ */.
        // Strip characters that would unbalance it from the body.
        let clean: String = body
            .chars()
            .filter(|c| *c != '/' && *c != '*')
            .collect();
        let mut comment = clean.clone();
        for _ in 0..depth {
            comment = format!("/* {comment} */");
        }
        let src = format!("before();\n{comment}\nafter();");
        let with = shape(&src);
        let without = shape("before();\n\nafter();");
        // The comment occupies whole lines of its own, so the token
        // stream must be identical except for the lines the comment
        // body spans (the clean body may contain newlines).
        let extra = clean.matches('\n').count() as u32;
        prop_assert_eq!(with.len(), without.len());
        for (w, wo) in with.iter().zip(&without) {
            prop_assert_eq!(&w.0, &wo.0);
            prop_assert!(w.1 == wo.1 || w.1 == wo.1 + extra);
        }
    }

    #[test]
    fn lifetime_ticks_do_not_eat_tokens_or_emit_literals(
        id in 0usize..IDENTS.len(),
        n in 1usize..4,
    ) {
        let lt = "x".repeat(n);
        let src = format!(
            "fn f<'{lt}>(v: &'{lt} {}) -> &'{lt} u8 {{ v }}",
            IDENTS[id]
        );
        let lexed = lex(&src);
        prop_assert!(
            lexed.tokens.iter().all(|t| t.kind != TokenKind::Lit),
            "lifetimes must not lex as literals: {:?}",
            src
        );
        prop_assert!(lexed.strings.is_empty());
        let idents: Vec<_> = lexed.tokens.iter().filter_map(|t| t.ident()).collect();
        prop_assert!(idents.contains(&IDENTS[id]));
        prop_assert!(idents.contains(&"u8"));
        prop_assert!(!idents.contains(&lt.as_str()), "tick swallowed ident");
    }

    #[test]
    fn string_side_table_is_span_aligned(
        bodies in collection::vec(body_strategy(), 1..5),
    ) {
        // Plain strings: escape the troublesome characters so each
        // literal terminates where intended.
        let mut src = String::new();
        let mut want = Vec::new();
        for b in &bodies {
            let clean: String = b
                .chars()
                .filter(|c| *c != '"' && *c != '\\' && *c != '\n')
                .collect();
            src.push_str(&format!("reg(\"{clean}\");\n"));
            want.push(clean);
        }
        let lexed = lex(&src);
        let lits: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lit)
            .collect();
        prop_assert_eq!(lits.len(), want.len());
        for (tok, body) in lits.iter().zip(&want) {
            prop_assert_eq!(
                lexed.string_at(tok.line, tok.col),
                Some(body.as_str()),
                "side table missed the Lit at {}:{}",
                tok.line,
                tok.col
            );
        }
    }
}
