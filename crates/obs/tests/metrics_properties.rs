//! Metrics-plane and profiler properties: histogram merging is
//! associative, counters saturate instead of wrapping, and profiling is
//! a deterministic pure function of its logical inputs.

use proptest::collection::vec;
use proptest::prelude::*;
use srr_obs::profile::{profile, ProfileEvent, ProfileInput};
use srr_obs::{Counter, Histogram, MetricHistogram};

fn hist_of(samples: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &s in samples {
        h.record(s);
    }
    h
}

/// A random but internally consistent profiler input: a schedule over a
/// few threads plus lock/cond/spawn events stamped onto owned ticks.
fn arb_profile_input() -> impl Strategy<Value = ProfileInput> {
    (vec(0u32..4, 1..60), vec(0usize..6, 0..20)).prop_map(|(owners, choices)| {
        let schedule: Vec<(u64, u32)> = owners
            .iter()
            .enumerate()
            .map(|(i, &t)| ((i + 1) as u64, t))
            .collect();
        let mut events = Vec::new();
        for (i, &c) in choices.iter().enumerate() {
            // Pick an owned tick deterministically from the choice index.
            let k = (i % owners.len()) + 1;
            let tid = owners[k - 1];
            let tick = k as u64;
            events.push(match c {
                0 => ProfileEvent::MutexRequest {
                    tid,
                    mutex: 1,
                    tick,
                },
                1 => ProfileEvent::MutexAcquire {
                    tid,
                    mutex: 1,
                    tick,
                },
                2 => ProfileEvent::MutexRelease {
                    tid,
                    mutex: 1,
                    tick,
                },
                3 => ProfileEvent::CondWaitBegin { tid, cond: 2, tick },
                4 => ProfileEvent::CondNotify { cond: 2, tick },
                _ => ProfileEvent::ThreadJoin {
                    tid,
                    target: (tid + 1) % 4,
                    tick,
                    done: true,
                },
            });
        }
        ProfileInput {
            schedule,
            events,
            mutex_labels: Default::default(),
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c): shard histograms can be folded in
    /// any grouping.
    #[test]
    fn histogram_merge_is_associative(
        a in vec(any::<u64>(), 0..40),
        b in vec(any::<u64>(), 0..40),
        c in vec(any::<u64>(), 0..40),
    ) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        prop_assert_eq!(format!("{left:?}"), format!("{right:?}"));
    }

    /// Merging is also commutative and has the empty histogram as
    /// identity.
    #[test]
    fn histogram_merge_commutes(
        a in vec(any::<u64>(), 0..40),
        b in vec(any::<u64>(), 0..40),
    ) {
        let (ha, hb) = (hist_of(&a), hist_of(&b));
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(format!("{ab:?}"), format!("{ba:?}"));
        let mut ident = ha.clone();
        ident.merge(&Histogram::new());
        prop_assert_eq!(format!("{ident:?}"), format!("{ha:?}"));
    }

    /// Counters saturate at `u64::MAX` — adds near the ceiling never
    /// wrap back to small values.
    #[test]
    fn counter_saturates_never_wraps(
        start_gap in 0u64..1000,
        adds in vec(1u64..1000, 1..50),
    ) {
        let c = Counter::new();
        c.add(u64::MAX - start_gap);
        let mut expected = u64::MAX - start_gap;
        for n in adds {
            c.add(n);
            expected = expected.saturating_add(n);
            prop_assert_eq!(c.get(), expected);
            prop_assert!(c.get() >= u64::MAX - start_gap, "wrapped");
        }
    }

    /// The atomic histogram mirror agrees with the plain one sample for
    /// sample.
    #[test]
    fn metric_histogram_matches_plain(samples in vec(any::<u64>(), 0..60)) {
        let mh = MetricHistogram::new();
        for &s in &samples {
            mh.record(s);
        }
        let plain = hist_of(&samples);
        prop_assert_eq!(format!("{:?}", mh.snapshot()), format!("{plain:?}"));
    }

    /// Profiling is deterministic: the same logical input produces a
    /// byte-identical JSON report, even when the event and schedule
    /// vectors are traversed in a different order.
    #[test]
    fn profile_json_is_byte_identical(input in arb_profile_input()) {
        let a = profile(&input).to_json().to_pretty();
        let b = profile(&input).to_json().to_pretty();
        prop_assert_eq!(&a, &b);
        let mut shuffled = input.clone();
        shuffled.events.reverse();
        shuffled.schedule.reverse();
        let c = profile(&shuffled).to_json().to_pretty();
        prop_assert_eq!(&a, &c);
    }

    /// The critical-path walk partitions logical time exactly: bucket
    /// totals always sum to the schedule length, whatever the events say.
    #[test]
    fn profile_buckets_partition_total_ticks(input in arb_profile_input()) {
        let rep = profile(&input);
        prop_assert_eq!(rep.total_ticks, input.schedule.len() as u64);
        prop_assert_eq!(rep.attributed_ticks(), rep.total_ticks);
        let share_sum: f64 = rep.buckets.iter().map(|b| b.share).sum();
        prop_assert!((share_sum - 1.0).abs() < 1e-9);
    }
}
