//! Ring-buffer properties: no allocation after warm-up, and the most
//! recent N events survive wraparound in order.

use proptest::collection::vec;
use proptest::prelude::*;
use srr_obs::{EventKind, EventRing, ObsEvent};

fn ev(i: u64) -> ObsEvent {
    ObsEvent {
        tid: (i % 7) as u32,
        tick: i,
        kind: EventKind::TickBegin,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// After the first push the backing storage never moves: the hot
    /// path is allocation-free no matter how many events flow through.
    #[test]
    fn storage_is_stable_after_warm_up(
        cap in 1usize..64,
        pushes in 1usize..500,
    ) {
        let mut ring = EventRing::new(cap);
        ring.push(ev(0));
        let addr = ring.storage_addr();
        prop_assert!(addr != 0);
        for i in 1..pushes as u64 {
            ring.push(ev(i));
            prop_assert_eq!(ring.storage_addr(), addr);
        }
        prop_assert!(ring.len() <= cap);
    }

    /// The ring always retains exactly the most recent
    /// `min(total, capacity)` events, oldest first.
    #[test]
    fn wraparound_preserves_most_recent(
        cap in 1usize..32,
        ticks in vec(any::<u64>(), 0..200),
    ) {
        let mut ring = EventRing::new(cap);
        for &t in &ticks {
            ring.push(ev(t));
        }
        let kept = ring.in_order();
        let expect_len = ticks.len().min(cap);
        prop_assert_eq!(kept.len(), expect_len);
        let expected: Vec<u64> = ticks[ticks.len() - expect_len..].to_vec();
        let got: Vec<u64> = kept.iter().map(|e| e.tick).collect();
        prop_assert_eq!(got, expected);
        prop_assert_eq!(ring.total(), ticks.len() as u64);
        prop_assert_eq!(ring.dropped(), (ticks.len() - expect_len) as u64);
    }
}
