//! Deterministic causal profiling over a replayed schedule.
//!
//! The controlled scheduler serialises visible operations, so a replay
//! yields a total order of *ticks* (logical time) plus the §8 sync-event
//! trace. This module walks that order **backwards from the final tick**
//! along happens-before edges — lock hand-offs, condvar notifies, thread
//! spawn/join — extracting one critical path through the execution and
//! attributing every tick on it to a bucket:
//!
//! * `lock:<site>/waited` — ticks a critical-path thread spent blocked on
//!   a mutex (the path continues through the release that unblocked it);
//! * `lock:<site>/held` — on-CPU ticks executed while holding a mutex
//!   (contention potential: shrinking these shortens every waiter);
//! * `cond:<cv>` — ticks blocked in a condvar wait (path continues
//!   through the notify);
//! * `join:T<t>` — ticks blocked joining a thread (path continues through
//!   the joined thread's final tick);
//! * `sched:spawn` — ticks between a spawn and the child's first
//!   schedule;
//! * `cpu:T<t>` — remaining on-CPU ticks of thread `t` (invisible code
//!   between visible operations).
//!
//! Every step attributes the half-open interval `(j, k]` where `j < k`
//! is the predecessor tick, so the bucket totals **telescope to exactly
//! the total tick count** — the report's shares always sum to 100%.
//!
//! Inputs are logical only (tick numbers, thread/object ids): wall-clock
//! durations never enter the computation, so the same demo profiles to a
//! byte-identical report on every replay and every machine.
//!
//! Only events logged *inside* a scheduler critical section are used for
//! tick arithmetic (`MutexRequest/Acquire/Release`, `CondWaitBegin`,
//! `CondNotify`, spawn/join); `CondWaitReturn` is logged outside the
//! critical section and its stamp may legitimately vary between replays.

use std::collections::{BTreeMap, HashMap};

use crate::json::Json;

/// One synchronisation fact feeding the profiler. A deliberately small
/// mirror of the analysis crate's sync events: only the variants whose
/// tick stamps are critical-section-deterministic.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum ProfileEvent {
    /// `tid` began a blocking acquire of `mutex` (first attempt's tick).
    MutexRequest {
        /// Requesting thread.
        tid: u32,
        /// Mutex id.
        mutex: u32,
        /// Tick of the first acquire attempt.
        tick: u64,
    },
    /// `tid` acquired `mutex` at `tick`.
    MutexAcquire {
        /// Acquiring thread.
        tid: u32,
        /// Mutex id.
        mutex: u32,
        /// Tick of the successful attempt.
        tick: u64,
    },
    /// `tid` released `mutex` at `tick`.
    MutexRelease {
        /// Releasing thread.
        tid: u32,
        /// Mutex id.
        mutex: u32,
        /// Tick of the release critical section.
        tick: u64,
    },
    /// `tid` entered a condvar wait (atomically releasing its mutex).
    CondWaitBegin {
        /// Waiting thread.
        tid: u32,
        /// Condvar id.
        cond: u32,
        /// Tick of the wait-begin critical section.
        tick: u64,
    },
    /// A thread signalled condvar `cond` at `tick`.
    CondNotify {
        /// Condvar id.
        cond: u32,
        /// Tick of the notify critical section.
        tick: u64,
    },
    /// A parent spawned `child` at `tick`.
    ThreadSpawn {
        /// The spawned thread.
        child: u32,
        /// Tick of the spawn critical section.
        tick: u64,
    },
    /// `tid` polled a join on `target` at `tick` (`done` on the final,
    /// successful attempt).
    ThreadJoin {
        /// Joining thread.
        tid: u32,
        /// Joined thread.
        target: u32,
        /// Tick of this join attempt.
        tick: u64,
        /// Whether the target had finished.
        done: bool,
    },
}

impl ProfileEvent {
    fn tick(&self) -> u64 {
        match *self {
            ProfileEvent::MutexRequest { tick, .. }
            | ProfileEvent::MutexAcquire { tick, .. }
            | ProfileEvent::MutexRelease { tick, .. }
            | ProfileEvent::CondWaitBegin { tick, .. }
            | ProfileEvent::CondNotify { tick, .. }
            | ProfileEvent::ThreadSpawn { tick, .. }
            | ProfileEvent::ThreadJoin { tick, .. } => tick,
        }
    }
}

/// Everything the profiler needs about one replayed execution, in
/// logical time only. Built from an `ExecReport` by the core crate
/// (`ExecReport::profile_input`) or synthesised directly in tests.
#[derive(Clone, Debug, Default)]
pub struct ProfileInput {
    /// The complete schedule: `(tick, owner tid)` for ticks `1..=N`,
    /// from the schedule trace. Order is normalised internally.
    pub schedule: Vec<(u64, u32)>,
    /// Sync events with critical-section tick stamps. Order is
    /// normalised internally, so any traversal order is fine.
    pub events: Vec<ProfileEvent>,
    /// Human labels per mutex id (`mutex#N` is substituted when absent).
    pub mutex_labels: BTreeMap<u32, String>,
}

/// One ranked attribution bucket.
#[derive(Clone, Debug, PartialEq)]
pub struct BucketRow {
    /// Bucket name (`lock:<site>/waited`, `cpu:T2`, `sched:spawn`, …).
    pub name: String,
    /// Critical-path ticks attributed to this bucket.
    pub ticks: u64,
    /// `ticks / total_ticks` (0 when the schedule is empty).
    pub share: f64,
}

/// The result of a critical-path walk.
#[derive(Clone, Debug, Default)]
pub struct ProfileReport {
    /// Total ticks in the replay (`N`).
    pub total_ticks: u64,
    /// Number of critical-path segments walked.
    pub segments: u64,
    /// Buckets, ranked by ticks descending then name.
    pub buckets: Vec<BucketRow>,
}

impl ProfileReport {
    /// Sum of all bucket ticks. Always equals [`ProfileReport::total_ticks`]
    /// — the walk partitions `(0, N]` exactly.
    #[must_use]
    pub fn attributed_ticks(&self) -> u64 {
        self.buckets.iter().map(|b| b.ticks).sum()
    }

    /// The ranked text report.
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "critical path: {} segments over {} ticks ({} attributed)\n",
            self.segments,
            self.total_ticks,
            self.attributed_ticks()
        );
        out.push_str("rank  ticks  share  bucket\n");
        for (i, b) in self.buckets.iter().enumerate() {
            out.push_str(&format!(
                "{:>4}  {:>5}  {:>4.1}%  {}\n",
                i + 1,
                b.ticks,
                b.share * 100.0,
                b.name
            ));
        }
        out
    }

    /// The report as JSON (logical time only — byte-identical across
    /// replays of the same demo).
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("total_ticks".into(), Json::Num(self.total_ticks as f64)),
            ("segments".into(), Json::Num(self.segments as f64)),
            (
                "attributed_ticks".into(),
                Json::Num(self.attributed_ticks() as f64),
            ),
            (
                "buckets".into(),
                Json::Arr(
                    self.buckets
                        .iter()
                        .map(|b| {
                            Json::Obj(vec![
                                ("name".into(), Json::Str(b.name.clone())),
                                ("ticks".into(), Json::Num(b.ticks as f64)),
                                ("share".into(), Json::Num(b.share)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Folded-stacks output (`frame;frame count` lines, sorted) for
    /// `flamegraph.pl` / speedscope / inferno.
    #[must_use]
    pub fn folded_stacks(&self) -> String {
        let mut lines: Vec<String> = self
            .buckets
            .iter()
            .map(|b| format!("srr;{} {}\n", b.name.replace('/', ";"), b.ticks))
            .collect();
        lines.sort();
        lines.concat()
    }
}

/// Internal bucket key; ordered so ties rank deterministically.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum Bucket {
    LockWaited(u32),
    LockHeld(u32),
    Cond(u32),
    Join(u32),
    SchedSpawn,
    OnCpu(u32),
    Unknown,
}

struct Prepared {
    /// `owner[tick]` for `1..=n` (`None` on holes — malformed traces).
    owner: Vec<Option<u32>>,
    /// Ticks owned by each tid, ascending.
    owned: HashMap<u32, Vec<u64>>,
    /// Blocking-acquire episodes per tid: `(request, acquire, mutex)`,
    /// acquire == `u64::MAX` when the trace ends mid-wait.
    episodes: HashMap<u32, Vec<(u64, u64, u32)>>,
    /// Release ticks per mutex, ascending.
    releases: HashMap<u32, Vec<u64>>,
    /// Notify ticks per condvar, ascending.
    notifies: HashMap<u32, Vec<u64>>,
    /// `(tid, tick)` of a CondWaitBegin -> condvar id.
    wait_begins: HashMap<(u32, u64), u32>,
    /// `(tid, tick)` of a ThreadJoin attempt -> target tid.
    joins: HashMap<(u32, u64), u32>,
    /// Child tid -> spawn tick.
    spawns: HashMap<u32, u64>,
    /// `(tid, tick)` -> innermost mutex held during that tick.
    held_at: HashMap<(u32, u64), u32>,
}

fn prepare(input: &ProfileInput, n: u64) -> Prepared {
    let mut owner = vec![None; (n + 1) as usize];
    let mut owned: HashMap<u32, Vec<u64>> = HashMap::new();
    let mut schedule = input.schedule.clone();
    schedule.sort_unstable();
    for &(tick, tid) in &schedule {
        if tick >= 1 && tick <= n {
            owner[tick as usize] = Some(tid);
        }
    }
    for (tick, slot) in owner.iter().enumerate().skip(1) {
        if let Some(tid) = slot {
            owned.entry(*tid).or_default().push(tick as u64);
        }
    }

    // Canonical event order: by tick, then variant/fields — makes every
    // derived structure independent of input traversal order.
    let mut events = input.events.clone();
    events.sort_unstable_by(|a, b| a.tick().cmp(&b.tick()).then_with(|| a.cmp(b)));

    let mut episodes: HashMap<u32, Vec<(u64, u64, u32)>> = HashMap::new();
    let mut pending: HashMap<(u32, u32), u64> = HashMap::new();
    let mut releases: HashMap<u32, Vec<u64>> = HashMap::new();
    let mut notifies: HashMap<u32, Vec<u64>> = HashMap::new();
    let mut wait_begins = HashMap::new();
    let mut joins = HashMap::new();
    let mut spawns = HashMap::new();
    // Per-thread lock events in tick order, for the held-lock scan.
    let mut lock_events: HashMap<u32, Vec<(u64, bool, u32)>> = HashMap::new();

    for ev in &events {
        match *ev {
            ProfileEvent::MutexRequest { tid, mutex, tick } => {
                pending.insert((tid, mutex), tick);
            }
            ProfileEvent::MutexAcquire { tid, mutex, tick } => {
                if let Some(r) = pending.remove(&(tid, mutex)) {
                    episodes.entry(tid).or_default().push((r, tick, mutex));
                }
                lock_events
                    .entry(tid)
                    .or_default()
                    .push((tick, true, mutex));
            }
            ProfileEvent::MutexRelease { tid, mutex, tick } => {
                releases.entry(mutex).or_default().push(tick);
                lock_events
                    .entry(tid)
                    .or_default()
                    .push((tick, false, mutex));
            }
            ProfileEvent::CondWaitBegin { tid, cond, tick } => {
                wait_begins.insert((tid, tick), cond);
            }
            ProfileEvent::CondNotify { cond, tick } => {
                notifies.entry(cond).or_default().push(tick);
            }
            ProfileEvent::ThreadSpawn { child, tick } => {
                spawns.entry(child).or_insert(tick);
            }
            ProfileEvent::ThreadJoin {
                tid, target, tick, ..
            } => {
                joins.insert((tid, tick), target);
            }
        }
    }
    // Requests the trace never saw acquired (deadlock, truncated run).
    for ((tid, mutex), r) in pending {
        episodes.entry(tid).or_default().push((r, u64::MAX, mutex));
    }
    for eps in episodes.values_mut() {
        eps.sort_unstable();
    }

    // Which mutex (innermost) each thread held during each of its ticks.
    // An acquire tick counts as held; a release tick still counts as
    // held (the unlock runs at the end of that critical section).
    let mut held_at = HashMap::new();
    for (&tid, ticks) in &owned {
        let evs = lock_events.get(&tid).map(Vec::as_slice).unwrap_or(&[]);
        let mut stack: Vec<u32> = Vec::new();
        let mut i = 0;
        for &k in ticks {
            while i < evs.len() && evs[i].0 < k {
                apply_lock_event(&mut stack, evs[i].1, evs[i].2);
                i += 1;
            }
            let mut held = stack.last().copied();
            if i < evs.len() && evs[i].0 == k {
                let (_, is_acquire, m) = evs[i];
                held = Some(m);
                apply_lock_event(&mut stack, is_acquire, m);
                i += 1;
            }
            if let Some(m) = held {
                held_at.insert((tid, k), m);
            }
        }
    }

    Prepared {
        owner,
        owned,
        episodes,
        releases,
        notifies,
        wait_begins,
        joins,
        spawns,
        held_at,
    }
}

fn apply_lock_event(stack: &mut Vec<u32>, is_acquire: bool, mutex: u32) {
    if is_acquire {
        stack.push(mutex);
    } else if let Some(pos) = stack.iter().rposition(|&m| m == mutex) {
        stack.remove(pos);
    }
}

/// Largest element of a sorted slice strictly below `limit`.
fn last_below(sorted: &[u64], limit: u64) -> Option<u64> {
    match sorted.partition_point(|&t| t < limit) {
        0 => None,
        i => Some(sorted[i - 1]),
    }
}

/// Runs the critical-path walk over `input`, producing ranked buckets
/// whose tick totals sum exactly to the schedule length.
#[must_use]
pub fn profile(input: &ProfileInput) -> ProfileReport {
    let n = input.schedule.iter().map(|&(t, _)| t).max().unwrap_or(0);
    if n == 0 {
        return ProfileReport::default();
    }
    let p = prepare(input, n);
    let mut totals: BTreeMap<Bucket, u64> = BTreeMap::new();
    let mut segments = 0u64;
    let mut k = n;
    while k > 0 {
        let (j, bucket) = step(&p, k);
        debug_assert!(j < k, "walk must strictly decrease ({j} !< {k})");
        *totals.entry(bucket).or_insert(0) += k - j;
        segments += 1;
        k = j;
    }

    let mut buckets: Vec<BucketRow> = totals
        .into_iter()
        .map(|(b, ticks)| BucketRow {
            name: bucket_name(&b, &p, input),
            ticks,
            share: ticks as f64 / n as f64,
        })
        .collect();
    buckets.sort_by(|a, b| b.ticks.cmp(&a.ticks).then_with(|| a.name.cmp(&b.name)));
    ProfileReport {
        total_ticks: n,
        segments,
        buckets,
    }
}

/// One backward step from tick `k`: the predecessor tick `j < k` and the
/// bucket absorbing the interval `(j, k]`.
fn step(p: &Prepared, k: u64) -> (u64, Bucket) {
    let Some(t) = p.owner.get(k as usize).copied().flatten() else {
        // Hole in the schedule trace — walk through it one tick at a time.
        return (k - 1, Bucket::Unknown);
    };
    let owned = p.owned.get(&t).map(Vec::as_slice).unwrap_or(&[]);
    let prev = last_below(owned, k).unwrap_or(0);

    // Consecutive ticks (or the very first tick): plain on-CPU work,
    // attributed to the lock held if any.
    if prev + 1 == k || k == 1 {
        return (k - 1, on_cpu_bucket(p, t, k));
    }

    // A gap before k: find what t was blocked on.
    if prev > 0 {
        // Mid-acquire of a mutex? The path continues through the release
        // that let this attempt run.
        if let Some(&(_, _, m)) = p
            .episodes
            .get(&t)
            .and_then(|eps| eps.iter().find(|&&(r, a, _)| r < k && k <= a))
        {
            let j = p
                .releases
                .get(&m)
                .and_then(|rel| last_below(rel, k))
                .filter(|&j| j > prev)
                .unwrap_or(prev);
            return (j, Bucket::LockWaited(m));
        }
        // Returning from a condvar wait entered at `prev`? The path
        // continues through the notify that woke it (timeouts fall back
        // to the wait-begin tick).
        if let Some(&c) = p.wait_begins.get(&(t, prev)) {
            let j = p
                .notifies
                .get(&c)
                .and_then(|nt| last_below(nt, k))
                .filter(|&j| j > prev)
                .unwrap_or(prev);
            return (j, Bucket::Cond(c));
        }
        // A join attempt that had to block? The path continues through
        // the target's final tick.
        if let Some(&target) = p.joins.get(&(t, k)) {
            let j = p
                .owned
                .get(&target)
                .and_then(|ticks| last_below(ticks, k))
                .filter(|&j| j > prev)
                .unwrap_or(prev);
            return (j, Bucket::Join(target));
        }
        // Runnable but descheduled: whoever ran during the gap owns that
        // time — walk back one tick and attribute it to them next round.
        return (k - 1, on_cpu_bucket(p, t, k));
    }

    // First tick of t ever: charge the spawn-to-first-schedule gap.
    if let Some(&s) = p.spawns.get(&t) {
        if s < k {
            return (s, Bucket::SchedSpawn);
        }
    }
    (k - 1, on_cpu_bucket(p, t, k))
}

fn on_cpu_bucket(p: &Prepared, t: u32, k: u64) -> Bucket {
    match p.held_at.get(&(t, k)) {
        Some(&m) => Bucket::LockHeld(m),
        None => Bucket::OnCpu(t),
    }
}

fn bucket_name(b: &Bucket, _p: &Prepared, input: &ProfileInput) -> String {
    let lock_label = |m: &u32| {
        input
            .mutex_labels
            .get(m)
            .cloned()
            .unwrap_or_else(|| format!("mutex#{m}"))
    };
    match b {
        Bucket::LockWaited(m) => format!("lock:{}/waited", lock_label(m)),
        Bucket::LockHeld(m) => format!("lock:{}/held", lock_label(m)),
        Bucket::Cond(c) => format!("cond:cond#{c}/wait"),
        Bucket::Join(t) => format!("join:T{t}"),
        Bucket::SchedSpawn => "sched:spawn".to_owned(),
        Bucket::OnCpu(t) => format!("cpu:T{t}"),
        Bucket::Unknown => "sched:unknown".to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schedule(owners: &[u32]) -> Vec<(u64, u32)> {
        owners
            .iter()
            .enumerate()
            .map(|(i, &t)| ((i + 1) as u64, t))
            .collect()
    }

    #[test]
    fn empty_schedule_is_empty_report() {
        let rep = profile(&ProfileInput::default());
        assert_eq!(rep.total_ticks, 0);
        assert_eq!(rep.attributed_ticks(), 0);
        assert!(rep.buckets.is_empty());
    }

    #[test]
    fn single_thread_is_all_on_cpu() {
        let input = ProfileInput {
            schedule: schedule(&[0, 0, 0, 0]),
            ..Default::default()
        };
        let rep = profile(&input);
        assert_eq!(rep.total_ticks, 4);
        assert_eq!(rep.attributed_ticks(), 4);
        assert_eq!(rep.buckets.len(), 1);
        assert_eq!(rep.buckets[0].name, "cpu:T0");
        assert!((rep.buckets[0].share - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lock_wait_attributes_to_waited_bucket() {
        // T0: acquire m at 1, work 2-3, release at 4.
        // T1: request at 2 (fails), blocked, acquires at 5, releases 6.
        let input = ProfileInput {
            schedule: schedule(&[0, 1, 0, 0, 1, 1]),
            events: vec![
                ProfileEvent::MutexAcquire {
                    tid: 0,
                    mutex: 1,
                    tick: 1,
                },
                ProfileEvent::MutexRequest {
                    tid: 1,
                    mutex: 1,
                    tick: 2,
                },
                ProfileEvent::MutexRelease {
                    tid: 0,
                    mutex: 1,
                    tick: 4,
                },
                ProfileEvent::MutexAcquire {
                    tid: 1,
                    mutex: 1,
                    tick: 5,
                },
                ProfileEvent::MutexRelease {
                    tid: 1,
                    mutex: 1,
                    tick: 6,
                },
            ],
            mutex_labels: [(1, "queue".to_owned())].into_iter().collect(),
        };
        let rep = profile(&input);
        assert_eq!(rep.attributed_ticks(), rep.total_ticks);
        let names: Vec<&str> = rep.buckets.iter().map(|b| b.name.as_str()).collect();
        // 6<-5 held by T1 (2 ticks: 5,6), 5<-4 waited (release at 4 enabled
        // it), 4<-1 held by T0 (walk 4<-3<-2? no: 4,3 consecutive held; 2
        // is T1's failed attempt inside the episode -> waited to release?
        // release(4) not < 2, falls back prev... let's just check the
        // invariants and key buckets.
        assert!(names.contains(&"lock:queue/waited"));
        assert!(names.contains(&"lock:queue/held"));
        let waited = rep
            .buckets
            .iter()
            .find(|b| b.name == "lock:queue/waited")
            .unwrap();
        assert!(waited.ticks >= 1);
    }

    #[test]
    fn cond_wait_attributes_and_jumps_to_notify() {
        // T1: lock(2), wait-begin on cond 7 at tick 2 (releases m2).
        // T0: lock at 3, notify at 4, release at 5.
        // T1: reacquire request+acquire at 6, release 7, final work 8.
        let input = ProfileInput {
            schedule: schedule(&[1, 1, 0, 0, 0, 1, 1, 1]),
            events: vec![
                ProfileEvent::MutexAcquire {
                    tid: 1,
                    mutex: 2,
                    tick: 1,
                },
                ProfileEvent::CondWaitBegin {
                    tid: 1,
                    cond: 7,
                    tick: 2,
                },
                ProfileEvent::MutexRelease {
                    tid: 1,
                    mutex: 2,
                    tick: 2,
                },
                ProfileEvent::MutexAcquire {
                    tid: 0,
                    mutex: 2,
                    tick: 3,
                },
                ProfileEvent::CondNotify { cond: 7, tick: 4 },
                ProfileEvent::MutexRelease {
                    tid: 0,
                    mutex: 2,
                    tick: 5,
                },
                ProfileEvent::MutexRequest {
                    tid: 1,
                    mutex: 2,
                    tick: 6,
                },
                ProfileEvent::MutexAcquire {
                    tid: 1,
                    mutex: 2,
                    tick: 6,
                },
                ProfileEvent::MutexRelease {
                    tid: 1,
                    mutex: 2,
                    tick: 7,
                },
            ],
            ..Default::default()
        };
        let rep = profile(&input);
        assert_eq!(rep.attributed_ticks(), 8);
        let names: Vec<&str> = rep.buckets.iter().map(|b| b.name.as_str()).collect();
        assert!(
            names.contains(&"cond:cond#7/wait"),
            "missing cond bucket in {names:?}"
        );
    }

    #[test]
    fn join_gap_attributes_to_join_bucket() {
        // T0 spawns T1 at 1, tries join at 2 (not done), blocked while T1
        // runs 3-5, join completes at 6.
        let input = ProfileInput {
            schedule: schedule(&[0, 0, 1, 1, 1, 0]),
            events: vec![
                ProfileEvent::ThreadSpawn { child: 1, tick: 1 },
                ProfileEvent::ThreadJoin {
                    tid: 0,
                    target: 1,
                    tick: 2,
                    done: false,
                },
                ProfileEvent::ThreadJoin {
                    tid: 0,
                    target: 1,
                    tick: 6,
                    done: true,
                },
            ],
            ..Default::default()
        };
        let rep = profile(&input);
        assert_eq!(rep.attributed_ticks(), 6);
        let join = rep.buckets.iter().find(|b| b.name == "join:T1").unwrap();
        // 6 <- 5 (T1's last tick): 1 tick in the join bucket, then the
        // walk continues through T1's on-CPU run.
        assert_eq!(join.ticks, 1);
        assert!(rep.buckets.iter().any(|b| b.name == "cpu:T1"));
    }

    #[test]
    fn spawn_gap_attributes_to_sched_spawn() {
        // T0 runs 1-3 (spawn at 2), T1 first scheduled at 4.
        let input = ProfileInput {
            schedule: schedule(&[0, 0, 0, 1]),
            events: vec![ProfileEvent::ThreadSpawn { child: 1, tick: 2 }],
            ..Default::default()
        };
        let rep = profile(&input);
        assert_eq!(rep.attributed_ticks(), 4);
        let spawn = rep
            .buckets
            .iter()
            .find(|b| b.name == "sched:spawn")
            .unwrap();
        // 4 <- 2: ticks 3 and 4 charged to the spawn-to-schedule gap.
        assert_eq!(spawn.ticks, 2);
    }

    #[test]
    fn event_order_does_not_change_the_report() {
        let mut input = ProfileInput {
            schedule: schedule(&[0, 1, 0, 0, 1, 1]),
            events: vec![
                ProfileEvent::MutexAcquire {
                    tid: 0,
                    mutex: 1,
                    tick: 1,
                },
                ProfileEvent::MutexRequest {
                    tid: 1,
                    mutex: 1,
                    tick: 2,
                },
                ProfileEvent::MutexRelease {
                    tid: 0,
                    mutex: 1,
                    tick: 4,
                },
                ProfileEvent::MutexAcquire {
                    tid: 1,
                    mutex: 1,
                    tick: 5,
                },
            ],
            ..Default::default()
        };
        let a = profile(&input).to_json().to_pretty();
        input.events.reverse();
        input.schedule.reverse();
        let b = profile(&input).to_json().to_pretty();
        assert_eq!(a, b);
    }

    #[test]
    fn folded_stacks_shape() {
        let input = ProfileInput {
            schedule: schedule(&[0, 0]),
            ..Default::default()
        };
        let folded = profile(&input).folded_stacks();
        assert_eq!(folded, "srr;cpu:T0 2\n");
    }
}
