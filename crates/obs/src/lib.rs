//! srr-obs: the observability layer for the sparse record/replay stack.
//!
//! Provides the structured event model ([`ObsEvent`]), bounded per-thread
//! event rings ([`EventRing`]), log2 latency histograms ([`Histogram`]),
//! the run-level [`ObsReport`], desynchronisation diagnostics
//! ([`DesyncDiagnostics`]), and the exporters ([`chrome_trace`],
//! [`text_timeline`]). The core runtime depends on this crate and feeds
//! it through an [`Obs`] collector when a [`TraceSpec`] is configured;
//! with tracing off the runtime never constructs a collector, so the
//! instrumented hot path pays only an `Option` check.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chrome;
mod diag;
mod event;
mod farm;
mod hist;
mod json;
pub mod metrics;
pub mod profile;
mod report;
mod ring;

pub use chrome::{chrome_trace, text_timeline};
pub use diag::{first_divergence, DesyncDiagnostics, TickDiff};
pub use event::{EventKind, ObsEvent, ObsOp, StreamId, SysKind};
pub use farm::FarmCounters;
pub use hist::Histogram;
pub use json::Json;
pub use metrics::{Counter, Gauge, MetricHistogram, MetricsRegistry};
pub use profile::{profile, BucketRow, ProfileEvent, ProfileInput, ProfileReport};
pub use report::{ObsReport, StreamCounter, ThreadTrace};
pub use ring::EventRing;

use parking_lot::Mutex;

/// What to trace and how much to retain.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceSpec {
    /// Events retained per thread (and for the scheduler track); older
    /// events are overwritten. Default 256.
    pub ring_capacity: usize,
}

impl Default for TraceSpec {
    fn default() -> Self {
        TraceSpec { ring_capacity: 256 }
    }
}

impl TraceSpec {
    /// The default spec (ring capacity 256).
    #[must_use]
    pub fn new() -> Self {
        TraceSpec::default()
    }

    /// Sets the per-thread ring capacity.
    #[must_use]
    pub fn with_ring_capacity(mut self, capacity: usize) -> Self {
        self.ring_capacity = capacity;
        self
    }
}

struct Inner {
    threads: Vec<EventRing>,
    sched: EventRing,
    tick_latency: Histogram,
    run_lengths: Histogram,
    last_tid: Option<u32>,
    run_len: u64,
}

/// The run-wide trace collector.
///
/// One mutex guards all rings; the scheduler already serialises visible
/// operations (exactly one thread is ever inside the critical section),
/// so the lock is uncontended in controlled runs. `Obs` takes no other
/// locks, making it a safe leaf under the scheduler mutex.
pub struct Obs {
    spec: TraceSpec,
    inner: Mutex<Inner>,
}

impl Obs {
    /// A collector retaining `spec.ring_capacity` events per track.
    #[must_use]
    pub fn new(spec: TraceSpec) -> Self {
        Obs {
            spec,
            inner: Mutex::new(Inner {
                threads: Vec::new(),
                sched: EventRing::new(spec.ring_capacity),
                tick_latency: Histogram::new(),
                run_lengths: Histogram::new(),
                last_tid: None,
                run_len: 0,
            }),
        }
    }

    /// The configured spec.
    #[must_use]
    pub fn spec(&self) -> TraceSpec {
        self.spec
    }

    fn ring_of<'a>(&self, inner: &'a mut Inner, tid: u32) -> &'a mut EventRing {
        let idx = tid as usize;
        while inner.threads.len() <= idx {
            // Ring growth happens at thread registration, not on the
            // steady-state hot path.
            inner.threads.push(EventRing::new(self.spec.ring_capacity));
        }
        &mut inner.threads[idx]
    }

    /// Records an event on `tid`'s track.
    pub fn thread_event(&self, tid: u32, tick: u64, kind: EventKind) {
        let mut inner = self.inner.lock();
        self.ring_of(&mut inner, tid)
            .push(ObsEvent { tid, tick, kind });
    }

    /// Records an event on the scheduler track (attributed to `tid`).
    pub fn sched_event(&self, tid: u32, tick: u64, kind: EventKind) {
        let mut inner = self.inner.lock();
        inner.sched.push(ObsEvent { tid, tick, kind });
    }

    /// Records a tick completion: pushes the `TickEnd` event, feeds the
    /// latency histogram, and advances the run-length accounting.
    pub fn tick_end(&self, tid: u32, tick: u64, dur_nanos: u64, op: ObsOp) {
        let mut inner = self.inner.lock();
        self.ring_of(&mut inner, tid).push(ObsEvent {
            tid,
            tick,
            kind: EventKind::TickEnd { dur_nanos, op },
        });
        inner.tick_latency.record(dur_nanos);
        match inner.last_tid {
            Some(last) if last == tid => inner.run_len += 1,
            _ => {
                if inner.run_len > 0 {
                    let len = inner.run_len;
                    inner.run_lengths.record(len);
                }
                inner.last_tid = Some(tid);
                inner.run_len = 1;
            }
        }
    }

    /// Drains the collector into a report (flushes the trailing run).
    #[must_use]
    pub fn finish(&self) -> ObsReport {
        let mut inner = self.inner.lock();
        if inner.run_len > 0 {
            let len = inner.run_len;
            inner.run_lengths.record(len);
            inner.run_len = 0;
            inner.last_tid = None;
        }
        ObsReport {
            enabled: true,
            tick_latency: inner.tick_latency.clone(),
            run_lengths: inner.run_lengths.clone(),
            threads: inner
                .threads
                .iter()
                .enumerate()
                .map(|(tid, ring)| ThreadTrace {
                    tid: tid as u32,
                    events: ring.in_order(),
                    dropped: ring.dropped(),
                })
                .collect(),
            scheduler: ThreadTrace {
                tid: u32::MAX,
                events: inner.sched.in_order(),
                dropped: inner.sched.dropped(),
            },
            streams: Vec::new(),
            desync: None,
        }
    }
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs").field("spec", &self.spec).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collector_tracks_and_runs() {
        let obs = Obs::new(TraceSpec::new().with_ring_capacity(16));
        // Schedule T0 T0 T1 T0 -> runs of 2, 1, 1.
        for (tick, tid) in [(1u64, 0u32), (2, 0), (3, 1), (4, 0)] {
            obs.thread_event(tid, tick, EventKind::TickBegin);
            obs.tick_end(tid, tick, 10, ObsOp::Atomic);
        }
        obs.sched_event(0, 4, EventKind::Broadcast);
        let report = obs.finish();
        assert!(report.enabled);
        assert_eq!(report.threads.len(), 2);
        assert_eq!(report.tick_order(), vec![(0, 1), (0, 2), (1, 3), (0, 4)]);
        assert_eq!(report.tick_latency.count(), 4);
        assert_eq!(report.run_lengths.count(), 3);
        assert_eq!(report.run_lengths.max(), 2);
        assert_eq!(report.scheduler.events.len(), 1);
    }

    #[test]
    fn trace_spec_builder() {
        let spec = TraceSpec::new().with_ring_capacity(1024);
        assert_eq!(spec.ring_capacity, 1024);
        assert_eq!(TraceSpec::default().ring_capacity, 256);
    }
}
