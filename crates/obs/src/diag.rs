//! Desynchronisation diagnostics: pinpoint the first divergent tick.
//!
//! A hard desynchronisation (§4) tells the user *that* replay diverged;
//! this module tells them *where*: the recorded-vs-replayed tick diff,
//! the failing demo stream and offset, and the last events each thread
//! managed to trace before the run stopped.

use std::fmt::Write as _;

use crate::event::EventKind;
use crate::json::Json;
use crate::report::{ObsReport, ThreadTrace};

/// One row of the recorded-vs-replayed schedule diff.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TickDiff {
    /// Zero-based index into the compared schedules.
    pub index: usize,
    /// The thread the recording scheduled here (`None`: recording ended).
    pub recorded: Option<u32>,
    /// The thread replay scheduled here (`None`: replay ended).
    pub replayed: Option<u32>,
}

/// Finds the first position where the recorded and replayed schedules
/// disagree (`None` when one is a prefix of the other and equal so far —
/// including the both-empty case).
#[must_use]
pub fn first_divergence(recorded: &[(u32, u64)], replayed: &[(u32, u64)]) -> Option<TickDiff> {
    let len = recorded.len().max(replayed.len());
    for i in 0..len {
        let rec = recorded.get(i).map(|&(tid, _)| tid);
        let rep = replayed.get(i).map(|&(tid, _)| tid);
        match (rec, rep) {
            (Some(a), Some(b)) if a == b => continue,
            (None, None) => return None,
            _ => {
                return Some(TickDiff {
                    index: i,
                    recorded: rec,
                    replayed: rep,
                })
            }
        }
    }
    None
}

/// A structured desynchronisation report, built from the obs traces and
/// the recorded schedule when a replay run desynchronises.
#[derive(Clone, Debug, Default)]
pub struct DesyncDiagnostics {
    /// The tick at which the desync was raised.
    pub tick: u64,
    /// The violated constraint (e.g. `"queue-schedule"`).
    pub constraint: String,
    /// The demo stream implicated (`"QUEUE"`, `"SYSCALL"`, `"CONSOLE"`…).
    pub stream: String,
    /// Entry offset into that stream at the failure point.
    pub offset: u64,
    /// The thread active when the desync surfaced, when known.
    pub thread: Option<u32>,
    /// First divergent position of the recorded-vs-replayed tick diff
    /// (`None` when replay simply fell off the end of the recording, or
    /// when tracing was off and no replayed schedule is available).
    pub first_divergence: Option<TickDiff>,
    /// Final `(stream, offset)` cursor positions observed during replay.
    pub stream_cursors: Vec<(String, u64)>,
    /// The last retained events per thread (plus the scheduler track).
    pub last_events: Vec<ThreadTrace>,
}

impl DesyncDiagnostics {
    /// Builds diagnostics from the failure point, the recorded schedule
    /// (from the demo's QUEUE stream), and the obs report of the replay.
    #[must_use]
    pub fn build(
        tick: u64,
        constraint: &str,
        stream: &str,
        offset: u64,
        recorded: &[(u32, u64)],
        obs: &ObsReport,
    ) -> Self {
        let replayed = obs.tick_order();
        let thread = replayed.last().map(|&(tid, _)| tid);
        let mut cursors: Vec<(String, u64)> = Vec::new();
        for trace in obs.threads.iter().chain(std::iter::once(&obs.scheduler)) {
            for ev in &trace.events {
                if let EventKind::StreamCursor { stream, offset } = ev.kind {
                    match cursors.iter_mut().find(|(s, _)| *s == stream.name()) {
                        Some(entry) => entry.1 = entry.1.max(offset),
                        None => cursors.push((stream.name().to_owned(), offset)),
                    }
                }
            }
        }
        let mut last_events = obs.threads.clone();
        if !obs.scheduler.events.is_empty() {
            last_events.push(obs.scheduler.clone());
        }
        DesyncDiagnostics {
            tick,
            constraint: constraint.to_owned(),
            stream: stream.to_owned(),
            offset,
            thread,
            // With tracing off there is no replayed schedule; an empty
            // diff would blame position 0 rather than admit ignorance.
            first_divergence: if obs.enabled {
                first_divergence(recorded, &replayed)
            } else {
                None
            },
            stream_cursors: cursors,
            last_events,
        }
    }

    /// Short context lines suitable for embedding in a desync error.
    #[must_use]
    pub fn summary_lines(&self) -> Vec<String> {
        let mut lines = Vec::new();
        lines.push(format!(
            "stream {} exhausted/diverged at entry {}",
            self.stream, self.offset
        ));
        if let Some(tid) = self.thread {
            lines.push(format!("last replayed thread: T{tid}"));
        }
        match self.first_divergence {
            Some(d) => lines.push(format!(
                "first schedule divergence at position {}: recorded {} vs replayed {}",
                d.index,
                d.recorded
                    .map_or_else(|| "<end>".to_owned(), |t| format!("T{t}")),
                d.replayed
                    .map_or_else(|| "<end>".to_owned(), |t| format!("T{t}")),
            )),
            None => lines
                .push("replayed schedule matches the recording up to the failure point".to_owned()),
        }
        for (stream, offset) in &self.stream_cursors {
            lines.push(format!("cursor {stream} @ {offset}"));
        }
        lines
    }

    /// Machine-readable form, embedded under `"desync"` in `srr trace`
    /// output so downstream tools (`srr stats --vet`) can join the
    /// diverged stream against a static escape map.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let divergence = match self.first_divergence {
            Some(d) => Json::Obj(vec![
                ("index".to_owned(), Json::Num(d.index as f64)),
                (
                    "recorded".to_owned(),
                    d.recorded.map_or(Json::Null, |t| Json::Num(f64::from(t))),
                ),
                (
                    "replayed".to_owned(),
                    d.replayed.map_or(Json::Null, |t| Json::Num(f64::from(t))),
                ),
            ]),
            None => Json::Null,
        };
        Json::Obj(vec![
            ("tick".to_owned(), Json::Num(self.tick as f64)),
            ("constraint".to_owned(), Json::Str(self.constraint.clone())),
            ("stream".to_owned(), Json::Str(self.stream.clone())),
            ("offset".to_owned(), Json::Num(self.offset as f64)),
            (
                "thread".to_owned(),
                self.thread.map_or(Json::Null, |t| Json::Num(f64::from(t))),
            ),
            ("first_divergence".to_owned(), divergence),
            (
                "stream_cursors".to_owned(),
                Json::Obj(
                    self.stream_cursors
                        .iter()
                        .map(|(s, o)| (s.clone(), Json::Num(*o as f64)))
                        .collect(),
                ),
            ),
        ])
    }

    /// The full human-readable report: summary, diff, per-thread tails.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "desync diagnostics: constraint `{}` at tick {} (stream {} @ entry {})",
            self.constraint, self.tick, self.stream, self.offset
        );
        for line in self.summary_lines() {
            let _ = writeln!(out, "  {line}");
        }
        for trace in &self.last_events {
            let label = if trace.tid == u32::MAX {
                "scheduler".to_owned()
            } else {
                format!("T{}", trace.tid)
            };
            let _ = writeln!(
                out,
                "  last events of {label} ({} retained, {} dropped):",
                trace.events.len(),
                trace.dropped
            );
            for ev in trace.events.iter().rev().take(8).rev() {
                let _ = writeln!(out, "    tick {:>6}  {:?}", ev.tick, ev.kind);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn divergence_found_mid_schedule() {
        let recorded = vec![(0, 1), (1, 2), (0, 3)];
        let replayed = vec![(0, 1), (0, 2), (0, 3)];
        let d = first_divergence(&recorded, &replayed).unwrap();
        assert_eq!(d.index, 1);
        assert_eq!(d.recorded, Some(1));
        assert_eq!(d.replayed, Some(0));
    }

    #[test]
    fn divergence_at_truncation() {
        let recorded = vec![(0, 1), (1, 2)];
        let replayed = vec![(0, 1)];
        let d = first_divergence(&recorded, &replayed).unwrap();
        assert_eq!(d.index, 1);
        assert_eq!(d.recorded, Some(1));
        assert_eq!(d.replayed, None);
    }

    #[test]
    fn no_divergence_when_equal() {
        let sched = vec![(0, 1), (1, 2)];
        assert_eq!(first_divergence(&sched, &sched), None);
        assert_eq!(first_divergence(&[], &[]), None);
    }

    #[test]
    fn json_form_names_stream_and_survives_reparse() {
        let diag = DesyncDiagnostics {
            tick: 41,
            constraint: "queue-schedule".into(),
            stream: "QUEUE".into(),
            offset: 40,
            thread: Some(2),
            first_divergence: Some(TickDiff {
                index: 7,
                recorded: Some(1),
                replayed: None,
            }),
            stream_cursors: vec![("QUEUE".into(), 40), ("CONSOLE".into(), 3)],
            ..DesyncDiagnostics::default()
        };
        let doc = Json::parse(&diag.to_json().to_pretty()).unwrap();
        assert_eq!(doc.get("stream").and_then(Json::as_str), Some("QUEUE"));
        assert_eq!(doc.get("offset").and_then(Json::as_f64), Some(40.0));
        let div = doc.get("first_divergence").unwrap();
        assert_eq!(div.get("index").and_then(Json::as_f64), Some(7.0));
        assert!(matches!(div.get("replayed"), Some(Json::Null)));
    }

    #[test]
    fn summary_names_stream_and_offset() {
        let diag = DesyncDiagnostics {
            tick: 41,
            constraint: "queue-schedule".into(),
            stream: "QUEUE".into(),
            offset: 40,
            thread: Some(2),
            ..DesyncDiagnostics::default()
        };
        let text = diag.render();
        assert!(text.contains("QUEUE"), "{text}");
        assert!(text.contains("entry 40"), "{text}");
        assert!(text.contains("tick 41"), "{text}");
        assert!(text.contains("T2"), "{text}");
    }
}
