//! A minimal JSON value type with a writer and a parser.
//!
//! The workspace has no JSON dependency; this module (moved here from
//! `srr-bench` so exporters and the CLI can share it) carries a
//! deliberately small value type — the same code serializes the bench
//! reports and Chrome traces and lets the CI gate read them back.

use std::fmt::Write as _;

/// A minimal JSON value: enough for the bench reports and the exporters.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (serialized via Rust's shortest-f64 formatting).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved when serializing.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (`None` on non-objects and absent keys).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// String value, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Bool value, if this is a bool.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array elements, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes with two-space indentation and a trailing newline.
    #[must_use]
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth + 1);
        let close_pad = "  ".repeat(depth);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    let _ = write!(out, "{n}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_json_string(out, s),
            Json::Arr(items) if items.is_empty() => out.push_str("[]"),
            Json::Arr(items) => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad);
                    item.write_pretty(out, depth + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                out.push_str(&close_pad);
                out.push(']');
            }
            Json::Obj(fields) if fields.is_empty() => out.push_str("{}"),
            Json::Obj(fields) => {
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    out.push_str(&pad);
                    write_json_string(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                    out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
                }
                out.push_str(&close_pad);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (strict enough for what [`Json::to_pretty`]
    /// produces; numbers are f64, escapes limited to the common set).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected '{}' at byte {} (found {:?})",
            b as char,
            *pos,
            bytes.get(*pos).map(|b| *b as char)
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    other => return Err(format!("expected ',' or '}}', found {other:?}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    other => return Err(format!("expected ',' or ']', found {other:?}")),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') if bytes[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if bytes[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if bytes[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|e| format!("bad number {text:?}: {e}"))
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    let mut chunk_start = *pos;
    while *pos < bytes.len() {
        match bytes[*pos] {
            b'"' => {
                out.push_str(
                    std::str::from_utf8(&bytes[chunk_start..*pos]).map_err(|e| e.to_string())?,
                );
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                out.push_str(
                    std::str::from_utf8(&bytes[chunk_start..*pos]).map_err(|e| e.to_string())?,
                );
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
                chunk_start = *pos;
            }
            _ => *pos += 1,
        }
    }
    Err("unterminated string".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrip() {
        let doc = Json::Obj(vec![
            ("a".into(), Json::Num(1.5)),
            ("b".into(), Json::Str("x \"quoted\"\nline".into())),
            (
                "c".into(),
                Json::Arr(vec![Json::Bool(true), Json::Null, Json::Num(-2e3)]),
            ),
            ("empty_arr".into(), Json::Arr(vec![])),
            ("empty_obj".into(), Json::Obj(vec![])),
        ]);
        let text = doc.to_pretty();
        let back = Json::parse(&text).expect("parse");
        assert_eq!(back, doc);
    }

    #[test]
    fn json_accessors() {
        let doc = Json::parse(r#"{"x": 3, "s": "hi", "b": false, "arr": [1,2]}"#).unwrap();
        assert_eq!(doc.get("x").and_then(Json::as_f64), Some(3.0));
        assert_eq!(doc.get("s").and_then(Json::as_str), Some("hi"));
        assert_eq!(doc.get("b").and_then(Json::as_bool), Some(false));
        assert_eq!(
            doc.get("arr").and_then(Json::as_array).map(<[_]>::len),
            Some(2)
        );
        assert!(doc.get("missing").is_none());
    }

    #[test]
    fn json_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }
}
