//! Exploration-farm progress counters.
//!
//! The `srr explore` orchestrator folds every worker message into a
//! [`FarmCounters`]: total runs, findings before and after signature
//! dedup, and the two throughput figures the C11Tester line of work
//! treats as the bug-finding metric — runs per second and wall time to
//! the first confirmed race. The counters serialize into the farm's JSON
//! report (and `BENCH_explore.json`) through [`FarmCounters::to_json`]
//! and render back out of either document in `srr stats`.

use crate::json::Json;
use crate::metrics::MetricsRegistry;

/// Aggregated progress of one exploration-farm session.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FarmCounters {
    /// Worker processes (or threads) the farm ran with.
    pub workers: u64,
    /// Completed runs across all workers.
    pub runs: u64,
    /// Shards (work units) completed.
    pub shards: u64,
    /// Raw findings reported by workers, before signature dedup.
    pub findings: u64,
    /// Distinct corpus signatures after dedup.
    pub distinct_signatures: u64,
    /// Runs executed with a directed race target armed (predict feedback).
    pub targeted_runs: u64,
    /// Directed runs whose armed target pair actually raced.
    pub target_hits: u64,
    /// Wall-clock duration of the farm session, in milliseconds.
    pub elapsed_ms: f64,
    /// Wall-clock milliseconds from farm start to the first confirmed
    /// race finding (`None` when no race was found).
    pub time_to_first_race_ms: Option<f64>,
}

impl FarmCounters {
    /// Completed runs per wall-clock second (0 before any time passes).
    #[must_use]
    pub fn runs_per_sec(&self) -> f64 {
        if self.elapsed_ms <= 0.0 {
            0.0
        } else {
            self.runs as f64 / (self.elapsed_ms / 1_000.0)
        }
    }

    /// The counters as a JSON object (the `"farm"` section of the
    /// explore report).
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("workers".to_owned(), Json::Num(self.workers as f64)),
            ("runs".to_owned(), Json::Num(self.runs as f64)),
            ("shards".to_owned(), Json::Num(self.shards as f64)),
            ("findings".to_owned(), Json::Num(self.findings as f64)),
            (
                "distinct_signatures".to_owned(),
                Json::Num(self.distinct_signatures as f64),
            ),
            (
                "targeted_runs".to_owned(),
                Json::Num(self.targeted_runs as f64),
            ),
            ("target_hits".to_owned(), Json::Num(self.target_hits as f64)),
            ("elapsed_ms".to_owned(), Json::Num(self.elapsed_ms)),
            ("runs_per_sec".to_owned(), Json::Num(self.runs_per_sec())),
            (
                "time_to_first_race_ms".to_owned(),
                match self.time_to_first_race_ms {
                    Some(ms) => Json::Num(ms),
                    None => Json::Null,
                },
            ),
        ])
    }

    /// Reads counters back out of a `"farm"` JSON object (fields default
    /// to zero / `None` when absent, so older documents still render).
    #[must_use]
    pub fn from_json(doc: &Json) -> FarmCounters {
        let num = |k: &str| doc.get(k).and_then(Json::as_f64).unwrap_or(0.0);
        FarmCounters {
            workers: num("workers") as u64,
            runs: num("runs") as u64,
            shards: num("shards") as u64,
            findings: num("findings") as u64,
            distinct_signatures: num("distinct_signatures") as u64,
            targeted_runs: num("targeted_runs") as u64,
            target_hits: num("target_hits") as u64,
            elapsed_ms: num("elapsed_ms"),
            time_to_first_race_ms: doc.get("time_to_first_race_ms").and_then(Json::as_f64),
        }
    }

    /// Publishes the counters onto the unified metrics plane (gauges for
    /// the levels — each publish replaces the last — so periodic
    /// snapshots track farm progress without double counting).
    pub fn publish(&self, registry: &MetricsRegistry) {
        registry.gauge("farm_workers").set(self.workers);
        registry.gauge("farm_runs").set(self.runs);
        registry.gauge("farm_shards").set(self.shards);
        registry.gauge("farm_findings").set(self.findings);
        registry
            .gauge("farm_distinct_signatures")
            .set(self.distinct_signatures);
        registry.gauge("farm_targeted_runs").set(self.targeted_runs);
        registry.gauge("farm_target_hits").set(self.target_hits);
        registry
            .gauge("farm_elapsed_ms")
            .set(self.elapsed_ms as u64);
        if let Some(ms) = self.time_to_first_race_ms {
            registry.gauge("farm_time_to_first_race_ms").set(ms as u64);
        }
    }

    /// One-line progress rendering, used for the live farm ticker and the
    /// `srr stats` farm section.
    #[must_use]
    pub fn render(&self) -> String {
        let ttfr = match self.time_to_first_race_ms {
            Some(ms) => format!("{ms:.0} ms"),
            None => "-".to_owned(),
        };
        format!(
            "workers {}  runs {}  {:.0} runs/sec  sigs {} ({} raw)  first race {}  targeted {}/{}",
            self.workers,
            self.runs,
            self.runs_per_sec(),
            self.distinct_signatures,
            self.findings,
            ttfr,
            self.target_hits,
            self.targeted_runs,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_derivation_and_roundtrip() {
        let c = FarmCounters {
            workers: 4,
            runs: 500,
            shards: 10,
            findings: 40,
            distinct_signatures: 3,
            targeted_runs: 16,
            target_hits: 2,
            elapsed_ms: 2_000.0,
            time_to_first_race_ms: Some(130.5),
        };
        assert!((c.runs_per_sec() - 250.0).abs() < 1e-9);
        let back = FarmCounters::from_json(&c.to_json());
        assert_eq!(back, c);
        let rendered = c.render();
        assert!(rendered.contains("250 runs/sec"), "{rendered}");
        assert!(rendered.contains("sigs 3"), "{rendered}");
    }

    #[test]
    fn publish_sets_gauges() {
        let reg = MetricsRegistry::new();
        let c = FarmCounters {
            workers: 2,
            runs: 9,
            time_to_first_race_ms: Some(42.7),
            ..FarmCounters::default()
        };
        c.publish(&reg);
        assert_eq!(reg.gauge("farm_workers").get(), 2);
        assert_eq!(reg.gauge("farm_runs").get(), 9);
        assert_eq!(reg.gauge("farm_time_to_first_race_ms").get(), 42);
        // Re-publishing replaces levels rather than accumulating.
        c.publish(&reg);
        assert_eq!(reg.gauge("farm_runs").get(), 9);
    }

    #[test]
    fn zero_time_and_missing_fields_are_safe() {
        let c = FarmCounters::default();
        assert_eq!(c.runs_per_sec(), 0.0);
        assert!(c.render().contains("first race -"));
        let sparse = Json::parse(r#"{"runs": 7}"#).unwrap();
        let back = FarmCounters::from_json(&sparse);
        assert_eq!(back.runs, 7);
        assert_eq!(back.time_to_first_race_ms, None);
    }
}
