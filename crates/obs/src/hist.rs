//! Fixed-bucket log2 histograms (HDR-style, no deps).
//!
//! 64 power-of-two buckets cover the full `u64` range; recording is one
//! `leading_zeros` plus a few adds, so the scheduler can feed it from
//! inside the critical section without a measurable cost.

use std::fmt;

const BUCKETS: usize = 64;

/// A log2-bucketed histogram of `u64` samples.
///
/// Bucket `b` covers `[2^(b-1), 2^b)` (bucket 0 holds the value 0), which
/// bounds the relative error of any percentile estimate to 2x — plenty
/// for latency distributions that span six orders of magnitude.
#[derive(Clone, Debug)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((64 - v.leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Rebuilds a histogram from raw parts (the atomic metrics mirror).
    /// `min` uses the `u64::MAX`-when-empty sentinel.
    pub(crate) fn from_parts(
        buckets: [u64; BUCKETS],
        count: u64,
        sum: u64,
        min: u64,
        max: u64,
    ) -> Self {
        Histogram {
            buckets,
            count,
            sum,
            min,
            max,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or 0 if empty.
    #[must_use]
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample, or 0 if empty.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean, or 0.0 if empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// An upper bound on the `q`-quantile (`q` in `[0, 1]`): the top edge
    /// of the bucket holding the `ceil(q * count)`-th sample.
    #[must_use]
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // Top edge of bucket b, clamped to the observed max.
                let edge = if b == 0 { 0 } else { 1u64 << (b.min(63)) };
                return edge.min(self.max);
            }
        }
        self.max
    }

    /// Folds `other` into `self` (bucket-wise add; sum saturates like
    /// [`Histogram::record`]). Merging is associative and commutative, so
    /// per-shard histograms can be combined in any order.
    pub fn merge(&mut self, other: &Histogram) {
        for (b, n) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b = b.saturating_add(*n);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        // `min` keeps the empty sentinel (u64::MAX) unless `other` has
        // samples; `min()`/`max()` already guard the empty case.
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// Raw bucket counts (bucket `b` covers `[2^(b-1), 2^b)`).
    #[must_use]
    pub fn buckets(&self) -> &[u64; BUCKETS] {
        &self.buckets
    }

    /// A one-line summary: `count / mean / p50 / p99 / max`.
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "n={} mean={:.0} p50<={} p99<={} max={}",
            self.count,
            self.mean(),
            self.percentile(0.50),
            self.percentile(0.99),
            self.max()
        )
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.summary())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 63);
    }

    #[test]
    fn records_and_summarises() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 3, 4, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - (1110.0 / 6.0)).abs() < 1e-9);
        // p50 of 6 samples is the 3rd (value 3, bucket [2,4)) -> edge 4.
        assert_eq!(h.percentile(0.5), 4);
        // p100 clamps to the observed max.
        assert_eq!(h.percentile(1.0), 1000);
    }

    #[test]
    fn merge_combines_and_keeps_empty_sentinel() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(3);
        a.record(100);
        b.record(1);
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.count(), 3);
        assert_eq!(merged.min(), 1);
        assert_eq!(merged.max(), 100);
        assert_eq!(merged.sum(), 104);
        // Merging an empty histogram changes nothing (identity element).
        let before = format!("{a:?}");
        a.merge(&Histogram::new());
        assert_eq!(format!("{a:?}"), before);
        // Empty-into-empty keeps min()/max() reporting 0.
        let mut e = Histogram::new();
        e.merge(&Histogram::new());
        assert_eq!(e.min(), 0);
        assert_eq!(e.max(), 0);
    }

    #[test]
    fn empty_is_all_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.percentile(0.99), 0);
        assert_eq!(h.mean(), 0.0);
    }
}
