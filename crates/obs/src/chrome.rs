//! Exporters: Chrome `trace_event` JSON and a human text timeline.
//!
//! The Chrome export loads in Perfetto / `chrome://tracing`: one track
//! per controlled thread plus a scheduler track. Timestamps are the
//! *logical tick numbers* (microsecond units in the viewer), never wall
//! clock — so two replays of the same seed export byte-identical JSON
//! and the golden test can diff them directly. Wall-clock durations stay
//! in the histograms and the text timeline only.

use std::fmt::Write as _;

use crate::event::{EventKind, ObsEvent};
use crate::json::Json;
use crate::report::{ObsReport, ThreadTrace};

/// The synthetic tid used for the scheduler track in the export:
/// one past the largest real thread id.
fn scheduler_tid(report: &ObsReport) -> u32 {
    report
        .threads
        .iter()
        .map(|t| t.tid)
        .max()
        .map_or(0, |m| m + 1)
}

fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

fn num(n: u64) -> Json {
    Json::Num(n as f64)
}

/// A `"M"` thread-name metadata record.
fn meta_thread_name(tid: u32, name: &str) -> Json {
    obj(vec![
        ("ph", Json::Str("M".into())),
        ("name", Json::Str("thread_name".into())),
        ("pid", num(1)),
        ("tid", num(u64::from(tid))),
        ("args", obj(vec![("name", Json::Str(name.to_owned()))])),
    ])
}

/// Converts one event into a trace record, or `None` for events that do
/// not export: `TickBegin` (folded into the `TickEnd` slice) and
/// `Wakeup`/`Broadcast`. The latter two are wall-clock timing artifacts —
/// a targeted wakeup is only issued when the chosen thread happens to be
/// parked at that instant — so they vary between replays of the same
/// seed and would break the export's determinism guarantee. They remain
/// visible in the text timeline and the `SchedCounters` totals.
fn event_record(track_tid: u32, ev: &ObsEvent) -> Option<Json> {
    let instant = |name: String, args: Vec<(&str, Json)>| {
        let mut fields = vec![
            ("ph", Json::Str("i".into())),
            ("name", Json::Str(name)),
            ("pid", num(1)),
            ("tid", num(u64::from(track_tid))),
            ("ts", num(ev.tick)),
            ("s", Json::Str("t".into())),
        ];
        if !args.is_empty() {
            fields.push(("args", obj(args)));
        }
        Some(obj(fields))
    };
    match ev.kind {
        EventKind::TickBegin => None,
        // Complete slice: one tick of critical section. Logical dur=1 so
        // consecutive ticks tile the track; wall-clock dur is excluded
        // for determinism.
        EventKind::TickEnd { op, .. } => Some(obj(vec![
            ("ph", Json::Str("X".into())),
            ("name", Json::Str(op.name().to_owned())),
            ("pid", num(1)),
            ("tid", num(u64::from(track_tid))),
            ("ts", num(ev.tick)),
            ("dur", num(1)),
            ("args", obj(vec![("tick", num(ev.tick))])),
        ])),
        EventKind::Decision { next } => instant(
            "decision".into(),
            vec![(
                "next",
                match next {
                    Some(t) => Json::Str(format!("T{t}")),
                    None => Json::Null,
                },
            )],
        ),
        EventKind::Wakeup { .. } | EventKind::Broadcast => None,
        EventKind::SignalDelivered { signo } => instant(
            "signal".into(),
            vec![("signo", Json::Num(f64::from(signo)))],
        ),
        EventKind::SyscallRecord { kind, seq } => {
            instant(format!("record:{}", kind.name()), vec![("seq", num(seq))])
        }
        EventKind::SyscallReplay { kind, seq } => {
            instant(format!("replay:{}", kind.name()), vec![("seq", num(seq))])
        }
        EventKind::StreamCursor { stream, offset } => instant(
            format!("cursor:{}", stream.name()),
            vec![("offset", num(offset))],
        ),
        EventKind::Desync => instant("desync".into(), vec![]),
    }
}

/// Builds the Chrome `trace_event` document for a traced run.
///
/// Top level is `{"traceEvents": [...], "displayTimeUnit": "ms"}`; every
/// record uses logical ticks for `ts`, so the export is deterministic
/// across replays of the same seed.
#[must_use]
pub fn chrome_trace(report: &ObsReport) -> Json {
    let sched_tid = scheduler_tid(report);
    let mut events = Vec::new();
    for t in &report.threads {
        events.push(meta_thread_name(t.tid, &format!("T{}", t.tid)));
    }
    events.push(meta_thread_name(sched_tid, "scheduler"));
    for t in &report.threads {
        for ev in &t.events {
            if let Some(rec) = event_record(t.tid, ev) {
                events.push(rec);
            }
        }
    }
    for ev in &report.scheduler.events {
        if let Some(rec) = event_record(sched_tid, ev) {
            events.push(rec);
        }
    }
    events.extend(counter_tracks(report, sched_tid));
    Json::Obj(vec![
        ("traceEvents".to_owned(), Json::Arr(events)),
        ("displayTimeUnit".to_owned(), Json::Str("ms".to_owned())),
    ])
}

/// `"C"` counter records derived purely from the retained tick order, so
/// they share the export's determinism guarantee: a stacked
/// `sched.ticks` series (cumulative ticks per thread) and a
/// `sched.run_length` series (current consecutive-run length), one
/// sample per retained tick.
fn counter_tracks(report: &ObsReport, sched_tid: u32) -> Vec<Json> {
    let order = report.tick_order();
    if order.is_empty() {
        return Vec::new();
    }
    let mut cum: std::collections::BTreeMap<u32, u64> = std::collections::BTreeMap::new();
    let mut out = Vec::with_capacity(order.len() * 2);
    let mut run_tid = None;
    let mut run_len = 0u64;
    for &(tid, tick) in &order {
        *cum.entry(tid).or_insert(0) += 1;
        run_len = if run_tid == Some(tid) { run_len + 1 } else { 1 };
        run_tid = Some(tid);
        out.push(obj(vec![
            ("ph", Json::Str("C".into())),
            ("name", Json::Str("sched.ticks".into())),
            ("pid", num(1)),
            ("tid", num(u64::from(sched_tid))),
            ("ts", num(tick)),
            (
                "args",
                Json::Obj(
                    cum.iter()
                        .map(|(t, n)| (format!("T{t}"), num(*n)))
                        .collect(),
                ),
            ),
        ]));
        out.push(obj(vec![
            ("ph", Json::Str("C".into())),
            ("name", Json::Str("sched.run_length".into())),
            ("pid", num(1)),
            ("tid", num(u64::from(sched_tid))),
            ("ts", num(tick)),
            ("args", obj(vec![("run", num(run_len))])),
        ]));
    }
    out
}

fn describe(ev: &ObsEvent) -> String {
    match ev.kind {
        EventKind::TickBegin => "enter".to_owned(),
        EventKind::TickEnd { dur_nanos, op } => {
            format!("{} ({dur_nanos} ns)", op.name())
        }
        EventKind::Decision { next } => match next {
            Some(t) => format!("decision -> T{t}"),
            None => "decision -> <none>".to_owned(),
        },
        EventKind::Wakeup { target } => format!("wakeup T{target}"),
        EventKind::Broadcast => "broadcast".to_owned(),
        EventKind::SignalDelivered { signo } => format!("signal {signo}"),
        EventKind::SyscallRecord { kind, seq } => format!("record {} #{seq}", kind.name()),
        EventKind::SyscallReplay { kind, seq } => format!("replay {} #{seq}", kind.name()),
        EventKind::StreamCursor { stream, offset } => {
            format!("cursor {} @ {offset}", stream.name())
        }
        EventKind::Desync => "DESYNC".to_owned(),
    }
}

/// A human-readable merged timeline of all tracks, newest last. Unlike
/// the Chrome export this *does* include wall-clock durations.
#[must_use]
pub fn text_timeline(report: &ObsReport) -> String {
    let mut rows: Vec<(u64, String, String)> = Vec::new();
    let track = |t: &ThreadTrace, label: &str, rows: &mut Vec<(u64, String, String)>| {
        for ev in &t.events {
            rows.push((ev.tick, label.to_owned(), describe(ev)));
        }
    };
    for t in &report.threads {
        track(t, &format!("T{}", t.tid), &mut rows);
    }
    track(&report.scheduler, "sched", &mut rows);
    rows.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
    let mut out = String::new();
    let _ = writeln!(
        out,
        "tick latency: {}\nrun lengths:  {}",
        report.tick_latency, report.run_lengths
    );
    for (tick, who, what) in rows {
        let _ = writeln!(out, "{tick:>8}  {who:<6} {what}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ObsOp;

    fn sample_report() -> ObsReport {
        let mut r = ObsReport {
            enabled: true,
            ..ObsReport::default()
        };
        r.threads.push(ThreadTrace {
            tid: 0,
            events: vec![
                ObsEvent {
                    tid: 0,
                    tick: 1,
                    kind: EventKind::TickBegin,
                },
                ObsEvent {
                    tid: 0,
                    tick: 1,
                    kind: EventKind::TickEnd {
                        dur_nanos: 1234,
                        op: ObsOp::Atomic,
                    },
                },
            ],
            dropped: 0,
        });
        r.scheduler.tid = u32::MAX;
        r.scheduler.events.push(ObsEvent {
            tid: 0,
            tick: 1,
            kind: EventKind::Wakeup { target: 1 },
        });
        r
    }

    #[test]
    fn chrome_trace_has_tracks_and_slices() {
        let json = chrome_trace(&sample_report());
        let events = json.get("traceEvents").and_then(Json::as_array).unwrap();
        // 2 metadata (T0 + scheduler) + 1 slice + 2 counter samples for
        // the one retained tick; the wakeup is a timing artifact and
        // must NOT export.
        assert_eq!(events.len(), 5);
        let counters: Vec<&Json> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("C"))
            .collect();
        assert_eq!(counters.len(), 2);
        assert!(counters
            .iter()
            .any(|e| e.get("name").and_then(Json::as_str) == Some("sched.ticks")));
        assert!(counters
            .iter()
            .any(|e| e.get("name").and_then(Json::as_str) == Some("sched.run_length")));
        assert!(
            !events
                .iter()
                .any(|e| e.get("name").and_then(Json::as_str) == Some("wakeup")),
            "wakeups are nondeterministic and must stay out of the export"
        );
        let slice = events
            .iter()
            .find(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .expect("one complete slice");
        assert_eq!(slice.get("name").and_then(Json::as_str), Some("atomic"));
        assert_eq!(slice.get("ts").and_then(Json::as_f64), Some(1.0));
        // Round-trips through the parser.
        let text = json.to_pretty();
        assert_eq!(Json::parse(&text).unwrap(), json);
    }

    #[test]
    fn export_excludes_wall_clock() {
        // dur_nanos differs between "runs"; the exports must not.
        let mut a = sample_report();
        let mut b = sample_report();
        if let EventKind::TickEnd { dur_nanos, .. } = &mut a.threads[0].events[1].kind {
            *dur_nanos = 111;
        }
        if let EventKind::TickEnd { dur_nanos, .. } = &mut b.threads[0].events[1].kind {
            *dur_nanos = 999_999;
        }
        assert_eq!(chrome_trace(&a).to_pretty(), chrome_trace(&b).to_pretty());
    }

    #[test]
    fn text_timeline_is_ordered() {
        let text = text_timeline(&sample_report());
        assert!(text.contains("atomic"), "{text}");
        assert!(text.contains("wakeup T1"), "{text}");
        assert!(text.contains("tick latency"), "{text}");
    }
}
