//! The aggregated observability report attached to an execution report.

use crate::diag::DesyncDiagnostics;
use crate::event::{EventKind, ObsEvent};
use crate::hist::Histogram;

/// The retained trace of one thread (or the scheduler track): the most
/// recent events from its ring plus how many older ones were overwritten.
#[derive(Clone, Debug, Default)]
pub struct ThreadTrace {
    /// Controlled-thread id (`u32::MAX` for the scheduler track).
    pub tid: u32,
    /// Retained events, oldest first.
    pub events: Vec<ObsEvent>,
    /// Events lost to ring overwriting.
    pub dropped: u64,
}

/// Per-demo-stream size counters (entries and encoded bytes).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StreamCounter {
    /// Stream name as in the demo directory (`"QUEUE"`, `"SYSCALL"`, …).
    pub stream: String,
    /// Number of recorded entries.
    pub entries: u64,
    /// Encoded size in bytes.
    pub bytes: u64,
}

/// Everything the observability layer gathered over one execution.
///
/// Present on every `ExecReport`; `enabled == false` means tracing was
/// off and only the cheap always-on fields (stream counters) are filled.
#[derive(Clone, Debug, Default)]
pub struct ObsReport {
    /// Whether event tracing was enabled for the run.
    pub enabled: bool,
    /// Wall-clock critical-section (tick) latencies, in nanoseconds.
    pub tick_latency: Histogram,
    /// Consecutive-tick run lengths per scheduled thread.
    pub run_lengths: Histogram,
    /// Per-thread retained event traces, in tid order.
    pub threads: Vec<ThreadTrace>,
    /// The scheduler track (decisions, wakeups, broadcasts, desyncs).
    pub scheduler: ThreadTrace,
    /// Per-stream entry/byte counters (filled on record and replay runs
    /// even when tracing is off).
    pub streams: Vec<StreamCounter>,
    /// Desync diagnostics, when the run desynchronised.
    pub desync: Option<DesyncDiagnostics>,
}

impl ObsReport {
    /// All retained `TickEnd` events across threads, sorted by tick —
    /// the replayed schedule order as far as the rings remember it.
    #[must_use]
    pub fn tick_order(&self) -> Vec<(u32, u64)> {
        let mut out: Vec<(u32, u64)> = self
            .threads
            .iter()
            .flat_map(|t| t.events.iter())
            .filter(|e| matches!(e.kind, EventKind::TickEnd { .. }))
            .map(|e| (e.tid, e.tick))
            .collect();
        out.sort_by_key(|&(_, tick)| tick);
        out
    }

    /// Total events retained across all tracks.
    #[must_use]
    pub fn total_events(&self) -> usize {
        self.threads.iter().map(|t| t.events.len()).sum::<usize>() + self.scheduler.events.len()
    }

    /// Looks up a stream counter by name.
    #[must_use]
    pub fn stream(&self, name: &str) -> Option<&StreamCounter> {
        self.streams.iter().find(|s| s.stream == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ObsOp;

    #[test]
    fn tick_order_merges_and_sorts() {
        let end = |tid: u32, tick: u64| ObsEvent {
            tid,
            tick,
            kind: EventKind::TickEnd {
                dur_nanos: 0,
                op: ObsOp::Other,
            },
        };
        let mut report = ObsReport::default();
        report.threads.push(ThreadTrace {
            tid: 0,
            events: vec![end(0, 1), end(0, 4)],
            dropped: 0,
        });
        report.threads.push(ThreadTrace {
            tid: 1,
            events: vec![
                end(1, 2),
                ObsEvent {
                    tid: 1,
                    tick: 3,
                    kind: EventKind::TickBegin,
                },
                end(1, 3),
            ],
            dropped: 0,
        });
        assert_eq!(report.tick_order(), vec![(0, 1), (1, 2), (1, 3), (0, 4)]);
        assert_eq!(report.total_events(), 5);
    }
}
