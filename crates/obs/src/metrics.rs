//! The unified metrics plane: named atomic counters, gauges and
//! histograms shared by every crate in the stack.
//!
//! A [`MetricsRegistry`] hands out cheap `Arc`-backed handles
//! ([`Counter`], [`Gauge`], [`MetricHistogram`]) that hot paths bump with
//! a single atomic op — no allocation, no lock. Registration is
//! idempotent: asking for the same name twice returns a handle to the
//! same underlying cell, so the scheduler, the vOS and the farm can all
//! contribute to one plane without coordinating ownership.
//!
//! Exposition is pull-based and deterministic: [`MetricsRegistry::snapshot_json`]
//! and [`MetricsRegistry::prometheus_text`] iterate names in sorted
//! order, so two snapshots of identical state are byte-identical.
//!
//! Naming follows Prometheus conventions: `snake_case` bases with a
//! `_total` suffix for counters, and optional `{key="value"}` label
//! suffixes embedded directly in the registered name (e.g.
//! `vos_stream_bytes{stream="QUEUE"}`); the exposition splits the base
//! name off for `# TYPE` lines.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use std::collections::BTreeMap;

use crate::hist::Histogram;
use crate::json::Json;

/// A monotonically increasing counter that saturates at `u64::MAX`
/// instead of wrapping (a wrapped counter reads as a reset to a scraper,
/// a saturated one reads as "off the scale" — strictly less misleading).
#[derive(Clone, Debug)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A detached counter (not in any registry) starting at 0.
    #[must_use]
    pub fn new() -> Self {
        Counter(Arc::new(AtomicU64::new(0)))
    }

    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`, saturating at `u64::MAX`.
    pub fn add(&self, n: u64) {
        if n == 0 {
            return;
        }
        // CAS loop so concurrent adds near the ceiling still saturate
        // rather than wrap. `fetch_update` with a `Some` closure never
        // returns `Err`.
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_add(n))
            });
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl Default for Counter {
    fn default() -> Self {
        Counter::new()
    }
}

/// A gauge: a value that can move both ways (queue depth, live workers).
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// A detached gauge starting at 0.
    #[must_use]
    pub fn new() -> Self {
        Gauge(Arc::new(AtomicU64::new(0)))
    }

    /// Sets the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (saturating).
    pub fn add(&self, n: u64) {
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_add(n))
            });
    }

    /// Subtracts `n` (saturating at 0).
    pub fn sub(&self, n: u64) {
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(n))
            });
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge::new()
    }
}

const BUCKETS: usize = 64;

struct AtomicHist {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl AtomicHist {
    fn new() -> Self {
        AtomicHist {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// A lock-free log2 histogram handle mirroring [`Histogram`]'s bucket
/// layout; [`MetricHistogram::snapshot`] materialises a plain
/// [`Histogram`] for percentile queries and merging.
#[derive(Clone)]
pub struct MetricHistogram(Arc<AtomicHist>);

impl MetricHistogram {
    /// A detached, empty histogram.
    #[must_use]
    pub fn new() -> Self {
        MetricHistogram(Arc::new(AtomicHist::new()))
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        let b = if v == 0 {
            0
        } else {
            ((64 - v.leading_zeros()) as usize).min(BUCKETS - 1)
        };
        self.0.buckets[b].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        let _ = self
            .0
            .sum
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
                Some(s.saturating_add(v))
            });
        self.0.min.fetch_min(v, Ordering::Relaxed);
        self.0.max.fetch_max(v, Ordering::Relaxed);
    }

    /// A point-in-time copy as a plain [`Histogram`]. Not a consistent
    /// cut under concurrent writers (counts may be mid-update), which is
    /// fine for telemetry; quiesced readers get exact values.
    #[must_use]
    pub fn snapshot(&self) -> Histogram {
        let mut buckets = [0u64; BUCKETS];
        for (dst, src) in buckets.iter_mut().zip(self.0.buckets.iter()) {
            *dst = src.load(Ordering::Relaxed);
        }
        Histogram::from_parts(
            buckets,
            self.0.count.load(Ordering::Relaxed),
            self.0.sum.load(Ordering::Relaxed),
            self.0.min.load(Ordering::Relaxed),
            self.0.max.load(Ordering::Relaxed),
        )
    }
}

impl Default for MetricHistogram {
    fn default() -> Self {
        MetricHistogram::new()
    }
}

impl std::fmt::Debug for MetricHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("MetricHistogram")
            .field(&self.snapshot())
            .finish()
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, MetricHistogram>,
}

/// The process-wide metric namespace.
///
/// Handles registered here stay live for the registry's lifetime;
/// snapshots walk the sorted name space so exposition output is
/// deterministic. Typically shared as an `Arc<MetricsRegistry>` between
/// the run configuration, the scheduler and the exporters.
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Mutex<RegistryInner>,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Registers (or finds) the counter `name` and returns a handle.
    #[must_use]
    pub fn counter(&self, name: &str) -> Counter {
        self.inner
            .lock()
            .counters
            .entry(name.to_owned())
            .or_default()
            .clone()
    }

    /// Registers (or finds) the gauge `name` and returns a handle.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Gauge {
        self.inner
            .lock()
            .gauges
            .entry(name.to_owned())
            .or_default()
            .clone()
    }

    /// Registers (or finds) the histogram `name` and returns a handle.
    #[must_use]
    pub fn histogram(&self, name: &str) -> MetricHistogram {
        self.inner
            .lock()
            .histograms
            .entry(name.to_owned())
            .or_default()
            .clone()
    }

    /// Convenience: bump counter `name` by `n` (registering on first use).
    pub fn count(&self, name: &str, n: u64) {
        self.counter(name).add(n);
    }

    /// A deterministic JSON snapshot of every metric, names sorted.
    ///
    /// Values are JSON numbers (f64), exact up to 2^53; counters past
    /// that render rounded but [`Counter::get`] stays exact.
    #[must_use]
    pub fn snapshot_json(&self) -> Json {
        let inner = self.inner.lock();
        let counters = inner
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), Json::Num(v.get() as f64)))
            .collect();
        let gauges = inner
            .gauges
            .iter()
            .map(|(k, v)| (k.clone(), Json::Num(v.get() as f64)))
            .collect();
        let hists = inner
            .histograms
            .iter()
            .map(|(k, v)| {
                let h = v.snapshot();
                (
                    k.clone(),
                    Json::Obj(vec![
                        ("count".into(), Json::Num(h.count() as f64)),
                        ("sum".into(), Json::Num(h.sum() as f64)),
                        ("min".into(), Json::Num(h.min() as f64)),
                        ("max".into(), Json::Num(h.max() as f64)),
                        ("mean".into(), Json::Num(h.mean())),
                        ("p50".into(), Json::Num(h.percentile(0.5) as f64)),
                        ("p99".into(), Json::Num(h.percentile(0.99) as f64)),
                    ]),
                )
            })
            .collect();
        Json::Obj(vec![
            ("counters".into(), Json::Obj(counters)),
            ("gauges".into(), Json::Obj(gauges)),
            ("histograms".into(), Json::Obj(hists)),
        ])
    }

    /// Prometheus text exposition (format 0.0.4): `# TYPE` lines keyed by
    /// the base name (label suffixes embedded in registered names are
    /// passed through), histograms as cumulative `_bucket{le=...}` series
    /// up to the highest non-empty power-of-two edge plus `+Inf`.
    #[must_use]
    pub fn prometheus_text(&self) -> String {
        let inner = self.inner.lock();
        let mut out = String::new();
        let mut typed: std::collections::BTreeSet<&str> = std::collections::BTreeSet::new();
        for (name, c) in &inner.counters {
            let base = base_name(name);
            if typed.insert(base) {
                out.push_str(&format!("# TYPE {base} counter\n"));
            }
            out.push_str(&format!("{name} {}\n", c.get()));
        }
        for (name, g) in &inner.gauges {
            let base = base_name(name);
            if typed.insert(base) {
                out.push_str(&format!("# TYPE {base} gauge\n"));
            }
            out.push_str(&format!("{name} {}\n", g.get()));
        }
        for (name, mh) in &inner.histograms {
            let h = mh.snapshot();
            let base = base_name(name);
            if typed.insert(base) {
                out.push_str(&format!("# TYPE {base} histogram\n"));
            }
            let top = h.buckets().iter().rposition(|&n| n > 0).unwrap_or(0);
            let mut cum = 0u64;
            for (b, &n) in h.buckets().iter().enumerate().take(top + 1) {
                cum += n;
                // Bucket b covers [2^(b-1), 2^b); its le edge is 2^b - 1
                // for full buckets, 0 for the zero bucket.
                let le = if b == 0 { 0 } else { (1u128 << b) as u64 - 1 };
                out.push_str(&format!("{}_bucket{{le=\"{le}\"}} {cum}\n", name));
            }
            out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count()));
            out.push_str(&format!("{name}_sum {}\n", h.sum()));
            out.push_str(&format!("{name}_count {}\n", h.count()));
        }
        out
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("MetricsRegistry")
            .field("counters", &inner.counters.len())
            .field("gauges", &inner.gauges.len())
            .field("histograms", &inner.histograms.len())
            .finish()
    }
}

/// The `# TYPE` key for a registered name: everything before the first
/// `{` (label suffixes are embedded in the name).
fn base_name(name: &str) -> &str {
    name.split('{').next().unwrap_or(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_the_cell() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("sched_wakeups_total");
        let b = reg.counter("sched_wakeups_total");
        a.inc();
        b.add(2);
        assert_eq!(reg.counter("sched_wakeups_total").get(), 3);
    }

    #[test]
    fn counter_saturates_at_max() {
        let c = Counter::new();
        c.add(u64::MAX - 1);
        c.add(5);
        assert_eq!(c.get(), u64::MAX);
        c.inc();
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new();
        g.set(10);
        g.add(5);
        g.sub(12);
        assert_eq!(g.get(), 3);
        g.sub(100);
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn histogram_snapshot_matches_plain() {
        let mh = MetricHistogram::new();
        let mut plain = Histogram::new();
        for v in [0u64, 1, 2, 3, 100, 4096] {
            mh.record(v);
            plain.record(v);
        }
        let snap = mh.snapshot();
        assert_eq!(snap.count(), plain.count());
        assert_eq!(snap.sum(), plain.sum());
        assert_eq!(snap.min(), plain.min());
        assert_eq!(snap.max(), plain.max());
        assert_eq!(snap.percentile(0.99), plain.percentile(0.99));
        assert_eq!(snap.buckets(), plain.buckets());
    }

    #[test]
    fn snapshots_are_sorted_and_deterministic() {
        let reg = MetricsRegistry::new();
        reg.counter("z_total").add(1);
        reg.counter("a_total").add(2);
        reg.gauge("workers").set(4);
        reg.histogram("tick_ns").record(100);
        let a = reg.snapshot_json().to_pretty();
        let b = reg.snapshot_json().to_pretty();
        assert_eq!(a, b);
        let az = a.find("\"a_total\"").unwrap();
        let zz = a.find("\"z_total\"").unwrap();
        assert!(az < zz, "names must be sorted");
    }

    #[test]
    fn prometheus_text_shape() {
        let reg = MetricsRegistry::new();
        reg.counter("runs_total").add(7);
        reg.counter("vos_stream_bytes{stream=\"QUEUE\"}").add(64);
        reg.gauge("workers").set(2);
        reg.histogram("tick_ns").record(3);
        let text = reg.prometheus_text();
        assert!(text.contains("# TYPE runs_total counter\nruns_total 7\n"));
        assert!(text.contains("# TYPE vos_stream_bytes counter\n"));
        assert!(text.contains("vos_stream_bytes{stream=\"QUEUE\"} 64\n"));
        assert!(text.contains("# TYPE workers gauge\nworkers 2\n"));
        assert!(text.contains("tick_ns_bucket{le=\"3\"} 1\n"));
        assert!(text.contains("tick_ns_bucket{le=\"+Inf\"} 1\n"));
        assert!(text.contains("tick_ns_sum 3\n"));
        assert!(text.contains("tick_ns_count 1\n"));
    }

    #[test]
    fn labelelled_names_group_under_one_type_line() {
        let reg = MetricsRegistry::new();
        reg.counter("s{stream=\"A\"}").add(1);
        reg.counter("s{stream=\"B\"}").add(2);
        let text = reg.prometheus_text();
        assert_eq!(text.matches("# TYPE s counter").count(), 1);
    }
}
