//! The structured event model.
//!
//! Events are small `Copy` values so the hot path never allocates: syscall
//! kinds are interned into a [`SysKind`] code and streams into a
//! [`StreamId`], with the string forms recovered only at export time.

use std::fmt;

/// Demo streams, as a compact id usable in zero-alloc events.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StreamId {
    /// The QUEUE interleaving stream (§4.2).
    Queue,
    /// The SIGNAL pin stream (§4.3).
    Signal,
    /// The SYSCALL result stream (§4.4).
    Syscall,
    /// The ASYNC float stream (§4.5).
    Async,
    /// The ALLOC address stream (comprehensive recorders only).
    Alloc,
    /// The console (fd 1/2) surface compared for soft desynchronisation.
    Console,
}

impl StreamId {
    /// The stream's demo file name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            StreamId::Queue => "QUEUE",
            StreamId::Signal => "SIGNAL",
            StreamId::Syscall => "SYSCALL",
            StreamId::Async => "ASYNC",
            StreamId::Alloc => "ALLOC",
            StreamId::Console => "CONSOLE",
        }
    }
}

impl fmt::Display for StreamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Visible-operation classes (§3.2's visible operations, coarsened to the
/// instrumentation layer that issued them).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ObsOp {
    /// Atomic load/store/RMW/fence.
    Atomic,
    /// Mutex / condvar / rwlock operation.
    Sync,
    /// Thread create / join / exit.
    Thread,
    /// Signal-handler entry.
    Signal,
    /// Virtual syscall.
    Syscall,
    /// Anything else (uninstrumented visible operations).
    #[default]
    Other,
}

impl ObsOp {
    /// Short label used by the exporters.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ObsOp::Atomic => "atomic",
            ObsOp::Sync => "sync",
            ObsOp::Thread => "thread",
            ObsOp::Signal => "signal",
            ObsOp::Syscall => "syscall",
            ObsOp::Other => "op",
        }
    }
}

/// Syscall kinds the tool records/replays, interned into one byte so the
/// hot path stores no strings. Unknown kinds collapse to [`SysKind::OTHER`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SysKind(u8);

/// The interning table: the paper's recorded set (§4.4) plus the
/// comprehensive extras.
const SYS_KINDS: &[&str] = &[
    "read",
    "write",
    "recv",
    "send",
    "recvmsg",
    "sendmsg",
    "accept",
    "accept4",
    "clock_gettime",
    "ioctl",
    "select",
    "poll",
    "bind",
    "open",
    "close",
    "pipe",
];

impl SysKind {
    /// The catch-all code for kinds outside the interning table.
    pub const OTHER: SysKind = SysKind(u8::MAX);

    /// Interns a kind name (O(n) over a 16-entry table; called only when
    /// tracing is on).
    #[must_use]
    pub fn from_name(name: &str) -> SysKind {
        match SYS_KINDS.iter().position(|k| *k == name) {
            Some(i) => SysKind(i as u8),
            None => SysKind::OTHER,
        }
    }

    /// The kind's name (`"other"` for unknown codes).
    #[must_use]
    pub fn name(self) -> &'static str {
        SYS_KINDS.get(self.0 as usize).copied().unwrap_or("other")
    }
}

impl fmt::Display for SysKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What happened. Every variant is `Copy`; see [`ObsEvent`] for the
/// carrier record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// `Wait()` success: the thread entered the critical section.
    TickBegin,
    /// `Tick()`: the thread closed the critical section. `dur_nanos` is
    /// the wall-clock length of the section (excluded from deterministic
    /// exports); `op` classifies the visible operation it wrapped.
    TickEnd {
        /// Wall-clock critical-section length in nanoseconds.
        dur_nanos: u64,
        /// The visible-operation class.
        op: ObsOp,
    },
    /// The strategy chose the next thread (`None`: no enabled thread).
    Decision {
        /// The chosen thread, if any.
        next: Option<u32>,
    },
    /// A targeted wakeup was issued to `target`'s parking slot.
    Wakeup {
        /// The woken thread.
        target: u32,
    },
    /// Every parking slot was notified (failure teardown / stall check).
    Broadcast,
    /// A signal was delivered (pended) to this thread.
    SignalDelivered {
        /// The delivered signal number.
        signo: i32,
    },
    /// Record mode captured a syscall result.
    SyscallRecord {
        /// Interned syscall kind.
        kind: SysKind,
        /// Sequence number in the SYSCALL stream.
        seq: u64,
    },
    /// Replay mode served a syscall result from the SYSCALL stream.
    SyscallReplay {
        /// Interned syscall kind.
        kind: SysKind,
        /// Sequence number in the SYSCALL stream.
        seq: u64,
    },
    /// A replay stream cursor advanced to `offset`.
    StreamCursor {
        /// Which stream.
        stream: StreamId,
        /// Entry index the cursor now points past.
        offset: u64,
    },
    /// A desynchronisation was raised here.
    Desync,
}

/// One trace event: who, when (logical tick), what.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ObsEvent {
    /// The thread the event belongs to (scheduler-track events carry the
    /// thread that triggered them).
    pub tid: u32,
    /// The logical tick at which the event happened.
    pub tick: u64,
    /// What happened.
    pub kind: EventKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn syskind_interns_known_and_unknown() {
        let recv = SysKind::from_name("recv");
        assert_eq!(recv.name(), "recv");
        assert_eq!(SysKind::from_name("recv"), recv);
        let unknown = SysKind::from_name("frobnicate");
        assert_eq!(unknown, SysKind::OTHER);
        assert_eq!(unknown.name(), "other");
    }

    #[test]
    fn stream_names_match_demo_files() {
        for (id, name) in [
            (StreamId::Queue, "QUEUE"),
            (StreamId::Signal, "SIGNAL"),
            (StreamId::Syscall, "SYSCALL"),
            (StreamId::Async, "ASYNC"),
            (StreamId::Alloc, "ALLOC"),
            (StreamId::Console, "CONSOLE"),
        ] {
            assert_eq!(id.name(), name);
        }
    }

    #[test]
    fn events_are_copy_and_small() {
        // The hot path copies events by value into the ring; keep the
        // record within a couple of words of a cache line.
        assert!(std::mem::size_of::<ObsEvent>() <= 40);
        let ev = ObsEvent {
            tid: 1,
            tick: 2,
            kind: EventKind::TickBegin,
        };
        let copy = ev;
        assert_eq!(copy, ev);
    }
}
