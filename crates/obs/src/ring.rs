//! Bounded, overwriting event ring buffer.
//!
//! The ring is pre-sized at construction: `push` writes into the existing
//! allocation forever after, overwriting the oldest event once full —
//! zero-alloc on the hot path, bounded memory regardless of run length.

use crate::event::ObsEvent;

/// A fixed-capacity overwriting ring of [`ObsEvent`]s.
#[derive(Debug, Clone)]
pub struct EventRing {
    buf: Vec<ObsEvent>,
    cap: usize,
    total: u64,
}

impl EventRing {
    /// A ring holding at most `capacity` events (minimum 1). The backing
    /// storage is allocated here, once.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(1);
        EventRing {
            buf: Vec::with_capacity(cap),
            cap,
            total: 0,
        }
    }

    /// Appends an event, overwriting the oldest once the ring is full.
    pub fn push(&mut self, ev: ObsEvent) {
        let slot = (self.total % self.cap as u64) as usize;
        if slot == self.buf.len() {
            self.buf.push(ev);
        } else {
            self.buf[slot] = ev;
        }
        self.total += 1;
    }

    /// Configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Events currently held (≤ capacity).
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no event was ever pushed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Total events ever pushed (including overwritten ones).
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Events lost to overwriting.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.total - self.buf.len() as u64
    }

    /// The retained events, oldest first.
    #[must_use]
    pub fn in_order(&self) -> Vec<ObsEvent> {
        if self.total <= self.cap as u64 {
            return self.buf.clone();
        }
        let head = (self.total % self.cap as u64) as usize;
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[head..]);
        out.extend_from_slice(&self.buf[..head]);
        out
    }

    /// Address of the backing allocation — an allocation-stability probe
    /// for the no-realloc property test (a reallocation moves the buffer).
    #[must_use]
    pub fn storage_addr(&self) -> usize {
        self.buf.as_ptr() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn ev(n: u64) -> ObsEvent {
        ObsEvent {
            tid: 0,
            tick: n,
            kind: EventKind::TickBegin,
        }
    }

    #[test]
    fn keeps_everything_below_capacity() {
        let mut r = EventRing::new(8);
        for i in 0..5 {
            r.push(ev(i));
        }
        assert_eq!(r.len(), 5);
        assert_eq!(r.dropped(), 0);
        let ticks: Vec<u64> = r.in_order().iter().map(|e| e.tick).collect();
        assert_eq!(ticks, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn overwrites_oldest_past_capacity() {
        let mut r = EventRing::new(4);
        for i in 0..11 {
            r.push(ev(i));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.total(), 11);
        assert_eq!(r.dropped(), 7);
        let ticks: Vec<u64> = r.in_order().iter().map(|e| e.tick).collect();
        assert_eq!(ticks, vec![7, 8, 9, 10], "most recent N, oldest first");
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let mut r = EventRing::new(0);
        r.push(ev(1));
        r.push(ev(2));
        assert_eq!(r.capacity(), 1);
        assert_eq!(r.in_order()[0].tick, 2);
    }
}
