//! The demo model for sparse record and replay.
//!
//! A *demo* (§4 of the paper) is the recording of one execution: a set of
//! constraints the replay must satisfy. It is stored as a directory of
//! stream files mirroring the paper's streams:
//!
//! | File      | Contents |
//! |-----------|----------|
//! | `HEADER`  | tool, strategy, PRNG seeds, format version |
//! | `QUEUE`   | queue-strategy interleaving: first tick per thread + RLE-compressed next-tick list |
//! | `SIGNAL`  | `tid tick signo` per asynchronous signal |
//! | `SYSCALL` | per recorded syscall: kind, return value, errno, RLE-compressed output buffers |
//! | `ASYNC`   | reschedule / signal-wakeup events floated to their tick |
//! | `ALLOC`   | (comprehensive tools only) the allocator's address stream |
//!
//! Each stream file exists in two formats ([`DemoFormat`]): a framed,
//! checksummed binary form ([`codec`] — varint + RLE payloads, decoded
//! zero-copy; the default), and the original line-oriented text form
//! kept for fixtures and diffing. Loading auto-detects per file, so
//! either (or a mix) loads transparently. [`DemoStore`] layers
//! content-addressed, stream-deduplicated storage on top for corpora
//! and archives.
//!
//! The crate provides the typed event model ([`SignalEvent`],
//! [`SyscallRecord`], [`AsyncEvent`], [`QueueStream`]), the run-length
//! codecs ([`rle`]), serialization ([`Demo::save_dir`] / [`Demo::load_dir`]
//! and in-memory string/byte forms), and the desynchronisation taxonomy
//! ([`HardDesync`], [`SoftDesync`]).
//!
//! # Example
//!
//! ```
//! use srr_replay::{Demo, DemoHeader, SignalEvent};
//!
//! let mut demo = Demo::new(DemoHeader::new("tsan11rec", "random", [1, 2]));
//! demo.signals.push(SignalEvent { tid: 2, tick: 5, signo: 15 });
//! let text = demo.to_string_map();
//! assert!(text["SIGNAL"].contains("2 5 15")); // the paper's own example line
//! let back = Demo::from_string_map(&text).unwrap();
//! assert_eq!(back.signals, demo.signals);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
mod demo;
mod desync;
pub mod rle;
mod store;
mod streams;

pub use codec::{CodecError, StreamId};
pub use demo::{Demo, DemoFormat, DemoHeader, DemoLoadError, DemoStats, FORMAT_VERSION};
pub use desync::{DesyncKind, HardDesync, SoftDesync};
pub use store::{DemoStore, StreamHash, StreamHashes};
pub use streams::{AsyncEvent, QueueStream, SignalEvent, SyscallRecord};
