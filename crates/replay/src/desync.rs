//! The desynchronisation taxonomy (§4 of the paper).
//!
//! A demo is a set of constraints. If the replayer cannot *enforce* a
//! constraint, the replay has **hard desynchronised** and the tool aborts.
//! If all constraints hold but observable behaviour (e.g. console output)
//! diverges, the replay has merely **soft desynchronised** — the paper's
//! example being that the empty demo is trivially synchronised everywhere
//! while soft-desynchronising almost everywhere.
//!
//! Both flavours carry the implicated demo stream and entry offset plus
//! free-form context lines, so a desync is diagnosable from its `Display`
//! output alone.

use std::error::Error;
use std::fmt;

/// A constraint the replayer failed to enforce; replay must abort.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HardDesync {
    /// The tick at which enforcement failed.
    pub tick: u64,
    /// Which constraint failed (e.g. `syscall-kind`, `queue-schedule`).
    pub constraint: String,
    /// What the demo requires.
    pub expected: String,
    /// What the execution produced.
    pub actual: String,
    /// The demo stream implicated (`"QUEUE"`, `"SYSCALL"`, …; empty when
    /// unknown).
    pub stream: String,
    /// Entry offset into [`Self::stream`] at the failure point.
    pub offset: u64,
    /// Diagnostic context lines (stream cursors, schedule diff, …).
    pub context: Vec<String>,
}

impl HardDesync {
    /// A hard desync with no stream attribution or context yet.
    #[must_use]
    pub fn new(tick: u64, constraint: &str, expected: &str, actual: &str) -> Self {
        HardDesync {
            tick,
            constraint: constraint.to_owned(),
            expected: expected.to_owned(),
            actual: actual.to_owned(),
            stream: String::new(),
            offset: 0,
            context: Vec::new(),
        }
    }

    /// Attributes the failure to a demo stream entry.
    #[must_use]
    pub fn with_stream(mut self, stream: &str, offset: u64) -> Self {
        self.stream = stream.to_owned();
        self.offset = offset;
        self
    }

    /// Attaches diagnostic context lines.
    #[must_use]
    pub fn with_context(mut self, lines: Vec<String>) -> Self {
        self.context = lines;
        self
    }
}

impl fmt::Display for HardDesync {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "hard desynchronisation at tick {}: constraint `{}` expected {}, got {}",
            self.tick, self.constraint, self.expected, self.actual
        )?;
        if !self.stream.is_empty() {
            write!(f, " [stream {} @ entry {}]", self.stream, self.offset)?;
        }
        for line in &self.context {
            write!(f, "\n  {line}")?;
        }
        Ok(())
    }
}

impl Error for HardDesync {}

/// An observable divergence that violates no constraint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SoftDesync {
    /// The tick at which the divergence was noticed.
    pub tick: u64,
    /// A description of the divergence (e.g. differing console output).
    pub detail: String,
    /// The observable surface that diverged (`"CONSOLE"`, …; empty when
    /// unknown).
    pub stream: String,
    /// Byte/entry offset into [`Self::stream`] of the first divergence.
    pub offset: u64,
    /// Diagnostic context lines.
    pub context: Vec<String>,
}

impl SoftDesync {
    /// A soft desync with no stream attribution or context yet.
    #[must_use]
    pub fn new(tick: u64, detail: &str) -> Self {
        SoftDesync {
            tick,
            detail: detail.to_owned(),
            stream: String::new(),
            offset: 0,
            context: Vec::new(),
        }
    }

    /// Attributes the divergence to an observable stream position.
    #[must_use]
    pub fn with_stream(mut self, stream: &str, offset: u64) -> Self {
        self.stream = stream.to_owned();
        self.offset = offset;
        self
    }

    /// Attaches diagnostic context lines.
    #[must_use]
    pub fn with_context(mut self, lines: Vec<String>) -> Self {
        self.context = lines;
        self
    }
}

impl fmt::Display for SoftDesync {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "soft desynchronisation at tick {}: {}",
            self.tick, self.detail
        )?;
        if !self.stream.is_empty() {
            write!(f, " [stream {} @ offset {}]", self.stream, self.offset)?;
        }
        for line in &self.context {
            write!(f, "\n  {line}")?;
        }
        Ok(())
    }
}

impl Error for SoftDesync {}

/// Either flavour of desynchronisation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DesyncKind {
    /// Enforcement failure: abort.
    Hard(HardDesync),
    /// Observable divergence: note and continue.
    Soft(SoftDesync),
}

impl DesyncKind {
    /// Whether replay must abort.
    #[must_use]
    pub fn is_hard(&self) -> bool {
        matches!(self, DesyncKind::Hard(_))
    }
}

impl fmt::Display for DesyncKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DesyncKind::Hard(h) => h.fmt(f),
            DesyncKind::Soft(s) => s.fmt(f),
        }
    }
}

impl From<HardDesync> for DesyncKind {
    fn from(h: HardDesync) -> Self {
        DesyncKind::Hard(h)
    }
}

impl From<SoftDesync> for DesyncKind {
    fn from(s: SoftDesync) -> Self {
        DesyncKind::Soft(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hard_desync_displays_all_fields() {
        let h = HardDesync::new(42, "syscall-kind", "recv", "send");
        let s = h.to_string();
        assert!(s.contains("tick 42"));
        assert!(s.contains("syscall-kind"));
        assert!(s.contains("recv"));
        assert!(s.contains("send"));
        // No stream attribution: the bracket suffix is absent.
        assert!(!s.contains("[stream"));
    }

    #[test]
    fn hard_desync_displays_stream_and_context() {
        let h = HardDesync::new(42, "queue-schedule", "T1", "T0")
            .with_stream("QUEUE", 41)
            .with_context(vec!["cursor SYSCALL @ 7".into()]);
        let s = h.to_string();
        assert!(s.contains("[stream QUEUE @ entry 41]"), "{s}");
        assert!(s.contains("cursor SYSCALL @ 7"), "{s}");
    }

    #[test]
    fn soft_desync_displays_stream() {
        let s = SoftDesync::new(7, "console output diverged")
            .with_stream("CONSOLE", 123)
            .to_string();
        assert!(s.contains("[stream CONSOLE @ offset 123]"), "{s}");
    }

    #[test]
    fn kind_classification() {
        let h: DesyncKind = HardDesync::new(1, "c", "e", "a").into();
        let s: DesyncKind = SoftDesync::new(2, "output order").into();
        assert!(h.is_hard());
        assert!(!s.is_hard());
        assert!(s.to_string().contains("soft"));
    }

    #[test]
    fn hard_desync_is_an_error() {
        fn takes_error(_: &dyn Error) {}
        let h = HardDesync::new(0, "c", "e", "a");
        takes_error(&h);
    }
}
