//! The desynchronisation taxonomy (§4 of the paper).
//!
//! A demo is a set of constraints. If the replayer cannot *enforce* a
//! constraint, the replay has **hard desynchronised** and the tool aborts.
//! If all constraints hold but observable behaviour (e.g. console output)
//! diverges, the replay has merely **soft desynchronised** — the paper's
//! example being that the empty demo is trivially synchronised everywhere
//! while soft-desynchronising almost everywhere.

use std::error::Error;
use std::fmt;

/// A constraint the replayer failed to enforce; replay must abort.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HardDesync {
    /// The tick at which enforcement failed.
    pub tick: u64,
    /// Which constraint failed (e.g. `syscall-kind`, `queue-schedule`).
    pub constraint: String,
    /// What the demo requires.
    pub expected: String,
    /// What the execution produced.
    pub actual: String,
}

impl fmt::Display for HardDesync {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "hard desynchronisation at tick {}: constraint `{}` expected {}, got {}",
            self.tick, self.constraint, self.expected, self.actual
        )
    }
}

impl Error for HardDesync {}

/// An observable divergence that violates no constraint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SoftDesync {
    /// The tick at which the divergence was noticed.
    pub tick: u64,
    /// A description of the divergence (e.g. differing console output).
    pub detail: String,
}

impl fmt::Display for SoftDesync {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "soft desynchronisation at tick {}: {}",
            self.tick, self.detail
        )
    }
}

/// Either flavour of desynchronisation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DesyncKind {
    /// Enforcement failure: abort.
    Hard(HardDesync),
    /// Observable divergence: note and continue.
    Soft(SoftDesync),
}

impl DesyncKind {
    /// Whether replay must abort.
    #[must_use]
    pub fn is_hard(&self) -> bool {
        matches!(self, DesyncKind::Hard(_))
    }
}

impl fmt::Display for DesyncKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DesyncKind::Hard(h) => h.fmt(f),
            DesyncKind::Soft(s) => s.fmt(f),
        }
    }
}

impl From<HardDesync> for DesyncKind {
    fn from(h: HardDesync) -> Self {
        DesyncKind::Hard(h)
    }
}

impl From<SoftDesync> for DesyncKind {
    fn from(s: SoftDesync) -> Self {
        DesyncKind::Soft(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hard_desync_displays_all_fields() {
        let h = HardDesync {
            tick: 42,
            constraint: "syscall-kind".into(),
            expected: "recv".into(),
            actual: "send".into(),
        };
        let s = h.to_string();
        assert!(s.contains("tick 42"));
        assert!(s.contains("syscall-kind"));
        assert!(s.contains("recv"));
        assert!(s.contains("send"));
    }

    #[test]
    fn kind_classification() {
        let h: DesyncKind = HardDesync {
            tick: 1,
            constraint: "c".into(),
            expected: "e".into(),
            actual: "a".into(),
        }
        .into();
        let s: DesyncKind = SoftDesync {
            tick: 2,
            detail: "output order".into(),
        }
        .into();
        assert!(h.is_hard());
        assert!(!s.is_hard());
        assert!(s.to_string().contains("soft"));
    }

    #[test]
    fn hard_desync_is_an_error() {
        fn takes_error(_: &dyn Error) {}
        let h = HardDesync {
            tick: 0,
            constraint: "c".into(),
            expected: "e".into(),
            actual: "a".into(),
        };
        takes_error(&h);
    }
}
