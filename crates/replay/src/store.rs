//! A content-addressed store for demos.
//!
//! Explore corpora and CI failure archives accumulate many
//! near-identical demos: shards of the same workload differ in one
//! stream (usually QUEUE) while HEADER, SYSCALL and the rest are
//! byte-identical. The store deduplicates at stream granularity — each
//! encoded stream file is one blob named by its FNV-1a/128 content hash,
//! and a demo is just an `INDEX` line mapping its id to the hashes of
//! its streams:
//!
//! ```text
//! store/
//!   INDEX                 # demo=<id> HEADER=<hash> QUEUE=<hash> …
//!   blobs/<32 hex chars>  # one framed stream file each
//! ```
//!
//! Two demos sharing a stream share the blob. Reference counts are
//! derived from the index (no separate refcount file to corrupt);
//! [`DemoStore::remove`] garbage-collects blobs no entry references.
//! [`DemoStore::materialize`] rebuilds an ordinary demo directory by
//! hard-linking blobs under their stream names (copying when the
//! filesystem refuses links), so stored demos stay directly replayable.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::codec::fnv1a128;
use crate::demo::{Demo, DemoLoadError};

/// The content address of one encoded stream: FNV-1a/128 of the stream
/// file's bytes, rendered as 32 lowercase hex characters.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StreamHash(pub u128);

impl StreamHash {
    /// Hashes an encoded stream file.
    #[must_use]
    pub fn of(bytes: &[u8]) -> StreamHash {
        StreamHash(fnv1a128(bytes))
    }

    /// Parses the 32-hex-character rendering.
    #[must_use]
    pub fn parse(s: &str) -> Option<StreamHash> {
        if s.len() != 32 {
            return None;
        }
        u128::from_str_radix(s, 16).ok().map(StreamHash)
    }
}

impl fmt::Display for StreamHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// A demo's index entry: stream file name → blob hash.
pub type StreamHashes = BTreeMap<String, StreamHash>;

/// A content-addressed demo store rooted at one directory.
#[derive(Debug)]
pub struct DemoStore {
    root: PathBuf,
    entries: BTreeMap<String, StreamHashes>,
}

impl DemoStore {
    /// Opens (creating if needed) a store rooted at `root`.
    ///
    /// # Errors
    ///
    /// Filesystem errors; a malformed `INDEX` reports as
    /// [`io::ErrorKind::InvalidData`].
    pub fn open(root: &Path) -> io::Result<DemoStore> {
        fs::create_dir_all(root.join("blobs"))?;
        let mut entries = BTreeMap::new();
        let index = root.join("INDEX");
        if index.exists() {
            let text = fs::read_to_string(&index)?;
            for (lineno, line) in text.lines().enumerate() {
                let line = line.trim();
                if line.is_empty() {
                    continue;
                }
                let (id, streams) = parse_index_line(line).ok_or_else(|| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("malformed store INDEX line {}: `{line}`", lineno + 1),
                    )
                })?;
                entries.insert(id, streams);
            }
        }
        Ok(DemoStore {
            root: root.to_owned(),
            entries,
        })
    }

    /// Inserts (or replaces) a demo under `id`, writing only the blobs
    /// not already present, and returns its stream hashes.
    ///
    /// # Errors
    ///
    /// Filesystem errors; an id that is not filesystem-safe reports as
    /// [`io::ErrorKind::InvalidInput`].
    pub fn insert(&mut self, id: &str, demo: &Demo) -> io::Result<StreamHashes> {
        validate_id(id)?;
        let mut hashes = StreamHashes::new();
        for (name, bytes) in demo.to_bytes_map() {
            let hash = StreamHash::of(&bytes);
            let blob = self.blob_path(hash);
            if !blob.exists() {
                fs::write(&blob, &bytes)?;
            }
            hashes.insert(name, hash);
        }
        self.entries.insert(id.to_owned(), hashes.clone());
        self.save_index()?;
        self.gc()?;
        Ok(hashes)
    }

    /// Loads the demo stored under `id`, verifying each blob against its
    /// content hash.
    ///
    /// # Errors
    ///
    /// [`DemoLoadError`]; a missing id or corrupted blob reports as
    /// [`DemoLoadError::Io`] / [`DemoLoadError::Malformed`].
    pub fn load(&self, id: &str) -> Result<Demo, DemoLoadError> {
        let entry = self.entries.get(id).ok_or_else(|| DemoLoadError::Io {
            file: id.into(),
            source: io::Error::new(io::ErrorKind::NotFound, "no such demo in store"),
        })?;
        let mut map = BTreeMap::new();
        for (name, &hash) in entry {
            let bytes = fs::read(self.blob_path(hash)).map_err(|source| DemoLoadError::Io {
                file: name.clone(),
                source,
            })?;
            let actual = StreamHash::of(&bytes);
            if actual != hash {
                return Err(DemoLoadError::Malformed {
                    file: name.clone(),
                    line: None,
                    err: format!("store blob corrupted: indexed {hash}, found {actual}"),
                });
            }
            map.insert(name.clone(), bytes);
        }
        Demo::from_bytes_map(&map)
    }

    /// Rebuilds an ordinary demo directory for `id` at `dest` by
    /// hard-linking blobs under their stream names (copying when the
    /// filesystem refuses the link). Stale stream files already in
    /// `dest` are removed.
    ///
    /// # Errors
    ///
    /// Filesystem errors; a missing id reports as
    /// [`io::ErrorKind::NotFound`].
    pub fn materialize(&self, id: &str, dest: &Path) -> io::Result<()> {
        let entry = self
            .entries
            .get(id)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such demo in store"))?;
        fs::create_dir_all(dest)?;
        for name in crate::codec::StreamId::ALL.map(|s| s.file_name()) {
            let target = dest.join(name);
            match fs::remove_file(&target) {
                Ok(()) => {}
                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                Err(e) => return Err(e),
            }
            if let Some(&hash) = entry.get(name) {
                let blob = self.blob_path(hash);
                if fs::hard_link(&blob, &target).is_err() {
                    fs::copy(&blob, &target)?;
                }
            }
        }
        Ok(())
    }

    /// Removes the entry for `id` (if present) and garbage-collects
    /// blobs no remaining entry references. Returns whether the id
    /// existed.
    ///
    /// # Errors
    ///
    /// Filesystem errors.
    pub fn remove(&mut self, id: &str) -> io::Result<bool> {
        if self.entries.remove(id).is_none() {
            return Ok(false);
        }
        self.save_index()?;
        self.gc()?;
        Ok(true)
    }

    /// The stream hashes of the demo stored under `id`.
    #[must_use]
    pub fn streams(&self, id: &str) -> Option<&StreamHashes> {
        self.entries.get(id)
    }

    /// All stored demo ids, sorted.
    pub fn ids(&self) -> impl Iterator<Item = &str> {
        self.entries.keys().map(String::as_str)
    }

    /// Number of stored demos.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store holds no demos.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// How many entries reference the blob `hash`.
    #[must_use]
    pub fn refcount(&self, hash: StreamHash) -> usize {
        self.entries
            .values()
            .flat_map(BTreeMap::values)
            .filter(|&&h| h == hash)
            .count()
    }

    /// Number of distinct blobs on disk.
    ///
    /// # Errors
    ///
    /// Filesystem errors.
    pub fn blob_count(&self) -> io::Result<usize> {
        Ok(fs::read_dir(self.root.join("blobs"))?.count())
    }

    /// Total bytes of blob storage — what the store actually costs on
    /// disk, across all sharing.
    ///
    /// # Errors
    ///
    /// Filesystem errors.
    pub fn disk_bytes(&self) -> io::Result<u64> {
        let mut total = 0;
        for entry in fs::read_dir(self.root.join("blobs"))? {
            total += entry?.metadata()?.len();
        }
        Ok(total)
    }

    fn blob_path(&self, hash: StreamHash) -> PathBuf {
        self.root.join("blobs").join(hash.to_string())
    }

    fn save_index(&self) -> io::Result<()> {
        let mut out = String::new();
        for (id, streams) in &self.entries {
            out.push_str("demo=");
            out.push_str(id);
            for (name, hash) in streams {
                out.push(' ');
                out.push_str(name);
                out.push('=');
                out.push_str(&hash.to_string());
            }
            out.push('\n');
        }
        fs::write(self.root.join("INDEX"), out)
    }

    /// Unlinks blobs no entry references.
    fn gc(&self) -> io::Result<()> {
        let live: BTreeSet<String> = self
            .entries
            .values()
            .flat_map(BTreeMap::values)
            .map(StreamHash::to_string)
            .collect();
        for entry in fs::read_dir(self.root.join("blobs"))? {
            let entry = entry?;
            if !live.contains(&entry.file_name().to_string_lossy().into_owned()) {
                fs::remove_file(entry.path())?;
            }
        }
        Ok(())
    }
}

fn parse_index_line(line: &str) -> Option<(String, StreamHashes)> {
    let mut it = line.split_whitespace();
    let id = it.next()?.strip_prefix("demo=")?.to_owned();
    let mut streams = StreamHashes::new();
    for field in it {
        let (name, hash) = field.split_once('=')?;
        crate::codec::StreamId::from_file_name(name)?;
        streams.insert(name.to_owned(), StreamHash::parse(hash)?);
    }
    Some((id, streams))
}

fn validate_id(id: &str) -> io::Result<()> {
    let ok = !id.is_empty()
        && id
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.' | ','))
        && id != "."
        && id != "..";
    if ok {
        Ok(())
    } else {
        Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("demo id `{id}` is not filesystem-safe"),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demo::DemoHeader;
    use crate::streams::SyscallRecord;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("srr-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn demo_with_syscall(strategy: &str, payload: &[u8]) -> Demo {
        let mut d = Demo::new(DemoHeader::new("tsan11rec", strategy, [7, 9]));
        d.queue.first_tick = vec![1];
        d.queue.next_ticks = vec![0];
        d.syscalls.push(SyscallRecord {
            seq: 0,
            tid: 0,
            tick: 1,
            kind: "recv".into(),
            ret: payload.len() as i64,
            errno: 0,
            bufs: vec![payload.to_vec()],
        });
        d
    }

    #[test]
    fn insert_load_roundtrips() {
        let root = tmp("roundtrip");
        let mut store = DemoStore::open(&root).unwrap();
        let d = demo_with_syscall("queue", b"hello");
        store.insert("a", &d).unwrap();
        assert_eq!(store.load("a").unwrap(), d);
        assert_eq!(store.len(), 1);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn identical_streams_share_blobs() {
        let root = tmp("dedup");
        let mut store = DemoStore::open(&root).unwrap();
        let d = demo_with_syscall("queue", b"hello");
        let h1 = store.insert("a", &d).unwrap();
        let h2 = store.insert("b", &d).unwrap();
        assert_eq!(h1, h2, "identical demos must share every hash");
        // 3 streams (HEADER, QUEUE, SYSCALL), stored once each.
        assert_eq!(store.blob_count().unwrap(), 3);
        assert_eq!(store.refcount(h1["SYSCALL"]), 2);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn near_identical_demos_share_common_streams() {
        let root = tmp("partial");
        let mut store = DemoStore::open(&root).unwrap();
        let a = demo_with_syscall("queue", b"hello");
        let mut b = a.clone();
        b.queue.next_ticks = vec![2, 0]; // only the QUEUE differs
        b.queue.first_tick = vec![1, 2];
        let ha = store.insert("a", &a).unwrap();
        let hb = store.insert("b", &b).unwrap();
        assert_eq!(ha["HEADER"], hb["HEADER"]);
        assert_eq!(ha["SYSCALL"], hb["SYSCALL"]);
        assert_ne!(ha["QUEUE"], hb["QUEUE"]);
        assert_eq!(store.blob_count().unwrap(), 4);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn remove_gcs_unreferenced_blobs_only() {
        let root = tmp("gc");
        let mut store = DemoStore::open(&root).unwrap();
        let a = demo_with_syscall("queue", b"hello");
        let mut b = a.clone();
        b.queue.first_tick = vec![1, 2];
        b.queue.next_ticks = vec![2, 0];
        store.insert("a", &a).unwrap();
        store.insert("b", &b).unwrap();
        assert!(store.remove("a").unwrap());
        assert!(!store.remove("a").unwrap(), "double remove is a no-op");
        // b's three blobs survive; a's unique QUEUE blob is gone.
        assert_eq!(store.blob_count().unwrap(), 3);
        assert_eq!(store.load("b").unwrap(), b);
        assert!(store.load("a").is_err());
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn index_persists_across_reopen() {
        let root = tmp("reopen");
        let d = demo_with_syscall("queue", b"hello");
        {
            let mut store = DemoStore::open(&root).unwrap();
            store.insert("a", &d).unwrap();
        }
        let store = DemoStore::open(&root).unwrap();
        assert_eq!(store.ids().collect::<Vec<_>>(), vec!["a"]);
        assert_eq!(store.load("a").unwrap(), d);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn materialized_dir_is_a_loadable_demo() {
        let root = tmp("mat");
        let mut store = DemoStore::open(&root).unwrap();
        let d = demo_with_syscall("queue", b"hello");
        store.insert("a", &d).unwrap();
        let dest = root.join("out");
        store.materialize("a", &dest).unwrap();
        assert_eq!(Demo::load_dir(&dest).unwrap(), d);
        assert!(store.materialize("missing", &dest).is_err());
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn corrupted_blob_is_detected_on_load() {
        let root = tmp("corrupt");
        let mut store = DemoStore::open(&root).unwrap();
        let d = demo_with_syscall("queue", b"hello");
        let hashes = store.insert("a", &d).unwrap();
        let blob = root.join("blobs").join(hashes["SYSCALL"].to_string());
        let mut bytes = fs::read(&blob).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        fs::write(&blob, bytes).unwrap();
        match store.load("a") {
            Err(DemoLoadError::Malformed { file, err, .. }) => {
                assert_eq!(file, "SYSCALL");
                assert!(err.contains("corrupted"), "err: {err}");
            }
            other => panic!("expected corruption error, got {other:?}"),
        }
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn unsafe_ids_are_rejected() {
        let root = tmp("ids");
        let mut store = DemoStore::open(&root).unwrap();
        let d = demo_with_syscall("queue", b"x");
        for bad in ["", "..", "a/b", "a b", "a\\b"] {
            assert!(store.insert(bad, &d).is_err(), "id `{bad}` accepted");
        }
        store.insert("ok-id_0.9", &d).unwrap();
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn stream_hash_parses_its_rendering() {
        let h = StreamHash::of(b"bytes");
        assert_eq!(StreamHash::parse(&h.to_string()), Some(h));
        assert_eq!(StreamHash::parse("xyz"), None);
        assert_eq!(StreamHash::parse(&"a".repeat(31)), None);
    }

    #[test]
    fn malformed_index_is_invalid_data() {
        let root = tmp("badindex");
        fs::create_dir_all(root.join("blobs")).unwrap();
        fs::write(root.join("INDEX"), "not an index line\n").unwrap();
        let err = DemoStore::open(&root).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        fs::remove_dir_all(&root).unwrap();
    }
}
