//! The demo container: header plus the five streams, with directory and
//! in-memory serialization in two on-disk formats (compact framed
//! binary, the default; line-oriented text for fixtures and diffing).

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

use crate::codec::{self, CodecError, StreamId};
use crate::rle;
use crate::streams::{parse_syscalls, AsyncEvent, QueueStream, SignalEvent, SyscallRecord};

/// Demo format version understood by this crate.
pub const FORMAT_VERSION: u32 = 1;

/// The two on-disk representations of a demo directory. Loading always
/// auto-detects per file (by the `SRRB` magic), so directories of either
/// format — or mixed ones — load transparently.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DemoFormat {
    /// Line-oriented text streams: human-diffable, the import/export and
    /// fixture format.
    Text,
    /// Framed binary streams ([`crate::codec`]): compact, checksummed,
    /// decoded zero-copy. The default for everything written at runtime.
    #[default]
    Binary,
}

impl DemoFormat {
    /// The CLI spelling (`srr demo convert --to <name>`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            DemoFormat::Text => "text",
            DemoFormat::Binary => "bin",
        }
    }

    /// Parses the CLI spelling.
    #[must_use]
    pub fn from_name(name: &str) -> Option<DemoFormat> {
        match name {
            "text" => Some(DemoFormat::Text),
            "bin" | "binary" => Some(DemoFormat::Binary),
            _ => None,
        }
    }
}

/// Metadata identifying how a demo was recorded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DemoHeader {
    /// Format version.
    pub version: u32,
    /// Recording tool (`tsan11rec` or `rr-baseline`).
    pub tool: String,
    /// Scheduling strategy (`random`, `queue`, `pct`, `slice`).
    pub strategy: String,
    /// The two PRNG seeds (§4: "seeded by two calls to rdtsc()").
    pub seeds: [u64; 2],
}

impl DemoHeader {
    /// Creates a v1 header.
    #[must_use]
    pub fn new(tool: impl Into<String>, strategy: impl Into<String>, seeds: [u64; 2]) -> Self {
        DemoHeader {
            version: FORMAT_VERSION,
            tool: tool.into(),
            strategy: strategy.into(),
            seeds,
        }
    }

    fn to_text(&self) -> String {
        format!(
            "tsan11rec-demo v{}\ntool {}\nstrategy {}\nseed {} {}\n",
            self.version, self.tool, self.strategy, self.seeds[0], self.seeds[1]
        )
    }

    fn from_text(text: &str) -> Result<Self, String> {
        let mut version = None;
        let mut tool = None;
        let mut strategy = None;
        let mut seeds = None;
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(v) = line.strip_prefix("tsan11rec-demo v") {
                version = Some(v.parse().map_err(|_| format!("bad version `{v}`"))?);
            } else if let Some(t) = line.strip_prefix("tool ") {
                tool = Some(t.to_owned());
            } else if let Some(s) = line.strip_prefix("strategy ") {
                strategy = Some(s.to_owned());
            } else if let Some(s) = line.strip_prefix("seed ") {
                let mut it = s.split_whitespace();
                let a = it
                    .next()
                    .and_then(|x| x.parse().ok())
                    .ok_or_else(|| format!("bad seed line `{line}`"))?;
                let b = it
                    .next()
                    .and_then(|x| x.parse().ok())
                    .ok_or_else(|| format!("bad seed line `{line}`"))?;
                seeds = Some([a, b]);
            } else {
                return Err(format!("unknown HEADER line `{line}`"));
            }
        }
        let version = version.ok_or("missing version line")?;
        if version != FORMAT_VERSION {
            return Err(format!("unsupported demo version {version}"));
        }
        Ok(DemoHeader {
            version,
            tool: tool.ok_or("missing tool line")?,
            strategy: strategy.ok_or("missing strategy line")?,
            seeds: seeds.ok_or("missing seed line")?,
        })
    }
}

/// A recorded execution: the constraints replay must satisfy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Demo {
    /// Recording metadata.
    pub header: DemoHeader,
    /// Queue-strategy interleaving (empty for the random strategy, whose
    /// interleaving is fully captured by the seeds).
    pub queue: QueueStream,
    /// Asynchronous signals.
    pub signals: Vec<SignalEvent>,
    /// Recorded syscalls, in global order.
    pub syscalls: Vec<SyscallRecord>,
    /// Asynchronous events (reschedules, signal wakeups).
    pub async_events: Vec<AsyncEvent>,
    /// Allocator address stream (comprehensive recorders only).
    pub alloc: Vec<u64>,
}

impl Demo {
    /// An empty demo under the given header.
    #[must_use]
    pub fn new(header: DemoHeader) -> Self {
        Demo {
            header,
            queue: QueueStream::default(),
            signals: Vec::new(),
            syscalls: Vec::new(),
            async_events: Vec::new(),
            alloc: Vec::new(),
        }
    }

    /// Builds a queue-strategy demo from an explicit schedule — `(tid,
    /// tick)` pairs in tick order, ticks dense from 1 — instead of from
    /// a recording. Witness synthesis uses this to turn a reordered
    /// interleaving into a replayable demo; syscall records (whose global
    /// order replay matches by cursor) and other streams can then be
    /// filled in by the caller.
    #[must_use]
    pub fn from_schedule(header: DemoHeader, order: &[(u32, u64)], nthreads: usize) -> Self {
        let mut demo = Demo::new(header);
        demo.queue = QueueStream::from_order(order, nthreads);
        demo
    }

    /// Serializes into the per-file text map (`HEADER`, `QUEUE`, ...).
    #[must_use]
    pub fn to_string_map(&self) -> BTreeMap<String, String> {
        let mut map = BTreeMap::new();
        map.insert("HEADER".to_owned(), self.header.to_text());
        map.insert("QUEUE".to_owned(), self.queue.to_text());
        map.insert(
            "SIGNAL".to_owned(),
            self.signals.iter().map(|s| s.to_line() + "\n").collect(),
        );
        map.insert(
            "SYSCALL".to_owned(),
            self.syscalls.iter().map(SyscallRecord::to_lines).collect(),
        );
        map.insert(
            "ASYNC".to_owned(),
            self.async_events
                .iter()
                .map(|e| e.to_line() + "\n")
                .collect(),
        );
        map.insert("ALLOC".to_owned(), rle::encode_u64s(&self.alloc) + "\n");
        map
    }

    /// Serializes into the per-file binary map: each non-empty stream as
    /// one framed, checksummed file image ([`crate::codec`]). Empty
    /// streams are omitted (sparsity — a recording that captured no
    /// signals writes no `SIGNAL` file); the `HEADER` is always present.
    #[must_use]
    pub fn to_bytes_map(&self) -> BTreeMap<String, Vec<u8>> {
        let mut map = BTreeMap::new();
        let mut put = |id: StreamId, payload: Vec<u8>| {
            map.insert(id.file_name().to_owned(), codec::encode_frame(id, &payload));
        };
        put(StreamId::Header, codec::encode_header(&self.header));
        if !self.queue.is_empty() {
            put(StreamId::Queue, codec::encode_queue(&self.queue));
        }
        if !self.signals.is_empty() {
            put(StreamId::Signal, codec::encode_signals(&self.signals));
        }
        if !self.syscalls.is_empty() {
            put(StreamId::Syscall, codec::encode_syscalls(&self.syscalls));
        }
        if !self.async_events.is_empty() {
            put(StreamId::Async, codec::encode_asyncs(&self.async_events));
        }
        if !self.alloc.is_empty() {
            put(StreamId::Alloc, codec::encode_alloc(&self.alloc));
        }
        map
    }

    /// Parses a per-file byte map, auto-detecting the format of each
    /// file: files starting with the `SRRB` magic decode through the
    /// binary codec, anything else parses as text. Mixed directories are
    /// fine. Missing stream files are treated as empty.
    ///
    /// # Errors
    ///
    /// [`DemoLoadError`] naming the offending file (with a line number
    /// for text streams, a typed [`CodecError`] for binary ones).
    pub fn from_bytes_map(map: &BTreeMap<String, Vec<u8>>) -> Result<Self, DemoLoadError> {
        let mut header = None;
        let mut queue = QueueStream::default();
        let mut signals = Vec::new();
        let mut syscalls = Vec::new();
        let mut async_events = Vec::new();
        let mut alloc = Vec::new();
        for (name, bytes) in map {
            let Some(id) = StreamId::from_file_name(name) else {
                continue; // side files (e.g. CONSOLE) are not streams
            };
            let file = name.clone();
            if codec::is_binary(bytes) {
                let frame = codec::parse_frame(bytes).map_err(|err| DemoLoadError::Codec {
                    file: file.clone(),
                    err,
                })?;
                if frame.stream != id {
                    return Err(DemoLoadError::Codec {
                        file,
                        err: CodecError::WrongStream {
                            expected: id,
                            found: frame.stream,
                        },
                    });
                }
                let codec_err = |err| DemoLoadError::Codec {
                    file: file.clone(),
                    err,
                };
                match id {
                    StreamId::Header => {
                        header = Some(codec::decode_header(frame.payload).map_err(codec_err)?);
                    }
                    StreamId::Queue => {
                        queue = codec::decode_queue(frame.payload).map_err(codec_err)?;
                    }
                    StreamId::Signal => {
                        signals = codec::decode_signals(frame.payload).map_err(codec_err)?;
                    }
                    StreamId::Syscall => {
                        syscalls = codec::decode_syscalls(frame.payload).map_err(codec_err)?;
                    }
                    StreamId::Async => {
                        async_events = codec::decode_asyncs(frame.payload).map_err(codec_err)?;
                    }
                    StreamId::Alloc => {
                        alloc = codec::decode_alloc(frame.payload).map_err(codec_err)?;
                    }
                }
            } else {
                let text = std::str::from_utf8(bytes).map_err(|_| DemoLoadError::Malformed {
                    file: file.clone(),
                    line: None,
                    err: "not UTF-8 and not a binary frame".into(),
                })?;
                let bad = |err: String| DemoLoadError::Malformed {
                    file: file.clone(),
                    line: None,
                    err,
                };
                match id {
                    StreamId::Header => {
                        header = Some(DemoHeader::from_text(text).map_err(bad)?);
                    }
                    StreamId::Queue => queue = QueueStream::from_text(text).map_err(bad)?,
                    StreamId::Signal => {
                        signals = parse_lines(text, &file, SignalEvent::from_line)?;
                    }
                    StreamId::Syscall => syscalls = parse_syscalls(text)?,
                    StreamId::Async => {
                        async_events = parse_lines(text, &file, AsyncEvent::from_line)?;
                    }
                    StreamId::Alloc => alloc = rle::decode_u64s(text).map_err(bad)?,
                }
            }
        }
        let header = header.ok_or(DemoLoadError::MissingHeader)?;
        Ok(Demo {
            header,
            queue,
            signals,
            syscalls,
            async_events,
            alloc,
        })
    }

    /// Parses the per-file text map produced by [`Demo::to_string_map`].
    ///
    /// Missing stream files are treated as empty (sparsity: a recording
    /// that captured no signals simply has no `SIGNAL` content).
    ///
    /// # Errors
    ///
    /// Returns [`DemoLoadError::Malformed`] naming the offending file.
    pub fn from_string_map(map: &BTreeMap<String, String>) -> Result<Self, DemoLoadError> {
        let bytes = map
            .iter()
            .map(|(k, v)| (k.clone(), v.clone().into_bytes()))
            .collect();
        Demo::from_bytes_map(&bytes)
    }

    /// Writes the demo as a directory of stream files in the default
    /// (binary) format.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save_dir(&self, dir: &Path) -> io::Result<()> {
        self.save_dir_as(dir, DemoFormat::default())
    }

    /// Writes the demo as a directory of stream files in the given
    /// format. Stream files the chosen serialization does not produce
    /// (empty streams in binary form) are deleted if present, so an
    /// in-place convert never leaves stale streams behind.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save_dir_as(&self, dir: &Path, format: DemoFormat) -> io::Result<()> {
        fs::create_dir_all(dir)?;
        let files: BTreeMap<String, Vec<u8>> = match format {
            DemoFormat::Text => self
                .to_string_map()
                .into_iter()
                .map(|(k, v)| (k, v.into_bytes()))
                .collect(),
            DemoFormat::Binary => self.to_bytes_map(),
        };
        for id in StreamId::ALL {
            let path = dir.join(id.file_name());
            match files.get(id.file_name()) {
                Some(bytes) => fs::write(path, bytes)?,
                None => match fs::remove_file(path) {
                    Ok(()) => {}
                    Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                    Err(e) => return Err(e),
                },
            }
        }
        Ok(())
    }

    /// Loads a demo from a directory written by [`Demo::save_dir`] or
    /// [`Demo::save_dir_as`], auto-detecting each file's format.
    ///
    /// # Errors
    ///
    /// Returns [`DemoLoadError`] on IO failure or malformed content.
    pub fn load_dir(dir: &Path) -> Result<Self, DemoLoadError> {
        let mut map = BTreeMap::new();
        for id in StreamId::ALL {
            let name = id.file_name();
            match fs::read(dir.join(name)) {
                Ok(bytes) => {
                    map.insert(name.to_owned(), bytes);
                }
                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                Err(e) => {
                    return Err(DemoLoadError::Io {
                        file: name.into(),
                        source: e,
                    })
                }
            }
        }
        Demo::from_bytes_map(&map)
    }

    /// Total serialized size in bytes in the default (binary) format —
    /// the paper's "demo file size" metric (§5.2).
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        self.size_bytes_as(DemoFormat::default())
    }

    /// Total serialized size in bytes in the given format.
    #[must_use]
    pub fn size_bytes_as(&self, format: DemoFormat) -> usize {
        match format {
            DemoFormat::Text => self.to_string_map().values().map(String::len).sum(),
            DemoFormat::Binary => self.to_bytes_map().values().map(Vec::len).sum(),
        }
    }

    /// Size in bytes of the `SYSCALL` stream alone, in the default
    /// (binary) format (§5.4 reports the syscall share of the game
    /// demos).
    #[must_use]
    pub fn syscall_bytes(&self) -> usize {
        self.to_bytes_map()
            .get(StreamId::Syscall.file_name())
            .map_or(0, Vec::len)
    }

    /// Per-stream summary statistics.
    #[must_use]
    pub fn stats(&self) -> DemoStats {
        DemoStats {
            strategy: self.header.strategy.clone(),
            queue_entries: self.queue.next_ticks.len(),
            signals: self.signals.len(),
            syscalls: self.syscalls.len(),
            async_events: self.async_events.len(),
            alloc_entries: self.alloc.len(),
            total_bytes: self.size_bytes(),
            syscall_bytes: self.syscall_bytes(),
        }
    }
}

/// Summary of a demo's contents (what each stream captured and how much
/// it costs on disk) — the §5 discussions quote exactly these numbers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DemoStats {
    /// Recording strategy.
    pub strategy: String,
    /// QUEUE next-tick entries (0 for the random strategy).
    pub queue_entries: usize,
    /// SIGNAL events.
    pub signals: usize,
    /// SYSCALL records.
    pub syscalls: usize,
    /// ASYNC events.
    pub async_events: usize,
    /// ALLOC addresses (comprehensive recorders only).
    pub alloc_entries: usize,
    /// Total serialized bytes.
    pub total_bytes: usize,
    /// Bytes of the SYSCALL stream.
    pub syscall_bytes: usize,
}

impl fmt::Display for DemoStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} demo: {} bytes ({} syscall bytes); {} syscalls, {} signals, \
             {} async events, {} queue entries, {} alloc entries",
            self.strategy,
            self.total_bytes,
            self.syscall_bytes,
            self.syscalls,
            self.signals,
            self.async_events,
            self.queue_entries,
            self.alloc_entries
        )
    }
}

/// Parses a line-oriented text stream, attaching 1-based line numbers
/// to failures.
fn parse_lines<T>(
    text: &str,
    file: &str,
    parse: impl Fn(&str) -> Result<T, String>,
) -> Result<Vec<T>, DemoLoadError> {
    text.lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
        .map(|(i, l)| {
            parse(l).map_err(|err| DemoLoadError::Malformed {
                file: file.into(),
                line: Some(i + 1),
                err,
            })
        })
        .collect()
}

/// Failure to load a demo.
#[derive(Debug)]
pub enum DemoLoadError {
    /// The `HEADER` file is absent.
    MissingHeader,
    /// A text stream file exists but cannot be parsed.
    Malformed {
        /// The stream file name.
        file: String,
        /// 1-based line number of the offending line, when known.
        line: Option<usize>,
        /// Parse error description.
        err: String,
    },
    /// A binary stream file exists but cannot be decoded.
    Codec {
        /// The stream file name.
        file: String,
        /// The typed decode failure.
        err: CodecError,
    },
    /// Filesystem error.
    Io {
        /// The stream file name.
        file: String,
        /// The underlying error.
        source: io::Error,
    },
}

impl fmt::Display for DemoLoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DemoLoadError::MissingHeader => write!(f, "demo has no HEADER file"),
            DemoLoadError::Malformed {
                file,
                line: Some(line),
                err,
            } => write!(f, "malformed {file} line {line}: {err}"),
            DemoLoadError::Malformed {
                file,
                line: None,
                err,
            } => write!(f, "malformed {file}: {err}"),
            DemoLoadError::Codec { file, err } => write!(f, "cannot decode {file}: {err}"),
            DemoLoadError::Io { file, source } => write!(f, "cannot read {file}: {source}"),
        }
    }
}

impl Error for DemoLoadError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DemoLoadError::Io { source, .. } => Some(source),
            DemoLoadError::Codec { err, .. } => Some(err),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_demo() -> Demo {
        let mut d = Demo::new(DemoHeader::new("tsan11rec", "queue", [7, 9]));
        d.queue = QueueStream {
            first_tick: vec![1, 2],
            next_ticks: vec![3, 4, 0, 0],
        };
        d.signals.push(SignalEvent {
            tid: 2,
            tick: 5,
            signo: 15,
        });
        d.syscalls.push(SyscallRecord {
            seq: 0,
            tid: 1,
            tick: 3,
            kind: "recv".into(),
            ret: 10,
            errno: 0,
            bufs: vec![b"helloworld".to_vec()],
        });
        d.async_events.push(AsyncEvent::Reschedule { tick: 2 });
        d.async_events
            .push(AsyncEvent::SignalWakeup { tid: 0, tick: 4 });
        d.alloc = vec![4096, 8192, 12288];
        d
    }

    #[test]
    fn header_roundtrips() {
        let h = DemoHeader::new("tsan11rec", "random", [123, 456]);
        assert_eq!(DemoHeader::from_text(&h.to_text()).unwrap(), h);
    }

    #[test]
    fn header_rejects_wrong_version() {
        let text = "tsan11rec-demo v99\ntool t\nstrategy s\nseed 0 0\n";
        assert!(DemoHeader::from_text(text).is_err());
    }

    #[test]
    fn header_rejects_missing_fields() {
        assert!(DemoHeader::from_text("tsan11rec-demo v1\n").is_err());
        assert!(DemoHeader::from_text("tool t\nstrategy s\nseed 0 0\n").is_err());
    }

    #[test]
    fn string_map_roundtrips() {
        let d = sample_demo();
        let map = d.to_string_map();
        let back = Demo::from_string_map(&map).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn missing_stream_files_mean_empty_streams() {
        let d = Demo::new(DemoHeader::new("tsan11rec", "random", [1, 2]));
        let mut map = d.to_string_map();
        map.remove("SIGNAL");
        map.remove("QUEUE");
        map.remove("ASYNC");
        map.remove("SYSCALL");
        map.remove("ALLOC");
        let back = Demo::from_string_map(&map).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn missing_header_is_an_error() {
        let map = BTreeMap::new();
        assert!(matches!(
            Demo::from_string_map(&map),
            Err(DemoLoadError::MissingHeader)
        ));
    }

    #[test]
    fn malformed_stream_names_the_file() {
        let d = sample_demo();
        let mut map = d.to_string_map();
        map.insert("SIGNAL".into(), "not a signal line\n".into());
        match Demo::from_string_map(&map) {
            Err(DemoLoadError::Malformed { file, .. }) => assert_eq!(file, "SIGNAL"),
            other => panic!("expected malformed SIGNAL, got {other:?}"),
        }
    }

    #[test]
    fn dir_roundtrip() {
        let dir = std::env::temp_dir().join(format!("srr-demo-test-{}", std::process::id()));
        let d = sample_demo();
        d.save_dir(&dir).unwrap();
        let back = Demo::load_dir(&dir).unwrap();
        assert_eq!(back, d);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_dir_missing_header_errors() {
        let dir = std::env::temp_dir().join(format!("srr-demo-empty-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        assert!(matches!(
            Demo::load_dir(&dir),
            Err(DemoLoadError::MissingHeader)
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn size_bytes_reflects_content() {
        let empty = Demo::new(DemoHeader::new("tsan11rec", "random", [1, 2]));
        let full = sample_demo();
        assert!(full.size_bytes() > empty.size_bytes());
        assert!(full.syscall_bytes() > 0);
        assert!(full.syscall_bytes() < full.size_bytes());
    }

    #[test]
    fn error_display_is_informative() {
        let e = DemoLoadError::Malformed {
            file: "QUEUE".into(),
            line: None,
            err: "boom".into(),
        };
        assert_eq!(e.to_string(), "malformed QUEUE: boom");
        let e = DemoLoadError::Malformed {
            file: "SYSCALL".into(),
            line: Some(12),
            err: "boom".into(),
        };
        assert_eq!(e.to_string(), "malformed SYSCALL line 12: boom");
        let e = DemoLoadError::Codec {
            file: "SIGNAL".into(),
            err: CodecError::UnsupportedVersion(9),
        };
        assert!(e.to_string().contains("SIGNAL"));
        assert!(e.to_string().contains("version 9"));
        assert!(DemoLoadError::MissingHeader.to_string().contains("HEADER"));
    }

    #[test]
    fn bytes_map_roundtrips() {
        let d = sample_demo();
        let back = Demo::from_bytes_map(&d.to_bytes_map()).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn bytes_map_omits_empty_streams() {
        let d = Demo::new(DemoHeader::new("tsan11rec", "random", [1, 2]));
        let map = d.to_bytes_map();
        assert_eq!(map.keys().collect::<Vec<_>>(), vec!["HEADER"]);
        assert_eq!(Demo::from_bytes_map(&map).unwrap(), d);
    }

    #[test]
    fn mixed_format_dir_loads() {
        let d = sample_demo();
        let mut map = d.to_bytes_map();
        // Replace two streams with their text form: auto-detect is per
        // file, so a half-converted directory still loads.
        let text = d.to_string_map();
        map.insert("HEADER".into(), text["HEADER"].clone().into_bytes());
        map.insert("SYSCALL".into(), text["SYSCALL"].clone().into_bytes());
        assert_eq!(Demo::from_bytes_map(&map).unwrap(), d);
    }

    #[test]
    fn misnamed_stream_file_is_rejected() {
        let d = sample_demo();
        let mut map = d.to_bytes_map();
        let signal = map["SIGNAL"].clone();
        map.insert("ASYNC".into(), signal);
        match Demo::from_bytes_map(&map) {
            Err(DemoLoadError::Codec {
                file,
                err: CodecError::WrongStream { .. },
            }) => assert_eq!(file, "ASYNC"),
            other => panic!("expected WrongStream on ASYNC, got {other:?}"),
        }
    }

    #[test]
    fn save_dir_as_converts_in_place_without_stale_streams() {
        let dir = std::env::temp_dir().join(format!("srr-demo-convert-{}", std::process::id()));
        let d = sample_demo();
        d.save_dir_as(&dir, DemoFormat::Text).unwrap();
        assert!(dir.join("SIGNAL").exists());
        // Text always writes all six files; converting a demo whose
        // signal stream is empty must delete the stale text SIGNAL.
        let mut sparse = d.clone();
        sparse.signals.clear();
        sparse.save_dir_as(&dir, DemoFormat::Binary).unwrap();
        assert!(!dir.join("SIGNAL").exists());
        assert_eq!(Demo::load_dir(&dir).unwrap(), sparse);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn text_line_errors_carry_line_numbers() {
        let d = sample_demo();
        let mut map = d.to_string_map();
        map.insert("SIGNAL".into(), "2 5 15\nnot a signal line\n".into());
        match Demo::from_string_map(&map) {
            Err(DemoLoadError::Malformed { file, line, .. }) => {
                assert_eq!(file, "SIGNAL");
                assert_eq!(line, Some(2));
            }
            other => panic!("expected malformed SIGNAL line 2, got {other:?}"),
        }
    }

    #[test]
    fn binary_is_smaller_than_text() {
        let mut d = sample_demo();
        // Pad with a realistic syscall load so the comparison is not
        // dominated by the header.
        for i in 0..50 {
            d.syscalls.push(SyscallRecord {
                seq: i + 1,
                tid: 1,
                tick: 10 + i,
                kind: "recv".into(),
                ret: 64,
                errno: 0,
                bufs: vec![vec![0x61; 64]],
            });
        }
        assert!(d.size_bytes_as(DemoFormat::Binary) < d.size_bytes_as(DemoFormat::Text));
        assert_eq!(d.size_bytes(), d.size_bytes_as(DemoFormat::Binary));
    }

    #[test]
    fn demo_format_names_roundtrip() {
        assert_eq!(DemoFormat::from_name("text"), Some(DemoFormat::Text));
        assert_eq!(DemoFormat::from_name("bin"), Some(DemoFormat::Binary));
        assert_eq!(DemoFormat::from_name("binary"), Some(DemoFormat::Binary));
        assert_eq!(DemoFormat::from_name("nope"), None);
        for f in [DemoFormat::Text, DemoFormat::Binary] {
            assert_eq!(DemoFormat::from_name(f.name()), Some(f));
        }
    }
}
