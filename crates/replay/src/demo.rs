//! The demo container: header plus the five streams, with directory and
//! in-memory serialization.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

use crate::rle;
use crate::streams::{parse_syscalls, AsyncEvent, QueueStream, SignalEvent, SyscallRecord};

/// Demo format version understood by this crate.
pub const FORMAT_VERSION: u32 = 1;

/// Metadata identifying how a demo was recorded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DemoHeader {
    /// Format version.
    pub version: u32,
    /// Recording tool (`tsan11rec` or `rr-baseline`).
    pub tool: String,
    /// Scheduling strategy (`random`, `queue`, `pct`, `slice`).
    pub strategy: String,
    /// The two PRNG seeds (§4: "seeded by two calls to rdtsc()").
    pub seeds: [u64; 2],
}

impl DemoHeader {
    /// Creates a v1 header.
    #[must_use]
    pub fn new(tool: impl Into<String>, strategy: impl Into<String>, seeds: [u64; 2]) -> Self {
        DemoHeader {
            version: FORMAT_VERSION,
            tool: tool.into(),
            strategy: strategy.into(),
            seeds,
        }
    }

    fn to_text(&self) -> String {
        format!(
            "tsan11rec-demo v{}\ntool {}\nstrategy {}\nseed {} {}\n",
            self.version, self.tool, self.strategy, self.seeds[0], self.seeds[1]
        )
    }

    fn from_text(text: &str) -> Result<Self, String> {
        let mut version = None;
        let mut tool = None;
        let mut strategy = None;
        let mut seeds = None;
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(v) = line.strip_prefix("tsan11rec-demo v") {
                version = Some(v.parse().map_err(|_| format!("bad version `{v}`"))?);
            } else if let Some(t) = line.strip_prefix("tool ") {
                tool = Some(t.to_owned());
            } else if let Some(s) = line.strip_prefix("strategy ") {
                strategy = Some(s.to_owned());
            } else if let Some(s) = line.strip_prefix("seed ") {
                let mut it = s.split_whitespace();
                let a = it
                    .next()
                    .and_then(|x| x.parse().ok())
                    .ok_or_else(|| format!("bad seed line `{line}`"))?;
                let b = it
                    .next()
                    .and_then(|x| x.parse().ok())
                    .ok_or_else(|| format!("bad seed line `{line}`"))?;
                seeds = Some([a, b]);
            } else {
                return Err(format!("unknown HEADER line `{line}`"));
            }
        }
        let version = version.ok_or("missing version line")?;
        if version != FORMAT_VERSION {
            return Err(format!("unsupported demo version {version}"));
        }
        Ok(DemoHeader {
            version,
            tool: tool.ok_or("missing tool line")?,
            strategy: strategy.ok_or("missing strategy line")?,
            seeds: seeds.ok_or("missing seed line")?,
        })
    }
}

/// A recorded execution: the constraints replay must satisfy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Demo {
    /// Recording metadata.
    pub header: DemoHeader,
    /// Queue-strategy interleaving (empty for the random strategy, whose
    /// interleaving is fully captured by the seeds).
    pub queue: QueueStream,
    /// Asynchronous signals.
    pub signals: Vec<SignalEvent>,
    /// Recorded syscalls, in global order.
    pub syscalls: Vec<SyscallRecord>,
    /// Asynchronous events (reschedules, signal wakeups).
    pub async_events: Vec<AsyncEvent>,
    /// Allocator address stream (comprehensive recorders only).
    pub alloc: Vec<u64>,
}

impl Demo {
    /// An empty demo under the given header.
    #[must_use]
    pub fn new(header: DemoHeader) -> Self {
        Demo {
            header,
            queue: QueueStream::default(),
            signals: Vec::new(),
            syscalls: Vec::new(),
            async_events: Vec::new(),
            alloc: Vec::new(),
        }
    }

    /// Builds a queue-strategy demo from an explicit schedule — `(tid,
    /// tick)` pairs in tick order, ticks dense from 1 — instead of from
    /// a recording. Witness synthesis uses this to turn a reordered
    /// interleaving into a replayable demo; syscall records (whose global
    /// order replay matches by cursor) and other streams can then be
    /// filled in by the caller.
    #[must_use]
    pub fn from_schedule(header: DemoHeader, order: &[(u32, u64)], nthreads: usize) -> Self {
        let mut demo = Demo::new(header);
        demo.queue = QueueStream::from_order(order, nthreads);
        demo
    }

    /// Serializes into the per-file text map (`HEADER`, `QUEUE`, ...).
    #[must_use]
    pub fn to_string_map(&self) -> BTreeMap<String, String> {
        let mut map = BTreeMap::new();
        map.insert("HEADER".to_owned(), self.header.to_text());
        map.insert("QUEUE".to_owned(), self.queue.to_text());
        map.insert(
            "SIGNAL".to_owned(),
            self.signals.iter().map(|s| s.to_line() + "\n").collect(),
        );
        map.insert(
            "SYSCALL".to_owned(),
            self.syscalls.iter().map(SyscallRecord::to_lines).collect(),
        );
        map.insert(
            "ASYNC".to_owned(),
            self.async_events
                .iter()
                .map(|e| e.to_line() + "\n")
                .collect(),
        );
        map.insert("ALLOC".to_owned(), rle::encode_u64s(&self.alloc) + "\n");
        map
    }

    /// Parses the per-file text map produced by [`Demo::to_string_map`].
    ///
    /// Missing stream files are treated as empty (sparsity: a recording
    /// that captured no signals simply has no `SIGNAL` content).
    ///
    /// # Errors
    ///
    /// Returns [`DemoLoadError::Malformed`] naming the offending file.
    pub fn from_string_map(map: &BTreeMap<String, String>) -> Result<Self, DemoLoadError> {
        let text = |name: &str| map.get(name).map(String::as_str).unwrap_or("");
        let bad = |file: &str, err: String| DemoLoadError::Malformed {
            file: file.into(),
            err,
        };

        let header = DemoHeader::from_text(map.get("HEADER").ok_or(DemoLoadError::MissingHeader)?)
            .map_err(|e| bad("HEADER", e))?;
        let queue = QueueStream::from_text(text("QUEUE")).map_err(|e| bad("QUEUE", e))?;
        let signals = text("SIGNAL")
            .lines()
            .filter(|l| !l.trim().is_empty())
            .map(SignalEvent::from_line)
            .collect::<Result<_, _>>()
            .map_err(|e| bad("SIGNAL", e))?;
        let syscalls = parse_syscalls(text("SYSCALL")).map_err(|e| bad("SYSCALL", e))?;
        let async_events = text("ASYNC")
            .lines()
            .filter(|l| !l.trim().is_empty())
            .map(AsyncEvent::from_line)
            .collect::<Result<_, _>>()
            .map_err(|e| bad("ASYNC", e))?;
        let alloc = rle::decode_u64s(text("ALLOC")).map_err(|e| bad("ALLOC", e))?;
        Ok(Demo {
            header,
            queue,
            signals,
            syscalls,
            async_events,
            alloc,
        })
    }

    /// Writes the demo as a directory of stream files.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save_dir(&self, dir: &Path) -> io::Result<()> {
        fs::create_dir_all(dir)?;
        for (name, text) in self.to_string_map() {
            fs::write(dir.join(name), text)?;
        }
        Ok(())
    }

    /// Loads a demo from a directory written by [`Demo::save_dir`].
    ///
    /// # Errors
    ///
    /// Returns [`DemoLoadError`] on IO failure or malformed content.
    pub fn load_dir(dir: &Path) -> Result<Self, DemoLoadError> {
        let mut map = BTreeMap::new();
        for name in ["HEADER", "QUEUE", "SIGNAL", "SYSCALL", "ASYNC", "ALLOC"] {
            match fs::read_to_string(dir.join(name)) {
                Ok(text) => {
                    map.insert(name.to_owned(), text);
                }
                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                Err(e) => {
                    return Err(DemoLoadError::Io {
                        file: name.into(),
                        source: e,
                    })
                }
            }
        }
        Demo::from_string_map(&map)
    }

    /// Total serialized size in bytes — the paper's "demo file size"
    /// metric (§5.2).
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        self.to_string_map().values().map(String::len).sum()
    }

    /// Size in bytes of the `SYSCALL` stream alone (§5.4 reports the
    /// syscall share of the game demos).
    #[must_use]
    pub fn syscall_bytes(&self) -> usize {
        self.syscalls.iter().map(SyscallRecord::encoded_size).sum()
    }

    /// Per-stream summary statistics.
    #[must_use]
    pub fn stats(&self) -> DemoStats {
        DemoStats {
            strategy: self.header.strategy.clone(),
            queue_entries: self.queue.next_ticks.len(),
            signals: self.signals.len(),
            syscalls: self.syscalls.len(),
            async_events: self.async_events.len(),
            alloc_entries: self.alloc.len(),
            total_bytes: self.size_bytes(),
            syscall_bytes: self.syscall_bytes(),
        }
    }
}

/// Summary of a demo's contents (what each stream captured and how much
/// it costs on disk) — the §5 discussions quote exactly these numbers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DemoStats {
    /// Recording strategy.
    pub strategy: String,
    /// QUEUE next-tick entries (0 for the random strategy).
    pub queue_entries: usize,
    /// SIGNAL events.
    pub signals: usize,
    /// SYSCALL records.
    pub syscalls: usize,
    /// ASYNC events.
    pub async_events: usize,
    /// ALLOC addresses (comprehensive recorders only).
    pub alloc_entries: usize,
    /// Total serialized bytes.
    pub total_bytes: usize,
    /// Bytes of the SYSCALL stream.
    pub syscall_bytes: usize,
}

impl fmt::Display for DemoStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} demo: {} bytes ({} syscall bytes); {} syscalls, {} signals, \
             {} async events, {} queue entries, {} alloc entries",
            self.strategy,
            self.total_bytes,
            self.syscall_bytes,
            self.syscalls,
            self.signals,
            self.async_events,
            self.queue_entries,
            self.alloc_entries
        )
    }
}

/// Failure to load a demo.
#[derive(Debug)]
pub enum DemoLoadError {
    /// The `HEADER` file is absent.
    MissingHeader,
    /// A stream file exists but cannot be parsed.
    Malformed {
        /// The stream file name.
        file: String,
        /// Parse error description.
        err: String,
    },
    /// Filesystem error.
    Io {
        /// The stream file name.
        file: String,
        /// The underlying error.
        source: io::Error,
    },
}

impl fmt::Display for DemoLoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DemoLoadError::MissingHeader => write!(f, "demo has no HEADER file"),
            DemoLoadError::Malformed { file, err } => write!(f, "malformed {file}: {err}"),
            DemoLoadError::Io { file, source } => write!(f, "cannot read {file}: {source}"),
        }
    }
}

impl Error for DemoLoadError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DemoLoadError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_demo() -> Demo {
        let mut d = Demo::new(DemoHeader::new("tsan11rec", "queue", [7, 9]));
        d.queue = QueueStream {
            first_tick: vec![1, 2],
            next_ticks: vec![3, 4, 0, 0],
        };
        d.signals.push(SignalEvent {
            tid: 2,
            tick: 5,
            signo: 15,
        });
        d.syscalls.push(SyscallRecord {
            seq: 0,
            tid: 1,
            tick: 3,
            kind: "recv".into(),
            ret: 10,
            errno: 0,
            bufs: vec![b"helloworld".to_vec()],
        });
        d.async_events.push(AsyncEvent::Reschedule { tick: 2 });
        d.async_events
            .push(AsyncEvent::SignalWakeup { tid: 0, tick: 4 });
        d.alloc = vec![4096, 8192, 12288];
        d
    }

    #[test]
    fn header_roundtrips() {
        let h = DemoHeader::new("tsan11rec", "random", [123, 456]);
        assert_eq!(DemoHeader::from_text(&h.to_text()).unwrap(), h);
    }

    #[test]
    fn header_rejects_wrong_version() {
        let text = "tsan11rec-demo v99\ntool t\nstrategy s\nseed 0 0\n";
        assert!(DemoHeader::from_text(text).is_err());
    }

    #[test]
    fn header_rejects_missing_fields() {
        assert!(DemoHeader::from_text("tsan11rec-demo v1\n").is_err());
        assert!(DemoHeader::from_text("tool t\nstrategy s\nseed 0 0\n").is_err());
    }

    #[test]
    fn string_map_roundtrips() {
        let d = sample_demo();
        let map = d.to_string_map();
        let back = Demo::from_string_map(&map).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn missing_stream_files_mean_empty_streams() {
        let d = Demo::new(DemoHeader::new("tsan11rec", "random", [1, 2]));
        let mut map = d.to_string_map();
        map.remove("SIGNAL");
        map.remove("QUEUE");
        map.remove("ASYNC");
        map.remove("SYSCALL");
        map.remove("ALLOC");
        let back = Demo::from_string_map(&map).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn missing_header_is_an_error() {
        let map = BTreeMap::new();
        assert!(matches!(
            Demo::from_string_map(&map),
            Err(DemoLoadError::MissingHeader)
        ));
    }

    #[test]
    fn malformed_stream_names_the_file() {
        let d = sample_demo();
        let mut map = d.to_string_map();
        map.insert("SIGNAL".into(), "not a signal line\n".into());
        match Demo::from_string_map(&map) {
            Err(DemoLoadError::Malformed { file, .. }) => assert_eq!(file, "SIGNAL"),
            other => panic!("expected malformed SIGNAL, got {other:?}"),
        }
    }

    #[test]
    fn dir_roundtrip() {
        let dir = std::env::temp_dir().join(format!("srr-demo-test-{}", std::process::id()));
        let d = sample_demo();
        d.save_dir(&dir).unwrap();
        let back = Demo::load_dir(&dir).unwrap();
        assert_eq!(back, d);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_dir_missing_header_errors() {
        let dir = std::env::temp_dir().join(format!("srr-demo-empty-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        assert!(matches!(
            Demo::load_dir(&dir),
            Err(DemoLoadError::MissingHeader)
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn size_bytes_reflects_content() {
        let empty = Demo::new(DemoHeader::new("tsan11rec", "random", [1, 2]));
        let full = sample_demo();
        assert!(full.size_bytes() > empty.size_bytes());
        assert!(full.syscall_bytes() > 0);
        assert!(full.syscall_bytes() < full.size_bytes());
    }

    #[test]
    fn error_display_is_informative() {
        let e = DemoLoadError::Malformed {
            file: "QUEUE".into(),
            err: "boom".into(),
        };
        assert_eq!(e.to_string(), "malformed QUEUE: boom");
        assert!(DemoLoadError::MissingHeader.to_string().contains("HEADER"));
    }
}
