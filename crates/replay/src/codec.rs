//! The binary demo codec: per-stream framing with a magic/version
//! header, varint + RLE payload encoding, and a zero-copy cursor reader.
//!
//! Each stream of a demo serializes to one self-describing *frame*:
//!
//! ```text
//! +-------+----------------+-----------+--------------+---------+----------+
//! | magic | codec version  | stream id | payload len  | payload | checksum |
//! | SRRB  | varint         | 1 byte    | varint       | bytes   | fnv64 LE |
//! +-------+----------------+-----------+--------------+---------+----------+
//! ```
//!
//! The checksum is FNV-1a/64 over everything between the magic and the
//! checksum itself, so *any* single-bit corruption of a frame is either a
//! bad magic or a checksum mismatch — the decoder never misreads a
//! damaged stream as a shorter or different one (the corruption battery
//! in `tests/corruption.rs` proves this bit by bit).
//!
//! Payloads are varint (LEB128) based:
//!
//! * integer sequences (QUEUE next-ticks, ALLOC) use the same three-token
//!   RLE model as the text codec ([`crate::rle`]) — literal / arithmetic
//!   run / constant repeat — with a tag byte per token;
//! * syscall output buffers use the text codec's byte-RLE chunk grammar
//!   directly (no hex expansion — this is where binary wins big);
//! * syscall kind names are interned into a per-stream string table, so a
//!   10k-request httpd demo stores `recv` once, not 10k times.
//!
//! The layout is mmap-able: frames are length-prefixed, contain no
//! internal pointers, and decode by walking a borrowed `&[u8]` with a
//! [`Cursor`] — no intermediate line splitting, no `Vec<String>`, and
//! every buffer decodes straight into its final `Vec<u8>`.

use std::error::Error;
use std::fmt;

use crate::demo::{DemoHeader, FORMAT_VERSION};
use crate::rle;
use crate::streams::{AsyncEvent, QueueStream, SignalEvent, SyscallRecord};

/// The four magic bytes opening every binary stream file.
pub const MAGIC: [u8; 4] = *b"SRRB";

/// Binary codec version understood by this crate (independent of the
/// demo [`FORMAT_VERSION`], which describes the logical stream model).
pub const CODEC_VERSION: u64 = 1;

/// Hard cap on a single RLE run/repeat expansion. Far above anything a
/// real recording produces, low enough that a crafted length cannot ask
/// the decoder for gigabytes before validation catches up.
const MAX_RUN: u64 = 1 << 28;

/// The streams a demo serializes, with their on-disk file names.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum StreamId {
    /// Recording metadata (tool, strategy, seeds).
    Header = 0,
    /// Queue-strategy interleaving.
    Queue = 1,
    /// Asynchronous signals.
    Signal = 2,
    /// Recorded syscalls.
    Syscall = 3,
    /// Asynchronous events.
    Async = 4,
    /// Allocator address stream.
    Alloc = 5,
}

impl StreamId {
    /// All streams, in serialization order.
    pub const ALL: [StreamId; 6] = [
        StreamId::Header,
        StreamId::Queue,
        StreamId::Signal,
        StreamId::Syscall,
        StreamId::Async,
        StreamId::Alloc,
    ];

    /// The stream's file name inside a demo directory (shared with the
    /// text format — the bytes, not the name, identify the format).
    #[must_use]
    pub fn file_name(self) -> &'static str {
        match self {
            StreamId::Header => "HEADER",
            StreamId::Queue => "QUEUE",
            StreamId::Signal => "SIGNAL",
            StreamId::Syscall => "SYSCALL",
            StreamId::Async => "ASYNC",
            StreamId::Alloc => "ALLOC",
        }
    }

    /// Inverse of [`StreamId::file_name`].
    #[must_use]
    pub fn from_file_name(name: &str) -> Option<StreamId> {
        StreamId::ALL
            .iter()
            .copied()
            .find(|s| s.file_name() == name)
    }

    fn from_byte(b: u8) -> Option<StreamId> {
        StreamId::ALL.iter().copied().find(|s| *s as u8 == b)
    }
}

/// A typed decode failure. Every corrupt input maps to one of these —
/// the decoder never panics and (thanks to the frame checksum) never
/// silently misreads flipped bits.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The frame does not start with [`MAGIC`].
    BadMagic {
        /// What was found instead (zero-padded when shorter).
        found: [u8; 4],
    },
    /// The frame's codec version is newer than this build understands.
    UnsupportedVersion(u64),
    /// The frame names a stream id this build does not know.
    UnknownStream(u8),
    /// The frame is for a different stream than the file name promised.
    WrongStream {
        /// Stream the caller expected from the file name.
        expected: StreamId,
        /// Stream the frame actually carries.
        found: StreamId,
    },
    /// Input ended before the named element was complete.
    Truncated {
        /// What was being read.
        what: &'static str,
        /// Byte offset at which input ran out.
        offset: usize,
    },
    /// A varint ran past 10 bytes or past 64 bits.
    VarintOverflow {
        /// Byte offset of the varint's first byte.
        offset: usize,
    },
    /// The frame checksum does not match its contents.
    ChecksumMismatch {
        /// Checksum stored in the frame.
        stored: u64,
        /// Checksum computed over the frame contents.
        computed: u64,
    },
    /// Bytes remained after the payload's declared end.
    TrailingBytes {
        /// Offset of the first surplus byte.
        offset: usize,
    },
    /// A structurally valid read produced an invalid value.
    Invalid {
        /// Description of the violated constraint.
        what: String,
        /// Byte offset of the offending element.
        offset: usize,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::BadMagic { found } => {
                write!(f, "bad magic {found:02x?} (expected SRRB)")
            }
            CodecError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported codec version {v} (this build reads v{CODEC_VERSION})"
                )
            }
            CodecError::UnknownStream(b) => write!(f, "unknown stream id {b}"),
            CodecError::WrongStream { expected, found } => write!(
                f,
                "frame is a {} stream but the file name says {}",
                found.file_name(),
                expected.file_name()
            ),
            CodecError::Truncated { what, offset } => {
                write!(f, "truncated while reading {what} at byte {offset}")
            }
            CodecError::VarintOverflow { offset } => {
                write!(f, "varint overflow at byte {offset}")
            }
            CodecError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checksum mismatch: stored {stored:016x}, computed {computed:016x}"
            ),
            CodecError::TrailingBytes { offset } => {
                write!(f, "trailing bytes after payload at byte {offset}")
            }
            CodecError::Invalid { what, offset } => {
                write!(f, "invalid value at byte {offset}: {what}")
            }
        }
    }
}

impl Error for CodecError {}

// ---------------------------------------------------------------------
// Hashing: FNV-1a (64-bit for frame checksums, 128-bit for the store's
// content addresses)
// ---------------------------------------------------------------------

/// FNV-1a/64 of `data` — the frame checksum.
#[must_use]
pub fn fnv1a64(data: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// FNV-1a/128 of `data` — the [`crate::DemoStore`] content address.
#[must_use]
pub fn fnv1a128(data: &[u8]) -> u128 {
    let mut hash: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
    for &b in data {
        hash ^= u128::from(b);
        hash = hash.wrapping_mul(0x0000_0000_0100_0000_0000_0000_0000_013B);
    }
    hash
}

// ---------------------------------------------------------------------
// Zero-copy cursor
// ---------------------------------------------------------------------

/// A zero-copy reader over a borrowed byte slice. All `read_*` methods
/// advance the cursor; byte and string reads return views into the
/// underlying buffer, never copies.
#[derive(Clone, Copy, Debug)]
pub struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// A cursor at the start of `buf`.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    /// Current byte offset.
    #[must_use]
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the cursor has consumed the whole buffer.
    #[must_use]
    pub fn is_at_end(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] at end of input.
    pub fn read_u8(&mut self, what: &'static str) -> Result<u8, CodecError> {
        let b = *self.buf.get(self.pos).ok_or(CodecError::Truncated {
            what,
            offset: self.pos,
        })?;
        self.pos += 1;
        Ok(b)
    }

    /// Reads `len` bytes as a borrowed slice (zero-copy).
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] when fewer than `len` bytes remain.
    pub fn read_bytes(&mut self, len: usize, what: &'static str) -> Result<&'a [u8], CodecError> {
        let end = self.pos.checked_add(len).ok_or(CodecError::Truncated {
            what,
            offset: self.pos,
        })?;
        let slice = self.buf.get(self.pos..end).ok_or(CodecError::Truncated {
            what,
            offset: self.pos,
        })?;
        self.pos = end;
        Ok(slice)
    }

    /// Reads a LEB128 varint (at most 10 bytes / 64 bits).
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] at end of input,
    /// [`CodecError::VarintOverflow`] past 64 bits.
    pub fn read_varint(&mut self, what: &'static str) -> Result<u64, CodecError> {
        let start = self.pos;
        let mut value: u64 = 0;
        let mut shift = 0u32;
        loop {
            let b = self.read_u8(what)?;
            let payload = u64::from(b & 0x7f);
            // The 10th byte may only carry the top single bit of a u64.
            if shift >= 64 || (shift == 63 && payload > 1) {
                return Err(CodecError::VarintOverflow { offset: start });
            }
            value |= payload << shift;
            if b & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
        }
    }

    /// Reads a zigzag-encoded signed varint.
    ///
    /// # Errors
    ///
    /// As [`Cursor::read_varint`].
    pub fn read_zigzag(&mut self, what: &'static str) -> Result<i64, CodecError> {
        let raw = self.read_varint(what)?;
        Ok(decode_zigzag(raw))
    }

    /// Reads a length-prefixed UTF-8 string as a borrowed `&str`.
    ///
    /// # Errors
    ///
    /// Truncation or [`CodecError::Invalid`] on non-UTF-8 bytes.
    pub fn read_str(&mut self, what: &'static str) -> Result<&'a str, CodecError> {
        let start = self.pos;
        let len = self.read_varint(what)?;
        let len = usize::try_from(len).map_err(|_| CodecError::Invalid {
            what: format!("{what} length {len} does not fit in memory"),
            offset: start,
        })?;
        let bytes = self.read_bytes(len, what)?;
        std::str::from_utf8(bytes).map_err(|_| CodecError::Invalid {
            what: format!("{what} is not UTF-8"),
            offset: start,
        })
    }
}

/// Appends a LEB128 varint.
pub fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Appends a zigzag-encoded signed varint.
pub fn write_zigzag(out: &mut Vec<u8>, v: i64) {
    write_varint(out, encode_zigzag(v));
}

fn encode_zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn decode_zigzag(raw: u64) -> i64 {
    ((raw >> 1) as i64) ^ -((raw & 1) as i64)
}

fn write_str(out: &mut Vec<u8>, s: &str) {
    write_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

// ---------------------------------------------------------------------
// Frames
// ---------------------------------------------------------------------

/// A parsed frame: the stream it carries and a borrowed view of its
/// payload (checksum already verified).
#[derive(Clone, Copy, Debug)]
pub struct Frame<'a> {
    /// The stream this frame serializes.
    pub stream: StreamId,
    /// The stream payload (borrowed, zero-copy).
    pub payload: &'a [u8],
}

/// Whether `bytes` look like a binary stream frame (magic check only —
/// the auto-detect probe used by [`crate::Demo::load_dir`]).
#[must_use]
pub fn is_binary(bytes: &[u8]) -> bool {
    bytes.len() >= MAGIC.len() && bytes[..MAGIC.len()] == MAGIC
}

/// Wraps a stream payload into a framed file image.
#[must_use]
pub fn encode_frame(stream: StreamId, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 24);
    out.extend_from_slice(&MAGIC);
    write_varint(&mut out, CODEC_VERSION);
    out.push(stream as u8);
    write_varint(&mut out, payload.len() as u64);
    out.extend_from_slice(payload);
    let sum = fnv1a64(&out[MAGIC.len()..]);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Parses and verifies a framed file image, returning a zero-copy view.
///
/// # Errors
///
/// Any [`CodecError`]; in particular every single-bit corruption of the
/// input fails here (bad magic or checksum mismatch).
pub fn parse_frame(bytes: &[u8]) -> Result<Frame<'_>, CodecError> {
    if bytes.len() < MAGIC.len() || bytes[..MAGIC.len()] != MAGIC {
        let mut found = [0u8; 4];
        for (slot, b) in found.iter_mut().zip(bytes) {
            *slot = *b;
        }
        return Err(CodecError::BadMagic { found });
    }
    if bytes.len() < MAGIC.len() + 8 {
        return Err(CodecError::Truncated {
            what: "frame checksum",
            offset: bytes.len(),
        });
    }
    let (body, sum_bytes) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(sum_bytes.try_into().expect("split_at(len-8)"));
    let computed = fnv1a64(&body[MAGIC.len()..]);
    if stored != computed {
        return Err(CodecError::ChecksumMismatch { stored, computed });
    }
    let mut cur = Cursor::new(body);
    cur.pos = MAGIC.len();
    let version = cur.read_varint("codec version")?;
    if version != CODEC_VERSION {
        return Err(CodecError::UnsupportedVersion(version));
    }
    let id = cur.read_u8("stream id")?;
    let stream = StreamId::from_byte(id).ok_or(CodecError::UnknownStream(id))?;
    let len = cur.read_varint("payload length")?;
    let len = usize::try_from(len).map_err(|_| CodecError::Invalid {
        what: format!("payload length {len} does not fit in memory"),
        offset: cur.pos(),
    })?;
    let payload = cur.read_bytes(len, "payload")?;
    if !cur.is_at_end() {
        return Err(CodecError::TrailingBytes { offset: cur.pos() });
    }
    Ok(Frame { stream, payload })
}

// ---------------------------------------------------------------------
// RLE integer blocks (shared token model with the text codec)
// ---------------------------------------------------------------------

const TOK_LITERAL: u8 = 0;
const TOK_INC_RUN: u8 = 1;
const TOK_REPEAT: u8 = 2;

fn write_u64_block(out: &mut Vec<u8>, values: &[u64]) {
    let tokens = rle::u64_tokens(values);
    write_varint(out, tokens.len() as u64);
    for tok in tokens {
        match tok {
            rle::U64Token::Literal(v) => {
                out.push(TOK_LITERAL);
                write_varint(out, v);
            }
            rle::U64Token::IncRun { base, extra } => {
                out.push(TOK_INC_RUN);
                write_varint(out, base);
                write_varint(out, extra);
            }
            rle::U64Token::Repeat { value, count } => {
                out.push(TOK_REPEAT);
                write_varint(out, value);
                write_varint(out, count);
            }
        }
    }
}

fn read_u64_block(cur: &mut Cursor<'_>, what: &'static str) -> Result<Vec<u64>, CodecError> {
    let ntokens = cur.read_varint(what)?;
    // Each token is at least 2 bytes; reject claims the input cannot hold
    // before reserving anything.
    if ntokens > (cur.remaining() as u64) {
        return Err(CodecError::Truncated {
            what,
            offset: cur.pos(),
        });
    }
    let mut out = Vec::new();
    for _ in 0..ntokens {
        let at = cur.pos();
        match cur.read_u8(what)? {
            TOK_LITERAL => out.push(cur.read_varint(what)?),
            TOK_INC_RUN => {
                let base = cur.read_varint(what)?;
                let extra = cur.read_varint(what)?;
                if extra == 0 || extra > MAX_RUN {
                    return Err(CodecError::Invalid {
                        what: format!("run length {extra} out of range in {what}"),
                        offset: at,
                    });
                }
                let end = base.checked_add(extra).ok_or(CodecError::Invalid {
                    what: format!("run {base}+{extra} overflows in {what}"),
                    offset: at,
                })?;
                out.extend(base..=end);
            }
            TOK_REPEAT => {
                let value = cur.read_varint(what)?;
                let count = cur.read_varint(what)?;
                if !(2..=MAX_RUN).contains(&count) {
                    return Err(CodecError::Invalid {
                        what: format!("repeat count {count} out of range in {what}"),
                        offset: at,
                    });
                }
                out.resize(out.len() + count as usize, value);
            }
            tag => {
                return Err(CodecError::Invalid {
                    what: format!("unknown RLE token tag {tag} in {what}"),
                    offset: at,
                })
            }
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Stream payload codecs
// ---------------------------------------------------------------------

/// Encodes the HEADER payload.
#[must_use]
pub(crate) fn encode_header(h: &DemoHeader) -> Vec<u8> {
    let mut out = Vec::new();
    write_varint(&mut out, u64::from(h.version));
    write_str(&mut out, &h.tool);
    write_str(&mut out, &h.strategy);
    write_varint(&mut out, h.seeds[0]);
    write_varint(&mut out, h.seeds[1]);
    out
}

pub(crate) fn decode_header(payload: &[u8]) -> Result<DemoHeader, CodecError> {
    let mut cur = Cursor::new(payload);
    let version = cur.read_varint("header version")?;
    let version = u32::try_from(version).map_err(|_| CodecError::Invalid {
        what: format!("demo version {version} out of range"),
        offset: 0,
    })?;
    if version != FORMAT_VERSION {
        return Err(CodecError::Invalid {
            what: format!("unsupported demo version {version}"),
            offset: 0,
        });
    }
    let tool = cur.read_str("tool")?.to_owned();
    let strategy = cur.read_str("strategy")?.to_owned();
    let seeds = [cur.read_varint("seed 0")?, cur.read_varint("seed 1")?];
    expect_end(&cur)?;
    Ok(DemoHeader {
        version,
        tool,
        strategy,
        seeds,
    })
}

pub(crate) fn encode_queue(q: &QueueStream) -> Vec<u8> {
    let mut out = Vec::new();
    write_u64_block(&mut out, &q.first_tick);
    write_u64_block(&mut out, &q.next_ticks);
    out
}

pub(crate) fn decode_queue(payload: &[u8]) -> Result<QueueStream, CodecError> {
    let mut cur = Cursor::new(payload);
    let first_tick = read_u64_block(&mut cur, "QUEUE first ticks")?;
    let next_ticks = read_u64_block(&mut cur, "QUEUE next ticks")?;
    expect_end(&cur)?;
    Ok(QueueStream {
        first_tick,
        next_ticks,
    })
}

pub(crate) fn encode_signals(events: &[SignalEvent]) -> Vec<u8> {
    let mut out = Vec::new();
    write_varint(&mut out, events.len() as u64);
    for e in events {
        write_varint(&mut out, u64::from(e.tid));
        write_varint(&mut out, e.tick);
        write_zigzag(&mut out, i64::from(e.signo));
    }
    out
}

pub(crate) fn decode_signals(payload: &[u8]) -> Result<Vec<SignalEvent>, CodecError> {
    let mut cur = Cursor::new(payload);
    let count = cur.read_varint("SIGNAL count")?;
    let mut out = Vec::new();
    for _ in 0..count {
        let at = cur.pos();
        let tid = read_u32(&mut cur, "signal tid")?;
        let tick = cur.read_varint("signal tick")?;
        let signo = cur.read_zigzag("signal signo")?;
        let signo = i32::try_from(signo).map_err(|_| CodecError::Invalid {
            what: format!("signo {signo} out of range"),
            offset: at,
        })?;
        out.push(SignalEvent { tid, tick, signo });
    }
    expect_end(&cur)?;
    Ok(out)
}

pub(crate) fn encode_syscalls(records: &[SyscallRecord]) -> Vec<u8> {
    // Intern the kind names: most demos use a handful of kinds across
    // thousands of records.
    let mut kinds: Vec<&str> = Vec::new();
    for r in records {
        if !kinds.contains(&r.kind.as_str()) {
            kinds.push(&r.kind);
        }
    }
    let mut out = Vec::new();
    write_varint(&mut out, kinds.len() as u64);
    for k in &kinds {
        write_str(&mut out, k);
    }
    write_varint(&mut out, records.len() as u64);
    for r in records {
        write_varint(&mut out, r.seq);
        write_varint(&mut out, u64::from(r.tid));
        write_varint(&mut out, r.tick);
        let idx = kinds.iter().position(|k| *k == r.kind).expect("interned");
        write_varint(&mut out, idx as u64);
        write_zigzag(&mut out, r.ret);
        write_zigzag(&mut out, i64::from(r.errno));
        write_varint(&mut out, r.bufs.len() as u64);
        for b in &r.bufs {
            write_varint(&mut out, b.len() as u64);
            let chunks = rle::byte_chunks(b);
            write_varint(&mut out, chunks.len() as u64);
            out.extend_from_slice(&chunks);
        }
    }
    out
}

pub(crate) fn decode_syscalls(payload: &[u8]) -> Result<Vec<SyscallRecord>, CodecError> {
    let mut cur = Cursor::new(payload);
    let nkinds = cur.read_varint("SYSCALL kind count")?;
    if nkinds > cur.remaining() as u64 {
        return Err(CodecError::Truncated {
            what: "SYSCALL kind table",
            offset: cur.pos(),
        });
    }
    let mut kinds: Vec<&str> = Vec::with_capacity(nkinds as usize);
    for _ in 0..nkinds {
        kinds.push(cur.read_str("syscall kind")?);
    }
    let count = cur.read_varint("SYSCALL count")?;
    let mut out = Vec::new();
    for _ in 0..count {
        let at = cur.pos();
        let seq = cur.read_varint("syscall seq")?;
        let tid = read_u32(&mut cur, "syscall tid")?;
        let tick = cur.read_varint("syscall tick")?;
        let kind_idx = cur.read_varint("syscall kind index")?;
        let kind = kinds
            .get(usize::try_from(kind_idx).unwrap_or(usize::MAX))
            .ok_or(CodecError::Invalid {
                what: format!("kind index {kind_idx} out of table (len {})", kinds.len()),
                offset: at,
            })?
            .to_owned();
        let ret = cur.read_zigzag("syscall ret")?;
        let errno = cur.read_zigzag("syscall errno")?;
        let errno = i32::try_from(errno).map_err(|_| CodecError::Invalid {
            what: format!("errno {errno} out of range"),
            offset: at,
        })?;
        let nbufs = cur.read_varint("syscall buf count")?;
        if nbufs > cur.remaining() as u64 {
            return Err(CodecError::Truncated {
                what: "syscall buffers",
                offset: cur.pos(),
            });
        }
        let mut bufs = Vec::with_capacity(nbufs as usize);
        for _ in 0..nbufs {
            let buf_at = cur.pos();
            let raw_len = cur.read_varint("buf length")?;
            let chunk_len = cur.read_varint("buf chunk length")?;
            let chunk_len = usize::try_from(chunk_len).map_err(|_| CodecError::Invalid {
                what: format!("chunk length {chunk_len} does not fit in memory"),
                offset: buf_at,
            })?;
            let chunks = cur.read_bytes(chunk_len, "buf chunks")?;
            let data = rle::decode_byte_chunks(chunks).map_err(|e| CodecError::Invalid {
                what: e,
                offset: buf_at,
            })?;
            if data.len() as u64 != raw_len {
                return Err(CodecError::Invalid {
                    what: format!(
                        "buf length mismatch: declared {raw_len}, got {}",
                        data.len()
                    ),
                    offset: buf_at,
                });
            }
            bufs.push(data);
        }
        out.push(SyscallRecord {
            seq,
            tid,
            tick,
            kind: kind.to_owned(),
            ret,
            errno,
            bufs,
        });
    }
    expect_end(&cur)?;
    Ok(out)
}

const ASYNC_RESCHEDULE: u8 = 0;
const ASYNC_SIGWAKEUP: u8 = 1;

pub(crate) fn encode_asyncs(events: &[AsyncEvent]) -> Vec<u8> {
    let mut out = Vec::new();
    write_varint(&mut out, events.len() as u64);
    for e in events {
        match *e {
            AsyncEvent::Reschedule { tick } => {
                out.push(ASYNC_RESCHEDULE);
                write_varint(&mut out, tick);
            }
            AsyncEvent::SignalWakeup { tid, tick } => {
                out.push(ASYNC_SIGWAKEUP);
                write_varint(&mut out, u64::from(tid));
                write_varint(&mut out, tick);
            }
        }
    }
    out
}

pub(crate) fn decode_asyncs(payload: &[u8]) -> Result<Vec<AsyncEvent>, CodecError> {
    let mut cur = Cursor::new(payload);
    let count = cur.read_varint("ASYNC count")?;
    let mut out = Vec::new();
    for _ in 0..count {
        let at = cur.pos();
        match cur.read_u8("async tag")? {
            ASYNC_RESCHEDULE => out.push(AsyncEvent::Reschedule {
                tick: cur.read_varint("reschedule tick")?,
            }),
            ASYNC_SIGWAKEUP => out.push(AsyncEvent::SignalWakeup {
                tid: read_u32(&mut cur, "sigwakeup tid")?,
                tick: cur.read_varint("sigwakeup tick")?,
            }),
            tag => {
                return Err(CodecError::Invalid {
                    what: format!("unknown ASYNC tag {tag}"),
                    offset: at,
                })
            }
        }
    }
    expect_end(&cur)?;
    Ok(out)
}

pub(crate) fn encode_alloc(alloc: &[u64]) -> Vec<u8> {
    let mut out = Vec::new();
    write_u64_block(&mut out, alloc);
    out
}

pub(crate) fn decode_alloc(payload: &[u8]) -> Result<Vec<u64>, CodecError> {
    let mut cur = Cursor::new(payload);
    let alloc = read_u64_block(&mut cur, "ALLOC values")?;
    expect_end(&cur)?;
    Ok(alloc)
}

fn read_u32(cur: &mut Cursor<'_>, what: &'static str) -> Result<u32, CodecError> {
    let at = cur.pos();
    let v = cur.read_varint(what)?;
    u32::try_from(v).map_err(|_| CodecError::Invalid {
        what: format!("{what} {v} out of range"),
        offset: at,
    })
}

fn expect_end(cur: &Cursor<'_>) -> Result<(), CodecError> {
    if cur.is_at_end() {
        Ok(())
    } else {
        Err(CodecError::TrailingBytes { offset: cur.pos() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrips_boundaries() {
        for v in [0u64, 1, 127, 128, 300, u64::from(u32::MAX), u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            let mut cur = Cursor::new(&buf);
            assert_eq!(cur.read_varint("v").unwrap(), v);
            assert!(cur.is_at_end());
        }
    }

    #[test]
    fn varint_overflow_is_typed() {
        // 10 continuation bytes followed by more payload than u64 holds.
        let buf = [0xffu8; 11];
        let mut cur = Cursor::new(&buf);
        assert!(matches!(
            cur.read_varint("v"),
            Err(CodecError::VarintOverflow { .. })
        ));
        // A 10th byte carrying more than the top bit also overflows.
        let mut buf = vec![0x80u8; 9];
        buf.push(0x02);
        let mut cur = Cursor::new(&buf);
        assert!(matches!(
            cur.read_varint("v"),
            Err(CodecError::VarintOverflow { .. })
        ));
    }

    #[test]
    fn zigzag_roundtrips() {
        for v in [0i64, -1, 1, i64::MIN, i64::MAX, -123456, 123456] {
            let mut buf = Vec::new();
            write_zigzag(&mut buf, v);
            let mut cur = Cursor::new(&buf);
            assert_eq!(cur.read_zigzag("v").unwrap(), v);
        }
    }

    #[test]
    fn frame_roundtrips_and_rejects_tampering() {
        let frame = encode_frame(StreamId::Alloc, b"payload");
        let parsed = parse_frame(&frame).unwrap();
        assert_eq!(parsed.stream, StreamId::Alloc);
        assert_eq!(parsed.payload, b"payload");
        assert!(is_binary(&frame));
        assert!(!is_binary(b"first 1\n"));

        // Any single-bit flip must fail.
        for byte in 0..frame.len() {
            for bit in 0..8 {
                let mut bad = frame.clone();
                bad[byte] ^= 1 << bit;
                assert!(parse_frame(&bad).is_err(), "flip at {byte}.{bit} accepted");
            }
        }
        // Any truncation must fail.
        for len in 0..frame.len() {
            assert!(parse_frame(&frame[..len]).is_err(), "truncation {len}");
        }
    }

    #[test]
    fn u64_block_matches_text_rle() {
        for vals in [
            vec![],
            vec![5],
            vec![5, 6, 7, 3, 3, 3, 9, 100, 101, 0],
            (0..1000).collect::<Vec<u64>>(),
            vec![0; 1000],
        ] {
            let mut buf = Vec::new();
            write_u64_block(&mut buf, &vals);
            let mut cur = Cursor::new(&buf);
            assert_eq!(read_u64_block(&mut cur, "t").unwrap(), vals);
            assert!(cur.is_at_end());
        }
    }

    #[test]
    fn u64_block_rejects_hostile_lengths() {
        // A repeat token claiming 2^60 values must be rejected, not
        // allocated.
        let mut buf = Vec::new();
        write_varint(&mut buf, 1); // one token
        buf.push(TOK_REPEAT);
        write_varint(&mut buf, 7);
        write_varint(&mut buf, 1 << 60);
        let mut cur = Cursor::new(&buf);
        assert!(matches!(
            read_u64_block(&mut cur, "t"),
            Err(CodecError::Invalid { .. })
        ));
    }

    #[test]
    fn stream_names_roundtrip() {
        for id in StreamId::ALL {
            assert_eq!(StreamId::from_file_name(id.file_name()), Some(id));
            assert_eq!(StreamId::from_byte(id as u8), Some(id));
        }
        assert_eq!(StreamId::from_file_name("CONSOLE"), None);
        assert_eq!(StreamId::from_byte(9), None);
    }

    #[test]
    fn syscall_kind_interning_pays_off() {
        let recs: Vec<SyscallRecord> = (0..100)
            .map(|i| SyscallRecord {
                seq: i,
                tid: 1,
                tick: i * 2,
                kind: "recvmsg".into(),
                ret: 64,
                errno: 0,
                bufs: vec![vec![0xab; 64]],
            })
            .collect();
        let payload = encode_syscalls(&recs);
        assert_eq!(decode_syscalls(&payload).unwrap(), recs);
        // One table entry, not 100 copies of "recvmsg".
        let naive = recs.len() * "recvmsg".len();
        assert!(payload.len() < naive + recs.len() * 16);
    }

    #[test]
    fn error_display_names_the_problem() {
        assert!(parse_frame(b"oops")
            .unwrap_err()
            .to_string()
            .contains("magic"));
        let e = CodecError::ChecksumMismatch {
            stored: 1,
            computed: 2,
        };
        assert!(e.to_string().contains("checksum"));
        assert!(CodecError::UnsupportedVersion(9)
            .to_string()
            .contains("version 9"));
    }
}
