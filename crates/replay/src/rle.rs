//! Run-length codecs for demo streams.
//!
//! Two codecs cover the paper's two compression needs:
//!
//! * [`encode_u64s`] / [`decode_u64s`] — integer sequences (the QUEUE
//!   next-tick list, the ALLOC address stream). The dominant pattern is a
//!   thread scheduled many times in succession, which produces arithmetic
//!   runs with step 1 (`k, k+1, k+2, …`); repeated constants also occur
//!   (`0 0 0 …` for "never scheduled again"). Tokens:
//!   - `N` — a literal value;
//!   - `N+K` — the run `N, N+1, …, N+K` (K ≥ 1);
//!   - `N*K` — the value `N` repeated `K` times (K ≥ 2).
//! * [`encode_bytes`] / [`decode_bytes`] — byte buffers (SYSCALL output
//!   data). "A simple run length encoding" (§4.4): alternating literal and
//!   run chunks, serialized as lowercase hex.

use std::fmt::Write as _;

/// One RLE token of the integer codec. The token model is shared by the
/// text form (this module) and the binary form ([`crate::codec`]), so
/// the two formats compress identically and text→bin→text is lossless.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum U64Token {
    /// A single literal value (`N` in text form).
    Literal(u64),
    /// The arithmetic run `base, base+1, …, base+extra` with `extra ≥ 1`
    /// (`N+K` in text form).
    IncRun {
        /// First value of the run.
        base: u64,
        /// Number of increments after the base (run length − 1).
        extra: u64,
    },
    /// The value repeated `count ≥ 2` times (`N*K` in text form).
    Repeat {
        /// The repeated value.
        value: u64,
        /// How many copies.
        count: u64,
    },
}

/// Tokenizes an integer sequence with the run-detection heuristic shared
/// by both codecs: prefer the longest arithmetic(+1) run, else the
/// longest constant run, else a literal.
#[must_use]
pub fn u64_tokens(values: &[u64]) -> Vec<U64Token> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < values.len() {
        let v = values[i];
        // Longest arithmetic(+1) run from i.
        let mut inc = 1;
        while i + inc < values.len() && values[i + inc] == v + inc as u64 {
            inc += 1;
        }
        // Longest constant run from i.
        let mut rep = 1;
        while i + rep < values.len() && values[i + rep] == v {
            rep += 1;
        }
        if inc >= rep && inc > 1 {
            out.push(U64Token::IncRun {
                base: v,
                extra: (inc - 1) as u64,
            });
            i += inc;
        } else if rep > 1 {
            out.push(U64Token::Repeat {
                value: v,
                count: rep as u64,
            });
            i += rep;
        } else {
            out.push(U64Token::Literal(v));
            i += 1;
        }
    }
    out
}

/// Encodes an integer sequence into the token text form.
#[must_use]
pub fn encode_u64s(values: &[u64]) -> String {
    let mut out = String::new();
    for tok in u64_tokens(values) {
        if !out.is_empty() {
            out.push(' ');
        }
        match tok {
            U64Token::Literal(v) => {
                let _ = write!(out, "{v}");
            }
            U64Token::IncRun { base, extra } => {
                let _ = write!(out, "{base}+{extra}");
            }
            U64Token::Repeat { value, count } => {
                let _ = write!(out, "{value}*{count}");
            }
        }
    }
    out
}

/// Decodes the token text form produced by [`encode_u64s`].
///
/// # Errors
///
/// Returns a description of the first malformed token.
pub fn decode_u64s(text: &str) -> Result<Vec<u64>, String> {
    let mut out = Vec::new();
    for tok in text.split_whitespace() {
        if let Some((base, k)) = tok.split_once('+') {
            let base: u64 = base
                .parse()
                .map_err(|_| format!("bad run base in `{tok}`"))?;
            let k: u64 = k
                .parse()
                .map_err(|_| format!("bad run length in `{tok}`"))?;
            out.extend((0..=k).map(|d| base + d));
        } else if let Some((base, k)) = tok.split_once('*') {
            let base: u64 = base
                .parse()
                .map_err(|_| format!("bad repeat base in `{tok}`"))?;
            let k: usize = k
                .parse()
                .map_err(|_| format!("bad repeat count in `{tok}`"))?;
            if k < 2 {
                return Err(format!("repeat count must be >= 2 in `{tok}`"));
            }
            out.resize(out.len() + k, base);
        } else {
            out.push(tok.parse().map_err(|_| format!("bad literal `{tok}`"))?);
        }
    }
    Ok(out)
}

/// Minimum run length worth a run chunk in the byte codec.
const BYTE_RUN_MIN: usize = 4;

/// Encodes a byte buffer into the raw RLE chunk stream.
///
/// Chunk grammar: `0x00 len byte` is a run of `len` (1–255) copies of
/// `byte`; `0x01 len b…` is `len` literal bytes. The text codec hexes
/// this stream ([`encode_bytes`]); the binary codec stores it as-is.
#[must_use]
pub fn byte_chunks(data: &[u8]) -> Vec<u8> {
    let mut chunks: Vec<u8> = Vec::new();
    let mut i = 0;
    let mut lit_start = 0;
    let flush_literal = |chunks: &mut Vec<u8>, lit: &[u8]| {
        for part in lit.chunks(255) {
            chunks.push(0x01);
            chunks.push(part.len() as u8);
            chunks.extend_from_slice(part);
        }
    };
    while i < data.len() {
        let b = data[i];
        let mut run = 1;
        while i + run < data.len() && data[i + run] == b {
            run += 1;
        }
        if run >= BYTE_RUN_MIN {
            flush_literal(&mut chunks, &data[lit_start..i]);
            let mut remaining = run;
            while remaining > 0 {
                let n = remaining.min(255);
                chunks.push(0x00);
                chunks.push(n as u8);
                chunks.push(b);
                remaining -= n;
            }
            i += run;
            lit_start = i;
        } else {
            i += run;
        }
    }
    flush_literal(&mut chunks, &data[lit_start..]);
    chunks
}

/// Encodes a byte buffer: RLE chunks ([`byte_chunks`]) serialized as
/// lowercase hex.
#[must_use]
pub fn encode_bytes(data: &[u8]) -> String {
    to_hex(&byte_chunks(data))
}

/// Decodes a raw RLE chunk stream back into the original bytes.
///
/// # Errors
///
/// Returns a description of the first malformed chunk.
pub fn decode_byte_chunks(chunks: &[u8]) -> Result<Vec<u8>, String> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < chunks.len() {
        match chunks[i] {
            0x00 => {
                let [len, b] = chunks
                    .get(i + 1..i + 3)
                    .and_then(|s| <[u8; 2]>::try_from(s).ok())
                    .ok_or("truncated run chunk")?;
                out.resize(out.len() + len as usize, b);
                i += 3;
            }
            0x01 => {
                let len = *chunks.get(i + 1).ok_or("truncated literal header")? as usize;
                let lit = chunks
                    .get(i + 2..i + 2 + len)
                    .ok_or("truncated literal chunk")?;
                out.extend_from_slice(lit);
                i += 2 + len;
            }
            tag => return Err(format!("unknown chunk tag {tag:#x}")),
        }
    }
    Ok(out)
}

/// Decodes the output of [`encode_bytes`].
///
/// # Errors
///
/// Returns a description of the first malformed digit pair or chunk.
pub fn decode_bytes(text: &str) -> Result<Vec<u8>, String> {
    decode_byte_chunks(&from_hex(text)?)
}

/// Lowercase hex of `data`.
#[must_use]
pub fn to_hex(data: &[u8]) -> String {
    let mut s = String::with_capacity(data.len() * 2);
    for b in data {
        let _ = write!(s, "{b:02x}");
    }
    s
}

/// Inverse of [`to_hex`].
///
/// # Errors
///
/// Returns a description of the first malformed digit pair.
pub fn from_hex(text: &str) -> Result<Vec<u8>, String> {
    let text = text.trim();
    if text.len() & 1 != 0 {
        return Err("odd-length hex string".into());
    }
    (0..text.len())
        .step_by(2)
        .map(|i| {
            u8::from_str_radix(&text[i..i + 2], 16).map_err(|_| format!("bad hex at byte {i}"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_roundtrip_empty() {
        assert_eq!(encode_u64s(&[]), "");
        assert_eq!(decode_u64s("").unwrap(), Vec::<u64>::new());
    }

    #[test]
    fn u64_arithmetic_run_compresses() {
        let vals: Vec<u64> = (10..30).collect();
        let enc = encode_u64s(&vals);
        assert_eq!(enc, "10+19");
        assert_eq!(decode_u64s(&enc).unwrap(), vals);
    }

    #[test]
    fn u64_constant_run_compresses() {
        let vals = vec![0; 7];
        let enc = encode_u64s(&vals);
        assert_eq!(enc, "0*7");
        assert_eq!(decode_u64s(&enc).unwrap(), vals);
    }

    #[test]
    fn u64_mixed_sequence_roundtrips() {
        let vals = vec![5, 6, 7, 3, 3, 3, 9, 100, 101, 0];
        let enc = encode_u64s(&vals);
        assert_eq!(decode_u64s(&enc).unwrap(), vals);
        assert_eq!(enc, "5+2 3*3 9 100+1 0");
    }

    #[test]
    fn u64_decode_rejects_garbage() {
        assert!(decode_u64s("abc").is_err());
        assert!(decode_u64s("5+x").is_err());
        assert!(decode_u64s("5*1").is_err());
    }

    #[test]
    fn bytes_roundtrip_empty_and_small() {
        for data in [&b""[..], b"a", b"abc", b"\x00\xff"] {
            let enc = encode_bytes(data);
            assert_eq!(decode_bytes(&enc).unwrap(), data, "data {data:?}");
        }
    }

    #[test]
    fn bytes_runs_compress() {
        let data = vec![7u8; 1000];
        let enc = encode_bytes(&data);
        assert!(
            enc.len() < 50,
            "1000 bytes should compress, got {} chars",
            enc.len()
        );
        assert_eq!(decode_bytes(&enc).unwrap(), data);
    }

    #[test]
    fn bytes_mixed_content_roundtrips() {
        let mut data = Vec::new();
        data.extend_from_slice(b"HTTP/1.1 200 OK\r\n");
        data.resize(data.len() + 300, b' ');
        data.extend_from_slice(b"payload");
        data.resize(data.len() + 3, 0u8); // short run stays literal
        let enc = encode_bytes(&data);
        assert_eq!(decode_bytes(&enc).unwrap(), data);
    }

    #[test]
    fn bytes_literal_longer_than_255_chunks() {
        let data: Vec<u8> = (0..=255u8).cycle().take(700).collect();
        let enc = encode_bytes(&data);
        assert_eq!(decode_bytes(&enc).unwrap(), data);
    }

    #[test]
    fn bytes_decode_rejects_garbage() {
        assert!(decode_bytes("zz").is_err());
        assert!(decode_bytes("00").is_err(), "truncated run");
        assert!(
            decode_bytes("0105aa").is_err(),
            "literal shorter than header"
        );
        assert!(decode_bytes("ff").is_err(), "unknown tag");
        assert!(decode_bytes("abc").is_err(), "odd length");
    }

    #[test]
    fn hex_roundtrip() {
        let data = vec![0x00, 0x7f, 0xff, 0x10];
        assert_eq!(to_hex(&data), "007fff10");
        assert_eq!(from_hex("007fff10").unwrap(), data);
        assert_eq!(
            from_hex("  007fff10\n").unwrap(),
            data,
            "whitespace tolerated"
        );
    }
}
