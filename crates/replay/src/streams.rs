//! Typed events for the demo streams, with their line formats.

use std::collections::HashMap;

use crate::demo::DemoLoadError;
use crate::rle;

/// An asynchronous signal pinned to logical time (§4.3).
///
/// Line format (the paper's own example): `2 5 15` — thread 2 receives
/// signal 15 at tick 5. On replay the thread raises the signal itself at
/// the end of its `Tick()` for that tick.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SignalEvent {
    /// Receiving thread.
    pub tid: u32,
    /// The tick value seen at the thread's most recent `Tick()`.
    pub tick: u64,
    /// Signal number.
    pub signo: i32,
}

impl SignalEvent {
    pub(crate) fn to_line(self) -> String {
        format!("{} {} {}", self.tid, self.tick, self.signo)
    }

    pub(crate) fn from_line(line: &str) -> Result<Self, String> {
        let mut it = line.split_whitespace();
        let parse = |s: Option<&str>, what: &str| -> Result<i64, String> {
            s.ok_or_else(|| format!("missing {what} in SIGNAL line `{line}`"))?
                .parse()
                .map_err(|_| format!("bad {what} in SIGNAL line `{line}`"))
        };
        let tid = parse(it.next(), "tid")? as u32;
        let tick = parse(it.next(), "tick")? as u64;
        let signo = parse(it.next(), "signo")? as i32;
        if it.next().is_some() {
            return Err(format!("trailing junk in SIGNAL line `{line}`"));
        }
        Ok(SignalEvent { tid, tick, signo })
    }
}

/// One recorded system call (§4.4): return value, errno and every output
/// buffer the call filled.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SyscallRecord {
    /// Global sequence number among recorded syscalls.
    pub seq: u64,
    /// Issuing thread.
    pub tid: u32,
    /// Tick of the syscall's critical section.
    pub tick: u64,
    /// Syscall kind name (e.g. `recv`, `poll`).
    pub kind: String,
    /// The return value to enforce on replay.
    pub ret: i64,
    /// The errno value to enforce on replay.
    pub errno: i32,
    /// Output buffers, in the syscall's argument order.
    pub bufs: Vec<Vec<u8>>,
}

impl SyscallRecord {
    pub(crate) fn to_lines(&self) -> String {
        let mut out = format!(
            "syscall {} {} {} {} ret={} errno={} nbufs={}\n",
            self.seq,
            self.tid,
            self.tick,
            self.kind,
            self.ret,
            self.errno,
            self.bufs.len()
        );
        for b in &self.bufs {
            out.push_str("buf ");
            out.push_str(&b.len().to_string());
            out.push(' ');
            out.push_str(&rle::encode_bytes(b));
            out.push('\n');
        }
        out
    }

    /// Approximate on-disk size in bytes of this record.
    #[must_use]
    pub fn encoded_size(&self) -> usize {
        self.to_lines().len()
    }
}

/// An asynchronous event (§4.5): not wrapped in `Wait()`/`Tick()`, floated
/// to the preceding tick on replay.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AsyncEvent {
    /// A liveness-forced reschedule (§3.3) at the given tick.
    Reschedule {
        /// The tick whose critical section the reschedule followed.
        tick: u64,
    },
    /// A disabled thread re-enabled by signal arrival (§4.5) at the
    /// given tick.
    SignalWakeup {
        /// The woken thread.
        tid: u32,
        /// The tick at which the wakeup was applied.
        tick: u64,
    },
}

impl AsyncEvent {
    /// The tick this event is floated to.
    #[must_use]
    pub fn tick(self) -> u64 {
        match self {
            AsyncEvent::Reschedule { tick } | AsyncEvent::SignalWakeup { tick, .. } => tick,
        }
    }

    pub(crate) fn to_line(self) -> String {
        match self {
            AsyncEvent::Reschedule { tick } => format!("reschedule {tick}"),
            AsyncEvent::SignalWakeup { tid, tick } => format!("sigwakeup {tid} {tick}"),
        }
    }

    pub(crate) fn from_line(line: &str) -> Result<Self, String> {
        let mut it = line.split_whitespace();
        match it.next() {
            Some("reschedule") => {
                let tick = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| format!("bad reschedule line `{line}`"))?;
                Ok(AsyncEvent::Reschedule { tick })
            }
            Some("sigwakeup") => {
                let tid = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| format!("bad sigwakeup tid in `{line}`"))?;
                let tick = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| format!("bad sigwakeup tick in `{line}`"))?;
                Ok(AsyncEvent::SignalWakeup { tid, tick })
            }
            other => Err(format!("unknown ASYNC event {other:?} in `{line}`")),
        }
    }
}

/// The queue-strategy interleaving (§4.2).
///
/// `first_tick[i]` holds, for each thread in creation order, the first tick
/// at which the thread is scheduled (0 = never scheduled). `next_ticks[k]`
/// is consumed by whichever thread leaves the critical section of tick
/// `k + 1` and names that thread's next scheduled tick (0 = never again).
/// Critical sections are totally ordered, so "order of leaving" equals tick
/// order and a dense vector indexed by tick suffices.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct QueueStream {
    /// First scheduled tick per thread id (index = tid).
    pub first_tick: Vec<u64>,
    /// Next-tick consumed on leaving the critical section of tick `k+1`.
    pub next_ticks: Vec<u64>,
}

impl QueueStream {
    pub(crate) fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str("first ");
        out.push_str(&rle::encode_u64s(&self.first_tick));
        out.push('\n');
        out.push_str("ticks ");
        out.push_str(&rle::encode_u64s(&self.next_ticks));
        out.push('\n');
        out
    }

    pub(crate) fn from_text(text: &str) -> Result<Self, String> {
        let mut stream = QueueStream::default();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("first ") {
                stream.first_tick = rle::decode_u64s(rest)?;
            } else if let Some(rest) = line.strip_prefix("ticks ") {
                stream.next_ticks = rle::decode_u64s(rest)?;
            } else if line == "first" || line == "ticks" {
                // Empty stream lines are fine.
            } else {
                return Err(format!("unknown QUEUE line `{line}`"));
            }
        }
        Ok(stream)
    }

    /// Builds the stream from an explicit schedule: `(tid, tick)` pairs
    /// in tick order, ticks dense from 1. The inverse of
    /// [`QueueStream::schedule_order`] — `from_order(&s.schedule_order(),
    /// n)` reproduces `s` for any well-formed stream. This is how
    /// synthesized (rather than recorded) interleavings become demos.
    ///
    /// `nthreads` sizes the `first_tick` table; threads never scheduled
    /// keep the 0 ("never") sentinel.
    #[must_use]
    pub fn from_order(order: &[(u32, u64)], nthreads: usize) -> Self {
        let mut first_tick = vec![0u64; nthreads];
        let mut last_cs_of_thread: HashMap<u32, usize> = HashMap::new();
        let mut next_ticks = vec![0u64; order.len()];
        for (idx, &(tid, tick)) in order.iter().enumerate() {
            if let Some(slot) = first_tick.get_mut(tid as usize) {
                if *slot == 0 {
                    *slot = tick;
                }
            }
            if let Some(&prev) = last_cs_of_thread.get(&tid) {
                next_ticks[prev] = tick;
            }
            last_cs_of_thread.insert(tid, idx);
        }
        QueueStream {
            first_tick,
            next_ticks,
        }
    }

    /// Returns `true` if no scheduling information was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.first_tick.is_empty() && self.next_ticks.is_empty()
    }

    /// Reconstructs the recorded schedule as `(tid, tick)` pairs in tick
    /// order, by walking the per-thread due ticks the way replay does:
    /// the thread due at tick `k` runs cs `k` and then consumes
    /// `next_ticks[k-1]` as its next due tick. Stops at the first tick no
    /// thread is due for (a corrupt or truncated stream ends the walk
    /// early rather than erroring — diagnostics compare against whatever
    /// prefix is reconstructible).
    #[must_use]
    pub fn schedule_order(&self) -> Vec<(u32, u64)> {
        let mut due = self.first_tick.clone();
        let mut out = Vec::with_capacity(self.next_ticks.len());
        for k in 1..=self.next_ticks.len() as u64 {
            let Some(tid) = due.iter().position(|&d| d == k) else {
                break;
            };
            out.push((tid as u32, k));
            due[tid] = self.next_ticks[(k - 1) as usize];
        }
        out
    }
}

/// Parses the text `SYSCALL` stream. Failures carry the 1-based line
/// number of the offending line in [`DemoLoadError::Malformed`].
pub(crate) fn parse_syscalls(text: &str) -> Result<Vec<SyscallRecord>, DemoLoadError> {
    let mut last_line = 0usize;
    parse_syscalls_inner(text, &mut last_line).map_err(|err| DemoLoadError::Malformed {
        file: "SYSCALL".into(),
        line: Some(last_line.max(1)),
        err,
    })
}

fn parse_syscalls_inner(text: &str, last_line: &mut usize) -> Result<Vec<SyscallRecord>, String> {
    let mut out: Vec<SyscallRecord> = Vec::new();
    let mut expected_bufs = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        *last_line = lineno + 1;
        if let Some(rest) = line.strip_prefix("syscall ") {
            if expected_bufs != 0 {
                return Err(format!(
                    "syscall record missing {expected_bufs} buffer line(s) before `{line}`"
                ));
            }
            let mut it = rest.split_whitespace();
            let mut next = |what: &str| {
                it.next()
                    .ok_or_else(|| format!("missing {what} in `{line}`"))
                    .map(str::to_owned)
            };
            let seq = next("seq")?
                .parse()
                .map_err(|_| format!("bad seq in `{line}`"))?;
            let tid = next("tid")?
                .parse()
                .map_err(|_| format!("bad tid in `{line}`"))?;
            let tick = next("tick")?
                .parse()
                .map_err(|_| format!("bad tick in `{line}`"))?;
            let kind = next("kind")?;
            let field = |s: String, prefix: &str| -> Result<String, String> {
                s.strip_prefix(prefix)
                    .map(str::to_owned)
                    .ok_or_else(|| format!("expected `{prefix}...` in `{line}`"))
            };
            let ret = field(next("ret")?, "ret=")?
                .parse()
                .map_err(|_| format!("bad ret in `{line}`"))?;
            let errno = field(next("errno")?, "errno=")?
                .parse()
                .map_err(|_| format!("bad errno in `{line}`"))?;
            expected_bufs = field(next("nbufs")?, "nbufs=")?
                .parse()
                .map_err(|_| format!("bad nbufs in `{line}`"))?;
            out.push(SyscallRecord {
                seq,
                tid,
                tick,
                kind,
                ret,
                errno,
                bufs: Vec::new(),
            });
        } else if let Some(rest) = line.strip_prefix("buf ") {
            let rec = out.last_mut().ok_or("buf line before any syscall line")?;
            if expected_bufs == 0 {
                return Err("more buf lines than nbufs declared".into());
            }
            let (len_s, payload) = rest.split_once(' ').unwrap_or((rest, ""));
            let len: usize = len_s
                .parse()
                .map_err(|_| format!("bad buf length `{len_s}`"))?;
            let data = rle::decode_bytes(payload)?;
            if data.len() != len {
                return Err(format!(
                    "buf length mismatch: declared {len}, got {}",
                    data.len()
                ));
            }
            rec.bufs.push(data);
            expected_bufs -= 1;
        } else {
            return Err(format!("unknown SYSCALL line `{line}`"));
        }
    }
    if expected_bufs != 0 {
        return Err(format!(
            "final syscall record missing {expected_bufs} buffer line(s)"
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signal_event_roundtrips_paper_example() {
        let e = SignalEvent {
            tid: 2,
            tick: 5,
            signo: 15,
        };
        assert_eq!(e.to_line(), "2 5 15");
        assert_eq!(SignalEvent::from_line("2 5 15").unwrap(), e);
    }

    #[test]
    fn signal_event_rejects_malformed() {
        assert!(SignalEvent::from_line("").is_err());
        assert!(SignalEvent::from_line("2 5").is_err());
        assert!(SignalEvent::from_line("2 5 x").is_err());
        assert!(SignalEvent::from_line("2 5 15 9").is_err());
    }

    #[test]
    fn async_event_roundtrips() {
        for e in [
            AsyncEvent::Reschedule { tick: 9 },
            AsyncEvent::SignalWakeup { tid: 3, tick: 12 },
        ] {
            assert_eq!(AsyncEvent::from_line(&e.to_line()).unwrap(), e);
        }
        assert_eq!(AsyncEvent::Reschedule { tick: 9 }.tick(), 9);
        assert_eq!(AsyncEvent::SignalWakeup { tid: 3, tick: 12 }.tick(), 12);
    }

    #[test]
    fn async_event_rejects_malformed() {
        assert!(AsyncEvent::from_line("teleport 3").is_err());
        assert!(AsyncEvent::from_line("reschedule").is_err());
        assert!(AsyncEvent::from_line("sigwakeup 1").is_err());
    }

    #[test]
    fn queue_stream_roundtrips() {
        let q = QueueStream {
            first_tick: vec![1, 2, 9],
            next_ticks: vec![3, 4, 5, 0, 0],
        };
        let text = q.to_text();
        assert_eq!(QueueStream::from_text(&text).unwrap(), q);
        assert!(!q.is_empty());
        assert!(QueueStream::default().is_empty());
    }

    #[test]
    fn queue_stream_schedule_order() {
        // T0 runs ticks 1,3; T1 runs ticks 2,4; then both retire (0).
        let q = QueueStream {
            first_tick: vec![1, 2],
            next_ticks: vec![3, 4, 0, 0],
        };
        assert_eq!(q.schedule_order(), vec![(0, 1), (1, 2), (0, 3), (1, 4)]);
        // Truncating the stream truncates the reconstructible prefix.
        let cut = QueueStream {
            first_tick: vec![1, 2],
            next_ticks: vec![3, 4],
        };
        assert_eq!(cut.schedule_order(), vec![(0, 1), (1, 2)]);
        assert!(QueueStream::default().schedule_order().is_empty());
    }

    #[test]
    fn from_order_inverts_schedule_order() {
        // Dense ticks 1..=8: T0 runs 1,3,5; T1 runs 2,4,6; T2 runs 7,8.
        let q = QueueStream {
            first_tick: vec![1, 2, 7],
            next_ticks: vec![3, 4, 5, 6, 0, 0, 8, 0],
        };
        let order = q.schedule_order();
        assert_eq!(QueueStream::from_order(&order, 3), q);
        // Unscheduled threads keep the 0 sentinel.
        let q = QueueStream::from_order(&[(0, 1), (2, 2)], 4);
        assert_eq!(q.first_tick, vec![1, 0, 2, 0]);
        assert_eq!(q.next_ticks, vec![0, 0]);
        assert_eq!(QueueStream::from_order(&[], 0), QueueStream::default());
    }

    #[test]
    fn queue_stream_uses_rle() {
        let q = QueueStream {
            first_tick: vec![1],
            next_ticks: (2..1000).collect(),
        };
        let text = q.to_text();
        assert!(text.len() < 40, "RLE should collapse the run: {text}");
    }

    #[test]
    fn syscall_records_roundtrip() {
        let recs = vec![
            SyscallRecord {
                seq: 0,
                tid: 1,
                tick: 10,
                kind: "poll".into(),
                ret: 1,
                errno: 0,
                bufs: vec![vec![1, 0, 0, 0]],
            },
            SyscallRecord {
                seq: 1,
                tid: 1,
                tick: 12,
                kind: "recv".into(),
                ret: 100,
                errno: 0,
                bufs: vec![vec![b'x'; 100], vec![]],
            },
        ];
        let text: String = recs.iter().map(SyscallRecord::to_lines).collect();
        assert_eq!(parse_syscalls(&text).unwrap(), recs);
    }

    #[test]
    fn syscall_negative_ret_and_errno() {
        let rec = SyscallRecord {
            seq: 7,
            tid: 0,
            tick: 3,
            kind: "recv".into(),
            ret: -1,
            errno: 11, // EAGAIN
            bufs: vec![],
        };
        let parsed = parse_syscalls(&rec.to_lines()).unwrap();
        assert_eq!(parsed, vec![rec]);
    }

    #[test]
    fn syscall_parse_rejects_malformed() {
        assert!(parse_syscalls("syscall 0 1").is_err());
        assert!(
            parse_syscalls("buf 3 aabbcc").is_err(),
            "buf before syscall"
        );
        assert!(
            parse_syscalls("syscall 0 1 2 recv ret=0 errno=0 nbufs=1\n").is_err(),
            "missing buf line"
        );
        assert!(
            parse_syscalls("syscall 0 1 2 recv ret=0 errno=0 nbufs=0\nbuf 1 0101aa\n").is_err(),
            "surplus buf line"
        );
        let bad_len = "syscall 0 1 2 recv ret=0 errno=0 nbufs=1\nbuf 5 0101aa\n";
        assert!(parse_syscalls(bad_len).is_err(), "length mismatch");
    }

    #[test]
    fn syscall_parse_errors_carry_line_numbers() {
        // Line 3 (the second record, after a blank line) is malformed.
        let text = "syscall 0 1 2 recv ret=0 errno=0 nbufs=0\n\nsyscall zero 1 2 recv ret=0 errno=0 nbufs=0\n";
        match parse_syscalls(text) {
            Err(DemoLoadError::Malformed { file, line, err }) => {
                assert_eq!(file, "SYSCALL");
                assert_eq!(line, Some(3));
                assert!(err.contains("bad seq"), "err: {err}");
            }
            other => panic!("expected malformed line 3, got {other:?}"),
        }
        // A bad buf line is reported at the buf line, not the record.
        let text = "syscall 0 1 2 recv ret=0 errno=0 nbufs=1\nbuf 5 0101aa\n";
        match parse_syscalls(text) {
            Err(DemoLoadError::Malformed { line, .. }) => assert_eq!(line, Some(2)),
            other => panic!("expected malformed line 2, got {other:?}"),
        }
    }

    #[test]
    fn syscall_encoded_size_is_positive_and_tracks_payload() {
        let small = SyscallRecord {
            seq: 0,
            tid: 0,
            tick: 0,
            kind: "read".into(),
            ret: 0,
            errno: 0,
            bufs: vec![],
        };
        let big = SyscallRecord {
            bufs: vec![(0..200).collect()],
            ..small.clone()
        };
        assert!(small.encoded_size() > 0);
        assert!(big.encoded_size() > small.encoded_size());
    }
}
