//! Property tests: every codec and stream roundtrips on arbitrary input,
//! and the offline demo linter (`srr-analysis`) accepts exactly the
//! well-formed serializations.

use proptest::prelude::*;
use srr_replay::rle;
use srr_replay::{AsyncEvent, Demo, DemoHeader, QueueStream, SignalEvent, SyscallRecord};

/// A demo whose streams are derived from an actual schedule — the QUEUE
/// linked-list invariants (exact cover of ticks `1..=T`, forward-pointing
/// next links) only hold for streams built the way the recorder builds
/// them, so arbitrary vectors won't do.
fn demo_from_schedule(
    nthreads: usize,
    order: &[usize],
    signals: &[(usize, u64, i32)],
    syscalls: &[(usize, u64, Vec<Vec<u8>>)],
    asyncs: &[(bool, usize, u64)],
    alloc: Vec<u64>,
) -> Demo {
    let mut first = vec![0u64; nthreads];
    let mut next = vec![0u64; order.len()];
    let mut last_idx: Vec<Option<usize>> = vec![None; nthreads];
    for (idx, &tid) in order.iter().enumerate() {
        let tick = (idx + 1) as u64;
        match last_idx[tid] {
            None => first[tid] = tick,
            Some(prev) => next[prev] = tick,
        }
        last_idx[tid] = Some(idx);
    }

    let mut demo = Demo::new(DemoHeader::new("tsan11rec", "queue", [5, 9]));
    demo.queue = QueueStream {
        first_tick: first,
        next_ticks: next,
    };

    // SIGNAL ticks need only be per-tid non-decreasing; sorting by
    // (tid, tick) models the per-thread recording order.
    let mut signals: Vec<_> = signals.to_vec();
    signals.sort_unstable();
    demo.signals = signals
        .into_iter()
        .map(|(tid, tick, signo)| SignalEvent {
            tid: tid as u32,
            tick,
            signo,
        })
        .collect();

    // SYSCALL seq is the record index and ticks are globally monotone.
    let mut ticks: Vec<u64> = syscalls.iter().map(|&(_, t, _)| t).collect();
    ticks.sort_unstable();
    demo.syscalls = syscalls
        .iter()
        .zip(ticks)
        .enumerate()
        .map(|(seq, (&(tid, _, ref bufs), tick))| SyscallRecord {
            seq: seq as u64,
            tid: tid as u32,
            tick,
            kind: "recvmsg".into(),
            ret: bufs.first().map_or(-1, |b| b.len() as i64),
            errno: 11,
            bufs: bufs.clone(),
        })
        .collect();

    let mut aticks: Vec<u64> = asyncs.iter().map(|&(_, _, t)| t).collect();
    aticks.sort_unstable();
    demo.async_events = asyncs
        .iter()
        .zip(aticks)
        .map(|(&(resched, tid, _), tick)| {
            if resched {
                AsyncEvent::Reschedule { tick }
            } else {
                AsyncEvent::SignalWakeup {
                    tid: tid as u32,
                    tick,
                }
            }
        })
        .collect();
    demo.alloc = alloc;
    demo
}

/// Generator bundle for a valid recorded-shaped demo.
#[allow(clippy::type_complexity)]
fn valid_demo() -> impl Strategy<Value = Demo> {
    (1usize..5)
        .prop_flat_map(|nthreads| {
            (
                Just(nthreads),
                proptest::collection::vec(0..nthreads, 1..40),
                proptest::collection::vec((0..nthreads, 0u64..40, 1i32..32), 0..8),
                proptest::collection::vec(
                    (
                        0..nthreads,
                        0u64..40,
                        proptest::collection::vec(
                            proptest::collection::vec(any::<u8>(), 0..32),
                            0..3,
                        ),
                    ),
                    0..5,
                ),
                proptest::collection::vec((any::<bool>(), 0..nthreads, 0u64..40), 0..6),
                proptest::collection::vec(0u64..1_000_000, 0..16),
            )
        })
        .prop_map(|(nthreads, order, signals, syscalls, asyncs, alloc)| {
            demo_from_schedule(nthreads, &order, &signals, &syscalls, &asyncs, alloc)
        })
}

proptest! {
    #[test]
    fn u64_codec_roundtrips(values in proptest::collection::vec(0u64..10_000, 0..200)) {
        let enc = rle::encode_u64s(&values);
        prop_assert_eq!(rle::decode_u64s(&enc).unwrap(), values);
    }

    #[test]
    fn u64_codec_roundtrips_extremes(values in proptest::collection::vec(0u64..=u64::MAX / 2, 0..50)) {
        let enc = rle::encode_u64s(&values);
        prop_assert_eq!(rle::decode_u64s(&enc).unwrap(), values);
    }

    #[test]
    fn byte_codec_roundtrips(data in proptest::collection::vec(any::<u8>(), 0..600)) {
        let enc = rle::encode_bytes(&data);
        prop_assert_eq!(rle::decode_bytes(&enc).unwrap(), data);
    }

    #[test]
    fn byte_codec_roundtrips_runs(byte in any::<u8>(), n in 0usize..2000) {
        let data = vec![byte; n];
        let enc = rle::encode_bytes(&data);
        prop_assert_eq!(rle::decode_bytes(&enc).unwrap(), data);
    }

    #[test]
    fn byte_codec_compresses_runs(byte in any::<u8>(), n in 256usize..2000) {
        let data = vec![byte; n];
        let enc = rle::encode_bytes(&data);
        // 3 bytes (6 hex chars) per 255-run.
        prop_assert!(enc.len() <= (n / 255 + 1) * 6 + 8);
    }

    #[test]
    fn hex_roundtrips(data in proptest::collection::vec(any::<u8>(), 0..200)) {
        prop_assert_eq!(rle::from_hex(&rle::to_hex(&data)).unwrap(), data);
    }

    #[test]
    fn demo_roundtrips(
        seeds in (any::<u64>(), any::<u64>()),
        first in proptest::collection::vec(0u64..1000, 0..8),
        ticks in proptest::collection::vec(0u64..1000, 0..64),
        signals in proptest::collection::vec((0u32..8, 0u64..1000, 1i32..32), 0..10),
        alloc in proptest::collection::vec(0u64..1_000_000, 0..32),
        bufs in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..64), 0..4),
    ) {
        let mut demo = Demo::new(DemoHeader::new("tsan11rec", "queue", [seeds.0, seeds.1]));
        demo.queue = QueueStream { first_tick: first, next_ticks: ticks };
        demo.signals = signals
            .into_iter()
            .map(|(tid, tick, signo)| SignalEvent { tid, tick, signo })
            .collect();
        demo.alloc = alloc;
        demo.async_events = vec![
            AsyncEvent::Reschedule { tick: 3 },
            AsyncEvent::SignalWakeup { tid: 1, tick: 9 },
        ];
        demo.syscalls = vec![SyscallRecord {
            seq: 0,
            tid: 2,
            tick: 17,
            kind: "recvmsg".into(),
            ret: -1,
            errno: 11,
            bufs,
        }];
        let map = demo.to_string_map();
        prop_assert_eq!(Demo::from_string_map(&map).unwrap(), demo);
    }

    /// Any demo shaped like a real recording serializes to files the
    /// offline linter accepts without diagnostics.
    #[test]
    fn schedule_shaped_demos_lint_clean(demo in valid_demo()) {
        let map = demo.to_string_map();
        let diags = srr_analysis::lint_demo_map(&map);
        prop_assert!(diags.is_empty(), "clean demo flagged: {diags:?}\nmap: {map:?}");
    }

    /// Corrupting any digit in any *stream* file (every digit there is
    /// part of a number or an RLE/hex payload) is caught: the linter
    /// objects, or parsing fails — a corruption can never slip through
    /// both and silently change the demo.
    #[test]
    fn digit_corruption_is_caught(demo in valid_demo(), file_pick in any::<u32>(), pos_pick in any::<u32>()) {
        let mut map = demo.to_string_map();
        let streams: Vec<String> = map
            .keys()
            .filter(|k| k.as_str() != "HEADER")
            .cloned()
            .collect();
        prop_assume!(!streams.is_empty());
        let name = streams[file_pick as usize % streams.len()].clone();
        let text = map[&name].clone();
        let digit_positions: Vec<usize> = text
            .char_indices()
            .filter(|&(_, c)| c.is_ascii_digit())
            .map(|(i, _)| i)
            .collect();
        prop_assume!(!digit_positions.is_empty());
        let pos = digit_positions[pos_pick as usize % digit_positions.len()];
        let mut bytes = text.into_bytes();
        bytes[pos] = b'x';
        map.insert(name.clone(), String::from_utf8(bytes).unwrap());

        let diags = srr_analysis::lint_demo_map(&map);
        let reparsed = Demo::from_string_map(&map);
        prop_assert!(
            !diags.is_empty() || reparsed.is_err(),
            "corrupting {name} byte {pos} slipped through: parsed to {reparsed:?}"
        );
        // And when the *parser* still accepts the corrupted text, the
        // linter must be the one that objected.
        if reparsed.is_ok() {
            prop_assert!(!diags.is_empty());
        }
    }

    /// Deleting a buffer line from SYSCALL leaves a record short of its
    /// declared `nbufs` — the linter must catch the truncation.
    #[test]
    fn missing_syscall_buffer_is_caught(demo in valid_demo(), pick in any::<u32>()) {
        let map = demo.to_string_map();
        let text = map.get("SYSCALL").cloned().unwrap_or_default();
        let buf_lines: Vec<usize> = text
            .lines()
            .enumerate()
            .filter(|(_, l)| l.trim_start().starts_with("buf "))
            .map(|(i, _)| i)
            .collect();
        prop_assume!(!buf_lines.is_empty());
        let drop_ln = buf_lines[pick as usize % buf_lines.len()];
        let corrupted: String = text
            .lines()
            .enumerate()
            .filter(|&(i, _)| i != drop_ln)
            .map(|(_, l)| format!("{l}\n"))
            .collect();
        let mut map = map.clone();
        map.insert("SYSCALL".to_owned(), corrupted);
        let diags = srr_analysis::lint_demo_map(&map);
        prop_assert!(!diags.is_empty(), "missing buf line not caught");
    }
}

// ---------------------------------------------------------------------------
// Binary codec properties: the framed format introduced alongside the
// text form must roundtrip on the same arbitrary inputs, and converting
// through either format must be the identity on the other's canonical
// serialization.

proptest! {
    /// Arbitrary recorded-shaped demos roundtrip through the binary map.
    #[test]
    fn binary_codec_roundtrips(demo in valid_demo()) {
        let map = demo.to_bytes_map();
        prop_assert_eq!(Demo::from_bytes_map(&map).unwrap(), demo);
    }

    /// text → bin → text is the identity on the canonical text form.
    #[test]
    fn text_bin_text_is_identity(demo in valid_demo()) {
        let text = demo.to_string_map();
        let through = Demo::from_string_map(&text).unwrap();
        let back = Demo::from_bytes_map(&through.to_bytes_map()).unwrap();
        prop_assert_eq!(back.to_string_map(), text);
    }

    /// bin → text → bin is the identity on the canonical binary form.
    #[test]
    fn bin_text_bin_is_identity(demo in valid_demo()) {
        let bin = demo.to_bytes_map();
        let through = Demo::from_bytes_map(&bin).unwrap();
        let back = Demo::from_string_map(&through.to_string_map()).unwrap();
        prop_assert_eq!(back.to_bytes_map(), bin);
    }

    /// Schedules synthesized via `QueueStream::from_order` /
    /// `Demo::from_schedule` (the witness-synthesis path) survive the
    /// binary codec for arbitrary thread counts and tick orders.
    #[test]
    fn from_schedule_roundtrips_through_binary(
        nthreads in 1usize..8,
        picks in proptest::collection::vec(any::<u32>(), 0..60),
    ) {
        // Dense ticks 1..=n assigned to arbitrary threads, the shape
        // `from_schedule` documents.
        let order: Vec<(u32, u64)> = picks
            .iter()
            .enumerate()
            .map(|(i, &p)| (p % nthreads as u32, (i + 1) as u64))
            .collect();
        let demo = Demo::from_schedule(
            DemoHeader::new("tsan11rec", "queue", [3, 11]),
            &order,
            nthreads,
        );
        prop_assert_eq!(
            &demo.queue,
            &QueueStream::from_order(&order, nthreads),
            "from_schedule must delegate to from_order"
        );
        let back = Demo::from_bytes_map(&demo.to_bytes_map()).unwrap();
        prop_assert_eq!(&back, &demo);
        // The replay cursor semantics ride on the QUEUE stream alone;
        // byte-level equality of the re-encoded stream pins it.
        prop_assert_eq!(back.queue, demo.queue);
    }
}
