//! Property tests: every codec and stream roundtrips on arbitrary input.

use proptest::prelude::*;
use srr_replay::rle;
use srr_replay::{AsyncEvent, Demo, DemoHeader, QueueStream, SignalEvent, SyscallRecord};

proptest! {
    #[test]
    fn u64_codec_roundtrips(values in proptest::collection::vec(0u64..10_000, 0..200)) {
        let enc = rle::encode_u64s(&values);
        prop_assert_eq!(rle::decode_u64s(&enc).unwrap(), values);
    }

    #[test]
    fn u64_codec_roundtrips_extremes(values in proptest::collection::vec(0u64..=u64::MAX / 2, 0..50)) {
        let enc = rle::encode_u64s(&values);
        prop_assert_eq!(rle::decode_u64s(&enc).unwrap(), values);
    }

    #[test]
    fn byte_codec_roundtrips(data in proptest::collection::vec(any::<u8>(), 0..600)) {
        let enc = rle::encode_bytes(&data);
        prop_assert_eq!(rle::decode_bytes(&enc).unwrap(), data);
    }

    #[test]
    fn byte_codec_roundtrips_runs(byte in any::<u8>(), n in 0usize..2000) {
        let data = vec![byte; n];
        let enc = rle::encode_bytes(&data);
        prop_assert_eq!(rle::decode_bytes(&enc).unwrap(), data);
    }

    #[test]
    fn byte_codec_compresses_runs(byte in any::<u8>(), n in 256usize..2000) {
        let data = vec![byte; n];
        let enc = rle::encode_bytes(&data);
        // 3 bytes (6 hex chars) per 255-run.
        prop_assert!(enc.len() <= (n / 255 + 1) * 6 + 8);
    }

    #[test]
    fn hex_roundtrips(data in proptest::collection::vec(any::<u8>(), 0..200)) {
        prop_assert_eq!(rle::from_hex(&rle::to_hex(&data)).unwrap(), data);
    }

    #[test]
    fn demo_roundtrips(
        seeds in (any::<u64>(), any::<u64>()),
        first in proptest::collection::vec(0u64..1000, 0..8),
        ticks in proptest::collection::vec(0u64..1000, 0..64),
        signals in proptest::collection::vec((0u32..8, 0u64..1000, 1i32..32), 0..10),
        alloc in proptest::collection::vec(0u64..1_000_000, 0..32),
        bufs in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..64), 0..4),
    ) {
        let mut demo = Demo::new(DemoHeader::new("tsan11rec", "queue", [seeds.0, seeds.1]));
        demo.queue = QueueStream { first_tick: first, next_ticks: ticks };
        demo.signals = signals
            .into_iter()
            .map(|(tid, tick, signo)| SignalEvent { tid, tick, signo })
            .collect();
        demo.alloc = alloc;
        demo.async_events = vec![
            AsyncEvent::Reschedule { tick: 3 },
            AsyncEvent::SignalWakeup { tid: 1, tick: 9 },
        ];
        demo.syscalls = vec![SyscallRecord {
            seq: 0,
            tid: 2,
            tick: 17,
            kind: "recvmsg".into(),
            ret: -1,
            errno: 11,
            bufs,
        }];
        let map = demo.to_string_map();
        prop_assert_eq!(Demo::from_string_map(&map).unwrap(), demo);
    }
}
