//! Corruption battery for the binary demo codec, run against a full
//! demo with every stream populated: any truncation, any single-bit
//! flip, a wrong magic, an unknown codec version, and a crafted varint
//! overflow must all surface as typed [`DemoLoadError`]s — never a
//! panic, never a silently-wrong demo.
//!
//! The checksum makes the bit-flip guarantee exhaustive rather than
//! probabilistic: the fnv1a64 trailer covers every byte after the magic,
//! so a flip either breaks the magic ([`CodecError::BadMagic`]) or the
//! checksum, before any payload decoding is trusted.

use std::collections::BTreeMap;

use srr_replay::{
    AsyncEvent, CodecError, Demo, DemoHeader, DemoLoadError, QueueStream, SignalEvent,
    SyscallRecord,
};

/// A demo exercising every stream and every payload encoder: RLE-friendly
/// and RLE-hostile queue runs, interned and distinct syscall kinds,
/// compressible and incompressible buffers.
fn full_demo() -> Demo {
    let mut demo = Demo::new(DemoHeader::new("tsan11rec", "queue", [7, 40398]));
    demo.queue = QueueStream {
        first_tick: vec![1, 2, 9],
        next_ticks: (0..200)
            .map(|i| if i % 7 == 0 { 0 } else { i + 3 })
            .collect(),
    };
    demo.signals = (0..10)
        .map(|i| SignalEvent {
            tid: i % 3,
            tick: u64::from(i) * 5 + 1,
            signo: 10 + i as i32 % 3,
        })
        .collect();
    demo.syscalls = (0..25)
        .map(|i| SyscallRecord {
            seq: i,
            tid: (i % 4) as u32,
            tick: i * 3 + 2,
            kind: if i % 2 == 0 { "recvmsg" } else { "poll" }.to_owned(),
            ret: if i % 5 == 0 { -1 } else { i as i64 },
            errno: if i % 5 == 0 { 11 } else { 0 },
            bufs: vec![vec![0xAB; 64], (0..64u8).collect()],
        })
        .collect();
    demo.async_events = vec![
        AsyncEvent::Reschedule { tick: 4 },
        AsyncEvent::SignalWakeup { tid: 2, tick: 19 },
    ];
    demo.alloc = (0..64).map(|i| 0x1000 + i * 16).collect();
    demo
}

fn load(map: &BTreeMap<String, Vec<u8>>) -> Result<Demo, DemoLoadError> {
    Demo::from_bytes_map(map)
}

#[test]
fn every_truncation_of_every_stream_is_rejected() {
    let demo = full_demo();
    let map = demo.to_bytes_map();
    for (file, bytes) in &map {
        for keep in 0..bytes.len() {
            let mut m = map.clone();
            m.insert(file.clone(), bytes[..keep].to_vec());
            let got = load(&m);
            // An empty non-HEADER file is a legitimately absent stream;
            // everything else must be a typed load error.
            if keep == 0 && file != "HEADER" {
                let d = got.unwrap_or_else(|e| panic!("{file} empty = absent: {e}"));
                assert!(
                    demo != d,
                    "{file}: emptying a populated stream must change the demo"
                );
                continue;
            }
            // Truncating below the 4-byte magic demotes the file to
            // "looks like text"; either parser must reject it, typed,
            // blaming the right file.
            let err = got.unwrap_err();
            assert!(
                matches!(&err, DemoLoadError::Codec { file: f, .. } if f == file)
                    || matches!(&err, DemoLoadError::Malformed { file: f, .. } if f == file)
                    || (file == "HEADER" && matches!(err, DemoLoadError::MissingHeader)),
                "{file} truncated to {keep} bytes: wrong error {err}"
            );
        }
    }
}

#[test]
fn every_single_bit_flip_is_rejected() {
    let map = full_demo().to_bytes_map();
    for (file, bytes) in &map {
        for pos in 0..bytes.len() {
            for bit in 0..8 {
                let mut m = map.clone();
                m.get_mut(file).unwrap()[pos] ^= 1 << bit;
                let err = load(&m).expect_err("flip undetected");
                // Flips inside the 4-byte magic may demote the file to
                // "looks like text" — still a typed Malformed error.
                match err {
                    DemoLoadError::Codec { file: f, .. }
                    | DemoLoadError::Malformed { file: f, .. } => {
                        assert_eq!(&f, file, "error blames the corrupted file")
                    }
                    DemoLoadError::MissingHeader => assert_eq!(file, "HEADER"),
                    other => panic!("{file} byte {pos} bit {bit}: unexpected {other}"),
                }
            }
        }
    }
}

#[test]
fn bad_magic_and_unknown_version_are_typed() {
    let map = full_demo().to_bytes_map();
    let queue = map.get("QUEUE").unwrap();

    // A wholly different magic: not binary, not valid text either.
    let mut m = map.clone();
    m.insert("QUEUE".to_owned(), {
        let mut b = queue.clone();
        b[..4].copy_from_slice(b"NOPE");
        b
    });
    assert!(
        matches!(load(&m).unwrap_err(), DemoLoadError::Malformed { ref file, .. } if file == "QUEUE"),
        "foreign magic must read as malformed text, not panic"
    );

    // The real magic with a from-the-future codec version.
    let mut b = queue.clone();
    b[4] = 0x7F; // varint 127 where CODEC_VERSION=1 lives
    let mut m = map.clone();
    m.insert("QUEUE".to_owned(), b);
    match load(&m).unwrap_err() {
        DemoLoadError::Codec { file, err } => {
            assert_eq!(file, "QUEUE");
            // The checksum no longer matches the rewritten byte, and
            // both rejections are acceptable orderings; what matters is
            // the typed error, not which guard fired first.
            assert!(
                matches!(err, CodecError::UnsupportedVersion(127))
                    || matches!(err, CodecError::ChecksumMismatch { .. }),
                "unexpected codec error: {err}"
            );
        }
        other => panic!("unexpected {other}"),
    }
}

#[test]
fn crafted_varint_overflow_is_typed() {
    // An 11-byte all-continuation varint can encode no u64; splice one in
    // as the payload length, with a freshly valid checksum so the frame
    // itself passes and the varint reader is what must object.
    let mut frame = Vec::new();
    frame.extend_from_slice(b"SRRB");
    frame.push(1); // codec version
    frame.push(1); // stream id: QUEUE
    frame.extend_from_slice(&[0xFF; 10]); // overflowing varint
    let crc = srr_replay::codec::fnv1a64(&frame[4..]);
    frame.extend_from_slice(&crc.to_le_bytes());

    let mut map = full_demo().to_bytes_map();
    map.insert("QUEUE".to_owned(), frame);
    match load(&map).unwrap_err() {
        DemoLoadError::Codec { file, err } => {
            assert_eq!(file, "QUEUE");
            assert!(
                matches!(err, CodecError::VarintOverflow { .. }),
                "unexpected codec error: {err}"
            );
        }
        other => panic!("unexpected {other}"),
    }
}

#[test]
fn corrupt_demos_never_load_equal() {
    // Paranoia sweep: across every corruption mode above, no mutated map
    // may ever load back *equal* to the original (a load error or a
    // different demo are both fine; silent equality is the one disaster).
    let demo = full_demo();
    let map = demo.to_bytes_map();
    for (file, bytes) in &map {
        for pos in (0..bytes.len()).step_by(7) {
            let mut m = map.clone();
            m.get_mut(file).unwrap()[pos] ^= 0x10;
            if let Ok(loaded) = load(&m) {
                assert_ne!(loaded, demo, "{file} byte {pos}: corruption loaded equal");
            }
        }
    }
}
