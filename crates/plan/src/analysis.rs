//! The token-level thread-escape + lockset scanner.
//!
//! One forward pass over the srr-vet token stream per file, tracking:
//!
//! * **bindings** — `let x = Arc::new(Shared::new("label", ..))` and
//!   the `Arc::clone`/tuple-let aliasing idiom the workloads use, so an
//!   access through any alias resolves to its construction site;
//! * **contexts** — the enclosing function body is context 0 and every
//!   `thread::spawn(move || { .. })` closure opens a fresh context; a
//!   spawn inside a loop is marked `looped` (it stands for *many*
//!   threads, so its accesses count double for escape purposes);
//! * **locksets** — `let g = m.lock()` makes the mutex's label held
//!   until `drop(g)`, a shadowing rebind, or the end of the enclosing
//!   block; acquiring one lock while holding another records a static
//!   lock-order edge.
//!
//! The pass is flow-insensitive: both arms of an `if` contribute, and
//! no path feasibility is considered. That direction is sound for
//! sparsification — infeasible accesses can only *add* contexts and
//! *shrink* locksets, pushing sites toward `Conflict` (recorded), never
//! toward `Local` (filtered).

use std::collections::{BTreeMap, BTreeSet, HashMap};

use srr_vet::lexer::{Lexed, Token, TokenKind};
use srr_vet::resolve::collect_imports;

/// What kind of instrumented location a site labels.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum SiteKind {
    /// A `Shared::new` plain location (unsynchronized accesses).
    Shared,
    /// A `SharedArray::new` block of plain locations (cells are labeled
    /// `label[i]` at runtime; the plan matches on the base label).
    SharedArray,
    /// An `Atomic::labeled` location.
    Atomic,
    /// A `Mutex::labeled` lock.
    Mutex,
}

impl SiteKind {
    /// Stable lowercase name used in the JSON plan.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SiteKind::Shared => "shared",
            SiteKind::SharedArray => "shared-array",
            SiteKind::Atomic => "atomic",
            SiteKind::Mutex => "mutex",
        }
    }

    /// Inverse of [`SiteKind::name`].
    #[must_use]
    pub fn parse(s: &str) -> Option<SiteKind> {
        Some(match s {
            "shared" => SiteKind::Shared,
            "shared-array" => SiteKind::SharedArray,
            "atomic" => SiteKind::Atomic,
            "mutex" => SiteKind::Mutex,
            _ => return None,
        })
    }

    /// Whether accesses through this site are recorded as `PlainAccess`
    /// events (the ones an [`AccessPlan`](crate::PlanReport) filters).
    #[must_use]
    pub fn is_plain(self) -> bool {
        matches!(self, SiteKind::Shared | SiteKind::SharedArray)
    }
}

/// One labeled construction site found in the source.
#[derive(Clone, Debug)]
pub struct RawSite {
    /// The location label (first string literal of the constructor).
    pub label: String,
    /// What the constructor builds.
    pub kind: SiteKind,
    /// 1-based line of the constructor.
    pub line: u32,
    /// 1-based column of the constructor.
    pub col: u32,
}

/// One access to a site.
#[derive(Clone, Debug)]
pub struct RawAccess {
    /// Index into [`FileScan::sites`].
    pub site: usize,
    /// Unique id of the context (fn body or spawn closure) performing
    /// the access.
    pub ctx: u32,
    /// Thread-id hint: 0 for the fn body, k for the k-th spawn in it.
    pub tid: u32,
    /// The context is a spawn inside a loop (stands for many threads).
    pub looped: bool,
    /// Mutex labels held at the access.
    pub locks: BTreeSet<String>,
}

/// Scanner output for one file.
#[derive(Clone, Debug, Default)]
pub struct FileScan {
    /// Construction sites in source order.
    pub sites: Vec<RawSite>,
    /// Accesses resolved to their sites.
    pub accesses: Vec<RawAccess>,
    /// Static lock-order edges: (held, acquired) label pairs.
    pub edges: BTreeSet<(String, String)>,
}

const ATOMIC_METHODS: &[&str] = &[
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "compare_exchange",
    "compare_exchange_weak",
];

const PLAIN_METHODS: &[&str] = &["read", "write", "update"];

#[derive(Clone, Debug)]
struct Ctx {
    id: u32,
    tid: u32,
    looped: bool,
    open_depth: u32,
}

#[derive(Clone, Debug)]
struct Guard {
    name: String,
    label: String,
    depth: u32,
}

/// What a `let` right-hand side turned out to be.
enum Rhs {
    NewSite {
        kind: SiteKind,
        label: String,
        line: u32,
        col: u32,
        ctor_tok: usize,
    },
    Alias(String),
    /// `name.lock()`: the guard activates when the main scan reaches
    /// the `name` token at this index (so lock-order edges see the
    /// locks held *before* this acquisition).
    Guard(usize),
    Other,
}

struct Scanner<'a> {
    toks: &'a [Token],
    lexed: &'a Lexed,
    out: FileScan,
    /// Binding name → site index.
    vars: HashMap<String, usize>,
    guards: Vec<Guard>,
    ctx_stack: Vec<Ctx>,
    loop_depths: Vec<u32>,
    /// Token index of a `name.lock()` receiver → (guard name, depth).
    pending_guards: HashMap<usize, (String, u32)>,
    /// Constructor token indices already claimed by a `let` binding.
    claimed: BTreeSet<usize>,
    next_ctx: u32,
    spawn_ordinal: u32,
    /// `spawn` aliased to a bare identifier by a `use` declaration.
    spawn_aliased: bool,
}

impl<'a> Scanner<'a> {
    fn new(lexed: &'a Lexed) -> Self {
        let imports = collect_imports(&lexed.tokens);
        let spawn_aliased = imports
            .aliases
            .get("spawn")
            .is_some_and(|p| p.ends_with(&["thread".to_owned(), "spawn".to_owned()]));
        Scanner {
            toks: &lexed.tokens,
            lexed,
            out: FileScan::default(),
            vars: HashMap::new(),
            guards: Vec::new(),
            ctx_stack: Vec::new(),
            loop_depths: Vec::new(),
            pending_guards: HashMap::new(),
            claimed: BTreeSet::new(),
            next_ctx: 1,
            spawn_ordinal: 0,
            spawn_aliased,
        }
    }

    fn fresh_ctx(&mut self, tid: u32, looped: bool, open_depth: u32) -> Ctx {
        let id = self.next_ctx;
        self.next_ctx += 1;
        Ctx {
            id,
            tid,
            looped,
            open_depth,
        }
    }

    fn current_ctx(&self) -> (u32, u32, bool) {
        match self.ctx_stack.last() {
            Some(c) => (c.id, c.tid, c.looped),
            None => (0, 0, false),
        }
    }

    fn lockset(&self) -> BTreeSet<String> {
        self.guards.iter().map(|g| g.label.clone()).collect()
    }

    fn ident(&self, i: usize) -> Option<&str> {
        self.toks.get(i).and_then(Token::ident)
    }

    fn is_punct(&self, i: usize, c: char) -> bool {
        self.toks.get(i).is_some_and(|t| t.is_punct(c))
    }

    /// `thread::spawn` (any path prefix) or a bare aliased `spawn`,
    /// called with `(`.
    fn is_spawn_call(&self, i: usize) -> bool {
        if self.ident(i) != Some("spawn") || !self.is_punct(i + 1, '(') {
            return false;
        }
        let qualified = i >= 2
            && matches!(self.toks[i - 1].kind, TokenKind::PathSep)
            && self.ident(i - 2) == Some("thread");
        let bare = self.spawn_aliased
            && (i == 0
                || (!matches!(self.toks[i - 1].kind, TokenKind::PathSep)
                    && !self.toks[i - 1].is_punct('.')));
        qualified || bare
    }

    /// A constructor head `Shared::new` / `Atomic::labeled` / ... at
    /// `i`, returning its kind and the index of the `(` that follows.
    fn ctor_at(&self, i: usize) -> Option<(SiteKind, usize)> {
        let kind = match self.ident(i)? {
            "Shared" => SiteKind::Shared,
            "SharedArray" => SiteKind::SharedArray,
            "Atomic" => SiteKind::Atomic,
            "Mutex" => SiteKind::Mutex,
            _ => return None,
        };
        if !matches!(
            self.toks.get(i + 1).map(|t| &t.kind),
            Some(TokenKind::PathSep)
        ) {
            return None;
        }
        let method = self.ident(i + 2)?;
        let ok = match kind {
            SiteKind::Shared | SiteKind::SharedArray => method == "new",
            SiteKind::Atomic | SiteKind::Mutex => method == "labeled",
        };
        if !ok || !self.is_punct(i + 3, '(') {
            return None;
        }
        Some((kind, i + 3))
    }

    /// The first string literal inside the call opening at `open`
    /// (index of `(`), scanned to its matching `)`.
    fn first_string_arg(&self, open: usize) -> Option<String> {
        let mut depth = 0i32;
        for t in self.toks.iter().skip(open) {
            match &t.kind {
                TokenKind::Punct('(') => depth += 1,
                TokenKind::Punct(')') => {
                    depth -= 1;
                    if depth == 0 {
                        return None;
                    }
                }
                TokenKind::Lit => {
                    if let Some(s) = self.lexed.string_at(t.line, t.col) {
                        return Some(s.to_owned());
                    }
                }
                _ => {}
            }
        }
        None
    }

    /// Classifies the `let` right-hand side spanning `[lo, hi)`. Only
    /// tokens at brace-nesting 0 relative to the expression are
    /// considered: a closure body inside the RHS belongs to inner
    /// statements the main scan handles on its own.
    fn classify_rhs(&self, lo: usize, hi: usize) -> Rhs {
        let mut brace = 0i32;
        let mut j = lo;
        while j < hi {
            match &self.toks[j].kind {
                TokenKind::Punct('{') => brace += 1,
                TokenKind::Punct('}') => brace -= 1,
                _ if brace == 0 => {
                    if let Some((kind, open)) = self.ctor_at(j) {
                        if let Some(label) = self.first_string_arg(open) {
                            return Rhs::NewSite {
                                kind,
                                label,
                                line: self.toks[j].line,
                                col: self.toks[j].col,
                                ctor_tok: j,
                            };
                        }
                    }
                    // `Arc::clone(&name)`
                    if self.ident(j) == Some("Arc")
                        && matches!(
                            self.toks.get(j + 1).map(|t| &t.kind),
                            Some(TokenKind::PathSep)
                        )
                        && self.ident(j + 2) == Some("clone")
                        && self.is_punct(j + 3, '(')
                        && self.is_punct(j + 4, '&')
                    {
                        if let Some(name) = self.ident(j + 5) {
                            if self.vars.contains_key(name) {
                                return Rhs::Alias(name.to_owned());
                            }
                        }
                    }
                    // `name.clone()` / `name.lock()`
                    if let Some(name) = self.ident(j) {
                        if self.is_punct(j + 1, '.') && self.vars.contains_key(name) {
                            match self.ident(j + 2) {
                                Some("clone") => return Rhs::Alias(name.to_owned()),
                                Some("lock")
                                    if self.vars.get(name).is_some_and(|s| {
                                        self.out.sites[*s].kind == SiteKind::Mutex
                                    }) =>
                                {
                                    return Rhs::Guard(j)
                                }
                                _ => {}
                            }
                        }
                    }
                }
                _ => {}
            }
            j += 1;
        }
        Rhs::Other
    }

    /// Splits a top-level tuple RHS `( e1, e2, .. )` into expression
    /// ranges; `None` if the RHS is not a tuple.
    fn split_tuple(&self, lo: usize, hi: usize) -> Option<Vec<(usize, usize)>> {
        if !self.is_punct(lo, '(') {
            return None;
        }
        let mut depth = 0i32;
        let mut parts = Vec::new();
        let mut start = lo + 1;
        for j in lo..hi {
            match &self.toks[j].kind {
                TokenKind::Punct('(') | TokenKind::Punct('[') | TokenKind::Punct('{') => depth += 1,
                TokenKind::Punct(')') | TokenKind::Punct(']') | TokenKind::Punct('}') => {
                    depth -= 1;
                    if depth == 0 {
                        if j + 1 != hi {
                            return None; // `( .. )` is not the whole RHS
                        }
                        if start < j {
                            parts.push((start, j));
                        }
                        return if parts.len() > 1 { Some(parts) } else { None };
                    }
                }
                TokenKind::Punct(',') if depth == 1 => {
                    parts.push((start, j));
                    start = j + 1;
                }
                _ => {}
            }
        }
        None
    }

    fn bind(&mut self, name: &str, rhs: Rhs) {
        // Any rebind shadows: the old meaning of the name is gone.
        self.guards.retain(|g| g.name != name);
        self.vars.remove(name);
        if name == "_" {
            return;
        }
        match rhs {
            Rhs::NewSite {
                kind,
                label,
                line,
                col,
                ctor_tok,
            } => {
                self.claimed.insert(ctor_tok);
                self.out.sites.push(RawSite {
                    label,
                    kind,
                    line,
                    col,
                });
                self.vars.insert(name.to_owned(), self.out.sites.len() - 1);
            }
            Rhs::Alias(of) => {
                if let Some(site) = self.vars.get(&of).copied() {
                    self.vars.insert(name.to_owned(), site);
                }
            }
            Rhs::Guard(recv_tok) => {
                // Activated when the scan reaches the receiver token.
                self.pending_guards.insert(recv_tok, (name.to_owned(), 0));
            }
            Rhs::Other => {}
        }
    }

    /// Handles a `let` statement starting at token `i` (the `let`).
    /// Pure lookahead: records bindings, never consumes tokens.
    fn handle_let(&mut self, i: usize) {
        // LHS: names up to `=`, ignoring `mut` and everything after a
        // top-level `:` (the type ascription).
        let mut names = Vec::new();
        let mut j = i + 1;
        let mut in_type = false;
        let mut depth = 0i32;
        let eq = loop {
            let Some(t) = self.toks.get(j) else { return };
            match &t.kind {
                TokenKind::Punct('=') if depth == 0 => break j,
                TokenKind::Punct(';') => return, // `let x;`
                TokenKind::Punct('(') | TokenKind::Punct('[') | TokenKind::Punct('<') => depth += 1,
                TokenKind::Punct(')') | TokenKind::Punct(']') | TokenKind::Punct('>') => depth -= 1,
                TokenKind::Punct(':') if depth == 0 => in_type = true,
                TokenKind::Ident(name) if !in_type && name != "mut" => names.push(name.clone()),
                _ => {}
            }
            j += 1;
        };
        // RHS: from after `=` to the `;` at relative nesting 0.
        let lo = eq + 1;
        let mut hi = lo;
        let mut nest = 0i32;
        while let Some(t) = self.toks.get(hi) {
            match &t.kind {
                TokenKind::Punct('(') | TokenKind::Punct('[') | TokenKind::Punct('{') => nest += 1,
                TokenKind::Punct(')') | TokenKind::Punct(']') | TokenKind::Punct('}') => nest -= 1,
                TokenKind::Punct(';') if nest == 0 => break,
                _ => {}
            }
            hi += 1;
        }
        if names.is_empty() {
            return;
        }
        if names.len() > 1 {
            if let Some(parts) = self.split_tuple(lo, hi) {
                if parts.len() == names.len() {
                    for (name, (plo, phi)) in names.iter().zip(parts) {
                        let rhs = self.classify_rhs(plo, phi);
                        self.bind(name, rhs);
                    }
                    return;
                }
            }
            // Tuple pattern we cannot line up: drop all the names.
            for name in &names {
                self.bind(name, Rhs::Other);
            }
            return;
        }
        let rhs = self.classify_rhs(lo, hi);
        self.bind(&names[0], rhs);
    }

    fn record_access(&mut self, site: usize) {
        let (ctx, tid, looped) = self.current_ctx();
        self.out.accesses.push(RawAccess {
            site,
            ctx,
            tid,
            looped,
            locks: self.lockset(),
        });
    }

    fn scan(mut self) -> FileScan {
        let mut depth = 0u32;
        let mut paren = 0i32;
        let mut pending_fn = false;
        let mut pending_loop = false;
        let mut pending_spawn: Option<(i32, bool)> = None; // (paren floor, looped)
        let mut i = 0usize;
        while i < self.toks.len() {
            match &self.toks[i].kind {
                TokenKind::Punct('(') => paren += 1,
                TokenKind::Punct(')') => {
                    paren -= 1;
                    if let Some((floor, _)) = pending_spawn {
                        if paren <= floor {
                            pending_spawn = None; // spawn(f) with no closure brace
                        }
                    }
                }
                TokenKind::Punct('{') => {
                    depth += 1;
                    if let Some((_, looped)) = pending_spawn.take() {
                        self.spawn_ordinal += 1;
                        let tid = self.spawn_ordinal;
                        let ctx = self.fresh_ctx(tid, looped, depth);
                        self.ctx_stack.push(ctx);
                    } else if pending_loop {
                        pending_loop = false;
                        self.loop_depths.push(depth);
                    } else if pending_fn && paren == 0 {
                        pending_fn = false;
                        // New analysis unit: fresh bindings and contexts.
                        self.vars.clear();
                        self.guards.clear();
                        self.loop_depths.clear();
                        self.ctx_stack.clear();
                        self.spawn_ordinal = 0;
                        let ctx = self.fresh_ctx(0, false, depth);
                        self.ctx_stack.push(ctx);
                    }
                }
                TokenKind::Punct('}') => {
                    self.guards.retain(|g| g.depth < depth);
                    while self.ctx_stack.last().is_some_and(|c| c.open_depth >= depth) {
                        self.ctx_stack.pop();
                    }
                    self.loop_depths.retain(|d| *d < depth);
                    depth = depth.saturating_sub(1);
                }
                TokenKind::Punct(';') if pending_fn && paren == 0 => {
                    pending_fn = false; // trait method signature
                }
                TokenKind::Ident(name) => match name.as_str() {
                    "fn" => pending_fn = true,
                    "for" | "while" | "loop" => pending_loop = true,
                    // `if let` / `while let` scrutinees have no `;`
                    // terminator; the lookahead would misparse them.
                    "let"
                        if !matches!(
                            i.checked_sub(1).and_then(|p| self.ident(p)),
                            Some("if") | Some("while")
                        ) =>
                    {
                        self.handle_let(i)
                    }
                    "drop" if self.is_punct(i + 1, '(') => {
                        if let Some(g) = self.ident(i + 2) {
                            let g = g.to_owned();
                            self.guards.retain(|k| k.name != g);
                        }
                    }
                    _ => {
                        if self.is_spawn_call(i) {
                            pending_spawn = Some((paren, !self.loop_depths.is_empty()));
                        } else if let Some((kind, open)) = self.ctor_at(i) {
                            // A constructor not claimed by a `let`:
                            // record the site so the label is known.
                            if !self.claimed.contains(&i) {
                                if let Some(label) = self.first_string_arg(open) {
                                    self.out.sites.push(RawSite {
                                        label,
                                        kind,
                                        line: self.toks[i].line,
                                        col: self.toks[i].col,
                                    });
                                }
                            }
                        } else if self.is_punct(i + 1, '.') {
                            self.method_call(i, depth);
                        }
                    }
                },
                _ => {}
            }
            i += 1;
        }
        self.out
    }

    /// `name.method(..)` where `name` is a tracked binding.
    fn method_call(&mut self, i: usize, depth: u32) {
        let Some(name) = self.ident(i) else { return };
        let Some(site) = self.vars.get(name).copied() else {
            return;
        };
        let Some(method) = self.ident(i + 2) else {
            return;
        };
        if !self.is_punct(i + 3, '(') {
            return;
        }
        let kind = self.out.sites[site].kind;
        match kind {
            SiteKind::Shared | SiteKind::SharedArray if PLAIN_METHODS.contains(&method) => {
                self.record_access(site);
            }
            SiteKind::Atomic if ATOMIC_METHODS.contains(&method) => {
                self.record_access(site);
            }
            SiteKind::Mutex if method == "lock" => {
                let label = self.out.sites[site].label.clone();
                for g in &self.guards {
                    if g.label != label {
                        self.out.edges.insert((g.label.clone(), label.clone()));
                    }
                }
                self.record_access(site);
                if let Some((gname, _)) = self.pending_guards.remove(&i) {
                    self.guards.push(Guard {
                        name: gname,
                        label,
                        depth,
                    });
                }
            }
            _ => {}
        }
    }
}

/// Scans one file's lexed source.
#[must_use]
pub fn scan_file(lexed: &Lexed) -> FileScan {
    Scanner::new(lexed).scan()
}

/// Strongly-connected components with more than one node (or a
/// self-edge): the static lock-order cycles. Each cycle is the sorted
/// set of its lock labels; cycles are returned sorted for determinism.
#[must_use]
pub fn lock_cycles(edges: &BTreeSet<(String, String)>) -> Vec<Vec<String>> {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    let mut nodes: BTreeSet<&str> = BTreeSet::new();
    for (a, b) in edges {
        adj.entry(a).or_default().push(b);
        nodes.insert(a);
        nodes.insert(b);
    }
    // Per-pair reachability is plenty at lock-graph sizes: a node set
    // forms a cycle iff its members are mutually reachable.
    let reach = |from: &str, to: &str| -> bool {
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        let mut stack = vec![from];
        while let Some(n) = stack.pop() {
            for m in adj.get(n).into_iter().flatten() {
                if *m == to {
                    return true;
                }
                if seen.insert(m) {
                    stack.push(m);
                }
            }
        }
        false
    };
    let mut cycles: BTreeSet<Vec<String>> = BTreeSet::new();
    for n in &nodes {
        if !reach(n, n) {
            continue; // not on any cycle
        }
        // The SCC of n: every node mutually reachable with it.
        let comp: Vec<String> = nodes
            .iter()
            .filter(|m| **m == *n || (reach(n, m) && reach(m, n)))
            .map(|m| (*m).to_owned())
            .collect();
        cycles.insert(comp); // already sorted: nodes is a BTreeSet
    }
    cycles.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use srr_vet::lexer::lex;

    fn scan(src: &str) -> FileScan {
        scan_file(&lex(src))
    }

    #[test]
    fn shared_binding_and_alias_resolve_to_one_site() {
        let s = scan(
            r#"
            fn w() {
                let cell = Arc::new(Shared::new("cell", 0u64));
                let c2 = Arc::clone(&cell);
                let t = thread::spawn(move || {
                    c2.write(1);
                });
                cell.write(2);
            }
            "#,
        );
        assert_eq!(s.sites.len(), 1);
        assert_eq!(s.sites[0].label, "cell");
        assert_eq!(s.accesses.len(), 2);
        let ctxs: BTreeSet<u32> = s.accesses.iter().map(|a| a.ctx).collect();
        assert_eq!(ctxs.len(), 2, "spawn closure is its own context");
        let tids: BTreeSet<u32> = s.accesses.iter().map(|a| a.tid).collect();
        assert_eq!(tids, BTreeSet::from([0, 1]));
    }

    #[test]
    fn tuple_let_aliases_line_up_positionally() {
        let s = scan(
            r#"
            fn w() {
                let a = Arc::new(Shared::new("a", 0));
                let b = Arc::new(Mutex::labeled(0u64, "b"));
                let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
                let g = b2.lock();
                a2.write(1);
                drop(g);
                a2.write(2);
            }
            "#,
        );
        assert_eq!(s.sites.len(), 2);
        let locksets: Vec<_> = s
            .accesses
            .iter()
            .filter(|a| s.sites[a.site].kind == SiteKind::Shared)
            .map(|a| a.locks.clone())
            .collect();
        assert_eq!(locksets.len(), 2);
        assert!(locksets[0].contains("b"), "first write under the lock");
        assert!(locksets[1].is_empty(), "dropped before the second");
    }

    #[test]
    fn guard_scope_ends_at_block_close() {
        let s = scan(
            r#"
            fn w() {
                let m = Arc::new(Mutex::labeled(0u64, "m"));
                let c = Arc::new(Shared::new("c", 0));
                {
                    let g = m.lock();
                    c.write(1);
                }
                c.write(2);
            }
            "#,
        );
        let locksets: Vec<_> = s
            .accesses
            .iter()
            .filter(|a| s.sites[a.site].kind == SiteKind::Shared)
            .map(|a| a.locks.clone())
            .collect();
        assert!(locksets[0].contains("m"));
        assert!(locksets[1].is_empty());
    }

    #[test]
    fn lock_order_edges_and_cycles() {
        let s = scan(
            r#"
            fn w() {
                let a = Arc::new(Mutex::labeled(0u64, "lock-a"));
                let b = Arc::new(Mutex::labeled(0u64, "lock-b"));
                let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
                let t = thread::spawn(move || {
                    let ga = a2.lock();
                    let gb = b2.lock();
                    drop(gb);
                    drop(ga);
                });
                let gb = b.lock();
                let ga = a.lock();
                drop(ga);
                drop(gb);
            }
            "#,
        );
        assert!(s
            .edges
            .contains(&("lock-a".to_owned(), "lock-b".to_owned())));
        assert!(s
            .edges
            .contains(&("lock-b".to_owned(), "lock-a".to_owned())));
        let cycles = lock_cycles(&s.edges);
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0], vec!["lock-a".to_owned(), "lock-b".to_owned()]);
    }

    #[test]
    fn spawn_in_loop_is_marked_looped() {
        let s = scan(
            r#"
            fn w() {
                let c = Arc::new(Shared::new("c", 0));
                for i in 0..4 {
                    let c2 = Arc::clone(&c);
                    thread::spawn(move || {
                        c2.write(1);
                    });
                }
            }
            "#,
        );
        let access = s
            .accesses
            .iter()
            .find(|a| s.sites[a.site].kind == SiteKind::Shared)
            .expect("write seen");
        assert!(access.looped, "spawn under a loop stands for many threads");
    }

    #[test]
    fn unclaimed_constructor_still_registers_the_label() {
        let s = scan(r#"fn w() { register(Shared::new("anon", 0)); }"#);
        assert_eq!(s.sites.len(), 1);
        assert_eq!(s.sites[0].label, "anon");
        assert!(s.accesses.is_empty());
    }

    #[test]
    fn shadowing_rebind_forgets_guards_and_sites() {
        let s = scan(
            r#"
            fn w() {
                let m = Arc::new(Mutex::labeled(0u64, "m"));
                let c = Arc::new(Shared::new("c", 0));
                let g = m.lock();
                let g = other();
                c.write(1);
            }
            "#,
        );
        let access = &s.accesses[s.accesses.len() - 1];
        assert!(
            access.locks.is_empty(),
            "rebinding g releases the tracked guard: {access:?}"
        );
    }
}
