//! # srr-plan — static sparsification planner
//!
//! The paper's recording stays cheap only because instrumentation is
//! *sparse*; this crate makes the sparseness **provable before the run
//! starts**. A flow-insensitive thread-escape pass plus an
//! intraprocedural lockset/lock-order pass (both over srr-vet's token
//! stream — no `syn`) classify every labeled plain-access and sync
//! site in workload source:
//!
//! * [`SiteClass::Local`] — the value is only ever touched from one
//!   context (it never escapes to a `spawn` capture that uses it), so
//!   no two threads can race on it;
//! * [`SiteClass::Guarded`] — every access holds a common mutex, so
//!   the lock order already serializes them;
//! * [`SiteClass::Conflict`] — at least two contexts touch it with no
//!   common lock: these are the only sites worth recording.
//!
//! The result is a deterministic JSON [`AccessPlan`](PlanReport)
//! consumed by `Config::with_access_plan` (srr-core filters
//! `PlainAccess` recording down to `Conflict` sites), `srr predict
//! --plan` (candidate pruning + static/dynamic lock-cycle
//! cross-check), and `srr explore --plan` (conflict sites seed
//! directed shards). `// plan: allow(conflict)` markers and the vet
//! allowlist-file format suppress intentional conflicts.
//!
//! Soundness direction: the analysis may *over*-approximate sharing
//! (flow-insensitive, both `if` arms, loops collapse) — that only
//! records more than strictly needed. Sites it cannot see (labels
//! built at runtime) are **unplanned**; the runtime fail-open mode
//! records those and flags plan staleness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;

use std::collections::BTreeSet;
use std::path::PathBuf;

use srr_analysis::{Severity, SourceSpan};
use srr_obs::Json;
use srr_vet::allow::Allowlist;
use srr_vet::collect_rs_files;
use srr_vet::lexer::AllowMark;

pub use analysis::{lock_cycles, scan_file, FileScan, RawAccess, RawSite, SiteKind};

/// The static verdict for one site.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SiteClass {
    /// Accessed from at most one context: cannot race, never recorded.
    Local,
    /// Every access holds the listed locks in common: ordered by the
    /// lock, never recorded.
    Guarded(Vec<String>),
    /// Cross-context accesses with no common lock: recorded.
    Conflict,
}

impl SiteClass {
    /// Stable lowercase name used in the JSON plan.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            SiteClass::Local => "local",
            SiteClass::Guarded(_) => "guarded",
            SiteClass::Conflict => "conflict",
        }
    }
}

/// One classified site of the plan.
#[derive(Clone, Debug)]
pub struct PlanSite {
    /// The runtime location label.
    pub label: String,
    /// What the constructor builds.
    pub kind: SiteKind,
    /// The static verdict.
    pub class: SiteClass,
    /// Where the site is constructed.
    pub span: SourceSpan,
    /// Thread-id hints of the contexts that access the site (0 = the
    /// fn body, k = its k-th spawn), sorted.
    pub contexts: Vec<u32>,
    /// Gate weight: `Deny` for an unallowed plain `Conflict`, `Allow`
    /// for a suppressed one, `Warn` for informational sync sites.
    pub severity: Severity,
}

impl PlanSite {
    /// Whether this site gates (`findings_exit`): an unallowed
    /// plain-access conflict.
    #[must_use]
    pub fn gates(&self) -> bool {
        self.severity == Severity::Deny
    }
}

/// The full plan for a path set — the `AccessPlan` document.
#[derive(Clone, Debug, Default)]
pub struct PlanReport {
    /// `.rs` files scanned.
    pub scanned_files: usize,
    /// Classified sites, sorted by (file, line, col).
    pub sites: Vec<PlanSite>,
    /// Static lock-order edges (held → acquired), sorted.
    pub lock_edges: Vec<(String, String)>,
    /// Static lock-order cycles (each a sorted label set), sorted.
    pub lock_cycles: Vec<Vec<String>>,
}

impl PlanReport {
    /// Unallowed plain-access conflicts — the gate count together with
    /// the static lock cycles.
    #[must_use]
    pub fn conflict_count(&self) -> usize {
        self.sites.iter().filter(|s| s.gates()).count()
    }

    /// Labels the runtime must keep recording: every plain site some
    /// scan classified `Conflict` (allowed or not — an allow marker
    /// waives the *gate*, not the recording).
    #[must_use]
    pub fn recorded_labels(&self) -> BTreeSet<String> {
        self.sites
            .iter()
            .filter(|s| s.kind.is_plain() && matches!(s.class, SiteClass::Conflict))
            .map(|s| s.label.clone())
            .collect()
    }

    /// Every plain label the plan knows about. A runtime label outside
    /// this set is *unplanned* — the fail-open mode records it and
    /// flags the plan as stale.
    #[must_use]
    pub fn known_labels(&self) -> BTreeSet<String> {
        self.sites
            .iter()
            .filter(|s| s.kind.is_plain())
            .map(|s| s.label.clone())
            .collect()
    }

    /// Labels statically proven race-free: plain sites whose every
    /// scan said `Local` or `Guarded`. `srr predict --plan` drops
    /// candidate pairs on these.
    #[must_use]
    pub fn proven_labels(&self) -> BTreeSet<String> {
        let recorded = self.recorded_labels();
        self.known_labels()
            .into_iter()
            .filter(|l| !recorded.contains(l))
            .collect()
    }

    /// The plan as a deterministic JSON document.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let sites = self
            .sites
            .iter()
            .map(|s| {
                let mut fields = vec![
                    ("label".to_owned(), Json::Str(s.label.clone())),
                    ("kind".to_owned(), Json::Str(s.kind.name().to_owned())),
                    ("class".to_owned(), Json::Str(s.class.name().to_owned())),
                    ("file".to_owned(), Json::Str(s.span.file.clone())),
                    ("line".to_owned(), Json::Num(f64::from(s.span.line))),
                    ("col".to_owned(), Json::Num(f64::from(s.span.col))),
                    (
                        "contexts".to_owned(),
                        Json::Arr(
                            s.contexts
                                .iter()
                                .map(|c| Json::Num(f64::from(*c)))
                                .collect(),
                        ),
                    ),
                    (
                        "severity".to_owned(),
                        Json::Str(s.severity.name().to_owned()),
                    ),
                ];
                if let SiteClass::Guarded(locks) = &s.class {
                    fields.push((
                        "locks".to_owned(),
                        Json::Arr(locks.iter().map(|l| Json::Str(l.clone())).collect()),
                    ));
                }
                Json::Obj(fields)
            })
            .collect();
        let pair =
            |(a, b): &(String, String)| Json::Arr(vec![Json::Str(a.clone()), Json::Str(b.clone())]);
        Json::Obj(vec![
            ("schema_version".to_owned(), Json::Num(1.0)),
            (
                "scanned_files".to_owned(),
                Json::Num(self.scanned_files as f64),
            ),
            (
                "conflicts".to_owned(),
                Json::Num(self.conflict_count() as f64),
            ),
            ("sites".to_owned(), Json::Arr(sites)),
            (
                "lock_edges".to_owned(),
                Json::Arr(self.lock_edges.iter().map(pair).collect()),
            ),
            (
                "lock_cycles".to_owned(),
                Json::Arr(
                    self.lock_cycles
                        .iter()
                        .map(|c| Json::Arr(c.iter().map(|l| Json::Str(l.clone())).collect()))
                        .collect(),
                ),
            ),
        ])
    }
}

/// Parses a plan document produced by [`PlanReport::to_json`] (the
/// `--plan FILE` input of `srr predict` / `srr explore` / the
/// runtime).
pub fn plan_from_json(doc: &Json) -> Result<PlanReport, String> {
    let mut report = PlanReport {
        scanned_files: doc
            .get("scanned_files")
            .and_then(Json::as_f64)
            .unwrap_or(0.0) as usize,
        ..PlanReport::default()
    };
    let sites = doc
        .get("sites")
        .and_then(Json::as_array)
        .ok_or("plan document has no \"sites\" array")?;
    for (i, s) in sites.iter().enumerate() {
        let field = |k: &str| -> Result<String, String> {
            s.get(k)
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("plan site {i}: missing \"{k}\""))
        };
        let kind = SiteKind::parse(&field("kind")?)
            .ok_or_else(|| format!("plan site {i}: unknown kind"))?;
        let locks: Vec<String> = s
            .get("locks")
            .and_then(Json::as_array)
            .map(|a| {
                a.iter()
                    .filter_map(Json::as_str)
                    .map(str::to_owned)
                    .collect()
            })
            .unwrap_or_default();
        let class = match field("class")?.as_str() {
            "local" => SiteClass::Local,
            "guarded" => SiteClass::Guarded(locks),
            "conflict" => SiteClass::Conflict,
            other => return Err(format!("plan site {i}: unknown class `{other}`")),
        };
        let severity = match s.get("severity").and_then(Json::as_str) {
            Some("deny") => Severity::Deny,
            Some("allow") => Severity::Allow,
            _ => Severity::Warn,
        };
        let contexts = s
            .get("contexts")
            .and_then(Json::as_array)
            .map(|a| {
                a.iter()
                    .filter_map(Json::as_f64)
                    .map(|v| v as u32)
                    .collect()
            })
            .unwrap_or_default();
        report.sites.push(PlanSite {
            label: field("label")?,
            kind,
            class,
            span: SourceSpan {
                file: field("file")?,
                line: s.get("line").and_then(Json::as_f64).unwrap_or(0.0) as u32,
                col: s.get("col").and_then(Json::as_f64).unwrap_or(0.0) as u32,
            },
            contexts,
            severity,
        });
    }
    for edge in doc
        .get("lock_edges")
        .and_then(Json::as_array)
        .into_iter()
        .flatten()
    {
        if let Some([a, b]) = edge.as_array() {
            if let (Some(a), Some(b)) = (a.as_str(), b.as_str()) {
                report.lock_edges.push((a.to_owned(), b.to_owned()));
            }
        }
    }
    for cycle in doc
        .get("lock_cycles")
        .and_then(Json::as_array)
        .into_iter()
        .flatten()
    {
        if let Some(labels) = cycle.as_array() {
            report.lock_cycles.push(
                labels
                    .iter()
                    .filter_map(Json::as_str)
                    .map(str::to_owned)
                    .collect(),
            );
        }
    }
    Ok(report)
}

/// Classifies one file's scan into plan sites. `marks` are the file's
/// inline `// plan: allow(...)` markers; `list` the allowlist file.
#[must_use]
pub fn classify(
    file: &str,
    scan: &FileScan,
    marks: &[AllowMark],
    list: &Allowlist,
) -> Vec<PlanSite> {
    // Labels also used by a sync-side site (Atomic/Mutex share the
    // runtime label namespace with plain locations).
    let sync_labels: BTreeSet<&str> = scan
        .sites
        .iter()
        .filter(|s| !s.kind.is_plain())
        .map(|s| s.label.as_str())
        .collect();
    let mut sites = Vec::new();
    for (idx, raw) in scan.sites.iter().enumerate() {
        let accesses: Vec<&RawAccess> = scan.accesses.iter().filter(|a| a.site == idx).collect();
        // Effective context weight: a looped spawn stands for many
        // threads, so it alone already makes two.
        let ctx_ids: BTreeSet<u32> = accesses.iter().map(|a| a.ctx).collect();
        let weight: usize = ctx_ids
            .iter()
            .map(|id| {
                if accesses.iter().any(|a| a.ctx == *id && a.looped) {
                    2
                } else {
                    1
                }
            })
            .sum();
        let class = if weight <= 1 {
            SiteClass::Local
        } else {
            let mut common: Option<BTreeSet<String>> = None;
            for a in &accesses {
                common = Some(match common {
                    None => a.locks.clone(),
                    Some(c) => c.intersection(&a.locks).cloned().collect(),
                });
            }
            match common {
                Some(c) if !c.is_empty() => SiteClass::Guarded(c.into_iter().collect()),
                _ => SiteClass::Conflict,
            }
        };
        // A plain site sharing its label with an atomic models mixed
        // atomic/plain access to ONE location (the `mixed_counter`
        // hazard): the trace-based MixedAtomicPlain lint needs those
        // accesses recorded, so the plain side is never filtered no
        // matter how few contexts touch it.
        let class = if raw.kind.is_plain() && sync_labels.contains(raw.label.as_str()) {
            SiteClass::Conflict
        } else {
            class
        };
        let contexts: Vec<u32> = {
            let tids: BTreeSet<u32> = accesses.iter().map(|a| a.tid).collect();
            tids.into_iter().collect()
        };
        let is_gating = raw.kind.is_plain() && matches!(class, SiteClass::Conflict);
        let allowed = marks.iter().any(|m| {
            (m.line == raw.line || m.line + 1 == raw.line)
                && m.kinds.iter().any(|k| k == "*" || k == "conflict")
        }) || list.matches("conflict", file);
        let severity = if is_gating {
            if allowed {
                Severity::Allow
            } else {
                Severity::Deny
            }
        } else {
            Severity::Warn
        };
        sites.push(PlanSite {
            label: raw.label.clone(),
            kind: raw.kind,
            class,
            span: SourceSpan {
                file: file.to_owned(),
                line: raw.line,
                col: raw.col,
            },
            contexts,
            severity,
        });
    }
    sites
}

/// Plans one source string. `file` is the path used in spans and
/// allowlist globs.
#[must_use]
pub fn plan_source(file: &str, src: &str, list: &Allowlist) -> (Vec<PlanSite>, FileScan) {
    let lexed = srr_vet::lexer::lex(src);
    let scan = scan_file(&lexed);
    let sites = classify(file, &scan, &lexed.plan_allows, list);
    (sites, scan)
}

/// Plans every `.rs` file under the given paths (same walk as
/// `srr_vet::vet_paths`: files as-is, directories recursive, `target/`
/// and dot-dirs skipped).
pub fn plan_paths(paths: &[PathBuf], list: &Allowlist) -> std::io::Result<PlanReport> {
    let files = collect_rs_files(paths)?;
    let mut report = PlanReport {
        scanned_files: files.len(),
        ..PlanReport::default()
    };
    let mut edges: BTreeSet<(String, String)> = BTreeSet::new();
    for file in &files {
        let src = std::fs::read_to_string(file)?;
        let label = file.to_string_lossy();
        let (sites, scan) = plan_source(&label, &src, list);
        report.sites.extend(sites);
        edges.extend(scan.edges);
    }
    report.sites.sort_by(|a, b| {
        (&a.span.file, a.span.line, a.span.col).cmp(&(&b.span.file, b.span.line, b.span.col))
    });
    report.lock_cycles = lock_cycles(&edges);
    report.lock_edges = edges.into_iter().collect();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    const WORKLOAD: &str = r#"
        use std::sync::Arc;
        use tsan11rec::{thread, Mutex, Shared};

        fn w() {
            let cell = Arc::new(Shared::new("cell", 0u64));
            let gate = Arc::new(Mutex::labeled(0u64, "gate-lock"));
            let shared = Arc::new(Shared::new("guarded", 0u64));

            let (c1, g1, s1) = (Arc::clone(&cell), Arc::clone(&gate), Arc::clone(&shared));
            let t = thread::spawn(move || {
                let scratch = Shared::new("scratch", 0u64);
                scratch.write(scratch.read() + 1);
                c1.write(1);
                let g = g1.lock();
                s1.write(1);
                drop(g);
            });
            let g = gate.lock();
            shared.write(2);
            drop(g);
            cell.write(2);
            t.join();
        }
    "#;

    fn plan(src: &str) -> Vec<PlanSite> {
        let (sites, _) = plan_source("w.rs", src, &Allowlist::default());
        sites
    }

    fn class_of<'a>(sites: &'a [PlanSite], label: &str) -> &'a SiteClass {
        &sites.iter().find(|s| s.label == label).expect(label).class
    }

    #[test]
    fn classifies_local_guarded_and_conflict() {
        let sites = plan(WORKLOAD);
        assert_eq!(class_of(&sites, "scratch"), &SiteClass::Local);
        assert_eq!(
            class_of(&sites, "guarded"),
            &SiteClass::Guarded(vec!["gate-lock".to_owned()])
        );
        assert_eq!(class_of(&sites, "cell"), &SiteClass::Conflict);
    }

    #[test]
    fn plain_site_sharing_an_atomic_label_stays_recorded() {
        // `mixed_counter`: one logical location touched through both an
        // Atomic and a plain Shared. The plain side alone is
        // single-context (would be Local), but filtering it would hide
        // the MixedAtomicPlain lint from the trace.
        let src = r#"
            fn w() {
                let atomic = Arc::new(Atomic::labeled(0u64, "counter"));
                let plain = Arc::new(Shared::new("counter", 0u64));
                let (a2, p2) = (Arc::clone(&atomic), Arc::clone(&plain));
                let t = thread::spawn(move || {
                    a2.store(1, MemOrder::Release);
                    let _ = p2.read();
                });
                atomic.store(2, MemOrder::Release);
                t.join();
            }
        "#;
        let sites = plan(src);
        let shared = sites
            .iter()
            .find(|s| s.label == "counter" && s.kind == SiteKind::Shared)
            .expect("plain counter site");
        assert_eq!(shared.class, SiteClass::Conflict);
    }

    #[test]
    fn recorded_proven_and_known_label_sets() {
        let (sites, _) = plan_source("w.rs", WORKLOAD, &Allowlist::default());
        let report = PlanReport {
            scanned_files: 1,
            sites,
            ..PlanReport::default()
        };
        assert_eq!(
            report.recorded_labels(),
            BTreeSet::from(["cell".to_owned()])
        );
        assert_eq!(
            report.proven_labels(),
            BTreeSet::from(["scratch".to_owned(), "guarded".to_owned()])
        );
        assert!(report.known_labels().contains("cell"));
        assert_eq!(report.conflict_count(), 1);
    }

    #[test]
    fn inline_plan_marker_waives_the_gate_but_not_the_recording() {
        let src = WORKLOAD.replace(
            "let cell = ",
            "// plan: allow(conflict) intentional hazard\n            let cell = ",
        );
        let (sites, _) = plan_source("w.rs", &src, &Allowlist::default());
        let report = PlanReport {
            scanned_files: 1,
            sites,
            ..PlanReport::default()
        };
        assert_eq!(report.conflict_count(), 0, "marker waives the gate");
        assert!(
            report.recorded_labels().contains("cell"),
            "allowed conflicts still record"
        );
    }

    #[test]
    fn allowlist_file_suppresses_by_glob() {
        let list = Allowlist::parse("allow conflict w.rs known hazard fixture").unwrap();
        let (sites, _) = plan_source("w.rs", WORKLOAD, &list);
        assert!(sites.iter().all(|s| !s.gates()));
    }

    #[test]
    fn json_roundtrip_is_lossless_for_the_consumers() {
        let (sites, scan) = plan_source("w.rs", WORKLOAD, &Allowlist::default());
        let mut report = PlanReport {
            scanned_files: 1,
            sites,
            ..PlanReport::default()
        };
        report.lock_cycles = lock_cycles(&scan.edges);
        report.lock_edges = scan.edges.into_iter().collect();
        let doc = report.to_json();
        let parsed = plan_from_json(&doc).unwrap();
        assert_eq!(parsed.recorded_labels(), report.recorded_labels());
        assert_eq!(parsed.proven_labels(), report.proven_labels());
        assert_eq!(parsed.known_labels(), report.known_labels());
        assert_eq!(parsed.lock_edges, report.lock_edges);
        assert_eq!(parsed.lock_cycles, report.lock_cycles);
        assert_eq!(parsed.conflict_count(), report.conflict_count());
        // Determinism: serializing twice is byte-identical.
        assert_eq!(doc.to_pretty(), report.to_json().to_pretty());
    }

    #[test]
    fn json_parse_rejects_malformed_documents() {
        assert!(plan_from_json(&Json::Obj(vec![])).is_err());
        let bad = Json::Obj(vec![(
            "sites".to_owned(),
            Json::Arr(vec![Json::Obj(vec![(
                "label".to_owned(),
                Json::Str("x".to_owned()),
            )])]),
        )]);
        assert!(plan_from_json(&bad).is_err());
    }

    #[test]
    fn plan_paths_walks_and_sorts() {
        let dir = std::env::temp_dir().join(format!("srr-plan-walk-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("b.rs"), WORKLOAD).unwrap();
        std::fs::write(dir.join("a.rs"), "fn f() {}").unwrap();
        let report = plan_paths(std::slice::from_ref(&dir), &Allowlist::default()).unwrap();
        assert_eq!(report.scanned_files, 2);
        assert!(!report.sites.is_empty());
        assert!(report
            .sites
            .windows(2)
            .all(|w| w[0].span.file <= w[1].span.file));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
