//! The rr-like comprehensive record/replay baseline.
//!
//! The paper evaluates tsan11rec against Mozilla's **rr 5.1.0** (§5). rr's
//! relevant characteristics, reproduced here over the same virtual OS:
//!
//! * **full sequentialization** — one thread runs at a time on a
//!   priority/first-come-first-served schedule with a time slice; the
//!   paper repeatedly attributes rr's slowdowns on parallel workloads to
//!   this (e.g. §5.3's blackscholes discussion);
//! * **comprehensive recording** — every syscall is captured (no sparse
//!   configuration), *and* memory-layout nondeterminism is eliminated:
//!   the allocator's address stream is recorded and replayed, which is
//!   why rr handles SQLite/SpiderMonkey (§5.5) where tsan11rec
//!   desynchronises;
//! * **opaque-device failure** — proprietary ioctl traffic (the NVIDIA
//!   module of §5.4) cannot be captured; recording such an application
//!   aborts, exactly as rr cannot handle the SDL games.
//!
//! Two configurations mirror the paper's rows:
//! [`rr_config`] (plain rr: no race analysis) and
//! [`tsan11_under_rr_config`] ("tsan11 + rr": instrumented code running
//! under the sequentialized recorder).
//!
//! # Example
//!
//! ```
//! use srr_rr::{rr_config, RrOptions};
//! use tsan11rec::Execution;
//!
//! let (report, demo) = Execution::new(rr_config(RrOptions::default()))
//!     .record(|| {
//!         let addr = tsan11rec::sys::valloc(64);
//!         tsan11rec::sys::println(&format!("allocated {addr:#x}"));
//!     });
//! assert!(report.outcome.is_ok());
//! assert!(!demo.alloc.is_empty(), "rr records the allocator");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use tsan11rec::{Config, Mode, SparseConfig, Strategy};

/// Tunables for the baseline.
#[derive(Debug, Clone, Copy)]
pub struct RrOptions {
    /// Visible operations per scheduling slice (rr gives each thread a
    /// time slice before yielding; we count visible operations instead of
    /// cycles).
    pub quantum: u32,
    /// Fixed PRNG seeds (rr itself is deterministic; seeds only matter
    /// for the vOS interplay).
    pub seeds: [u64; 2],
}

impl Default for RrOptions {
    fn default() -> Self {
        RrOptions {
            quantum: 16,
            seeds: [0xECED, 0x5EED],
        }
    }
}

/// Plain rr: sequentialized, comprehensive recording, **no** race
/// analysis (the paper's `rr` rows).
#[must_use]
pub fn rr_config(opts: RrOptions) -> Config {
    Config::new(Mode::Tsan11Rec(Strategy::Slice {
        quantum: opts.quantum,
    }))
    .with_seeds(opts.seeds)
    .with_sparse(SparseConfig::comprehensive())
    .with_alloc_recording()
    .without_race_detection()
    .without_liveness()
}

/// tsan11-instrumented code running under rr (the paper's `tsan11 + rr`
/// rows): race detection *and* sequentialized comprehensive recording.
#[must_use]
pub fn tsan11_under_rr_config(opts: RrOptions) -> Config {
    Config::new(Mode::Tsan11Rec(Strategy::Slice {
        quantum: opts.quantum,
    }))
    .with_seeds(opts.seeds)
    .with_sparse(SparseConfig::comprehensive())
    .with_alloc_recording()
    .without_liveness()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tsan11rec::vos::{Fd, SilentPeer, Vos};
    use tsan11rec::{Atomic, Execution, MemOrder, Outcome, Shared};

    #[test]
    fn rr_configs_have_the_right_knobs() {
        let c = rr_config(RrOptions::default());
        assert!(matches!(c.mode, Mode::Tsan11Rec(Strategy::Slice { .. })));
        assert!(!c.detect_races);
        assert!(c.record_alloc);
        assert!(c.sparse.records_kind("open"), "comprehensive set");

        let c = tsan11_under_rr_config(RrOptions::default());
        assert!(c.detect_races, "tsan11+rr analyses races");
    }

    #[test]
    fn plain_rr_detects_no_races() {
        let report = Execution::new(rr_config(RrOptions::default())).run(|| {
            let s = Arc::new(Shared::new("x", 0u64));
            let s2 = Arc::clone(&s);
            let t = tsan11rec::thread::spawn(move || s2.write(1));
            s.write(2);
            t.join();
        });
        assert!(report.outcome.is_ok());
        assert_eq!(report.races, 0, "analysis is off");
    }

    #[test]
    fn tsan11_under_rr_detects_races() {
        let report = Execution::new(tsan11_under_rr_config(RrOptions::default())).run(|| {
            let s = Arc::new(Shared::new("x", 0u64));
            let s2 = Arc::clone(&s);
            let t = tsan11rec::thread::spawn(move || s2.write(1));
            s.write(2);
            t.join();
        });
        assert!(report.outcome.is_ok());
        assert!(report.races > 0);
    }

    #[test]
    fn rr_replays_allocator_addresses() {
        // The §5.5 property: pointer values reproduce under rr because the
        // allocator stream is part of the recording.
        let program = || {
            let a = tsan11rec::sys::valloc(64);
            let b = tsan11rec::sys::valloc(128);
            tsan11rec::sys::println(&format!("{a:#x} {b:#x}"));
        };
        // Record under a randomized (ASLR-like) allocator.
        let vos_cfg = || {
            tsan11rec::vos::VosConfig::deterministic(7)
                .with_alloc(tsan11rec::vos::AllocMode::Randomized { entropy: 1234 })
        };
        let (rec, demo) = Execution::new(rr_config(RrOptions::default()))
            .with_vos(vos_cfg())
            .record(program);
        assert!(!demo.alloc.is_empty());
        // Replay under a *different* entropy: recorded addresses win.
        let rep = Execution::new(rr_config(RrOptions::default()))
            .with_vos(
                tsan11rec::vos::VosConfig::deterministic(7)
                    .with_alloc(tsan11rec::vos::AllocMode::Randomized { entropy: 9999 }),
            )
            .replay(&demo, program);
        assert!(rep.outcome.is_ok(), "{:?}", rep.outcome);
        assert_eq!(rec.console, rep.console, "identical pointer values");
    }

    #[test]
    fn rr_records_file_reads() {
        let program = || {
            let fd = Fd(tsan11rec::sys::open("/etc/conf", false).expect("exists") as i32);
            let mut buf = [0u8; 16];
            let n = tsan11rec::sys::read(fd, &mut buf).expect("read") as usize;
            tsan11rec::sys::println(&String::from_utf8_lossy(&buf[..n]));
        };
        let setup = |vos: &Vos| vos.add_file("/etc/conf", b"alpha".to_vec());
        let (rec, demo) = Execution::new(rr_config(RrOptions::default()))
            .setup(setup)
            .record(program);
        assert!(
            demo.syscalls.iter().any(|s| s.kind == "read"),
            "comprehensive recording includes file reads"
        );
        // Replay against a world whose file says something else: the
        // recorded bytes win.
        let rep = Execution::new(rr_config(RrOptions::default()))
            .setup(|vos| vos.add_file("/etc/conf", b"WRONG".to_vec()))
            .replay(&demo, program);
        assert!(rep.outcome.is_ok(), "{:?}", rep.outcome);
        assert_eq!(rec.console, rep.console);
    }

    #[test]
    fn rr_aborts_on_opaque_gpu_ioctl() {
        // §5.4: the games are out of scope for rr.
        let (report, _demo) = Execution::new(rr_config(RrOptions::default()))
            .setup(|vos| vos.install_gpu())
            .record(|| {
                let gpu = Fd(tsan11rec::sys::open("/dev/gpu", false).expect("gpu") as i32);
                let mut arg = [0u8; 8];
                let _ = tsan11rec::sys::ioctl(gpu, tsan11rec::vos::GPU_SUBMIT_FRAME, &mut arg);
            });
        match report.outcome {
            Outcome::HardDesync(d) => assert_eq!(d.constraint, "unsupported-ioctl"),
            other => panic!("rr must refuse the opaque device, got {other:?}"),
        }
    }

    #[test]
    fn rr_schedule_is_sequentialized_slices() {
        let report = {
            let mut config = rr_config(RrOptions {
                quantum: 4,
                seeds: [1, 1],
            });
            config = config.with_schedule_trace();
            Execution::new(config).run(|| {
                let a = Arc::new(Atomic::new(0u64));
                let handles: Vec<_> = (0..2)
                    .map(|_| {
                        let a = Arc::clone(&a);
                        tsan11rec::thread::spawn(move || {
                            for _ in 0..12 {
                                a.fetch_add(1, MemOrder::SeqCst);
                            }
                        })
                    })
                    .collect();
                for h in handles {
                    h.join();
                }
            })
        };
        assert!(report.outcome.is_ok());
        // Count context switches: with quantum 4 the trace must show runs
        // of the same tid, not fine-grained interleaving.
        let tids: Vec<u32> = report.tick_trace().iter().map(|&(t, _)| t).collect();
        let switches = tids.windows(2).filter(|w| w[0] != w[1]).count();
        assert!(
            switches * 3 < tids.len(),
            "slices imply few switches: {switches} in {} cs",
            tids.len()
        );
    }

    #[test]
    fn rr_record_replay_roundtrip_with_network() {
        let program = || {
            let fd = tsan11rec::sys::connect(Box::new(tsan11rec::vos::EchoPeer::new(0)));
            tsan11rec::sys::send(fd, b"ping").expect("send");
            let mut buf = [0u8; 8];
            let n = tsan11rec::sys::recv(fd, &mut buf).expect("recv") as usize;
            tsan11rec::sys::println(&String::from_utf8_lossy(&buf[..n]));
        };
        let (rec, demo) = Execution::new(rr_config(RrOptions::default())).record(program);
        // Empty replay world: connect() gives a silent peer-less conn...
        // actually connect re-creates an echo peer from program code, but
        // the recorded recv bytes win regardless.
        let rep = Execution::new(rr_config(RrOptions::default()))
            .setup(|_vos: &Vos| {})
            .replay(&demo, program);
        assert!(rep.outcome.is_ok(), "{:?}", rep.outcome);
        assert_eq!(rec.console, rep.console);
        let _ = SilentPeer; // (referenced to document the alternative)
    }
}
