//! Property-based tests for the coherence invariants of [`AtomicCell`].
//!
//! These drive random sequences of stores/loads/RMWs from a small set of
//! threads and check the C++11 coherence axioms on the observed trace.

use proptest::prelude::*;
use srr_memmodel::{AtomicCell, Chooser, MemOrder, ThreadView};

#[derive(Debug, Clone)]
enum Op {
    Store {
        tid: usize,
        #[allow(dead_code)]
        value: u64,
        order: MemOrder,
    },
    Load {
        tid: usize,
        order: MemOrder,
        pick: usize,
    },
    Rmw {
        tid: usize,
        order: MemOrder,
    },
}

fn order_strategy() -> impl Strategy<Value = MemOrder> {
    prop_oneof![
        Just(MemOrder::Relaxed),
        Just(MemOrder::Acquire),
        Just(MemOrder::Release),
        Just(MemOrder::AcqRel),
        Just(MemOrder::SeqCst),
    ]
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..3, 1u64..100, order_strategy()).prop_map(|(tid, value, order)| Op::Store {
            tid,
            value,
            order
        }),
        (0usize..3, order_strategy(), 0usize..16).prop_map(|(tid, order, pick)| Op::Load {
            tid,
            order,
            pick
        }),
        (0usize..3, order_strategy()).prop_map(|(tid, order)| Op::Rmw { tid, order }),
    ]
}

struct FixedPick(usize);
impl Chooser for FixedPick {
    fn choose(&mut self, n: usize) -> usize {
        self.0.min(n - 1)
    }
}

/// Runs `ops` against one cell; returns, per thread, the sequence of
/// modification-order positions that thread observed (via the value: we
/// store each position as the value so reads reveal positions).
fn run(ops: &[Op]) -> Vec<Vec<u64>> {
    let mut views: Vec<ThreadView> = (0..3).map(ThreadView::new).collect();
    let mut cell = AtomicCell::new(0, &views[0]);
    let mut observed: Vec<Vec<u64>> = vec![Vec::new(); 3];
    let mut next_value = 1u64;

    for op in ops {
        match *op {
            Op::Store { tid, order, .. } => {
                views[tid].tick();
                // Store the modification-order position as the value so the
                // trace is reconstructible: pos == value for every store.
                cell.store(&mut views[tid], next_value, order);
                next_value += 1;
            }
            Op::Load { tid, order, pick } => {
                views[tid].tick();
                let v = cell.load(&mut views[tid], order, &mut FixedPick(pick));
                observed[tid].push(v);
            }
            Op::Rmw { tid, order } => {
                views[tid].tick();
                let old = cell.rmw(&mut views[tid], |_| next_value, order);
                next_value += 1;
                observed[tid].push(old);
            }
        }
    }
    observed
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Read-read coherence: each thread's observed positions never go
    /// backwards (values are assigned in modification order).
    #[test]
    fn per_thread_reads_are_monotone(ops in proptest::collection::vec(op_strategy(), 0..60)) {
        for seq in run(&ops) {
            for w in seq.windows(2) {
                prop_assert!(w[0] <= w[1], "observed {:?}", seq);
            }
        }
    }

    /// RMWs always read the newest store: after any op sequence the cell's
    /// latest value equals the last store/RMW value applied.
    #[test]
    fn latest_tracks_last_write(ops in proptest::collection::vec(op_strategy(), 0..60)) {
        let mut views: Vec<ThreadView> = (0..3).map(ThreadView::new).collect();
        let mut cell = AtomicCell::new(0, &views[0]);
        let mut last_written = 0u64;
        let mut next_value = 1u64;
        for op in &ops {
            match *op {
                Op::Store { tid, order, .. } => {
                    views[tid].tick();
                    cell.store(&mut views[tid], next_value, order);
                    last_written = next_value;
                    next_value += 1;
                }
                Op::Load { tid, order, pick } => {
                    views[tid].tick();
                    let _ = cell.load(&mut views[tid], order, &mut FixedPick(pick));
                }
                Op::Rmw { tid, order } => {
                    views[tid].tick();
                    let old = cell.rmw(&mut views[tid], |_| next_value, order);
                    prop_assert_eq!(old, last_written, "RMW must read newest");
                    last_written = next_value;
                    next_value += 1;
                }
            }
        }
        prop_assert_eq!(cell.latest(), last_written);
    }

    /// SC loads never observe a value older than the latest SC store.
    #[test]
    fn sc_loads_respect_sc_floor(ops in proptest::collection::vec(op_strategy(), 0..60)) {
        let mut views: Vec<ThreadView> = (0..3).map(ThreadView::new).collect();
        let mut cell = AtomicCell::new(0, &views[0]);
        let mut last_sc_value = 0u64;
        let mut have_sc_store = false;
        let mut next_value = 1u64;
        for op in &ops {
            match *op {
                Op::Store { tid, order, .. } => {
                    views[tid].tick();
                    cell.store(&mut views[tid], next_value, order);
                    if order.is_seq_cst() {
                        last_sc_value = next_value;
                        have_sc_store = true;
                    }
                    next_value += 1;
                }
                Op::Load { tid, order, pick } => {
                    views[tid].tick();
                    let v = cell.load(&mut views[tid], order, &mut FixedPick(pick));
                    if order.is_seq_cst() && have_sc_store {
                        prop_assert!(v >= last_sc_value,
                            "SC load saw {v} but last SC store was {last_sc_value}");
                    }
                }
                Op::Rmw { tid, order } => {
                    views[tid].tick();
                    let _ = cell.rmw(&mut views[tid], |_| next_value, order);
                    if order.is_seq_cst() {
                        last_sc_value = next_value;
                        have_sc_store = true;
                    }
                    next_value += 1;
                }
            }
        }
    }

    /// Thread clocks only ever grow (monotone happens-before).
    #[test]
    fn thread_clocks_are_monotone(ops in proptest::collection::vec(op_strategy(), 0..60)) {
        let mut views: Vec<ThreadView> = (0..3).map(ThreadView::new).collect();
        let mut cell = AtomicCell::new(0, &views[0]);
        let mut next_value = 1u64;
        for op in &ops {
            let tid = match *op { Op::Store { tid, .. } | Op::Load { tid, .. } | Op::Rmw { tid, .. } => tid };
            let before = views[tid].clock.clone();
            match *op {
                Op::Store { tid, order, .. } => {
                    views[tid].tick();
                    cell.store(&mut views[tid], next_value, order);
                    next_value += 1;
                }
                Op::Load { tid, order, pick } => {
                    views[tid].tick();
                    let _ = cell.load(&mut views[tid], order, &mut FixedPick(pick));
                }
                Op::Rmw { tid, order } => {
                    views[tid].tick();
                    let _ = cell.rmw(&mut views[tid], |_| next_value, order);
                    next_value += 1;
                }
            }
            prop_assert!(before.le(&views[tid].clock));
        }
    }
}
