//! Sequentially-consistent fence support.

use srr_vclock::VectorClock;

use crate::view::ThreadView;

/// The global clock through which `SeqCst` fences synchronize.
///
/// tsan11 models an SC fence as a bidirectional join with one global clock:
/// the fencing thread first absorbs the global clock, then publishes its own
/// into it. This totally orders SC fences and gives the cumulative
/// visibility guarantees programs like Dekker's algorithm rely on.
#[derive(Debug, Clone, Default)]
pub struct ScFenceClock {
    clock: VectorClock,
}

impl ScFenceClock {
    /// Creates the fence clock (all zeros).
    #[must_use]
    pub fn new() -> Self {
        ScFenceClock::default()
    }

    /// Executes a `SeqCst` fence for `view`: acquire side, release side,
    /// and the bidirectional global join.
    pub fn sc_fence(&mut self, view: &mut ThreadView) {
        view.acquire_fence();
        view.clock.join(&self.clock);
        self.clock.join(&view.clock);
        view.release_fence();
    }

    /// Read-only access to the accumulated global clock.
    #[must_use]
    pub fn clock(&self) -> &VectorClock {
        &self.clock
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sc_fences_transfer_clocks_transitively() {
        let mut global = ScFenceClock::new();
        let mut a = ThreadView::new(0);
        let mut b = ThreadView::new(1);
        let mut c = ThreadView::new(2);

        a.tick(); // a's clock[0] = 2
        global.sc_fence(&mut a);
        global.sc_fence(&mut b);
        assert_eq!(b.clock.get(0), 2, "b sees a through the fence order");

        global.sc_fence(&mut c);
        assert_eq!(c.clock.get(0), 2);
        assert!(c.clock.get(1) >= 1, "c sees b as well");
    }

    #[test]
    fn sc_fence_acts_as_release_fence_too() {
        let mut global = ScFenceClock::new();
        let mut a = ThreadView::new(0);
        a.tick();
        global.sc_fence(&mut a);
        assert!(
            a.release_fence.is_some(),
            "subsequent relaxed stores publish"
        );
    }

    #[test]
    fn global_clock_accumulates() {
        let mut global = ScFenceClock::new();
        let mut a = ThreadView::new(0);
        let mut b = ThreadView::new(1);
        global.sc_fence(&mut a);
        global.sc_fence(&mut b);
        assert!(global.clock().get(0) >= 1);
        assert!(global.clock().get(1) >= 1);
    }
}
