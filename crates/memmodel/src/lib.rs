//! Operational C++11-style weak memory model with per-location store
//! histories, following the tsan11 semantics (Lidbury & Donaldson,
//! POPL 2017) that the tsan11rec tool (PLDI 2019) builds on.
//!
//! The model is *operational*: every atomic store appends a
//! [`StoreElem`] to the location's bounded modification-order history, and
//! every atomic load selects one of the *readable* stores — possibly a stale
//! one — subject to the C++11 coherence rules:
//!
//! * **happens-before hiding**: a load may not read a store `S` if a
//!   modification-order-later store to the same location happens-before the
//!   load;
//! * **per-thread coherence**: a thread may never read modification-order
//!   backwards relative to what it has already read or written;
//! * **SC restriction**: a `SeqCst` load may not read a store that is
//!   modification-order-earlier than the latest `SeqCst` store to the
//!   location.
//!
//! Synchronizes-with edges (release/acquire, release sequences, fences) are
//! transferred as vector clocks. The *choice* among readable stores is made
//! through the [`Chooser`] trait so that the embedding tool can route it
//! through its replayable PRNG — this is what makes weak-memory behaviour
//! recordable and replayable in tsan11rec.
//!
//! # Example: the message-passing idiom
//!
//! ```
//! use srr_memmodel::{AtomicCell, CounterChooser, MemOrder, ThreadView};
//!
//! let mut t0 = ThreadView::new(0);
//! let mut t1 = ThreadView::new(1);
//! let mut data_published = false;
//!
//! let mut flag = AtomicCell::new(0, &t0);
//! // T0: publish with a release store.
//! data_published = true;
//! t0.clock.tick(0);
//! flag.store(&mut t0, 1, MemOrder::Release);
//!
//! // T1: acquire-load sees the flag and synchronizes.
//! let mut pick_latest = CounterChooser::always_latest();
//! t1.clock.tick(1);
//! let v = flag.load(&mut t1, MemOrder::Acquire, &mut pick_latest);
//! assert_eq!(v, 1);
//! // T0's release clock is now in T1's past:
//! assert!(t1.clock.get(0) >= 1);
//! # let _ = data_published;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cell;
mod choice;
mod fence;
mod order;
mod view;

pub use cell::{AtomicCell, StoreElem, DEFAULT_HISTORY_CAP};
pub use choice::{Chooser, CounterChooser};
pub use fence::ScFenceClock;
pub use order::MemOrder;
pub use view::ThreadView;
