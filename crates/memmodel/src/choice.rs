//! The nondeterministic-choice interface.
//!
//! Every weak-memory choice (which readable store a load observes) is routed
//! through [`Chooser`] so the embedding tool can make it *replayable*: in
//! tsan11rec the chooser is the scheduler's seeded PRNG, whose seeds are
//! stored in the demo header (§4 of the paper), so recording the seeds alone
//! reproduces every load choice on replay.

/// A source of bounded nondeterministic choices.
pub trait Chooser {
    /// Returns a value in `0..n`. `n` is always ≥ 1.
    fn choose(&mut self, n: usize) -> usize;
}

impl<T: Chooser + ?Sized> Chooser for &mut T {
    fn choose(&mut self, n: usize) -> usize {
        (**self).choose(n)
    }
}

/// A deterministic [`Chooser`] for tests: cycles through a fixed script,
/// or always picks the newest candidate.
#[derive(Debug, Clone)]
pub struct CounterChooser {
    script: Vec<usize>,
    at: usize,
    always_latest: bool,
}

impl CounterChooser {
    /// A chooser that always selects the last (newest) candidate — i.e.
    /// sequentially-consistent-looking behaviour.
    #[must_use]
    pub fn always_latest() -> Self {
        CounterChooser {
            script: Vec::new(),
            at: 0,
            always_latest: true,
        }
    }

    /// A chooser that always selects the first (oldest readable) candidate.
    #[must_use]
    pub fn always_oldest() -> Self {
        CounterChooser::from_script(vec![0])
    }

    /// A chooser that replays `script` cyclically; each entry is clamped
    /// to the candidate count at the point of use.
    #[must_use]
    pub fn from_script(script: Vec<usize>) -> Self {
        assert!(!script.is_empty(), "chooser script must be non-empty");
        CounterChooser {
            script,
            at: 0,
            always_latest: false,
        }
    }
}

impl Chooser for CounterChooser {
    fn choose(&mut self, n: usize) -> usize {
        debug_assert!(n >= 1);
        if self.always_latest {
            return n - 1;
        }
        let raw = self.script[self.at % self.script.len()];
        self.at += 1;
        raw.min(n - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_latest_picks_last() {
        let mut c = CounterChooser::always_latest();
        assert_eq!(c.choose(1), 0);
        assert_eq!(c.choose(5), 4);
    }

    #[test]
    fn always_oldest_picks_first() {
        let mut c = CounterChooser::always_oldest();
        assert_eq!(c.choose(3), 0);
        assert_eq!(c.choose(1), 0);
    }

    #[test]
    fn script_cycles_and_clamps() {
        let mut c = CounterChooser::from_script(vec![0, 9, 1]);
        assert_eq!(c.choose(4), 0);
        assert_eq!(c.choose(4), 3); // 9 clamped to 3
        assert_eq!(c.choose(4), 1);
        assert_eq!(c.choose(4), 0); // wraps
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_script_panics() {
        let _ = CounterChooser::from_script(vec![]);
    }

    #[test]
    fn mut_ref_is_a_chooser() {
        fn takes_chooser(c: &mut impl Chooser) -> usize {
            c.choose(2)
        }
        let mut c = CounterChooser::always_latest();
        assert_eq!(takes_chooser(&mut &mut c), 1);
    }
}
