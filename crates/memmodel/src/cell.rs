//! Per-location store histories and the load/store/RMW semantics.

use srr_vclock::{Epoch, TidIndex, VectorClock};

use crate::choice::Chooser;
use crate::order::MemOrder;
use crate::view::ThreadView;

/// Default bound on a location's store history.
///
/// tsan11 keeps a fixed-size ring of store elements per atomic location;
/// 128 is its default and is comfortably larger than the reorder windows
/// real hardware exhibits.
pub const DEFAULT_HISTORY_CAP: usize = 128;

/// One entry in a location's modification order.
#[derive(Debug, Clone)]
pub struct StoreElem {
    /// Position in modification order (0 = the initialization write).
    pub pos: u64,
    /// The stored value (all atomics are modelled as `u64`).
    pub value: u64,
    /// The memory order of the store.
    pub order: MemOrder,
    /// The storing thread.
    pub writer: TidIndex,
    /// The store event's epoch in the writer's history, used for the
    /// happens-before hiding rule.
    pub epoch: Epoch,
    /// The clock an acquire load of this store obtains (release store,
    /// release-fence publication, or release-sequence continuation);
    /// `None` when the store publishes nothing.
    pub sync_clock: Option<VectorClock>,
    /// Whether the store was a read-modify-write (continues any release
    /// sequence regardless of thread).
    pub rmw: bool,
}

/// The modification-order history of one atomic location.
///
/// The history is bounded: old stores are pruned from the front once
/// capacity is exceeded. The newest store is never pruned, so the readable
/// set is always non-empty.
#[derive(Debug, Clone)]
pub struct AtomicCell {
    history: Vec<StoreElem>,
    /// Modification-order position of the latest `SeqCst` store (0 if none).
    last_sc_pos: u64,
    /// Per-thread floor on readable positions (read-read / write-read
    /// coherence).
    last_seen: Vec<u64>,
    /// Total stores ever applied (= pos of the newest store).
    next_pos: u64,
    cap: usize,
}

impl AtomicCell {
    /// Creates a location holding `init`, attributed to the creating
    /// thread described by `creator`.
    ///
    /// The initialization write is *not* a release operation (matching
    /// C++11, where `std::atomic` initialization is unsynchronized), but its
    /// epoch participates in hiding: threads that observe the location's
    /// creation cannot read "before" it.
    #[must_use]
    pub fn new(init: u64, creator: &ThreadView) -> Self {
        AtomicCell::with_capacity(init, creator, DEFAULT_HISTORY_CAP)
    }

    /// As [`AtomicCell::new`] with an explicit history bound (≥ 1).
    #[must_use]
    pub fn with_capacity(init: u64, creator: &ThreadView, cap: usize) -> Self {
        assert!(cap >= 1, "history capacity must be at least 1");
        let init_elem = StoreElem {
            pos: 0,
            value: init,
            order: MemOrder::Relaxed,
            writer: creator.tid,
            epoch: creator.clock.epoch(creator.tid),
            sync_clock: None,
            rmw: false,
        };
        AtomicCell {
            history: vec![init_elem],
            last_sc_pos: 0,
            last_seen: Vec::new(),
            next_pos: 0,
            cap,
        }
    }

    /// The newest value in modification order.
    #[must_use]
    pub fn latest(&self) -> u64 {
        self.history.last().expect("history is never empty").value
    }

    /// Number of stores currently retained in the history.
    #[must_use]
    pub fn history_len(&self) -> usize {
        self.history.len()
    }

    /// Performs an atomic store.
    pub fn store(&mut self, view: &mut ThreadView, value: u64, order: MemOrder) {
        let sync = self.continuation_clock(view, order, false);
        self.push(view, value, order, sync, false);
    }

    /// Performs an atomic load, returning the chosen value.
    ///
    /// `chooser` selects among the readable stores; route it through the
    /// replayable PRNG to make weak behaviour reproducible.
    pub fn load(
        &mut self,
        view: &mut ThreadView,
        order: MemOrder,
        chooser: &mut dyn Chooser,
    ) -> u64 {
        self.load_with_writer(view, order, chooser).0
    }

    /// As [`AtomicCell::load`], additionally returning the thread that
    /// produced the observed store (analysis passes use this to tell
    /// cross-thread reads from same-thread ones).
    pub fn load_with_writer(
        &mut self,
        view: &mut ThreadView,
        order: MemOrder,
        chooser: &mut dyn Chooser,
    ) -> (u64, TidIndex) {
        let lo = self.readable_floor(view, order);
        let candidates: Vec<usize> = self
            .history
            .iter()
            .enumerate()
            .filter(|(_, s)| s.pos >= lo)
            .map(|(i, _)| i)
            .collect();
        debug_assert!(!candidates.is_empty(), "newest store is always readable");
        let idx = candidates[chooser.choose(candidates.len())];
        let writer = self.history[idx].writer;
        (self.observe(view, idx, order), writer)
    }

    /// Performs an atomic read-modify-write with `f`, returning the value
    /// *read* (the previous value).
    ///
    /// Per C++11, an RMW always reads the newest store in modification
    /// order; the chooser is therefore not consulted.
    pub fn rmw(
        &mut self,
        view: &mut ThreadView,
        f: impl FnOnce(u64) -> u64,
        order: MemOrder,
    ) -> u64 {
        let idx = self.history.len() - 1;
        let old = self.observe(view, idx, order);
        let new = f(old);
        let sync = self.continuation_clock(view, order, true);
        self.push(view, new, order, sync, true);
        old
    }

    /// Performs a strong compare-and-swap.
    ///
    /// On success stores `new` with `success` ordering and returns
    /// `Ok(previous)`; on failure behaves as a load of the newest store with
    /// `failure` ordering and returns `Err(actual)`.
    pub fn compare_exchange(
        &mut self,
        view: &mut ThreadView,
        expected: u64,
        new: u64,
        success: MemOrder,
        failure: MemOrder,
    ) -> Result<u64, u64> {
        let idx = self.history.len() - 1;
        let current = self.history[idx].value;
        if current == expected {
            let old = self.observe(view, idx, success);
            let sync = self.continuation_clock(view, success, true);
            self.push(view, new, success, sync, true);
            Ok(old)
        } else {
            Err(self.observe(view, idx, failure))
        }
    }

    /// The modification-order position of the newest store.
    #[must_use]
    pub fn latest_pos(&self) -> u64 {
        self.next_pos
    }

    /// Lowest modification-order position thread `view.tid` may read at
    /// `order`, combining all three coherence rules.
    fn readable_floor(&self, view: &ThreadView, order: MemOrder) -> u64 {
        // Per-thread coherence floor.
        let mut lo = view_floor(&self.last_seen, view.tid);
        // Happens-before hiding: latest store whose event is in the
        // reader's past hides everything older.
        for s in &self.history {
            if s.pos > lo && view.clock.hb_contains(s.epoch) {
                lo = s.pos;
            }
        }
        // SC restriction.
        if order.is_seq_cst() && self.last_sc_pos > lo {
            lo = self.last_sc_pos;
        }
        lo
    }

    /// Marks store `idx` as observed by `view`: applies synchronization and
    /// advances the thread's coherence floor. Returns the value.
    fn observe(&mut self, view: &mut ThreadView, idx: usize, order: MemOrder) -> u64 {
        let (pos, value, sync) = {
            let s = &self.history[idx];
            (s.pos, s.value, s.sync_clock.clone())
        };
        if let Some(sync) = sync {
            view.absorb(&sync, order.is_acquire());
        }
        bump_floor(&mut self.last_seen, view.tid, pos);
        value
    }

    /// The clock the new store should publish, including release-sequence
    /// continuation from the store it immediately follows.
    ///
    /// C++11 release sequences: a sequence headed by a release store A
    /// continues through subsequent stores by A's thread and through RMWs by
    /// any thread. We approximate by accumulating: if the new store extends
    /// the previous head (same thread, or the new store is an RMW), the
    /// previous head's published clock is folded into the new one.
    fn continuation_clock(
        &self,
        view: &ThreadView,
        order: MemOrder,
        is_rmw: bool,
    ) -> Option<VectorClock> {
        let own = view.publish_clock(order.is_release());
        let prev = self.history.last().expect("history is never empty");
        let continues = is_rmw || prev.writer == view.tid;
        match (own, continues.then(|| prev.sync_clock.clone()).flatten()) {
            (Some(mut c), Some(prev_c)) => {
                c.join(&prev_c);
                Some(c)
            }
            (Some(c), None) => Some(c),
            (None, Some(prev_c)) => Some(prev_c),
            (None, None) => None,
        }
    }

    fn push(
        &mut self,
        view: &mut ThreadView,
        value: u64,
        order: MemOrder,
        sync_clock: Option<VectorClock>,
        rmw: bool,
    ) {
        self.next_pos += 1;
        let pos = self.next_pos;
        if order.is_seq_cst() {
            self.last_sc_pos = pos;
        }
        self.history.push(StoreElem {
            pos,
            value,
            order,
            writer: view.tid,
            epoch: view.clock.epoch(view.tid),
            sync_clock,
            rmw,
        });
        if self.history.len() > self.cap {
            self.history.remove(0);
        }
        // A writer may never subsequently read older than its own store
        // (write-read coherence).
        bump_floor(&mut self.last_seen, view.tid, pos);
    }
}

fn view_floor(floors: &[u64], tid: TidIndex) -> u64 {
    floors.get(tid).copied().unwrap_or(0)
}

fn bump_floor(floors: &mut Vec<u64>, tid: TidIndex, pos: u64) {
    if floors.len() <= tid {
        floors.resize(tid + 1, 0);
    }
    if floors[tid] < pos {
        floors[tid] = pos;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::choice::CounterChooser;

    fn fresh(tid: TidIndex) -> ThreadView {
        ThreadView::new(tid)
    }

    /// A chooser that records how many candidates each call saw.
    struct Probe {
        seen: Vec<usize>,
        pick: usize,
    }
    impl Chooser for Probe {
        fn choose(&mut self, n: usize) -> usize {
            self.seen.push(n);
            self.pick.min(n - 1)
        }
    }

    #[test]
    fn init_value_is_readable() {
        let t0 = fresh(0);
        let mut t1 = fresh(1);
        let mut cell = AtomicCell::new(42, &t0);
        let mut c = CounterChooser::always_latest();
        assert_eq!(cell.load(&mut t1, MemOrder::SeqCst, &mut c), 42);
    }

    #[test]
    fn relaxed_load_may_read_stale_store() {
        let mut t0 = fresh(0);
        let mut t1 = fresh(1);
        let mut cell = AtomicCell::new(0, &t0);
        t0.tick();
        cell.store(&mut t0, 1, MemOrder::Relaxed);

        // t1 has no hb knowledge of the store: both 0 and 1 readable.
        let mut probe = Probe {
            seen: vec![],
            pick: 0,
        };
        let v = cell.load(&mut t1, MemOrder::Relaxed, &mut probe);
        assert_eq!(probe.seen, vec![2], "two candidates");
        assert_eq!(v, 0, "picked the stale store");
    }

    #[test]
    fn hb_hiding_forbids_stale_read() {
        let mut t0 = fresh(0);
        let mut t1 = fresh(1);
        let mut cell = AtomicCell::new(0, &t0);
        t0.tick();
        cell.store(&mut t0, 1, MemOrder::Release);

        // Simulate synchronization: t1 learns t0's full clock.
        t1.clock.join(&t0.clock);

        let mut probe = Probe {
            seen: vec![],
            pick: 0,
        };
        let v = cell.load(&mut t1, MemOrder::Relaxed, &mut probe);
        assert_eq!(probe.seen, vec![1], "stale store hidden by hb");
        assert_eq!(v, 1);
    }

    #[test]
    fn read_read_coherence_is_monotone() {
        let mut t0 = fresh(0);
        let mut t1 = fresh(1);
        let mut cell = AtomicCell::new(0, &t0);
        t0.tick();
        cell.store(&mut t0, 1, MemOrder::Relaxed);
        t0.tick();
        cell.store(&mut t0, 2, MemOrder::Relaxed);

        // t1 reads the newest store...
        let mut latest = CounterChooser::always_latest();
        assert_eq!(cell.load(&mut t1, MemOrder::Relaxed, &mut latest), 2);
        // ...then can never go back, even when asking for the oldest.
        let mut probe = Probe {
            seen: vec![],
            pick: 0,
        };
        assert_eq!(cell.load(&mut t1, MemOrder::Relaxed, &mut probe), 2);
        assert_eq!(probe.seen, vec![1]);
    }

    #[test]
    fn writer_cannot_read_before_own_store() {
        let mut t0 = fresh(0);
        let mut cell = AtomicCell::new(0, &t0);
        t0.tick();
        cell.store(&mut t0, 7, MemOrder::Relaxed);
        let mut probe = Probe {
            seen: vec![],
            pick: 0,
        };
        assert_eq!(cell.load(&mut t0, MemOrder::Relaxed, &mut probe), 7);
        assert_eq!(probe.seen, vec![1]);
    }

    #[test]
    fn acquire_of_release_synchronizes() {
        let mut t0 = fresh(0);
        let mut t1 = fresh(1);
        let mut cell = AtomicCell::new(0, &t0);
        t0.tick();
        cell.store(&mut t0, 1, MemOrder::Release);
        let t0_epoch = t0.clock.get(0);

        let mut latest = CounterChooser::always_latest();
        cell.load(&mut t1, MemOrder::Acquire, &mut latest);
        assert_eq!(t1.clock.get(0), t0_epoch);
    }

    #[test]
    fn relaxed_load_of_release_does_not_synchronize_immediately() {
        let mut t0 = fresh(0);
        let mut t1 = fresh(1);
        let mut cell = AtomicCell::new(0, &t0);
        t0.tick();
        cell.store(&mut t0, 1, MemOrder::Release);

        let mut latest = CounterChooser::always_latest();
        cell.load(&mut t1, MemOrder::Relaxed, &mut latest);
        assert_eq!(t1.clock.get(0), 0, "no sw edge for relaxed load");
        t1.acquire_fence();
        assert!(t1.clock.get(0) >= 2, "acquire fence completes the edge");
    }

    #[test]
    fn release_fence_then_relaxed_store_publishes() {
        let mut t0 = fresh(0);
        let mut t1 = fresh(1);
        let mut cell = AtomicCell::new(0, &t0);
        t0.tick();
        t0.release_fence();
        t0.tick();
        cell.store(&mut t0, 1, MemOrder::Relaxed);

        let mut latest = CounterChooser::always_latest();
        cell.load(&mut t1, MemOrder::Acquire, &mut latest);
        assert!(t1.clock.get(0) >= 2, "fence clock transferred");
    }

    #[test]
    fn rmw_reads_latest_and_continues_release_sequence() {
        let mut t0 = fresh(0);
        let mut t1 = fresh(1);
        let mut t2 = fresh(2);
        let mut cell = AtomicCell::new(0, &t0);
        t0.tick();
        cell.store(&mut t0, 1, MemOrder::Release);
        let head_clock = t0.clock.get(0);

        // t1 extends the sequence with a relaxed RMW.
        t1.tick();
        let old = cell.rmw(&mut t1, |v| v + 1, MemOrder::Relaxed);
        assert_eq!(old, 1, "RMW reads newest");
        assert_eq!(cell.latest(), 2);

        // t2 acquire-loads the RMW's store and must still synchronize with
        // t0 (release sequence headed by t0's release store).
        let mut latest = CounterChooser::always_latest();
        cell.load(&mut t2, MemOrder::Acquire, &mut latest);
        assert_eq!(t2.clock.get(0), head_clock);
    }

    #[test]
    fn same_thread_relaxed_store_continues_release_sequence() {
        let mut t0 = fresh(0);
        let mut t1 = fresh(1);
        let mut cell = AtomicCell::new(0, &t0);
        t0.tick();
        cell.store(&mut t0, 1, MemOrder::Release);
        let head_clock = t0.clock.get(0);
        t0.tick();
        cell.store(&mut t0, 2, MemOrder::Relaxed); // same thread: continues

        let mut latest = CounterChooser::always_latest();
        cell.load(&mut t1, MemOrder::Acquire, &mut latest);
        assert!(t1.clock.get(0) >= head_clock);
    }

    #[test]
    fn other_thread_relaxed_store_breaks_release_sequence() {
        let mut t0 = fresh(0);
        let mut t1 = fresh(1);
        let mut t2 = fresh(2);
        let mut cell = AtomicCell::new(0, &t0);
        t0.tick();
        cell.store(&mut t0, 1, MemOrder::Release);
        t1.tick();
        cell.store(&mut t1, 2, MemOrder::Relaxed); // different thread: breaks

        let mut latest = CounterChooser::always_latest();
        cell.load(&mut t2, MemOrder::Acquire, &mut latest);
        assert_eq!(
            t2.clock.get(0),
            0,
            "no sync with t0 through broken sequence"
        );
    }

    #[test]
    fn sc_load_cannot_read_before_last_sc_store() {
        let mut t0 = fresh(0);
        let mut t1 = fresh(1);
        let mut cell = AtomicCell::new(0, &t0);
        t0.tick();
        cell.store(&mut t0, 1, MemOrder::SeqCst);

        let mut probe = Probe {
            seen: vec![],
            pick: 0,
        };
        let v = cell.load(&mut t1, MemOrder::SeqCst, &mut probe);
        assert_eq!(probe.seen, vec![1], "init store hidden from SC load");
        assert_eq!(v, 1);
    }

    #[test]
    fn non_sc_load_may_still_read_before_sc_store() {
        let mut t0 = fresh(0);
        let mut t1 = fresh(1);
        let mut cell = AtomicCell::new(0, &t0);
        t0.tick();
        cell.store(&mut t0, 1, MemOrder::SeqCst);

        let mut probe = Probe {
            seen: vec![],
            pick: 0,
        };
        let v = cell.load(&mut t1, MemOrder::Relaxed, &mut probe);
        assert_eq!(probe.seen, vec![2]);
        assert_eq!(v, 0);
    }

    #[test]
    fn compare_exchange_success_and_failure() {
        let mut t0 = fresh(0);
        let mut cell = AtomicCell::new(5, &t0);
        t0.tick();
        assert_eq!(
            cell.compare_exchange(&mut t0, 5, 6, MemOrder::AcqRel, MemOrder::Relaxed),
            Ok(5)
        );
        assert_eq!(cell.latest(), 6);
        t0.tick();
        assert_eq!(
            cell.compare_exchange(&mut t0, 5, 9, MemOrder::AcqRel, MemOrder::Relaxed),
            Err(6)
        );
        assert_eq!(cell.latest(), 6);
    }

    #[test]
    fn failed_cas_acquires_at_failure_order() {
        let mut t0 = fresh(0);
        let mut t1 = fresh(1);
        let mut cell = AtomicCell::new(0, &t0);
        t0.tick();
        cell.store(&mut t0, 3, MemOrder::Release);
        let t0_epoch = t0.clock.get(0);

        t1.tick();
        let r = cell.compare_exchange(&mut t1, 0, 1, MemOrder::AcqRel, MemOrder::Acquire);
        assert_eq!(r, Err(3));
        assert_eq!(t1.clock.get(0), t0_epoch, "failure path still acquires");
    }

    #[test]
    fn history_is_bounded_and_latest_survives() {
        let mut t0 = fresh(0);
        let mut cell = AtomicCell::with_capacity(0, &t0, 4);
        for i in 1..=100 {
            t0.tick();
            cell.store(&mut t0, i, MemOrder::Relaxed);
        }
        assert_eq!(cell.history_len(), 4);
        assert_eq!(cell.latest(), 100);
        assert_eq!(cell.latest_pos(), 100);
    }

    #[test]
    fn figure1_weak_behaviour_is_producible() {
        // The racy program of Figure 1 (paper §2): T2 reads y==1 (B) then a
        // stale x==0 (D), both relaxed, despite T1 storing x (A) before
        // y (B) with release ordering.
        let mut t1 = fresh(0);
        let mut t2 = fresh(1);
        let mut x = AtomicCell::new(0, &t1);
        let mut y = AtomicCell::new(0, &t1);

        t1.tick();
        x.store(&mut t1, 1, MemOrder::Release); // A
        t1.tick();
        y.store(&mut t1, 1, MemOrder::Release); // B

        let mut latest = CounterChooser::always_latest();
        let c = y.load(&mut t2, MemOrder::Relaxed, &mut latest); // C
        assert_eq!(c, 1);
        let mut oldest = CounterChooser::always_oldest();
        let d = x.load(&mut t2, MemOrder::Relaxed, &mut oldest); // D
        assert_eq!(
            d, 0,
            "stale read allowed: relaxed load of y gave no sw edge"
        );
    }
}
