//! C++11 memory orders.

use core::fmt;

/// A C++11 memory order.
///
/// `memory_order_consume` is treated as [`MemOrder::Acquire`], exactly as
/// tsan11 (and every mainstream compiler) does.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MemOrder {
    /// `memory_order_relaxed`: atomicity only, no synchronization.
    Relaxed,
    /// `memory_order_acquire`: loads synchronize with release stores read.
    Acquire,
    /// `memory_order_release`: stores publish the writer's clock.
    Release,
    /// `memory_order_acq_rel`: both (meaningful for read-modify-writes).
    AcqRel,
    /// `memory_order_seq_cst`: acquire+release plus the SC total order.
    SeqCst,
}

impl MemOrder {
    /// Whether a load at this order acquires the store's release clock.
    #[must_use]
    pub fn is_acquire(self) -> bool {
        matches!(
            self,
            MemOrder::Acquire | MemOrder::AcqRel | MemOrder::SeqCst
        )
    }

    /// Whether a store at this order publishes the writer's clock.
    #[must_use]
    pub fn is_release(self) -> bool {
        matches!(
            self,
            MemOrder::Release | MemOrder::AcqRel | MemOrder::SeqCst
        )
    }

    /// Whether this order participates in the sequential-consistency
    /// total order.
    #[must_use]
    pub fn is_seq_cst(self) -> bool {
        matches!(self, MemOrder::SeqCst)
    }

    /// A short lowercase name matching the C++ spelling suffix
    /// (`relaxed`, `acquire`, ...). Useful in logs and demo files.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            MemOrder::Relaxed => "relaxed",
            MemOrder::Acquire => "acquire",
            MemOrder::Release => "release",
            MemOrder::AcqRel => "acq_rel",
            MemOrder::SeqCst => "seq_cst",
        }
    }
}

impl fmt::Display for MemOrder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl Default for MemOrder {
    /// `SeqCst`, matching the default of `std::atomic` operations in C++.
    fn default() -> Self {
        MemOrder::SeqCst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_release_classification() {
        assert!(!MemOrder::Relaxed.is_acquire());
        assert!(!MemOrder::Relaxed.is_release());
        assert!(MemOrder::Acquire.is_acquire());
        assert!(!MemOrder::Acquire.is_release());
        assert!(!MemOrder::Release.is_acquire());
        assert!(MemOrder::Release.is_release());
        assert!(MemOrder::AcqRel.is_acquire());
        assert!(MemOrder::AcqRel.is_release());
        assert!(MemOrder::SeqCst.is_acquire());
        assert!(MemOrder::SeqCst.is_release());
    }

    #[test]
    fn only_seq_cst_is_sc() {
        assert!(MemOrder::SeqCst.is_seq_cst());
        for o in [
            MemOrder::Relaxed,
            MemOrder::Acquire,
            MemOrder::Release,
            MemOrder::AcqRel,
        ] {
            assert!(!o.is_seq_cst());
        }
    }

    #[test]
    fn names_match_cpp_spellings() {
        assert_eq!(MemOrder::Relaxed.to_string(), "relaxed");
        assert_eq!(MemOrder::AcqRel.to_string(), "acq_rel");
        assert_eq!(MemOrder::default(), MemOrder::SeqCst);
    }
}
