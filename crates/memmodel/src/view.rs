//! Per-thread memory-model state.

use srr_vclock::{TidIndex, VectorClock};

/// A thread's view of the memory model: its happens-before clock plus the
/// fence bookkeeping tsan11 keeps per thread.
///
/// * `clock` — the thread's vector clock; grows on synchronizes-with edges.
/// * `release_fence` — snapshot of `clock` taken at the thread's most recent
///   release fence. A *relaxed* store that follows a release fence publishes
///   this snapshot instead of nothing (C++11 §32.9: fence-store
///   synchronization).
/// * `acquire_pending` — release clocks observed by *relaxed* loads since
///   the last acquire fence. An acquire fence folds this into `clock`
///   (C++11 fence-load synchronization).
#[derive(Debug, Clone)]
pub struct ThreadView {
    /// The thread's dense index (vector-clock component).
    pub tid: TidIndex,
    /// The thread's happens-before clock.
    pub clock: VectorClock,
    /// Clock snapshot at the most recent release fence, if any.
    pub release_fence: Option<VectorClock>,
    /// Accumulated release clocks from relaxed loads, pending an
    /// acquire fence.
    pub acquire_pending: VectorClock,
}

impl ThreadView {
    /// Creates a fresh view for thread `tid` with an all-zero clock.
    ///
    /// The embedding runtime normally follows this with a join of the
    /// parent's clock (thread creation synchronizes parent → child).
    #[must_use]
    pub fn new(tid: TidIndex) -> Self {
        let mut clock = VectorClock::new();
        // A thread's own component starts at 1 so that its first event is
        // distinguishable from "never ran" (epoch 0).
        clock.set(tid, 1);
        ThreadView {
            tid,
            clock,
            release_fence: None,
            acquire_pending: VectorClock::new(),
        }
    }

    /// Advances the thread's own clock component; call once per
    /// happens-before-relevant event.
    pub fn tick(&mut self) {
        self.clock.tick(self.tid);
    }

    /// The clock a store by this thread publishes, given whether the store
    /// itself is a release operation.
    ///
    /// Release store → the full current clock. Relaxed store after a release
    /// fence → the fence snapshot. Otherwise → `None` (nothing published).
    #[must_use]
    pub fn publish_clock(&self, releasing: bool) -> Option<VectorClock> {
        if releasing {
            Some(self.clock.clone())
        } else {
            self.release_fence.clone()
        }
    }

    /// Applies a synchronizes-with edge obtained by a load.
    ///
    /// `acquiring` says whether the *load* had acquire semantics. If it did,
    /// the clock is joined immediately; if not, it is parked in
    /// `acquire_pending` for a future acquire fence.
    pub fn absorb(&mut self, sync: &VectorClock, acquiring: bool) {
        if acquiring {
            self.clock.join(sync);
        } else {
            self.acquire_pending.join(sync);
        }
    }

    /// Executes a release fence: snapshots the current clock.
    pub fn release_fence(&mut self) {
        self.release_fence = Some(self.clock.clone());
    }

    /// Executes an acquire fence: folds pending release clocks into the
    /// thread clock.
    pub fn acquire_fence(&mut self) {
        // Move out to satisfy the borrow checker without cloning.
        let pending = std::mem::take(&mut self.acquire_pending);
        self.clock.join(&pending);
        // Keep the pending set joined-forward: clocks are monotone, and an
        // already-absorbed edge is harmless to re-absorb.
        self.acquire_pending = pending;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_view_starts_at_one() {
        let v = ThreadView::new(3);
        assert_eq!(v.clock.get(3), 1);
        assert_eq!(v.clock.get(0), 0);
    }

    #[test]
    fn tick_advances_own_component_only() {
        let mut v = ThreadView::new(1);
        v.tick();
        v.tick();
        assert_eq!(v.clock.get(1), 3);
        assert_eq!(v.clock.get(0), 0);
    }

    #[test]
    fn release_store_publishes_full_clock() {
        let mut v = ThreadView::new(0);
        v.tick();
        let c = v.publish_clock(true).expect("release publishes");
        assert_eq!(c.get(0), 2);
    }

    #[test]
    fn relaxed_store_publishes_nothing_without_fence() {
        let v = ThreadView::new(0);
        assert!(v.publish_clock(false).is_none());
    }

    #[test]
    fn relaxed_store_after_release_fence_publishes_fence_clock() {
        let mut v = ThreadView::new(0);
        v.tick(); // clock[0] = 2
        v.release_fence();
        v.tick(); // clock[0] = 3, after the fence
        let c = v.publish_clock(false).expect("fence publishes");
        assert_eq!(c.get(0), 2, "publishes the snapshot, not the live clock");
    }

    #[test]
    fn relaxed_load_parks_clock_until_acquire_fence() {
        let mut v = ThreadView::new(1);
        let mut sync = VectorClock::new();
        sync.set(0, 7);
        v.absorb(&sync, false);
        assert_eq!(v.clock.get(0), 0, "not yet visible");
        v.acquire_fence();
        assert_eq!(v.clock.get(0), 7, "visible after acquire fence");
    }

    #[test]
    fn acquire_load_joins_immediately() {
        let mut v = ThreadView::new(1);
        let mut sync = VectorClock::new();
        sync.set(0, 7);
        v.absorb(&sync, true);
        assert_eq!(v.clock.get(0), 7);
    }
}
