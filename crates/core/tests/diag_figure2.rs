//! Diagnostic: diff record vs replay schedule traces for the Figure 2
//! client under the random strategy. Kept as a regression canary: the
//! first divergence, if any, is printed.

use std::sync::Arc;

use tsan11rec::vos::{PollFd, RequestSourcePeer, SignalTrigger, Vos};
use tsan11rec::{Atomic, Config, Execution, MemOrder, Mode, Mutex, Strategy};

const SIGTERM: i32 = 15;

fn client() {
    let quit = Arc::new(Atomic::new(false));
    let requests = Arc::new(Mutex::new(Vec::<Vec<u8>>::new()));
    let q = Arc::clone(&quit);
    tsan11rec::signals::set_handler(SIGTERM, move || {
        q.store(true, MemOrder::SeqCst);
    });
    let server_fd = tsan11rec::sys::connect(Box::new(RequestSourcePeer::new(6, 32, 1_000)));
    let listener = {
        let quit = Arc::clone(&quit);
        let requests = Arc::clone(&requests);
        tsan11rec::thread::spawn(move || {
            while !quit.load(MemOrder::SeqCst) {
                let mut fds = [PollFd::readable(server_fd)];
                match tsan11rec::sys::poll(&mut fds) {
                    Ok(n) if n > 0 && fds[0].revents.readable => {
                        let mut buf = vec![0u8; 32];
                        if let Ok(n) = tsan11rec::sys::recv(server_fd, &mut buf) {
                            buf.truncate(n as usize);
                            requests.lock().push(buf);
                        }
                    }
                    _ => {}
                }
            }
        })
    };
    let responder = {
        let quit = Arc::clone(&quit);
        let requests = Arc::clone(&requests);
        tsan11rec::thread::spawn(move || {
            while !quit.load(MemOrder::SeqCst) {
                let buf = requests.lock().pop();
                if let Some(buf) = buf {
                    let _ = tsan11rec::sys::send(server_fd, &buf);
                }
            }
        })
    };
    listener.join();
    responder.join();
}

fn world(vos: &Vos) {
    vos.schedule_signal(SIGTERM, SignalTrigger::AfterSyscalls(200));
}

#[test]
fn record_replay_schedules_are_identical() {
    let config = || {
        Config::new(Mode::Tsan11Rec(Strategy::Random))
            .with_seeds([21, 42])
            .without_liveness()
            .with_schedule_trace()
    };
    let vos_cfg = || tsan11rec::vos::VosConfig::deterministic(0x5eed).with_strace();
    let (rec_report, demo) = Execution::new(config())
        .with_vos(vos_cfg())
        .setup(world)
        .record(client);
    assert!(rec_report.outcome.is_ok(), "{:?}", rec_report.outcome);
    let rep_report = Execution::new(config())
        .with_vos(vos_cfg())
        .replay(&demo, client);

    for (i, (a, b)) in rec_report
        .strace
        .iter()
        .zip(rep_report.strace.iter())
        .enumerate()
    {
        assert_eq!(
            a,
            b,
            "first strace divergence at syscall #{i}:\nrec ctx {:?}\nrep ctx {:?}",
            &rec_report.strace[i.saturating_sub(6)..(i + 4).min(rec_report.strace.len())],
            &rep_report.strace[i.saturating_sub(6)..(i + 4).min(rep_report.strace.len())]
        );
    }
    let rec_trace = rec_report.tick_trace();
    let rep_trace = rep_report.tick_trace();
    for (i, (a, b)) in rec_trace.iter().zip(rep_trace.iter()).enumerate() {
        assert_eq!(
            a,
            b,
            "first schedule divergence at cs #{i}: record {a:?} vs replay {b:?}\n\
             context rec: {:?}\ncontext rep: {:?}",
            &rec_trace[i.saturating_sub(5)..(i + 5).min(rec_trace.len())],
            &rep_trace[i.saturating_sub(5)..(i + 5).min(rep_trace.len())],
        );
    }
    assert!(
        rep_report.outcome.is_ok(),
        "replay outcome: {:?} (traces matched for {} cs)\nrec tail: {:?}\nrep tail: {:?}\nrec len {} rep len {}",
        rep_report.outcome,
        rec_trace.len().min(rep_trace.len()),
        &rec_trace[rec_trace.len().saturating_sub(12)..],
        &rep_trace[rep_trace.len().saturating_sub(12)..],
        rec_trace.len(),
        rep_trace.len()
    );
    assert_eq!(rec_trace.len(), rep_trace.len(), "trace lengths differ");
}
