//! Classic weak-memory litmus patterns driven through the *full tool*
//! (scheduler + memory model + PRNG choices), checking which outcomes are
//! reachable and which orderings forbid them. These are the semantic
//! guarantees the Table 1 results rest on.

use std::sync::Arc;

use tsan11rec::{Atomic, Config, Execution, MemOrder, Mode, Strategy};

fn config(seed: u64) -> Config {
    Config::new(Mode::Tsan11Rec(Strategy::Random))
        .with_seeds([seed, seed.wrapping_mul(7919) + 1])
        .without_liveness()
}

/// Store buffering: T1: x=1; r1=y. T2: y=1; r2=x. Returns (r1, r2).
fn store_buffering(order_store: MemOrder, order_load: MemOrder, seed: u64) -> (u32, u32) {
    let result = Arc::new(std::sync::Mutex::new((9, 9)));
    let res2 = Arc::clone(&result);
    let report = Execution::new(config(seed)).run(move || {
        let x = Arc::new(Atomic::new(0u32));
        let y = Arc::new(Atomic::new(0u32));
        let t1 = {
            let (x, y) = (Arc::clone(&x), Arc::clone(&y));
            tsan11rec::thread::spawn(move || {
                x.store(1, order_store);
                y.load(order_load)
            })
        };
        let t2 = {
            let (x, y) = (Arc::clone(&x), Arc::clone(&y));
            tsan11rec::thread::spawn(move || {
                y.store(1, order_store);
                x.load(order_load)
            })
        };
        let r1 = t1.join();
        let r2 = t2.join();
        *res2.lock().unwrap() = (r1, r2);
    });
    assert!(report.outcome.is_ok(), "{:?}", report.outcome);
    let r = *result.lock().unwrap();
    r
}

#[test]
fn store_buffering_weak_outcome_reachable_under_relaxed() {
    // r1 == r2 == 0 is the hallmark weak outcome (allowed by C++11 for
    // anything below SC).
    let mut seen_weak = false;
    for seed in 0..300 {
        if store_buffering(MemOrder::Relaxed, MemOrder::Relaxed, seed) == (0, 0) {
            seen_weak = true;
            break;
        }
    }
    assert!(
        seen_weak,
        "relaxed SB must produce r1=r2=0 under some schedule/choice"
    );
}

#[test]
fn store_buffering_weak_outcome_reachable_under_release_acquire() {
    // Release/acquire does NOT forbid SB's weak outcome.
    let mut seen_weak = false;
    for seed in 0..300 {
        if store_buffering(MemOrder::Release, MemOrder::Acquire, seed) == (0, 0) {
            seen_weak = true;
            break;
        }
    }
    assert!(seen_weak, "rel/acq SB still allows r1=r2=0");
}

#[test]
fn store_buffering_weak_outcome_forbidden_under_seq_cst() {
    for seed in 0..300 {
        let r = store_buffering(MemOrder::SeqCst, MemOrder::SeqCst, seed);
        assert_ne!(r, (0, 0), "SC forbids the weak SB outcome (seed {seed})");
    }
}

/// Message passing: T1: data=41; flag=1. T2: if flag==1 { r=data }.
/// Returns `Some(r)` when T2 saw the flag.
fn message_passing(store_order: MemOrder, load_order: MemOrder, seed: u64) -> Option<u32> {
    let result = Arc::new(std::sync::Mutex::new(None));
    let res2 = Arc::clone(&result);
    let report = Execution::new(config(seed)).run(move || {
        let data = Arc::new(Atomic::new(0u32));
        let flag = Arc::new(Atomic::new(0u32));
        let t1 = {
            let (d, f) = (Arc::clone(&data), Arc::clone(&flag));
            tsan11rec::thread::spawn(move || {
                d.store(41, MemOrder::Relaxed);
                f.store(1, store_order);
            })
        };
        let t2 = {
            let (d, f) = (Arc::clone(&data), Arc::clone(&flag));
            tsan11rec::thread::spawn(move || {
                if f.load(load_order) == 1 {
                    Some(d.load(MemOrder::Relaxed))
                } else {
                    None
                }
            })
        };
        t1.join();
        let r = t2.join();
        *res2.lock().unwrap() = r;
    });
    assert!(report.outcome.is_ok(), "{:?}", report.outcome);
    let r = *result.lock().unwrap();
    r
}

#[test]
fn message_passing_release_acquire_never_reads_stale_data() {
    for seed in 0..300 {
        if let Some(r) = message_passing(MemOrder::Release, MemOrder::Acquire, seed) {
            assert_eq!(
                r, 41,
                "rel/acq MP: flag observed ⇒ data visible (seed {seed})"
            );
        }
    }
}

#[test]
fn message_passing_relaxed_can_read_stale_data() {
    let mut stale = false;
    for seed in 0..300 {
        if message_passing(MemOrder::Relaxed, MemOrder::Relaxed, seed) == Some(0) {
            stale = true;
            break;
        }
    }
    assert!(stale, "relaxed MP must allow flag=1 with data=0");
}

#[test]
fn coherence_holds_even_fully_relaxed() {
    // Single-location coherence: a thread reading x twice must not see
    // values moving backwards in modification order, for any ordering.
    for seed in 0..100 {
        let report = Execution::new(config(seed)).run(|| {
            let x = Arc::new(Atomic::new(0u64));
            let writer = {
                let x = Arc::clone(&x);
                tsan11rec::thread::spawn(move || {
                    for i in 1..=10 {
                        x.store(i, MemOrder::Relaxed);
                    }
                })
            };
            let reader = {
                let x = Arc::clone(&x);
                tsan11rec::thread::spawn(move || {
                    let mut last = 0;
                    for _ in 0..10 {
                        let v = x.load(MemOrder::Relaxed);
                        assert!(v >= last, "coherence violated: {v} after {last}");
                        last = v;
                    }
                })
            };
            writer.join();
            reader.join();
        });
        assert!(report.outcome.is_ok(), "seed {seed}: {:?}", report.outcome);
    }
}

#[test]
fn rmw_atomicity_never_loses_increments() {
    // fetch_add reads the newest store: N threads × M increments always
    // sum exactly, even fully relaxed.
    for seed in 0..50 {
        let report = Execution::new(config(seed)).run(|| {
            let c = Arc::new(Atomic::new(0u64));
            let handles: Vec<_> = (0..3)
                .map(|_| {
                    let c = Arc::clone(&c);
                    tsan11rec::thread::spawn(move || {
                        for _ in 0..10 {
                            c.fetch_add(1, MemOrder::Relaxed);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join();
            }
            assert_eq!(c.load(MemOrder::SeqCst), 30);
        });
        assert!(report.outcome.is_ok(), "seed {seed}: {:?}", report.outcome);
    }
}

#[test]
fn release_fence_publishes_for_subsequent_relaxed_stores() {
    // fence(Release) + relaxed store == release store, observed through
    // an acquire load: the MP guarantee must hold.
    for seed in 0..200 {
        let result = Arc::new(std::sync::Mutex::new(None));
        let res2 = Arc::clone(&result);
        let report = Execution::new(config(seed)).run(move || {
            let data = Arc::new(Atomic::new(0u32));
            let flag = Arc::new(Atomic::new(0u32));
            let t1 = {
                let (d, f) = (Arc::clone(&data), Arc::clone(&flag));
                tsan11rec::thread::spawn(move || {
                    d.store(17, MemOrder::Relaxed);
                    tsan11rec::fence(MemOrder::Release);
                    f.store(1, MemOrder::Relaxed);
                })
            };
            let t2 = {
                let (d, f) = (Arc::clone(&data), Arc::clone(&flag));
                tsan11rec::thread::spawn(move || {
                    if f.load(MemOrder::Acquire) == 1 {
                        Some(d.load(MemOrder::Relaxed))
                    } else {
                        None
                    }
                })
            };
            t1.join();
            let r = t2.join();
            *res2.lock().unwrap() = r;
        });
        assert!(report.outcome.is_ok(), "{:?}", report.outcome);
        let observed = *result.lock().unwrap();
        if let Some(r) = observed {
            assert_eq!(r, 17, "fence-store synchronization (seed {seed})");
        }
    }
}

/// IRIW (independent reads of independent writes): two writers store to
/// x and y; two readers each read both locations in opposite orders.
/// Returns ((r1x, r1y), (r2y, r2x)).
fn iriw(order: MemOrder, seed: u64) -> ((u32, u32), (u32, u32)) {
    let result = Arc::new(std::sync::Mutex::new(((9, 9), (9, 9))));
    let res2 = Arc::clone(&result);
    let report = Execution::new(config(seed)).run(move || {
        let x = Arc::new(Atomic::new(0u32));
        let y = Arc::new(Atomic::new(0u32));
        let w1 = {
            let x = Arc::clone(&x);
            tsan11rec::thread::spawn(move || x.store(1, order))
        };
        let w2 = {
            let y = Arc::clone(&y);
            tsan11rec::thread::spawn(move || y.store(1, order))
        };
        let r1 = {
            let (x, y) = (Arc::clone(&x), Arc::clone(&y));
            tsan11rec::thread::spawn(move || (x.load(order), y.load(order)))
        };
        let r2 = {
            let (x, y) = (Arc::clone(&x), Arc::clone(&y));
            tsan11rec::thread::spawn(move || (y.load(order), x.load(order)))
        };
        w1.join();
        w2.join();
        let a = r1.join();
        let b = r2.join();
        *res2.lock().unwrap() = (a, b);
    });
    assert!(report.outcome.is_ok(), "{:?}", report.outcome);
    let r = *result.lock().unwrap();
    r
}

#[test]
fn iriw_weird_outcome_forbidden_under_seq_cst() {
    // The IRIW hallmark: the readers disagree about the store order —
    // r1 = (x=1, y=0) while r2 = (y=1, x=0). SC forbids it.
    for seed in 0..300 {
        let ((r1x, r1y), (r2y, r2x)) = iriw(MemOrder::SeqCst, seed);
        let weird = r1x == 1 && r1y == 0 && r2y == 1 && r2x == 0;
        assert!(!weird, "SC forbids IRIW's split observation (seed {seed})");
    }
}

#[test]
fn iriw_weird_outcome_reachable_under_acquire_release() {
    // Release/acquire permits it (no total store order): our stale-read
    // model produces it under some schedule + read choices.
    let mut seen = false;
    for seed in 0..600 {
        let ((r1x, r1y), (r2y, r2x)) = iriw(MemOrder::Acquire, seed);
        if r1x == 1 && r1y == 0 && r2y == 1 && r2x == 0 {
            seen = true;
            break;
        }
    }
    assert!(seen, "acq/rel IRIW must allow the split observation");
}
