//! Race detection end-to-end (including the paper's Figure 1 weak-memory
//! race) and deadlock preservation.

use std::sync::Arc;

use tsan11rec::{Atomic, Config, Execution, MemOrder, Mode, Mutex, Outcome, Shared, Strategy};

fn config(mode: Mode, seeds: [u64; 2]) -> Config {
    Config::new(mode).with_seeds(seeds).without_liveness()
}

/// A plainly racy program: two threads increment an unprotected counter.
fn racy_counter() {
    let c = Arc::new(Shared::new("counter", 0u64));
    let handles: Vec<_> = (0..2)
        .map(|_| {
            let c = Arc::clone(&c);
            tsan11rec::thread::spawn(move || {
                for _ in 0..20 {
                    c.update(|v| v + 1);
                }
            })
        })
        .collect();
    for h in handles {
        h.join();
    }
}

#[test]
fn unprotected_counter_races_under_instrumented_modes() {
    for mode in [
        Mode::Tsan11,
        Mode::Tsan11Rec(Strategy::Random),
        Mode::Tsan11Rec(Strategy::Queue),
    ] {
        let report = Execution::new(config(mode, [1, 2])).run(racy_counter);
        assert!(report.outcome.is_ok(), "{mode:?}: {:?}", report.outcome);
        assert!(report.races > 0, "{mode:?}: racy counter must be detected");
        assert!(!report.race_reports.is_empty());
        assert!(report.race_reports[0].label.contains("counter"));
    }
}

#[test]
fn native_mode_detects_nothing() {
    let report = Execution::new(config(Mode::Native, [1, 2])).run(racy_counter);
    assert_eq!(report.races, 0, "native mode has no detector");
}

#[test]
fn reports_disabled_still_counts_races() {
    let report =
        Execution::new(config(Mode::Tsan11Rec(Strategy::Random), [1, 2]).without_reports())
            .run(racy_counter);
    assert!(report.races > 0);
    assert!(report.race_reports.is_empty(), "reports disabled");
}

/// Figure 1: the weak-memory race. T1 release-stores x then y; T2 reads
/// y==1 and a *stale* x==0 (both relaxed) and relaxed-stores x=2; T3
/// acquire-loads x>0 and then reads the plain variable `nax` — racing
/// with T1's plain write because T2's relaxed store carries no
/// release clock. Under sequential consistency the D read of 0 after C's
/// read of 1 is impossible, so only a weak-memory-aware tool finds it.
fn figure1(nax_hits: &Arc<Atomic<u32>>) {
    let nax = Arc::new(Shared::new("nax", 0u64));
    let x = Arc::new(Atomic::new(0u32));
    let y = Arc::new(Atomic::new(0u32));

    let t1 = {
        let (nax, x, y) = (Arc::clone(&nax), Arc::clone(&x), Arc::clone(&y));
        tsan11rec::thread::spawn(move || {
            nax.write(1);
            x.store(1, MemOrder::Release); // A
            y.store(1, MemOrder::Release); // B
        })
    };
    let t2 = {
        let (x, y) = (Arc::clone(&x), Arc::clone(&y));
        tsan11rec::thread::spawn(move || {
            if y.load(MemOrder::Relaxed) == 1 // C
                && x.load(MemOrder::Relaxed) == 0
            // D: stale read
            {
                x.store(2, MemOrder::Relaxed);
            }
        })
    };
    let t3 = {
        let (nax, x, hits) = (Arc::clone(&nax), Arc::clone(&x), Arc::clone(nax_hits));
        tsan11rec::thread::spawn(move || {
            if x.load(MemOrder::Acquire) > 0 {
                // E
                let _ = nax.read(); // the racy "print(nax)"
                hits.fetch_add(1, MemOrder::SeqCst);
            }
        })
    };
    t1.join();
    t2.join();
    t3.join();
}

#[test]
fn figure1_weak_memory_race_is_findable_under_random_scheduling() {
    // Search seeds until the interleaving + stale-read choice line up.
    let mut found = 0u32;
    let runs = 200;
    for seed in 0..runs {
        let hits = Arc::new(Atomic::new(0u32));
        let h = Arc::clone(&hits);
        let report = Execution::new(config(
            Mode::Tsan11Rec(Strategy::Random),
            [seed, seed.wrapping_mul(977) + 3],
        ))
        .run(move || figure1(&h));
        assert!(report.outcome.is_ok(), "{:?}", report.outcome);
        if report.races > 0 {
            found += 1;
            assert!(
                report.race_reports.iter().any(|r| r.label == "nax"),
                "the race is on nax: {:?}",
                report.race_reports
            );
        }
    }
    assert!(
        found > 0,
        "controlled random scheduling must expose the Figure 1 race within {runs} seeds"
    );
}

#[test]
fn figure1_racy_schedule_replays_deterministically() {
    // Find a racy seed, then re-run it: the race must reappear every time
    // (the paper's motivation for combining the three techniques).
    let mut racy_seed = None;
    for seed in 0..200 {
        let hits = Arc::new(Atomic::new(0u32));
        let h = Arc::clone(&hits);
        let report = Execution::new(config(
            Mode::Tsan11Rec(Strategy::Random),
            [seed, seed.wrapping_mul(977) + 3],
        ))
        .run(move || figure1(&h));
        if report.races > 0 {
            racy_seed = Some(seed);
            break;
        }
    }
    let seed = racy_seed.expect("a racy seed exists");
    for _ in 0..5 {
        let hits = Arc::new(Atomic::new(0u32));
        let h = Arc::clone(&hits);
        let report = Execution::new(config(
            Mode::Tsan11Rec(Strategy::Random),
            [seed, seed.wrapping_mul(977) + 3],
        ))
        .run(move || figure1(&h));
        assert!(report.races > 0, "same seeds must reproduce the race");
    }
}

#[test]
fn lock_ordering_deadlock_is_detected() {
    let report = Execution::new(config(Mode::Tsan11Rec(Strategy::Random), [2, 9])).run(|| {
        let a = Arc::new(Mutex::new(0u32));
        let b = Arc::new(Mutex::new(0u32));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t = tsan11rec::thread::spawn(move || {
            let _ga = a2.lock();
            // Force the window: the other thread takes b now.
            for _ in 0..10 {
                tsan11rec::sys::sleep_ms(1);
            }
            let _gb = b2.lock();
        });
        let _gb = b.lock();
        for _ in 0..10 {
            tsan11rec::sys::sleep_ms(1);
        }
        let _ga = a.lock();
        drop(_ga);
        drop(_gb);
        t.join();
    });
    // Depending on the schedule this either deadlocks (detected) or
    // completes; with these seeds both threads interleave into the trap.
    match report.outcome {
        Outcome::Deadlock | Outcome::Completed => {}
        other => panic!("unexpected outcome {other:?}"),
    }
}

#[test]
fn certain_deadlock_is_always_detected() {
    // Self-join-ish: one thread locks a mutex twice (non-reentrant).
    let report = Execution::new(config(Mode::Tsan11Rec(Strategy::Queue), [1, 1])).run(|| {
        let m = Mutex::new(());
        let _g1 = m.lock();
        let _g2 = m.lock(); // blocks forever: non-reentrant
    });
    assert_eq!(report.outcome, Outcome::Deadlock);
}

#[test]
fn detection_rate_is_strategy_dependent() {
    // The Table 1 phenomenon in miniature: how often a racy interleaving
    // manifests depends on the scheduling strategy. (The direction is
    // benchmark-specific — in the paper, random wins on most litmus tests
    // but queue wins on dekker-fences — so we assert dependence, not
    // direction; the Table 1 bench reports the full rates.)
    let program = || {
        let data = Arc::new(Shared::new("published", 0u64));
        let ready = Arc::new(Atomic::new(false));
        let (d2, r2) = (Arc::clone(&data), Arc::clone(&ready));
        let t = tsan11rec::thread::spawn(move || {
            d2.write(42);
            r2.store(true, MemOrder::Relaxed); // relaxed: no sw edge
        });
        if ready.load(MemOrder::Relaxed) {
            let _ = data.read(); // races when the store is observed
        }
        t.join();
    };
    let rate = |strategy: Strategy| {
        let mut racy = 0;
        for seed in 0..100u64 {
            let report =
                Execution::new(config(Mode::Tsan11Rec(strategy), [seed, seed + 1000])).run(program);
            if report.races > 0 {
                racy += 1;
            }
        }
        racy
    };
    let random_rate = rate(Strategy::Random);
    let queue_rate = rate(Strategy::Queue);
    assert!(
        random_rate > 0 || queue_rate > 0,
        "the race must be findable"
    );
    assert_ne!(
        random_rate, queue_rate,
        "rates should differ across strategies (random {random_rate}, queue {queue_rate})"
    );
}
