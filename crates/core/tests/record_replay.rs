//! Record/replay round-trips (§4): the Figure 2 client, signals,
//! desynchronisation, and the sparse-vs-comprehensive trade-offs.

use std::sync::Arc;

use tsan11rec::vos::{EchoPeer, Fd, PollFd, RequestSourcePeer, SignalTrigger, Vos, VosConfig};
use tsan11rec::{
    soft_desync, Atomic, Config, Demo, Execution, MemOrder, Mode, Mutex, Outcome, SparseConfig,
    Strategy,
};

const SIGTERM: i32 = 15;

fn rec_config(strategy: Strategy) -> Config {
    Config::new(Mode::Tsan11Rec(strategy))
        .with_seeds([21, 42])
        .without_liveness()
}

/// The Figure 2 client: a Listener thread polls and receives requests, a
/// Responder thread processes and sends them back; a signal handler sets
/// `quit`.
fn figure2_client() {
    let quit = Arc::new(Atomic::new(false));
    let requests = Arc::new(Mutex::new(Vec::<Vec<u8>>::new()));

    let q = Arc::clone(&quit);
    tsan11rec::signals::set_handler(SIGTERM, move || {
        q.store(true, MemOrder::SeqCst);
    });

    let server_fd = tsan11rec::sys::connect(Box::new(RequestSourcePeer::new(6, 32, 1_000)));

    let listener = {
        let quit = Arc::clone(&quit);
        let requests = Arc::clone(&requests);
        tsan11rec::thread::spawn(move || {
            while !quit.load(MemOrder::SeqCst) {
                let mut fds = [PollFd::readable(server_fd)];
                let res = tsan11rec::sys::poll(&mut fds);
                match res {
                    Ok(0) => continue,
                    Ok(_) if fds[0].revents.readable => {
                        let mut buf = vec![0u8; 32];
                        if let Ok(n) = tsan11rec::sys::recv(server_fd, &mut buf) {
                            buf.truncate(n as usize);
                            requests.lock().push(buf);
                        }
                    }
                    _ => {}
                }
            }
        })
    };

    let responder = {
        let quit = Arc::clone(&quit);
        let requests = Arc::clone(&requests);
        tsan11rec::thread::spawn(move || {
            let mut processed = 0u32;
            while !quit.load(MemOrder::SeqCst) {
                let buf = requests.lock().pop();
                if let Some(mut buf) = buf {
                    // "Process" the request.
                    for b in &mut buf {
                        *b = b.wrapping_add(1);
                    }
                    let _ = tsan11rec::sys::send(server_fd, &buf);
                    processed += 1;
                    tsan11rec::sys::println(&format!("processed {processed}"));
                }
            }
        })
    };

    listener.join();
    responder.join();
    tsan11rec::sys::println("client done");
}

fn figure2_world(vos: &Vos) {
    // End the session via an asynchronous signal after some syscalls.
    vos.schedule_signal(SIGTERM, SignalTrigger::AfterSyscalls(200));
}

#[test]
fn figure2_records_and_replays_without_live_server() {
    for strategy in [Strategy::Random, Strategy::Queue] {
        let (rec_report, demo) = Execution::new(rec_config(strategy))
            .setup(figure2_world)
            .record(figure2_client);
        assert!(
            rec_report.outcome.is_ok(),
            "{strategy:?}: {:?}",
            rec_report.outcome
        );
        assert!(
            rec_report.console_text().contains("client done"),
            "{strategy:?}: signal must terminate the loops"
        );
        assert!(
            !demo.syscalls.is_empty(),
            "{strategy:?}: poll/recv/send recorded"
        );
        assert!(!demo.signals.is_empty(), "{strategy:?}: SIGTERM recorded");

        // Replay into an EMPTY world: no request source, no signal
        // schedule. The demo alone must drive the client to the same
        // observable behaviour — the whole point of Figure 2.
        let rep_report = Execution::new(rec_config(strategy)).replay(&demo, figure2_client);
        assert!(
            rep_report.outcome.is_ok(),
            "{strategy:?}: replay failed: {:?}",
            rep_report.outcome
        );
        assert!(
            !soft_desync(&rec_report, &rep_report),
            "{strategy:?}: console output must match\nrecorded:\n{}\nreplayed:\n{}",
            rec_report.console_text(),
            rep_report.console_text()
        );
    }
}

#[test]
fn demo_roundtrips_through_disk_format() {
    let (_, demo) = Execution::new(rec_config(Strategy::Queue))
        .setup(figure2_world)
        .record(figure2_client);
    let map = demo.to_string_map();
    let demo2 = Demo::from_string_map(&map).expect("well-formed demo");
    assert_eq!(demo, demo2);

    let rep = Execution::new(rec_config(Strategy::Queue)).replay(&demo2, figure2_client);
    assert!(rep.outcome.is_ok(), "{:?}", rep.outcome);
}

#[test]
fn random_strategy_stores_no_queue_stream() {
    let (_, demo) = Execution::new(rec_config(Strategy::Random))
        .setup(figure2_world)
        .record(figure2_client);
    assert!(
        demo.queue.next_ticks.is_empty(),
        "random interleaving is captured by the seeds alone (§4.2)"
    );

    let (_, demo_q) = Execution::new(rec_config(Strategy::Queue))
        .setup(figure2_world)
        .record(figure2_client);
    assert!(
        !demo_q.queue.next_ticks.is_empty(),
        "queue interleaving must be stored"
    );
}

#[test]
fn replay_on_program_divergence_hard_desyncs() {
    // Record a program that makes one poll; replay a program that makes a
    // send first: the syscall-kind constraint must fail.
    let (_, demo) = Execution::new(rec_config(Strategy::Queue)).record(|| {
        let fd = tsan11rec::sys::connect(Box::new(EchoPeer::new(0)));
        let mut buf = [0u8; 4];
        let _ = tsan11rec::sys::recv(fd, &mut buf);
    });
    let rep = Execution::new(rec_config(Strategy::Queue)).replay(&demo, || {
        let fd = tsan11rec::sys::connect(Box::new(EchoPeer::new(0)));
        let _ = tsan11rec::sys::send(fd, b"x");
    });
    match rep.outcome {
        Outcome::HardDesync(d) => {
            assert_eq!(d.constraint, "syscall-kind");
            assert_eq!(d.expected, "recv");
            assert_eq!(d.actual, "send");
        }
        other => panic!("expected hard desync, got {other:?}"),
    }
}

#[test]
fn replay_underrun_hard_desyncs() {
    let (_, demo) = Execution::new(rec_config(Strategy::Queue)).record(|| {
        let fd = tsan11rec::sys::connect(Box::new(EchoPeer::new(0)));
        let _ = tsan11rec::sys::send(fd, b"x");
    });
    let rep = Execution::new(rec_config(Strategy::Queue)).replay(&demo, || {
        let fd = tsan11rec::sys::connect(Box::new(EchoPeer::new(0)));
        let _ = tsan11rec::sys::send(fd, b"x");
        let _ = tsan11rec::sys::send(fd, b"y"); // one more than recorded
    });
    match rep.outcome {
        Outcome::HardDesync(d) => assert_eq!(d.constraint, "syscall-underrun"),
        other => panic!("expected hard desync, got {other:?}"),
    }
}

#[test]
fn empty_sparse_config_records_empty_demo_but_soft_desyncs() {
    // The paper's extreme case: the empty demo is trivially synchronised
    // but soft-desynchronises almost everywhere.
    let config = || {
        Config::new(Mode::Tsan11Rec(Strategy::Queue))
            .with_seeds([3, 4])
            .without_liveness()
            .with_sparse(SparseConfig::none())
    };
    let program = || {
        // Behaviour depends on an unrecorded environment value: the
        // request payload is drawn from the world's entropy.
        let fd = tsan11rec::sys::connect(Box::new(RequestSourcePeer::new(1, 16, 0)));
        let mut buf = [0u8; 16];
        loop {
            match tsan11rec::sys::recv(fd, &mut buf) {
                Ok(n) if n > 0 => break,
                _ => continue,
            }
        }
        tsan11rec::sys::println(&format!("payload={buf:02x?}"));
    };
    let (rec_report, demo) = Execution::new(config()).record(program);
    assert!(
        demo.syscalls.is_empty(),
        "nothing recorded under the empty config"
    );
    // Different world seed => payload bytes differ => observable
    // divergence without any constraint violation.
    let rep_report = Execution::new(config())
        .with_vos(VosConfig::deterministic(999))
        .replay(&demo, program);
    assert!(
        rep_report.outcome.is_ok(),
        "no constraint can fail: {:?}",
        rep_report.outcome
    );
    assert!(
        soft_desync(&rec_report, &rep_report),
        "payload divergence must show as soft desync"
    );
}

#[test]
fn recorded_clock_makes_replay_time_deterministic() {
    let program = || {
        let t = tsan11rec::sys::clock_gettime().unwrap_or(0);
        tsan11rec::sys::println(&format!("t={t}"));
    };
    let (rec_report, demo) = Execution::new(rec_config(Strategy::Queue)).record(program);
    // Same program, wildly different world clock: recorded clock wins.
    let rep_report = Execution::new(rec_config(Strategy::Queue))
        .with_vos(VosConfig::deterministic(31337))
        .replay(&demo, program);
    assert!(!soft_desync(&rec_report, &rep_report));
}

#[test]
fn queue_replay_enforces_thread_interleaving() {
    // Two threads print interleaved lines; under the queue strategy the
    // interleaving is physical-timing-dependent, so only the QUEUE stream
    // makes the replay's console identical.
    let program = || {
        let a = tsan11rec::thread::spawn(|| {
            for i in 0..10 {
                tsan11rec::sys::println(&format!("a{i}"));
            }
        });
        let b = tsan11rec::thread::spawn(|| {
            for i in 0..10 {
                tsan11rec::sys::println(&format!("b{i}"));
            }
        });
        a.join();
        b.join();
    };
    // Liveness ON during record: physical timing genuinely matters here.
    let config = || Config::new(Mode::Tsan11Rec(Strategy::Queue)).with_seeds([7, 8]);
    let (rec_report, demo) = Execution::new(config()).record(program);
    for _ in 0..3 {
        let rep = Execution::new(config()).replay(&demo, program);
        assert!(rep.outcome.is_ok(), "{:?}", rep.outcome);
        assert_eq!(
            rep.console, rec_report.console,
            "QUEUE stream must pin the interleaving"
        );
    }
}

#[test]
fn signal_replay_is_tick_accurate() {
    let program = || {
        let hits = Arc::new(Atomic::new(0u32));
        let h = Arc::clone(&hits);
        tsan11rec::signals::set_handler(SIGTERM, move || {
            h.fetch_add(1, MemOrder::SeqCst);
        });
        let a = Atomic::new(0u64);
        for i in 0..50 {
            a.store(i, MemOrder::SeqCst);
        }
        tsan11rec::sys::println(&format!("hits={}", hits.load(MemOrder::SeqCst)));
    };
    let setup = |vos: &Vos| {
        vos.schedule_signal(SIGTERM, SignalTrigger::AfterSyscalls(0));
    };
    let (rec_report, demo) = Execution::new(rec_config(Strategy::Random))
        .setup(setup)
        .record(program);
    assert!(
        rec_report.console_text().contains("hits=1"),
        "{}",
        rec_report.console_text()
    );
    assert_eq!(demo.signals.len(), 1);

    // Replay with NO signal source: the SIGNAL stream raises it.
    let rep = Execution::new(rec_config(Strategy::Random)).replay(&demo, program);
    assert!(rep.outcome.is_ok(), "{:?}", rep.outcome);
    assert_eq!(rep.console, rec_report.console);
}

#[test]
fn replay_reports_leftover_syscalls() {
    let (_, demo) = Execution::new(rec_config(Strategy::Queue)).record(|| {
        let _ = tsan11rec::sys::clock_gettime();
        let _ = tsan11rec::sys::clock_gettime();
    });
    assert_eq!(demo.syscalls.len(), 2);
    let rep = Execution::new(rec_config(Strategy::Queue)).replay(&demo, || {
        let _ = tsan11rec::sys::clock_gettime();
    });
    assert_eq!(rep.replay_leftover_syscalls, 1);
}

#[test]
fn sparse_ioctl_ignore_lets_device_run_live_on_replay() {
    let config = || {
        Config::new(Mode::Tsan11Rec(Strategy::Queue))
            .with_seeds([9, 9])
            .without_liveness()
            .with_sparse(SparseConfig::games())
    };
    let program = || {
        let gpu = Fd(tsan11rec::sys::open("/dev/gpu", false).expect("gpu present") as i32);
        let mut arg = [0u8; 8];
        for _ in 0..3 {
            tsan11rec::sys::ioctl(gpu, tsan11rec::vos::GPU_SUBMIT_FRAME, &mut arg).expect("submit");
        }
    };
    let setup = |vos: &Vos| vos.install_gpu();
    let (_, demo) = Execution::new(config()).setup(setup).record(program);
    assert!(
        demo.syscalls.iter().all(|s| s.kind != "ioctl"),
        "ioctl must not be recorded under the games config"
    );
    // Replay needs the device present (it runs natively, §5.4).
    let rep = Execution::new(config()).setup(setup).replay(&demo, program);
    assert!(rep.outcome.is_ok(), "{:?}", rep.outcome);
}

#[test]
fn queue_demo_sizes_scale_with_work() {
    let work = |n: u64| {
        move || {
            let a = Atomic::new(0u64);
            for i in 0..n {
                a.store(i, MemOrder::SeqCst);
            }
        }
    };
    let (_, small) = Execution::new(rec_config(Strategy::Queue)).record(work(10));
    let (_, large) = Execution::new(rec_config(Strategy::Queue)).record(work(1000));
    assert!(large.size_bytes() > small.size_bytes());
    // RLE should keep the 100x work from costing 100x the bytes: the
    // next-tick list is one long run.
    assert!(
        large.size_bytes() < small.size_bytes() * 20,
        "RLE: {} vs {}",
        large.size_bytes(),
        small.size_bytes()
    );
}
