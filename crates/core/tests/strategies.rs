//! End-to-end behavioural contracts of each scheduling strategy.

use std::sync::Arc;

use tsan11rec::{Atomic, Config, Execution, MemOrder, Mode, Mutex, Strategy};

/// Three threads tag a shared log with their id *inside instrumented
/// lock sections*, so the tag order is a pure function of the schedule
/// (an uninstrumented log would be an invisible operation, whose order
/// between critical sections is legitimately nondeterministic —
/// Figure 3's parallelism).
fn tagged_program(log: &Arc<Mutex<Vec<u8>>>) -> impl FnOnce() + Send + 'static {
    let log = Arc::clone(log);
    move || {
        let handles: Vec<_> = (0..3u8)
            .map(|id| {
                let log = Arc::clone(&log);
                tsan11rec::thread::spawn(move || {
                    let a = Atomic::new(0u32);
                    for _ in 0..8 {
                        a.fetch_add(1, MemOrder::SeqCst);
                        log.lock().push(id);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join();
        }
    }
}

fn run_strategy(strategy: Strategy, seeds: [u64; 2]) -> Vec<u8> {
    let out = Arc::new(std::sync::Mutex::new(Vec::new()));
    let out2 = Arc::clone(&out);
    let report = Execution::new(
        Config::new(Mode::Tsan11Rec(strategy))
            .with_seeds(seeds)
            .without_liveness(),
    )
    .run({
        move || {
            let log = Arc::new(Mutex::new(Vec::new()));
            (tagged_program(&log))();
            *out2.lock().unwrap() = log.lock().clone();
        }
    });
    assert!(report.outcome.is_ok(), "{strategy:?}: {:?}", report.outcome);
    let v = out.lock().unwrap().clone();
    v
}

fn switches(order: &[u8]) -> usize {
    order.windows(2).filter(|w| w[0] != w[1]).count()
}

#[test]
fn random_interleaves_finely() {
    let order = run_strategy(Strategy::Random, [1, 2]);
    assert_eq!(order.len(), 24);
    assert!(
        switches(&order) >= 8,
        "uniform random should context-switch often: {order:?}"
    );
}

#[test]
fn pct_runs_in_streaks() {
    let order = run_strategy(Strategy::Pct { switch_denom: 64 }, [1, 2]);
    assert_eq!(order.len(), 24);
    assert!(
        switches(&order) <= 8,
        "a hot-thread strategy should produce long runs: {order:?}"
    );
}

#[test]
fn delay_is_nearly_sequential() {
    let order = run_strategy(
        Strategy::Delay {
            budget: 2,
            denom: 32,
        },
        [1, 2],
    );
    assert_eq!(order.len(), 24);
    assert!(
        switches(&order) <= 6,
        "non-preemptive baseline + 2 delays: {order:?}"
    );
}

#[test]
fn slice_rotates_in_quanta() {
    let order = run_strategy(Strategy::Slice { quantum: 6 }, [1, 2]);
    assert_eq!(order.len(), 24);
    let s = switches(&order);
    assert!(
        (2..=12).contains(&s),
        "slices rotate but not per-op: {s} switches in {order:?}"
    );
}

#[test]
fn every_strategy_is_seed_deterministic() {
    for strategy in [
        Strategy::Random,
        Strategy::Pct { switch_denom: 8 },
        Strategy::Delay {
            budget: 3,
            denom: 8,
        },
        Strategy::Slice { quantum: 4 },
        Strategy::Queue,
    ] {
        let a = run_strategy(strategy, [9, 9]);
        let b = run_strategy(strategy, [9, 9]);
        if matches!(strategy, Strategy::Queue | Strategy::Slice { .. }) {
            // Physically-timed strategies need a recording to reproduce;
            // only the lengths are guaranteed here.
            assert_eq!(a.len(), b.len(), "{strategy:?}");
        } else {
            // Seed-derived strategies must reproduce the exact order —
            // except where the OS's physical timing affected thread
            // *creation*... which it cannot: tids are assigned inside
            // critical sections. The order is fully deterministic.
            assert_eq!(a, b, "{strategy:?}");
        }
    }
}

#[test]
fn strategies_explore_different_interleavings() {
    let rnd = run_strategy(Strategy::Random, [1, 2]);
    let pct = run_strategy(Strategy::Pct { switch_denom: 64 }, [1, 2]);
    let delay = run_strategy(
        Strategy::Delay {
            budget: 2,
            denom: 32,
        },
        [1, 2],
    );
    assert_ne!(rnd, pct);
    assert_ne!(rnd, delay);
}

#[test]
fn delay_strategy_records_and_replays() {
    let program = || {
        let a = Arc::new(Atomic::new(0u64));
        let handles: Vec<_> = (0..2)
            .map(|i| {
                let a = Arc::clone(&a);
                tsan11rec::thread::spawn(move || {
                    for _ in 0..6 {
                        let v = a.load(MemOrder::Relaxed);
                        a.store(v * 3 + i, MemOrder::Relaxed);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join();
        }
        tsan11rec::sys::println(&format!("v={}", a.load(MemOrder::SeqCst)));
    };
    let make_config = || {
        Config::new(Mode::Tsan11Rec(Strategy::Delay {
            budget: 3,
            denom: 8,
        }))
        .with_seeds([4, 2])
        .without_liveness()
    };
    let (rec, demo) = Execution::new(make_config()).record(program);
    assert!(rec.outcome.is_ok(), "{:?}", rec.outcome);
    let rep = Execution::new(make_config()).replay(&demo, program);
    assert!(rep.outcome.is_ok(), "{:?}", rep.outcome);
    assert_eq!(
        rep.console, rec.console,
        "delay demos replay like random ones"
    );
}
