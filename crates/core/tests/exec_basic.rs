//! End-to-end execution tests across all tool modes.

use std::sync::Arc;

use tsan11rec::{
    Atomic, Condvar, Config, Execution, MemOrder, Mode, Mutex, Outcome, Shared, Strategy,
};

fn modes() -> Vec<Mode> {
    vec![
        Mode::Native,
        Mode::Tsan11,
        Mode::Tsan11Rec(Strategy::Random),
        Mode::Tsan11Rec(Strategy::Queue),
        Mode::Tsan11Rec(Strategy::Pct { switch_denom: 8 }),
        Mode::Tsan11Rec(Strategy::Slice { quantum: 5 }),
    ]
}

fn config(mode: Mode) -> Config {
    Config::new(mode).with_seeds([11, 47]).without_liveness()
}

#[test]
fn trivial_program_completes_in_every_mode() {
    for mode in modes() {
        let report = Execution::new(config(mode)).run(|| {
            tsan11rec::sys::println("hello");
        });
        assert!(report.outcome.is_ok(), "{mode:?}: {:?}", report.outcome);
        assert_eq!(report.console_text(), "hello\n", "{mode:?}");
    }
}

#[test]
fn mutex_counter_is_exact_in_every_mode() {
    for mode in modes() {
        let report = Execution::new(config(mode)).run(|| {
            let counter = Arc::new(Mutex::new(0u64));
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let c = Arc::clone(&counter);
                    tsan11rec::thread::spawn(move || {
                        for _ in 0..25 {
                            *c.lock() += 1;
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join();
            }
            assert_eq!(*counter.lock(), 100);
        });
        assert!(report.outcome.is_ok(), "{mode:?}: {:?}", report.outcome);
        assert_eq!(
            report.races, 0,
            "{mode:?}: mutex-protected counter is race-free"
        );
    }
}

#[test]
fn atomic_counter_is_exact_in_every_mode() {
    for mode in modes() {
        let report = Execution::new(config(mode)).run(|| {
            let counter = Arc::new(Atomic::new(0u64));
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let c = Arc::clone(&counter);
                    tsan11rec::thread::spawn(move || {
                        for _ in 0..25 {
                            c.fetch_add(1, MemOrder::SeqCst);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join();
            }
            assert_eq!(counter.load(MemOrder::SeqCst), 100);
        });
        assert!(report.outcome.is_ok(), "{mode:?}: {:?}", report.outcome);
    }
}

#[test]
fn spawn_join_returns_values() {
    for mode in modes() {
        let report = Execution::new(config(mode)).run(|| {
            let h = tsan11rec::thread::spawn(|| 6 * 7);
            assert_eq!(h.join(), 42);
        });
        assert!(report.outcome.is_ok(), "{mode:?}");
    }
}

#[test]
fn message_passing_through_release_acquire_is_race_free() {
    for mode in modes() {
        let report = Execution::new(config(mode)).run(|| {
            let data = Arc::new(Shared::new("payload", 0u64));
            let flag = Arc::new(Atomic::new(false));
            let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
            let producer = tsan11rec::thread::spawn(move || {
                d2.write(99);
                f2.store(true, MemOrder::Release);
            });
            // Spin until the flag is visible.
            while !flag.load(MemOrder::Acquire) {}
            assert_eq!(data.read(), 99);
            producer.join();
        });
        assert!(report.outcome.is_ok(), "{mode:?}: {:?}", report.outcome);
        assert_eq!(
            report.races, 0,
            "{mode:?}: properly synchronized MP has no race"
        );
    }
}

#[test]
fn condvar_producer_consumer_works_in_every_mode() {
    for mode in modes() {
        let report = Execution::new(config(mode)).run(|| {
            let q = Arc::new(Mutex::new(Vec::<u32>::new()));
            let cv = Arc::new(Condvar::new());
            let (q2, cv2) = (Arc::clone(&q), Arc::clone(&cv));
            let producer = tsan11rec::thread::spawn(move || {
                for i in 0..5 {
                    q2.lock().push(i);
                    cv2.notify_one();
                }
            });
            let mut got = Vec::new();
            let mut guard = q.lock();
            while got.len() < 5 {
                while let Some(v) = guard.pop() {
                    got.push(v);
                }
                if got.len() < 5 {
                    // Timed wait: under controlled scheduling this stays
                    // enabled, so no lost-wakeup deadlock is possible.
                    let (g, _signaled) = cv.wait_timeout(guard, 1);
                    guard = g;
                }
            }
            drop(guard);
            producer.join();
            got.sort_unstable();
            assert_eq!(got, vec![0, 1, 2, 3, 4]);
        });
        assert!(report.outcome.is_ok(), "{mode:?}: {:?}", report.outcome);
    }
}

#[test]
fn controlled_modes_count_ticks() {
    let report = Execution::new(config(Mode::Tsan11Rec(Strategy::Random))).run(|| {
        let a = Atomic::new(0u32);
        for _ in 0..10 {
            a.fetch_add(1, MemOrder::SeqCst);
        }
    });
    assert!(
        report.ticks >= 10,
        "at least one tick per visible op, got {}",
        report.ticks
    );
    assert_eq!(report.ticks, report.visible_ops);
}

#[test]
fn program_panic_is_reported_not_propagated() {
    let report = Execution::new(config(Mode::Tsan11Rec(Strategy::Random))).run(|| {
        panic!("expected failure: injected bug");
    });
    match report.outcome {
        Outcome::Panicked(msg) => assert!(msg.contains("injected bug")),
        other => panic!("expected Panicked, got {other:?}"),
    }
}

#[test]
fn child_panic_fails_the_run() {
    let report = Execution::new(config(Mode::Tsan11Rec(Strategy::Queue))).run(|| {
        let h = tsan11rec::thread::spawn(|| {
            panic!("expected failure: child bug");
        });
        // The join may observe the failure as an unwinding abort; either
        // way the harness reports Panicked.
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || h.join()));
    });
    assert!(
        matches!(report.outcome, Outcome::Panicked(_)),
        "got {:?}",
        report.outcome
    );
}

#[test]
fn identical_seeds_reproduce_the_execution() {
    let run = |seeds: [u64; 2]| {
        let config = Config::new(Mode::Tsan11Rec(Strategy::Random))
            .with_seeds(seeds)
            .without_liveness();
        Execution::new(config).run(|| {
            let a = Arc::new(Atomic::new(0u64));
            let handles: Vec<_> = (0..3)
                .map(|i| {
                    let a = Arc::clone(&a);
                    tsan11rec::thread::spawn(move || {
                        for _ in 0..10 {
                            let v = a.load(MemOrder::Relaxed);
                            a.store(v * 2 + i, MemOrder::Relaxed);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join();
            }
            tsan11rec::sys::println(&format!("final={}", a.load(MemOrder::SeqCst)));
        })
    };
    let a = run([5, 6]);
    let b = run([5, 6]);
    assert_eq!(a.console, b.console, "same seeds, same behaviour");
    assert_eq!(a.ticks, b.ticks);
}

#[test]
fn liveness_rescheduler_prevents_starvation() {
    // One thread computes invisibly for a long time after being chosen;
    // without the rescheduler the other thread would be stalled the whole
    // time. With it, total wall time stays bounded.
    let config = Config::new(Mode::Tsan11Rec(Strategy::Random)).with_seeds([1, 2]); // liveness defaults to 10ms
    let report = Execution::new(config).run(|| {
        let h = tsan11rec::thread::spawn(|| {
            // Invisible compute with a real pause.
            tsan11rec::sys::sleep_ms(60);
        });
        let a = Atomic::new(0u32);
        for _ in 0..5 {
            a.fetch_add(1, MemOrder::SeqCst);
        }
        h.join();
    });
    assert!(report.outcome.is_ok(), "{:?}", report.outcome);
}
