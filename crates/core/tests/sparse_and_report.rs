//! Additional coverage: sparse-set edge cases through the live tool, and
//! report accessors.

use std::sync::Arc;

use tsan11rec::vos::{EchoPeer, Fd, Vos};
use tsan11rec::{Atomic, Config, Execution, MemOrder, Mode, SparseConfig, Strategy};

fn config(sparse: SparseConfig) -> Config {
    Config::new(Mode::Tsan11Rec(Strategy::Queue))
        .with_seeds([17, 23])
        .without_liveness()
        .with_sparse(sparse)
}

#[test]
fn pipe_rw_recorded_file_rw_not_under_paper_default() {
    let program = || {
        let (pr, pw) = tsan11rec::sys::pipe();
        tsan11rec::sys::write(pw, b"ipc").expect("pipe write");
        let mut buf = [0u8; 8];
        tsan11rec::sys::read(pr, &mut buf).expect("pipe read");

        let fd = Fd(tsan11rec::sys::open("/etc/motd", false).expect("file") as i32);
        tsan11rec::sys::read(fd, &mut buf).expect("file read");
    };
    let setup = |vos: &Vos| vos.add_file("/etc/motd", b"hello".to_vec());
    let (report, demo) = Execution::new(config(SparseConfig::paper_default()))
        .setup(setup)
        .record(program);
    assert!(report.outcome.is_ok(), "{:?}", report.outcome);

    let kinds: Vec<&str> = demo.syscalls.iter().map(|s| s.kind.as_str()).collect();
    assert_eq!(
        kinds.iter().filter(|k| **k == "write").count(),
        1,
        "the pipe write is recorded: {kinds:?}"
    );
    assert_eq!(
        kinds.iter().filter(|k| **k == "read").count(),
        1,
        "only the pipe read is recorded (file reads are sparse-skipped): {kinds:?}"
    );
}

#[test]
fn custom_sparse_set_with_and_without() {
    // Remove recv from the set: the recv runs live in both directions.
    let sparse = SparseConfig::paper_default()
        .without("recv")
        .without("send");
    let program = || {
        let fd = tsan11rec::sys::connect(Box::new(EchoPeer::new(0)));
        tsan11rec::sys::send(fd, b"abc").expect("send");
        let mut buf = [0u8; 8];
        let n = tsan11rec::sys::recv(fd, &mut buf).expect("recv");
        tsan11rec::sys::println(&format!("echoed {n}"));
    };
    let (rec, demo) = Execution::new(config(sparse.clone())).record(program);
    assert!(rec.outcome.is_ok(), "{:?}", rec.outcome);
    assert!(
        demo.syscalls
            .iter()
            .all(|s| s.kind != "recv" && s.kind != "send"),
        "excluded kinds must not appear: {:?}",
        demo.syscalls.iter().map(|s| &s.kind).collect::<Vec<_>>()
    );
    // Replay with the live echo peer present: unrecorded syscalls
    // re-execute and the behaviour still reproduces (the peer is
    // deterministic), so this is the sparse bet paying off.
    let rep = Execution::new(config(sparse)).replay(&demo, program);
    assert!(rep.outcome.is_ok(), "{:?}", rep.outcome);
    assert_eq!(rep.console, rec.console);
}

#[test]
fn tick_trace_filters_wait_markers() {
    let mut c = Config::new(Mode::Tsan11Rec(Strategy::Queue))
        .with_seeds([1, 2])
        .without_liveness();
    c = c.with_schedule_trace();
    let report = Execution::new(c).run(|| {
        let a = Atomic::new(0u32);
        a.store(1, MemOrder::SeqCst);
        a.store(2, MemOrder::SeqCst);
    });
    let raw = report.schedule_trace.len();
    let ticks = report.tick_trace();
    assert_eq!(raw, ticks.len() * 2, "one Wait() marker per Tick() entry");
    assert!(ticks.iter().all(|&(tid, _)| tid & 0x8000_0000 == 0));
    // Tick numbers are consecutive from 1.
    for (i, &(_, tick)) in ticks.iter().enumerate() {
        assert_eq!(tick, i as u64 + 1);
    }
}

#[test]
fn report_accessors_roundtrip() {
    let report = Execution::new(
        Config::new(Mode::Tsan11Rec(Strategy::Random))
            .with_seeds([9, 9])
            .without_liveness(),
    )
    .run(|| {
        tsan11rec::sys::println("alpha");
        let s = Arc::new(tsan11rec::Shared::new("racy", 0u64));
        let s2 = Arc::clone(&s);
        let t = tsan11rec::thread::spawn(move || s2.write(1));
        s.write(2);
        t.join();
    });
    assert!(report.outcome.is_ok());
    assert!(report.racy());
    assert_eq!(report.console_text(), "alpha\n");
    assert!(report.desync().is_none());
    assert!(report.visible_ops >= 4);
}

#[test]
fn epoll_wait_is_refused_like_the_paper_says() {
    // §5.2: tsan11rec cannot handle epoll_wait; httpd must switch to
    // poll. Our vOS surfaces that as ENOTSUP.
    let report = Execution::new(config(SparseConfig::paper_default())).run(|| {
        let r = tsan11rec::sys::epoll_wait();
        assert_eq!(r, Err(tsan11rec::Errno::ENOTSUP));
    });
    assert!(report.outcome.is_ok(), "{:?}", report.outcome);
}

#[test]
fn rwlock_works_under_controlled_scheduling() {
    for strategy in [Strategy::Random, Strategy::Queue] {
        let report = Execution::new(
            Config::new(Mode::Tsan11Rec(strategy))
                .with_seeds([21, 34])
                .without_liveness(),
        )
        .run(|| {
            let lock = Arc::new(tsan11rec::RwLock::new(0u64));
            let readers: Vec<_> = (0..3)
                .map(|_| {
                    let lock = Arc::clone(&lock);
                    tsan11rec::thread::spawn(move || {
                        let mut sum = 0;
                        for _ in 0..5 {
                            sum += *lock.read();
                        }
                        sum
                    })
                })
                .collect();
            let writer = {
                let lock = Arc::clone(&lock);
                tsan11rec::thread::spawn(move || {
                    for _ in 0..5 {
                        *lock.write() += 1;
                    }
                })
            };
            for r in readers {
                let _ = r.join();
            }
            writer.join();
            assert_eq!(*lock.read(), 5);
        });
        assert!(report.outcome.is_ok(), "{strategy:?}: {:?}", report.outcome);
        assert_eq!(report.races, 0, "{strategy:?}: rwlock data is protected");
    }
}

#[test]
fn barrier_works_under_controlled_scheduling_and_replay() {
    let program = || {
        let b = Arc::new(tsan11rec::Barrier::new(3));
        let counter = Arc::new(tsan11rec::Atomic::new(0u32));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let b = Arc::clone(&b);
                let c = Arc::clone(&counter);
                tsan11rec::thread::spawn(move || {
                    c.fetch_add(1, tsan11rec::MemOrder::SeqCst);
                    b.wait();
                    // After the barrier, everyone must see all arrivals.
                    assert_eq!(c.load(tsan11rec::MemOrder::SeqCst), 3);
                })
            })
            .collect();
        counter.fetch_add(1, tsan11rec::MemOrder::SeqCst);
        b.wait();
        assert_eq!(counter.load(tsan11rec::MemOrder::SeqCst), 3);
        for h in handles {
            h.join();
        }
    };
    let make_config = || {
        Config::new(Mode::Tsan11Rec(Strategy::Queue))
            .with_seeds([3, 7])
            .without_liveness()
    };
    let (rec, demo) = Execution::new(make_config()).record(program);
    assert!(rec.outcome.is_ok(), "{:?}", rec.outcome);
    let rep = Execution::new(make_config()).replay(&demo, program);
    assert!(rep.outcome.is_ok(), "{:?}", rep.outcome);
}

#[test]
fn delay_strategy_runs_programs_end_to_end() {
    let report = Execution::new(
        Config::new(Mode::Tsan11Rec(Strategy::Delay {
            budget: 4,
            denom: 8,
        }))
        .with_seeds([6, 28])
        .without_liveness(),
    )
    .run(|| {
        let c = Arc::new(Atomic::new(0u64));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let c = Arc::clone(&c);
                tsan11rec::thread::spawn(move || {
                    for _ in 0..10 {
                        c.fetch_add(1, MemOrder::SeqCst);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join();
        }
        assert_eq!(c.load(MemOrder::SeqCst), 30);
    });
    assert!(report.outcome.is_ok(), "{:?}", report.outcome);
}
