//! The execution runtime: per-thread context, the visible-operation
//! protocol, and the registries shared by the instrumented primitives.
//!
//! This module plays the role of tsan11's runtime library: every
//! instrumented primitive (`Atomic`, `Shared`, `Mutex`, `Condvar`,
//! `thread`, `sys`) funnels through a [`Runtime`] held in thread-local
//! storage. Visible operations are bracketed by [`Runtime::enter`] /
//! [`Runtime::exit`] — the `Wait()`/`Tick()` pair of §3 in controlled
//! modes, a signal-delivery point otherwise.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering as AOrd};
use std::sync::Arc;

use parking_lot::Mutex as PlMutex;
use srr_analysis::{SyncEvent, SyncTrace, SyncTraceBuilder};
use srr_memmodel::{AtomicCell, Chooser, ScFenceClock, ThreadView};
use srr_obs::{EventKind, Obs, ObsOp, StreamId, SysKind};
use srr_racedet::RaceDetector;
use srr_replay::{HardDesync, SyscallRecord};
use srr_vclock::VectorClock;
use srr_vos::{Fd, Vos};

use crate::config::{Config, Mode, RecordMode};
use crate::ids::{AtomicId, CondId, MutexId, Tid};
use crate::prng::Prng;
use crate::sched::{FailReason, SchedAbort, Scheduler};

thread_local! {
    static CTX: RefCell<Option<ThreadCtx>> = const { RefCell::new(None) };
}

/// Per-OS-thread instrumentation context.
pub(crate) struct ThreadCtx {
    pub rt: Arc<Runtime>,
    pub tid: Tid,
    pub view: ThreadView,
}

/// Installs the context for the current OS thread.
pub(crate) fn install_ctx(rt: Arc<Runtime>, tid: Tid, view: ThreadView) {
    CTX.with(|c| {
        let mut slot = c.borrow_mut();
        assert!(slot.is_none(), "thread already has an execution context");
        *slot = Some(ThreadCtx { rt, tid, view });
    });
}

/// Removes the context (thread exit).
pub(crate) fn clear_ctx() {
    CTX.with(|c| {
        c.borrow_mut().take();
    });
}

/// Runs `f` with the current context; `None` context means the caller is
/// outside any execution (native fallback paths use this).
pub(crate) fn with_ctx<R>(f: impl FnOnce(&mut ThreadCtx) -> R) -> Option<R> {
    CTX.with(|c| c.borrow_mut().as_mut().map(f))
}

/// The current runtime and tid without holding the context borrow —
/// use when user code (signal handlers) may run re-entrantly.
pub(crate) fn current_rt() -> Option<(Arc<Runtime>, Tid)> {
    CTX.with(|c| {
        c.borrow()
            .as_ref()
            .map(|ctx| (Arc::clone(&ctx.rt), ctx.tid))
    })
}

pub(crate) struct MutexRec {
    pub holder: Option<Tid>,
    /// Clock released by the last unlocker; acquired on lock.
    pub sync: VectorClock,
    /// Contention statistic: failed trylock attempts.
    pub contended: u64,
}

pub(crate) struct CondRec {
    /// `(tid, timed)` waiters, in arrival order.
    pub waiters: Vec<(Tid, bool)>,
    /// Threads woken by a signal/broadcast that have not yet consumed the
    /// fact (distinguishes signal from timeout on timed waits).
    pub signaled: Vec<Tid>,
}

pub(crate) struct MemState {
    pub cells: Vec<AtomicCell>,
    pub sc: ScFenceClock,
}

/// Syscall-stream side of the record/replay engine (the scheduling side
/// lives in [`Scheduler`]).
pub(crate) enum SysRec {
    Off,
    Record(Vec<SyscallRecord>),
    Replay { recs: Vec<SyscallRecord>, at: usize },
}

/// Everything shared by the threads of one execution.
pub(crate) struct Runtime {
    pub config: Config,
    pub sched: Option<Scheduler>,
    pub vos: Arc<Vos>,
    pub mem: PlMutex<MemState>,
    pub racedet: PlMutex<RaceDetector>,
    /// Choice PRNG for uncontrolled (tsan11) mode, where there is no
    /// scheduler to draw from.
    pub free_prng: PlMutex<Prng>,
    pub mutexes: PlMutex<Vec<MutexRec>>,
    pub conds: PlMutex<Vec<CondRec>>,
    pub handlers: PlMutex<HashMap<i32, Arc<dyn Fn() + Send + Sync>>>,
    pub sysrec: PlMutex<SysRec>,
    /// Final clocks of finished threads, absorbed by joiners.
    pub final_clocks: PlMutex<HashMap<u32, VectorClock>>,
    /// Pending signals per tid for uncontrolled modes.
    pub free_pending: PlMutex<HashMap<u32, Vec<i32>>>,
    /// Finished-thread set for uncontrolled joins.
    pub free_finished: PlMutex<HashMap<u32, bool>>,
    /// Tid allocator for uncontrolled modes (controlled modes allocate
    /// through the scheduler).
    pub next_tid: AtomicU32,
    /// OS join handles of every spawned thread, drained by the harness.
    pub os_handles: PlMutex<Vec<std::thread::JoinHandle<()>>>,
    pub stop_liveness: AtomicBool,
    pub panic_note: PlMutex<Option<String>>,
    /// Free-mode visible-operation counter (controlled modes count ticks).
    pub free_ops: AtomicU32,
    /// Structured sync-event trace builder (`Config::trace_sync`); `None`
    /// when tracing is off.
    pub sync_trace: PlMutex<Option<SyncTraceBuilder>>,
    /// Observability collector (`Config::trace`); `None` when off, so
    /// every hook below is a single `Option` check.
    pub obs: Option<Arc<Obs>>,
    /// Plain-access sites that consulted the access plan (plan armed
    /// and `Shared`/`SharedArray` constructed).
    pub plan_sites: AtomicU64,
    /// `PlainAccess` events suppressed from the trace ring by the plan.
    pub plan_filtered: AtomicU64,
    /// Labels the plan had never seen (fail-open recording) — nonempty
    /// means the plan is stale relative to the workload.
    pub plan_unplanned: PlMutex<std::collections::BTreeSet<String>>,
}

impl Runtime {
    pub fn new(config: Config, vos: Arc<Vos>, seeds: [u64; 2]) -> Arc<Runtime> {
        let sched = config
            .mode
            .strategy()
            .map(|s| Scheduler::new(s, Prng::from_seeds(seeds)));
        let obs = config.trace.map(|spec| Arc::new(Obs::new(spec)));
        if let (Some(sched), Some(obs)) = (&sched, &obs) {
            sched.enable_obs(Arc::clone(obs));
        }
        let mut racedet = RaceDetector::new();
        racedet.set_reporting(config.report_races);
        Arc::new(Runtime {
            config,
            sched,
            vos,
            mem: PlMutex::new(MemState {
                cells: Vec::new(),
                sc: ScFenceClock::new(),
            }),
            racedet: PlMutex::new(racedet),
            free_prng: PlMutex::new(Prng::from_seeds([seeds[1], seeds[0]])),
            mutexes: PlMutex::new(Vec::new()),
            conds: PlMutex::new(Vec::new()),
            handlers: PlMutex::new(HashMap::new()),
            sysrec: PlMutex::new(SysRec::Off),
            final_clocks: PlMutex::new(HashMap::new()),
            free_pending: PlMutex::new(HashMap::new()),
            free_finished: PlMutex::new(HashMap::new()),
            next_tid: AtomicU32::new(1),
            os_handles: PlMutex::new(Vec::new()),
            stop_liveness: AtomicBool::new(false),
            panic_note: PlMutex::new(None),
            free_ops: AtomicU32::new(0),
            sync_trace: PlMutex::new(None),
            obs,
            plan_sites: AtomicU64::new(0),
            plan_filtered: AtomicU64::new(0),
            plan_unplanned: PlMutex::new(std::collections::BTreeSet::new()),
        })
    }

    /// Snapshot of the access-plan counters for the final report.
    pub fn plan_counters(&self) -> crate::report::PlanCounters {
        crate::report::PlanCounters {
            sites: self.plan_sites.load(AOrd::Relaxed),
            filtered_events: self.plan_filtered.load(AOrd::Relaxed),
            unplanned: self.plan_unplanned.lock().iter().cloned().collect(),
        }
    }

    pub fn mode(&self) -> Mode {
        self.config.mode
    }

    pub fn sched(&self) -> &Scheduler {
        self.sched
            .as_ref()
            .expect("controlled mode has a scheduler")
    }

    /// Opens a visible operation: `Wait()` plus signal-handler entries
    /// (each handler entry is its own critical section, §3.2/§4.3).
    pub fn enter(self: &Arc<Self>, tid: Tid) {
        match self.config.mode {
            Mode::Native | Mode::Tsan11 => {
                // Uncontrolled: signals are handled at operation
                // boundaries, best-effort.
                loop {
                    let signo = self.free_pending.lock().get_mut(&tid.0).and_then(Vec::pop);
                    match signo {
                        Some(signo) => self.run_handler(signo),
                        None => break,
                    }
                }
            }
            Mode::Tsan11Rec(_) => loop {
                self.sched().wait(tid);
                if let Some(signo) = self.sched().take_pending_signal(tid) {
                    // The handler entry is the visible operation: close
                    // this critical section and run the handler, whose own
                    // atomic operations form further critical sections.
                    self.sched().tick_op(tid, ObsOp::Signal);
                    self.run_handler(signo);
                    continue;
                }
                break;
            },
        }
    }

    /// Closes a visible operation: delivers due environment signals and
    /// performs `Tick()`.
    pub fn exit(self: &Arc<Self>, tid: Tid) {
        self.exit_op(tid, ObsOp::Other);
    }

    /// [`Runtime::exit`] with the visible-op kind attached to the
    /// closing `Tick()` for the observability trace.
    pub fn exit_op(self: &Arc<Self>, tid: Tid, op: ObsOp) {
        match self.config.mode {
            Mode::Native | Mode::Tsan11 => {
                self.free_ops.fetch_add(1, AOrd::Relaxed);
                self.pump_vos_signals_uncontrolled();
            }
            Mode::Tsan11Rec(strategy) => {
                self.pump_vos_signals_controlled();
                self.sched().tick_op(tid, op);
                if matches!(strategy, crate::config::Strategy::Slice { .. }) {
                    // rr-style full sequentialization: do not run even
                    // invisible code until scheduled again.
                    self.sched().hold(tid);
                }
            }
        }
    }

    fn pump_vos_signals_controlled(&self) {
        let due = self.vos.take_due_signals();
        if due.is_empty() {
            return;
        }
        let target = Tid(self.config.signal_target);
        for signo in due {
            // During replay the scheduler ignores these; the SIGNAL
            // stream raises them instead.
            self.sched().deliver_signal(target, signo, true);
        }
    }

    fn pump_vos_signals_uncontrolled(&self) {
        let due = self.vos.take_due_signals();
        if due.is_empty() {
            return;
        }
        let target = self.config.signal_target;
        self.free_pending
            .lock()
            .entry(target)
            .or_default()
            .extend(due);
    }

    fn run_handler(self: &Arc<Self>, signo: i32) {
        let handler = self.handlers.lock().get(&signo).cloned();
        if let Some(h) = handler {
            h();
        }
    }

    /// Registers a signal handler (itself a visible operation — callers
    /// wrap this in `enter`/`exit`).
    pub fn set_handler(&self, signo: i32, f: Arc<dyn Fn() + Send + Sync>) {
        self.handlers.lock().insert(signo, f);
    }

    // ------------------------------------------------------------------
    // Registries
    // ------------------------------------------------------------------

    pub fn register_atomic(&self, init: u64, view: &ThreadView) -> AtomicId {
        let mut mem = self.mem.lock();
        let id = AtomicId(mem.cells.len() as u32);
        mem.cells.push(AtomicCell::with_capacity(
            init,
            view,
            self.config.history_cap,
        ));
        id
    }

    pub fn register_mutex(&self) -> MutexId {
        let mut ms = self.mutexes.lock();
        let id = MutexId(ms.len() as u32);
        ms.push(MutexRec {
            holder: None,
            sync: VectorClock::new(),
            contended: 0,
        });
        id
    }

    pub fn register_cond(&self) -> CondId {
        let mut cs = self.conds.lock();
        let id = CondId(cs.len() as u32);
        cs.push(CondRec {
            waiters: Vec::new(),
            signaled: Vec::new(),
        });
        id
    }

    /// Attempts logical mutex acquisition (the "native trylock" of
    /// Figure 4 plus the happens-before transfer). Returns whether the
    /// mutex was acquired.
    pub fn mutex_try_acquire(&self, m: MutexId, tid: Tid, view: &mut ThreadView) -> bool {
        let mut ms = self.mutexes.lock();
        let rec = &mut ms[m.0 as usize];
        if rec.holder.is_none() {
            rec.holder = Some(tid);
            view.clock.join(&rec.sync);
            true
        } else {
            rec.contended += 1;
            false
        }
    }

    /// Logical mutex release plus the release-clock publication.
    pub fn mutex_release(&self, m: MutexId, tid: Tid, view: &ThreadView) {
        let mut ms = self.mutexes.lock();
        let rec = &mut ms[m.0 as usize];
        debug_assert_eq!(rec.holder, Some(tid), "unlock by non-holder");
        rec.holder = None;
        rec.sync.join(&view.clock);
    }

    // ------------------------------------------------------------------
    // Sync-event tracing (srr-analysis input)
    // ------------------------------------------------------------------

    /// Switches sync-event tracing on (start of an execution).
    pub fn enable_sync_trace(&self) {
        *self.sync_trace.lock() = Some(SyncTraceBuilder::new());
    }

    /// Current scheduler tick for event stamping (0 when uncontrolled).
    pub fn sync_tick(&self) -> u64 {
        match self.config.mode {
            Mode::Tsan11Rec(_) => self.sched().tick_value(),
            _ => 0,
        }
    }

    /// Appends a sync event when tracing is enabled. `make` receives the
    /// current tick; computing it locks scheduler state, so callers must
    /// not hold runtime locks (`mem`, `mutexes`, `conds`) across this.
    pub fn sync_event(&self, make: impl FnOnce(u64) -> SyncEvent) {
        if self.sync_trace.lock().is_none() {
            return;
        }
        let ev = make(self.sync_tick());
        if let Some(b) = self.sync_trace.lock().as_mut() {
            b.push(ev);
        }
    }

    /// Records `label` for a mutex in the trace's label table.
    pub fn sync_mutex_label(&self, id: MutexId, label: Option<&str>) {
        if let Some(b) = self.sync_trace.lock().as_mut() {
            b.set_mutex_label(id.0, label.map(str::to_owned));
        }
    }

    /// Interns a location label; `None` when tracing is off.
    pub fn sync_loc(&self, label: &str) -> Option<u32> {
        self.sync_trace.lock().as_mut().map(|b| b.loc_id(label))
    }

    /// Takes the finished trace (end of an execution).
    pub fn take_sync_trace(&self) -> Option<SyncTrace> {
        self.sync_trace.lock().take().map(SyncTraceBuilder::finish)
    }

    /// The weak-memory choice source: the scheduler PRNG in controlled
    /// modes (replayable from the demo header), a free-running PRNG in
    /// tsan11 mode.
    pub fn chooser(self: &Arc<Self>) -> RtChooser {
        RtChooser {
            rt: Arc::clone(self),
        }
    }

    // ------------------------------------------------------------------
    // Syscall record/replay (§4.4)
    // ------------------------------------------------------------------

    pub fn set_record_mode(&self, mode: RecordMode, replay_recs: Vec<SyscallRecord>) {
        let mut r = self.sysrec.lock();
        *r = match mode {
            RecordMode::Off => SysRec::Off,
            RecordMode::Record => SysRec::Record(Vec::new()),
            RecordMode::Replay => SysRec::Replay {
                recs: replay_recs,
                at: 0,
            },
        };
    }

    /// Whether syscall `kind` on `fd` must be recorded under the sparse
    /// configuration (§4.4's kind set plus fd classification).
    pub fn should_record_syscall(&self, kind: &str, fd: Option<Fd>) -> bool {
        if matches!(*self.sysrec.lock(), SysRec::Off) {
            return false;
        }
        let sparse = &self.config.sparse;
        if kind == "ioctl" && sparse.ignore_ioctl {
            return false;
        }
        if !sparse.records_kind(kind) {
            return false;
        }
        if kind == "read" || kind == "write" {
            // The paper records pipe read/write but not file read/write;
            // socket reads behave like recv.
            if let Some(fd) = fd {
                if self.vos.fd_is_pipe(fd) {
                    return sparse.record_pipe_rw;
                }
                if self.vos.fd_is_socket(fd) {
                    return true;
                }
                return sparse.record_file_rw;
            }
        }
        true
    }

    /// Appends a syscall record (record mode).
    pub fn record_syscall(&self, tid: Tid, kind: &str, ret: i64, errno: i32, bufs: Vec<Vec<u8>>) {
        let tick = match self.config.mode {
            Mode::Tsan11Rec(_) => self.sched().tick_value(),
            _ => 0,
        };
        let mut r = self.sysrec.lock();
        if let SysRec::Record(recs) = &mut *r {
            let seq = recs.len() as u64;
            recs.push(SyscallRecord {
                seq,
                tid: tid.0,
                tick,
                kind: kind.to_owned(),
                ret,
                errno,
                bufs,
            });
            drop(r);
            if let Some(obs) = &self.obs {
                obs.thread_event(
                    tid.0,
                    tick,
                    EventKind::SyscallRecord {
                        kind: SysKind::from_name(kind),
                        seq,
                    },
                );
            }
        }
    }

    /// Pops the next recorded syscall (replay mode); hard-desynchronises
    /// if the kind does not match.
    ///
    /// # Panics
    ///
    /// Panics with [`SchedAbort`] on desynchronisation.
    pub fn replay_syscall(&self, tid: Tid, kind: &str) -> Option<SyscallRecord> {
        enum Next {
            NotReplaying,
            Underrun(u64),
            Mismatch(String, u64),
            Hit(SyscallRecord),
        }
        let next = {
            let mut r = self.sysrec.lock();
            match &mut *r {
                SysRec::Replay { recs, at } => match recs.get(*at) {
                    None => Next::Underrun(recs.len() as u64),
                    Some(rec) if rec.kind != kind => Next::Mismatch(rec.kind.clone(), *at as u64),
                    Some(rec) => {
                        let rec = rec.clone();
                        *at += 1;
                        Next::Hit(rec)
                    }
                },
                _ => Next::NotReplaying,
            }
        };
        match next {
            Next::NotReplaying => None,
            Next::Hit(rec) => {
                if let Some(obs) = &self.obs {
                    let tick = match self.config.mode {
                        Mode::Tsan11Rec(_) => self.sched().tick_value(),
                        _ => 0,
                    };
                    obs.thread_event(
                        tid.0,
                        tick,
                        EventKind::SyscallReplay {
                            kind: SysKind::from_name(kind),
                            seq: rec.seq,
                        },
                    );
                    obs.thread_event(
                        tid.0,
                        tick,
                        EventKind::StreamCursor {
                            stream: StreamId::Syscall,
                            offset: rec.seq + 1,
                        },
                    );
                }
                Some(rec)
            }
            Next::Underrun(at) => self.hard_desync_at(
                "syscall-underrun",
                kind,
                "SYSCALL stream exhausted",
                "SYSCALL",
                at,
            ),
            Next::Mismatch(expected, at) => {
                self.hard_desync_at("syscall-kind", kind, &expected, "SYSCALL", at)
            }
        }
    }

    /// Takes the recorded syscall stream (end of a record run).
    pub fn take_syscall_recording(&self) -> Vec<SyscallRecord> {
        let mut r = self.sysrec.lock();
        match &mut *r {
            SysRec::Record(recs) => std::mem::take(recs),
            _ => Vec::new(),
        }
    }

    /// Current SYSCALL-stream replay cursor (entries consumed so far);
    /// 0 when not replaying.
    pub fn replay_cursor(&self) -> u64 {
        match &*self.sysrec.lock() {
            SysRec::Replay { at, .. } => *at as u64,
            _ => 0,
        }
    }

    /// Recorded-but-unconsumed replay entries (diagnostic).
    pub fn replay_leftover(&self) -> usize {
        match &*self.sysrec.lock() {
            SysRec::Replay { recs, at } => recs.len().saturating_sub(*at),
            _ => 0,
        }
    }

    /// Raises a hard desynchronisation: fails the execution and unwinds
    /// the calling thread. `stream`/`offset` name the demo stream entry
    /// where replay gave up (empty stream when no stream is implicated).
    pub fn hard_desync_at(
        &self,
        constraint: &str,
        actual: &str,
        expected: &str,
        stream: &str,
        offset: u64,
    ) -> ! {
        let tick = match self.config.mode {
            Mode::Tsan11Rec(_) => self.sched().tick_value(),
            _ => 0,
        };
        let mut desync = HardDesync::new(tick, constraint, expected, actual);
        if !stream.is_empty() {
            desync = desync.with_stream(stream, offset);
        }
        if let Some(obs) = &self.obs {
            obs.sched_event(u32::MAX, tick, EventKind::Desync);
        }
        if let Some(sched) = &self.sched {
            sched.fail(FailReason::Desync(desync.clone()));
        }
        std::panic::panic_any(SchedAbort(FailReason::Desync(desync)))
    }

    /// Total visible operations: ticks in controlled modes, the op counter
    /// otherwise.
    pub fn visible_ops(&self) -> u64 {
        match self.config.mode {
            Mode::Tsan11Rec(_) => self.sched().total_ticks(),
            _ => u64::from(self.free_ops.load(AOrd::Relaxed)),
        }
    }
}

/// [`Chooser`] adapter routing weak-memory choices to the right PRNG.
pub(crate) struct RtChooser {
    rt: Arc<Runtime>,
}

impl Chooser for RtChooser {
    fn choose(&mut self, n: usize) -> usize {
        if n <= 1 {
            // Do not burn a draw on forced choices: keeps PRNG alignment
            // independent of degenerate candidate sets.
            return 0;
        }
        match self.rt.config.mode {
            Mode::Tsan11Rec(_) => self.rt.sched().draw(n),
            _ => self.rt.free_prng.lock().below(n),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{SparseConfig, Strategy};
    use srr_vos::VosConfig;

    fn rt(mode: Mode) -> Arc<Runtime> {
        Runtime::new(
            Config::new(mode).with_seeds([1, 2]),
            Arc::new(Vos::new(VosConfig::deterministic(1))),
            [1, 2],
        )
    }

    #[test]
    fn registries_hand_out_dense_ids() {
        let rt = rt(Mode::Tsan11);
        let v = ThreadView::new(0);
        assert_eq!(rt.register_atomic(0, &v), AtomicId(0));
        assert_eq!(rt.register_atomic(0, &v), AtomicId(1));
        assert_eq!(rt.register_mutex(), MutexId(0));
        assert_eq!(rt.register_cond(), CondId(0));
    }

    #[test]
    fn mutex_acquire_release_transfers_clocks() {
        let rt = rt(Mode::Tsan11);
        let m = rt.register_mutex();
        let mut a = ThreadView::new(0);
        let mut b = ThreadView::new(1);
        a.tick();

        assert!(rt.mutex_try_acquire(m, Tid(0), &mut a));
        assert!(!rt.mutex_try_acquire(m, Tid(1), &mut b), "held");
        rt.mutex_release(m, Tid(0), &a);
        assert!(rt.mutex_try_acquire(m, Tid(1), &mut b));
        assert!(
            b.clock.get(0) >= a.clock.get(0),
            "hb transferred through the mutex"
        );
        assert_eq!(rt.mutexes.lock()[0].contended, 1);
    }

    #[test]
    fn sparse_decision_follows_kind_set_and_fd_class() {
        let rt = rt(Mode::Tsan11Rec(Strategy::Random));
        rt.set_record_mode(RecordMode::Record, Vec::new());
        assert!(rt.should_record_syscall("recv", None));
        assert!(
            !rt.should_record_syscall("open", None),
            "open is not in the paper set"
        );

        let (pr, _pw) = rt.vos.pipe();
        assert!(
            rt.should_record_syscall("read", Some(pr)),
            "pipe reads are recorded"
        );
        rt.vos.add_file("/f", vec![1, 2, 3]);
        let f = Fd(rt.vos.open("/f", false).unwrap() as i32);
        assert!(
            !rt.should_record_syscall("read", Some(f)),
            "file reads are not"
        );
    }

    #[test]
    fn ignore_ioctl_suppresses_recording() {
        let mut config = Config::new(Mode::Tsan11Rec(Strategy::Queue)).with_seeds([1, 2]);
        config.sparse = SparseConfig::games();
        let rt = Runtime::new(
            config,
            Arc::new(Vos::new(VosConfig::deterministic(1))),
            [1, 2],
        );
        rt.set_record_mode(RecordMode::Record, Vec::new());
        assert!(!rt.should_record_syscall("ioctl", None));
    }

    #[test]
    fn record_mode_off_records_nothing() {
        let rt = rt(Mode::Tsan11Rec(Strategy::Random));
        assert!(!rt.should_record_syscall("recv", None));
        rt.record_syscall(Tid(0), "recv", 1, 0, vec![]);
        assert!(rt.take_syscall_recording().is_empty());
    }

    #[test]
    fn syscall_record_and_replay_roundtrip() {
        let rt = rt(Mode::Tsan11Rec(Strategy::Random));
        rt.set_record_mode(RecordMode::Record, Vec::new());
        // Recording needs a critical section for the tick value.
        rt.sched().wait(Tid::MAIN);
        rt.record_syscall(Tid::MAIN, "recv", 5, 0, vec![b"hello".to_vec()]);
        rt.sched().tick(Tid::MAIN);
        let recs = rt.take_syscall_recording();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].kind, "recv");
        assert_eq!(recs[0].tick, 1);

        rt.set_record_mode(RecordMode::Replay, recs);
        let rec = rt.replay_syscall(Tid::MAIN, "recv").unwrap();
        assert_eq!(rec.ret, 5);
        assert_eq!(rec.bufs[0], b"hello");
        assert_eq!(rt.replay_leftover(), 0);
    }

    #[test]
    fn replay_kind_mismatch_is_hard_desync() {
        let rt = rt(Mode::Tsan11Rec(Strategy::Random));
        let recs = vec![SyscallRecord {
            seq: 0,
            tid: 0,
            tick: 1,
            kind: "recv".into(),
            ret: 0,
            errno: 0,
            bufs: vec![],
        }];
        rt.set_record_mode(RecordMode::Replay, recs);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            rt.replay_syscall(Tid::MAIN, "send");
        }))
        .unwrap_err();
        let abort = err.downcast_ref::<SchedAbort>().expect("SchedAbort");
        match &abort.0 {
            FailReason::Desync(d) => {
                assert_eq!(d.constraint, "syscall-kind");
                assert_eq!(d.expected, "recv");
                assert_eq!(d.actual, "send");
                assert_eq!(d.stream, "SYSCALL");
                assert_eq!(d.offset, 0);
            }
            other => panic!("expected desync, got {other:?}"),
        }
    }

    #[test]
    fn replay_underrun_is_hard_desync() {
        let rt = rt(Mode::Tsan11Rec(Strategy::Random));
        rt.set_record_mode(RecordMode::Replay, Vec::new());
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            rt.replay_syscall(Tid::MAIN, "recv");
        }))
        .unwrap_err();
        assert!(err.downcast_ref::<SchedAbort>().is_some());
    }

    #[test]
    fn chooser_does_not_draw_on_singletons() {
        let rt = rt(Mode::Tsan11);
        let before = rt.free_prng.lock().draws();
        let mut ch = rt.chooser();
        assert_eq!(ch.choose(1), 0);
        assert_eq!(rt.free_prng.lock().draws(), before, "no draw for n=1");
        let _ = ch.choose(3);
        assert_eq!(rt.free_prng.lock().draws(), before + 1);
    }

    #[test]
    fn ctx_install_and_clear() {
        let rt = rt(Mode::Tsan11);
        install_ctx(Arc::clone(&rt), Tid(0), ThreadView::new(0));
        assert!(with_ctx(|c| c.tid).is_some());
        assert!(current_rt().is_some());
        clear_ctx();
        assert!(with_ctx(|c| c.tid).is_none());
    }
}
