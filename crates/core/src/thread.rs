//! Instrumented thread creation and joining (§3.2's thread management).
//!
//! `ThreadNew`, `ThreadJoin` and `ThreadDelete` are visible operations:
//! they change the scheduler's state. Creation synchronizes parent→child
//! (the child's initial clock absorbs the parent's); joining synchronizes
//! child→parent (the parent absorbs the child's final clock).

use std::sync::atomic::Ordering as AOrd;
use std::sync::Arc;

use parking_lot::Mutex as PlMutex;
use srr_memmodel::ThreadView;

use crate::ids::Tid;
use crate::runtime::{clear_ctx, current_rt, install_ctx, with_ctx, Runtime};
use crate::sched::{FailReason, SchedAbort};

/// Handle to an instrumented thread; joining is a visible operation.
///
/// The underlying OS thread handle is owned by the runtime (the execution
/// harness waits for every OS thread at the end of the run), so dropping a
/// `JoinHandle` detaches only logically.
pub struct JoinHandle<T> {
    target: Tid,
    result: Arc<PlMutex<Option<T>>>,
}

/// Spawns an instrumented thread.
///
/// # Panics
///
/// Panics if called outside an execution (use `std::thread::spawn` for
/// plain threads).
pub fn spawn<T, F>(f: F) -> JoinHandle<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let (rt, tid) = current_rt().expect("tsan11rec::thread::spawn outside an execution");

    // ThreadNew: a visible operation in the parent.
    rt.enter(tid);
    let (child_tid, parent_clock) = with_ctx(|ctx| {
        let child = if ctx.rt.mode().is_controlled() {
            ctx.rt.sched().thread_new()
        } else {
            Tid(ctx.rt.next_tid.fetch_add(1, AOrd::Relaxed))
        };
        // FastTrack fork rule: the child receives the parent's clock and
        // the parent's own component increments *afterwards*, so the
        // parent's post-spawn accesses are unordered with the child.
        let clock = ctx.view.clock.clone();
        ctx.view.tick();
        (child, clock)
    })
    .expect("context present");
    rt.sync_event(|tick| srr_analysis::SyncEvent::ThreadSpawn {
        tid: tid.0,
        child: child_tid.0,
        tick,
    });
    rt.exit(tid);

    let result = Arc::new(PlMutex::new(None));
    let result2 = Arc::clone(&result);
    let rt2 = Arc::clone(&rt);
    let os = std::thread::spawn(move || {
        let mut view = ThreadView::new(child_tid.index());
        view.clock.join(&parent_clock); // creation synchronizes
        install_ctx(Arc::clone(&rt2), child_tid, view);
        let rt3 = Arc::clone(&rt2);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            if let crate::config::Mode::Tsan11Rec(crate::config::Strategy::Slice { .. }) =
                rt3.mode()
            {
                // rr-style sequentialization starts at birth: the thread
                // may not run even its first invisible code until
                // scheduled.
                rt3.sched().hold(child_tid);
            }
            f()
        }));
        match outcome {
            Ok(value) => {
                *result2.lock() = Some(value);
                finish_thread(&rt2, child_tid);
            }
            Err(payload) => handle_panic(&rt2, child_tid, payload),
        }
        clear_ctx();
    });
    rt.os_handles.lock().push(os);

    JoinHandle {
        target: child_tid,
        result,
    }
}

/// The thread's final visible operation (`ThreadDelete`).
pub(crate) fn finish_thread(rt: &Arc<Runtime>, tid: Tid) {
    // Store the final clock for joiners before announcing completion.
    let final_clock = with_ctx(|ctx| ctx.view.clock.clone()).expect("context present");
    rt.final_clocks.lock().insert(tid.0, final_clock);
    if rt.mode().is_controlled() {
        // Run as a critical section unless the execution already failed.
        if rt.sched().failure().is_none() {
            let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                rt.enter(tid);
                rt.sched().thread_finish(tid);
                rt.sched().tick(tid);
            }));
            if attempt.is_err() {
                // Execution failed while we were finishing: downgrade to a
                // direct state update so joiners are still released.
                rt.sched().thread_finish(tid);
            }
        } else {
            rt.sched().thread_finish(tid);
        }
    } else {
        rt.free_finished.lock().insert(tid.0, true);
    }
}

pub(crate) fn handle_panic(rt: &Arc<Runtime>, tid: Tid, payload: Box<dyn std::any::Any + Send>) {
    let reason = match payload.downcast_ref::<SchedAbort>() {
        Some(abort) => abort.0.clone(),
        None => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic payload".to_owned());
            *rt.panic_note.lock() = Some(msg.clone());
            FailReason::ProgramPanic(msg)
        }
    };
    if let Some(sched) = &rt.sched {
        sched.fail(reason);
        sched.thread_finish(tid);
    } else {
        rt.free_finished.lock().insert(tid.0, true);
        if let FailReason::ProgramPanic(msg) = reason {
            *rt.panic_note.lock() = Some(msg);
        }
    }
    // Joiners in uncontrolled modes poll free_finished; controlled joiners
    // are released by thread_finish.
    rt.final_clocks.lock().entry(tid.0).or_default();
}

impl<T> JoinHandle<T> {
    /// The logical tid of the target thread.
    #[must_use]
    pub fn tid(&self) -> Tid {
        self.target
    }

    /// Joins the thread (`ThreadJoin`, a visible operation), returning its
    /// result.
    ///
    /// # Panics
    ///
    /// Panics if the joined thread panicked.
    pub fn join(self) -> T {
        let (rt, tid) = current_rt().expect("JoinHandle::join outside an execution");
        if rt.mode().is_controlled() {
            // ThreadJoin loop: disable until the target finishes.
            loop {
                rt.enter(tid);
                let done = rt.sched().thread_join(tid, self.target);
                let target = self.target.0;
                rt.sync_event(|tick| srr_analysis::SyncEvent::ThreadJoined {
                    tid: tid.0,
                    target,
                    tick,
                    done,
                });
                rt.exit(tid);
                if done {
                    break;
                }
            }
        } else {
            // Uncontrolled: poll the finished set at op boundaries.
            loop {
                rt.enter(tid);
                let done = rt.free_finished.lock().contains_key(&self.target.0);
                rt.exit(tid);
                if done {
                    break;
                }
                std::thread::yield_now();
            }
        }
        // Join synchronizes child → parent.
        let final_clock = rt.final_clocks.lock().get(&self.target.0).cloned();
        if let Some(c) = final_clock {
            with_ctx(|ctx| ctx.view.clock.join(&c));
        }
        self.result
            .lock()
            .take()
            .unwrap_or_else(|| panic!("joined thread {} panicked", self.target))
    }
}
