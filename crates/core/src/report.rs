//! Execution reports.

use std::time::Duration;

use srr_analysis::{Finding, SyncTrace};
use srr_obs::ObsReport;
use srr_racedet::RaceReport;
use srr_replay::{HardDesync, SoftDesync};

/// One entry of the schedule trace: a scheduler transition observed at a
/// `Wait()` success or a completed `Tick()` (§3.1), with the cumulative
/// PRNG draw count for replay diffing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A `Wait()` success: `tid` was granted the critical section that
    /// became tick `tick`.
    Wait {
        /// Thread granted the critical section.
        tid: u32,
        /// Tick assigned to the critical section.
        tick: u64,
        /// Cumulative PRNG draws at this point.
        draws: u64,
    },
    /// A completed `Tick()`: `tid` closed critical section `tick`.
    Tick {
        /// Thread closing its critical section.
        tid: u32,
        /// Tick of the closed critical section.
        tick: u64,
        /// Cumulative PRNG draws at this point.
        draws: u64,
    },
}

impl TraceEvent {
    /// The thread the event belongs to.
    #[must_use]
    pub fn tid(&self) -> u32 {
        match *self {
            TraceEvent::Wait { tid, .. } | TraceEvent::Tick { tid, .. } => tid,
        }
    }

    /// The critical-section tick the event belongs to.
    #[must_use]
    pub fn tick(&self) -> u64 {
        match *self {
            TraceEvent::Wait { tick, .. } | TraceEvent::Tick { tick, .. } => tick,
        }
    }

    /// Cumulative PRNG draws when the event was traced.
    #[must_use]
    pub fn draws(&self) -> u64 {
        match *self {
            TraceEvent::Wait { draws, .. } | TraceEvent::Tick { draws, .. } => draws,
        }
    }

    /// Whether this is a `Wait()`-success marker.
    #[must_use]
    pub fn is_wait(&self) -> bool {
        matches!(self, TraceEvent::Wait { .. })
    }
}

/// Scheduler wakeup accounting (§3.1's `Wait()`/`Tick()` protocol).
///
/// The counters make the cost of the wakeup mechanism observable: a
/// broadcast-based scheduler wakes every parked thread per tick (most of
/// which go back to sleep — `spurious_wakeups`), while the targeted
/// parking-slot design wakes exactly the chosen thread, so
/// `wakeups_issued` stays bounded by `ticks` plus the genuine broadcast
/// points (`broadcasts`: shutdown/failure and replay-stall recovery).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedCounters {
    /// Critical sections executed (the global tick).
    pub ticks: u64,
    /// Targeted (single-thread) wakeups issued by the scheduler.
    pub wakeups_issued: u64,
    /// Broadcast wakeups (every parked thread notified at once).
    pub broadcasts: u64,
    /// Times a thread woke inside `Wait()` and found itself ineligible,
    /// going back to sleep. The thundering-herd cost, directly.
    pub spurious_wakeups: u64,
}

/// How an execution ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// The program ran to completion.
    Completed,
    /// All live threads were disabled: a program deadlock (preserved, not
    /// masked — §3.2).
    Deadlock,
    /// Replay could not enforce a demo constraint (§4).
    HardDesync(HardDesync),
    /// A program thread panicked.
    Panicked(String),
}

impl Outcome {
    /// Whether the run completed normally.
    #[must_use]
    pub fn is_ok(&self) -> bool {
        matches!(self, Outcome::Completed)
    }
}

/// Everything measured about one execution.
#[derive(Debug, Clone)]
pub struct ExecReport {
    /// How the execution ended.
    pub outcome: Outcome,
    /// Distinct data races detected.
    pub races: u64,
    /// Materialized race reports (empty when reporting was disabled).
    pub race_reports: Vec<RaceReport>,
    /// Race firings suppressed as duplicates of an already-reported
    /// (location, thread-pair, access-kind) site.
    pub suppressed: u64,
    /// Pair-targeted checking (`Config::with_race_target`): whether the
    /// armed (location, thread-pair) raced. `None` when no target was
    /// armed.
    pub race_target_hit: Option<bool>,
    /// Critical sections executed (0 in uncontrolled modes — see
    /// `visible_ops`).
    pub ticks: u64,
    /// Visible operations (ticks in controlled modes).
    pub visible_ops: u64,
    /// Virtual syscalls issued.
    pub syscalls: u64,
    /// Wall-clock duration of the run.
    pub duration: Duration,
    /// Raw console output (fd 1/2) — the observable surface compared for
    /// soft desynchronisation.
    pub console: Vec<u8>,
    /// Serialized demo size in bytes, when the run recorded one.
    pub demo_bytes: Option<usize>,
    /// Replay-only: SYSCALL entries left unconsumed at exit (a nonzero
    /// value usually accompanies soft desynchronisation).
    pub replay_leftover_syscalls: usize,
    /// Full schedule trace (only when `Config::with_schedule_trace` was
    /// set). See [`ExecReport::tick_trace`] for the completed-`Tick()`
    /// projection.
    pub schedule_trace: Vec<TraceEvent>,
    /// vOS strace log (only when the vOS was configured with strace).
    pub strace: Vec<String>,
    /// Structured synchronisation-event trace (only when
    /// `Config::with_sync_trace` was set).
    pub sync_trace: SyncTrace,
    /// Findings from the offline analysis passes (`srr-analysis`), run
    /// over `sync_trace` when `Config::with_sync_trace` was set.
    pub analysis: Vec<Finding>,
    /// Scheduler wakeup counters (zeroed in uncontrolled modes).
    pub sched: SchedCounters,
    /// Observability report: per-thread event traces and histograms when
    /// `Config::with_trace` was set, stream counters whenever the run
    /// recorded or replayed a demo.
    pub obs: ObsReport,
    /// Access-plan accounting (`Config::with_access_plan`); all-zero when
    /// no plan was armed.
    pub plan: PlanCounters,
}

/// What the access plan did during one run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PlanCounters {
    /// Plain-access locations that consulted the plan at construction.
    pub sites: u64,
    /// `PlainAccess` events suppressed from the trace ring.
    pub filtered_events: u64,
    /// Labels the plan had never seen (recorded fail-open, sorted).
    /// Nonempty means the plan is stale relative to the workload.
    pub unplanned: Vec<String>,
}

impl PlanCounters {
    /// Whether the run hit labels the plan does not cover.
    #[must_use]
    pub fn is_stale(&self) -> bool {
        !self.unplanned.is_empty()
    }
}

impl ExecReport {
    /// Console contents as UTF-8 (lossy).
    #[must_use]
    pub fn console_text(&self) -> String {
        String::from_utf8_lossy(&self.console).into_owned()
    }

    /// The completed-`Tick()` entries of the schedule trace as
    /// `(tid, tick)` pairs, with `Wait()`-success markers filtered out.
    #[must_use]
    pub fn tick_trace(&self) -> Vec<(u32, u64)> {
        self.schedule_trace
            .iter()
            .filter(|ev| !ev.is_wait())
            .map(|ev| (ev.tid(), ev.tick()))
            .collect()
    }

    /// The profiler's view of this run: the completed-tick schedule
    /// (from the schedule trace) plus the critical-section-stamped sync
    /// events, in logical time only. Feed to [`srr_obs::profile`].
    /// Requires the run to have used `with_schedule_trace` and
    /// `with_sync_trace`; with either off the input (and the resulting
    /// profile) is empty.
    #[must_use]
    pub fn profile_input(&self) -> srr_obs::ProfileInput {
        use srr_analysis::SyncEvent;
        use srr_obs::ProfileEvent;
        let mut events = Vec::with_capacity(self.sync_trace.events.len());
        let mut mutexes = std::collections::BTreeSet::new();
        for ev in &self.sync_trace.events {
            match *ev {
                SyncEvent::MutexRequest { tid, mutex, tick } => {
                    mutexes.insert(mutex);
                    events.push(ProfileEvent::MutexRequest { tid, mutex, tick });
                }
                SyncEvent::MutexAcquire { tid, mutex, tick } => {
                    mutexes.insert(mutex);
                    events.push(ProfileEvent::MutexAcquire { tid, mutex, tick });
                }
                SyncEvent::MutexRelease { tid, mutex, tick } => {
                    mutexes.insert(mutex);
                    events.push(ProfileEvent::MutexRelease { tid, mutex, tick });
                }
                SyncEvent::CondWaitBegin {
                    tid, cond, tick, ..
                } => events.push(ProfileEvent::CondWaitBegin { tid, cond, tick }),
                SyncEvent::CondNotify { cond, tick, .. } => {
                    events.push(ProfileEvent::CondNotify { cond, tick });
                }
                SyncEvent::ThreadSpawn { child, tick, .. } => {
                    events.push(ProfileEvent::ThreadSpawn { child, tick });
                }
                SyncEvent::ThreadJoined {
                    tid,
                    target,
                    tick,
                    done,
                } => events.push(ProfileEvent::ThreadJoin {
                    tid,
                    target,
                    tick,
                    done,
                }),
                // CondWaitReturn is stamped outside the critical section
                // (its tick can vary between replays); atomics and plain
                // accesses carry no blocking information. Neither feeds
                // the tick arithmetic.
                _ => {}
            }
        }
        srr_obs::ProfileInput {
            schedule: self
                .tick_trace()
                .into_iter()
                .map(|(tid, tick)| (tick, tid))
                .collect(),
            events,
            mutex_labels: mutexes
                .into_iter()
                .map(|m| (m, self.sync_trace.mutex_label(m)))
                .collect(),
        }
    }

    /// Whether any data race was detected.
    #[must_use]
    pub fn racy(&self) -> bool {
        self.races > 0
    }

    /// The hard desynchronisation, if the outcome was one.
    #[must_use]
    pub fn desync(&self) -> Option<&HardDesync> {
        match &self.outcome {
            Outcome::HardDesync(d) => Some(d),
            _ => None,
        }
    }
}

/// Classifies observable divergence between two runs — the paper's *soft
/// desynchronisation*: no constraint was violated, but console output
/// differs.
#[must_use]
pub fn soft_desync(recorded: &ExecReport, replayed: &ExecReport) -> bool {
    recorded.console != replayed.console
}

/// Builds a diagnosable [`SoftDesync`] for a divergent replay, or `None`
/// when the consoles match. Names the CONSOLE surface and the byte offset
/// of the first divergence, and adds leftover-syscall context when the
/// replay also left SYSCALL entries unconsumed.
#[must_use]
pub fn soft_desync_report(recorded: &ExecReport, replayed: &ExecReport) -> Option<SoftDesync> {
    if !soft_desync(recorded, replayed) {
        return None;
    }
    let offset = recorded
        .console
        .iter()
        .zip(replayed.console.iter())
        .position(|(a, b)| a != b)
        .unwrap_or_else(|| recorded.console.len().min(replayed.console.len()));
    let mut context = vec![format!(
        "recorded console {} bytes, replayed {} bytes",
        recorded.console.len(),
        replayed.console.len()
    )];
    if replayed.replay_leftover_syscalls > 0 {
        context.push(format!(
            "{} SYSCALL entries left unconsumed at exit",
            replayed.replay_leftover_syscalls
        ));
    }
    Some(
        SoftDesync::new(replayed.ticks, "console output diverged")
            .with_stream("CONSOLE", offset as u64)
            .with_context(context),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(outcome: Outcome, console: &[u8]) -> ExecReport {
        ExecReport {
            outcome,
            races: 0,
            race_reports: vec![],
            suppressed: 0,
            race_target_hit: None,
            ticks: 0,
            visible_ops: 0,
            syscalls: 0,
            duration: Duration::ZERO,
            console: console.to_vec(),
            demo_bytes: None,
            replay_leftover_syscalls: 0,
            schedule_trace: Vec::new(),
            strace: Vec::new(),
            sync_trace: SyncTrace::default(),
            analysis: Vec::new(),
            sched: SchedCounters::default(),
            obs: ObsReport::default(),
            plan: PlanCounters::default(),
        }
    }

    #[test]
    fn outcome_classification() {
        assert!(Outcome::Completed.is_ok());
        assert!(!Outcome::Deadlock.is_ok());
        let r = report(Outcome::Completed, b"hi");
        assert!(!r.racy());
        assert!(r.desync().is_none());
        assert_eq!(r.console_text(), "hi");
    }

    #[test]
    fn desync_accessor() {
        let d = HardDesync::new(1, "c", "e", "a");
        let r = report(Outcome::HardDesync(d.clone()), b"");
        assert_eq!(r.desync(), Some(&d));
    }

    #[test]
    fn tick_trace_filters_wait_markers() {
        let mut r = report(Outcome::Completed, b"");
        r.schedule_trace = vec![
            TraceEvent::Wait {
                tid: 0,
                tick: 1,
                draws: 0,
            },
            TraceEvent::Tick {
                tid: 0,
                tick: 1,
                draws: 2,
            },
            TraceEvent::Wait {
                tid: 1,
                tick: 2,
                draws: 2,
            },
            TraceEvent::Tick {
                tid: 1,
                tick: 2,
                draws: 3,
            },
        ];
        assert_eq!(r.tick_trace(), vec![(0, 1), (1, 2)]);
        assert!(r.schedule_trace[0].is_wait());
        assert_eq!(r.schedule_trace[0].tid(), 0);
        assert_eq!(r.schedule_trace[3].draws(), 3);
    }

    #[test]
    fn soft_desync_compares_consoles() {
        let a = report(Outcome::Completed, b"one");
        let b = report(Outcome::Completed, b"two");
        let c = report(Outcome::Completed, b"one");
        assert!(soft_desync(&a, &b));
        assert!(!soft_desync(&a, &c));
    }

    #[test]
    fn soft_desync_report_names_console_offset() {
        let a = report(Outcome::Completed, b"shared-prefix-AAA");
        let mut b = report(Outcome::Completed, b"shared-prefix-BBB");
        b.replay_leftover_syscalls = 3;
        let d = soft_desync_report(&a, &b).expect("diverged");
        assert_eq!(d.stream, "CONSOLE");
        assert_eq!(d.offset, 14, "first differing byte");
        assert!(d.context.iter().any(|l| l.contains("3 SYSCALL")), "{d:?}");
        assert!(soft_desync_report(&a, &a.clone()).is_none());
        // Pure-truncation divergence points at the shorter length.
        let short = report(Outcome::Completed, b"shared");
        let d = soft_desync_report(&a, &short).expect("diverged");
        assert_eq!(d.offset, 6);
    }
}
