//! Instrumented mutexes and condition variables (§3.2, Figures 4–5).

use crate::ids::{CondId, MutexId, Tid};
use crate::runtime::{current_rt, with_ctx, Runtime};
use srr_analysis::SyncEvent;
use std::sync::Arc;

/// An instrumented mutual-exclusion lock.
///
/// In controlled modes, `lock` is the paper's Figure 4 trylock loop: each
/// attempt is a critical section, and a failed attempt disables the thread
/// via `MutexLockFail` until `MutexUnlock` re-enables it. Data protection
/// is delegated to an inner `parking_lot::Mutex`, which by construction is
/// uncontended once the logical protocol grants ownership.
pub struct Mutex<T> {
    id: Option<MutexId>,
    inner: parking_lot::Mutex<T>,
}

/// RAII guard for [`Mutex`]; unlocking is a visible operation performed
/// on drop.
pub struct MutexGuard<'a, T> {
    native: Option<parking_lot::MutexGuard<'a, T>>,
    mutex: &'a Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    #[must_use]
    pub fn new(value: T) -> Self {
        Mutex::build(value, None)
    }

    /// Creates a mutex with a diagnostic label (shown by the analysis
    /// passes in place of `mutex#N`).
    #[must_use]
    pub fn labeled(value: T, label: &str) -> Self {
        Mutex::build(value, Some(label))
    }

    fn build(value: T, label: Option<&str>) -> Self {
        let id = with_ctx(|ctx| {
            if ctx.rt.mode().is_instrumented() {
                let id = ctx.rt.register_mutex();
                ctx.rt.sync_mutex_label(id, label);
                Some(id)
            } else {
                None
            }
        })
        .flatten();
        Mutex {
            id,
            inner: parking_lot::Mutex::new(value),
        }
    }

    fn instrumented(&self) -> Option<(MutexId, Arc<Runtime>, Tid)> {
        let id = self.id?;
        let (rt, tid) = current_rt()?;
        Some((id, rt, tid))
    }

    /// Acquires the mutex (Figure 4 in controlled modes).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let Some((id, rt, tid)) = self.instrumented() else {
            return MutexGuard {
                native: Some(self.inner.lock()),
                mutex: self,
            };
        };
        if !rt.mode().is_controlled() {
            // tsan11: real blocking lock plus the happens-before transfer.
            let native = self.inner.lock();
            rt.enter(tid);
            with_ctx(|ctx| {
                let mut ms = ctx.rt.mutexes.lock();
                let rec = &mut ms[id.0 as usize];
                rec.holder = Some(tid);
                let sync = rec.sync.clone();
                drop(ms);
                ctx.view.clock.join(&sync);
                ctx.view.tick();
            });
            rt.exit(tid);
            return MutexGuard {
                native: Some(native),
                mutex: self,
            };
        }
        // Figure 4: int res = EBUSY; while (res == EBUSY) { Wait();
        // res = trylock(m); if (res == EBUSY) MutexLockFail(m); Tick(); }
        let mut requested = false;
        loop {
            rt.enter(tid);
            if !requested {
                // Traced at blocking-lock entry, before the first attempt:
                // the deadlock predictor's lock-order edges come from
                // requests, so a run that actually deadlocks here still
                // contributes its edge.
                requested = true;
                rt.sync_event(|tick| SyncEvent::MutexRequest {
                    tid: tid.0,
                    mutex: id.0,
                    tick,
                });
            }
            let acquired = with_ctx(|ctx| {
                let acquired = ctx.rt.mutex_try_acquire(id, tid, &mut ctx.view);
                ctx.view.tick();
                acquired
            })
            .expect("context present");
            if !acquired {
                rt.sched().mutex_lock_fail(tid, id);
            } else {
                rt.sync_event(|tick| SyncEvent::MutexAcquire {
                    tid: tid.0,
                    mutex: id.0,
                    tick,
                });
            }
            rt.exit(tid);
            if acquired {
                let native = self
                    .inner
                    .try_lock()
                    .expect("logical ownership guarantees the inner lock is free");
                return MutexGuard {
                    native: Some(native),
                    mutex: self,
                };
            }
        }
    }

    /// Attempts to acquire the mutex without blocking (one critical
    /// section).
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let Some((id, rt, tid)) = self.instrumented() else {
            return self.inner.try_lock().map(|native| MutexGuard {
                native: Some(native),
                mutex: self,
            });
        };
        rt.enter(tid);
        let acquired = with_ctx(|ctx| {
            let acquired = ctx.rt.mutex_try_acquire(id, tid, &mut ctx.view);
            ctx.view.tick();
            acquired
        })
        .expect("context present");
        if acquired {
            // No MutexRequest: a try_lock cannot block, so it cannot
            // close a deadlock cycle.
            rt.sync_event(|tick| SyncEvent::MutexAcquire {
                tid: tid.0,
                mutex: id.0,
                tick,
            });
        }
        rt.exit(tid);
        if acquired {
            let native = self
                .inner
                .try_lock()
                .expect("logical ownership guarantees the inner lock is free");
            Some(MutexGuard {
                native: Some(native),
                mutex: self,
            })
        } else {
            None
        }
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.native.as_ref().expect("guard is live")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.native.as_mut().expect("guard is live")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            // Unwinding (program panic or scheduler abort): the execution
            // is being torn down; running the unlock protocol would
            // re-enter the failed scheduler and double-panic.
            self.native.take();
            return;
        }
        let Some((id, rt, tid)) = self.mutex.instrumented() else {
            self.native.take();
            return;
        };
        if !rt.mode().is_controlled() {
            // tsan11 mode: the holder/sync bookkeeping must change while
            // the native lock is still held — the next owner takes the
            // native lock directly, so clearing the holder after the
            // native release would race with the next owner setting it.
            rt.enter(tid);
            with_ctx(|ctx| {
                ctx.rt.mutex_release(id, tid, &ctx.view);
                ctx.view.tick(); // after publication (FastTrack discipline)
            });
            self.native.take();
            rt.exit(tid);
            return;
        }
        // Controlled: release the data lock first so the logically-next
        // owner's `try_lock` cannot observe it held (logical ownership is
        // granted by the scheduler, which serializes these sections).
        self.native.take();
        // Unlock is a visible operation that also wakes one blocked
        // thread (MutexUnlock, §3.2).
        rt.enter(tid);
        with_ctx(|ctx| {
            ctx.rt.mutex_release(id, tid, &ctx.view);
            ctx.view.tick(); // after publication (FastTrack discipline)
        });
        rt.sync_event(|tick| SyncEvent::MutexRelease {
            tid: tid.0,
            mutex: id.0,
            tick,
        });
        rt.sched().mutex_unlock(id);
        rt.exit(tid);
    }
}

/// An instrumented condition variable (Figure 5).
pub struct Condvar {
    id: Option<CondId>,
    /// Uncontrolled-mode implementation.
    native: parking_lot::Condvar,
    /// Runtime-internal condvars (RwLock, Barrier) are excluded from the
    /// sync trace: their polling wait loops are implementation detail,
    /// not program behaviour, and would trip the no-recheck lint.
    internal: bool,
}

impl Condvar {
    /// Creates a condition variable.
    #[must_use]
    pub fn new() -> Self {
        Condvar::build(false)
    }

    /// A condvar used by runtime-internal primitives: participates in
    /// scheduling but is invisible to the analysis passes.
    pub(crate) fn internal() -> Self {
        Condvar::build(true)
    }

    fn build(internal: bool) -> Self {
        let id = with_ctx(|ctx| {
            if ctx.rt.mode().is_instrumented() && ctx.rt.mode().is_controlled() {
                Some(ctx.rt.register_cond())
            } else {
                None
            }
        })
        .flatten();
        Condvar {
            id,
            native: parking_lot::Condvar::new(),
            internal,
        }
    }

    /// Releases `guard`'s mutex, blocks until signalled, reacquires.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        self.wait_impl(guard, false, 0).0
    }

    /// As [`Condvar::wait`] with a timeout in milliseconds. Returns the
    /// reacquired guard and whether the thread was *signalled* (`false`
    /// means the wait timed out).
    ///
    /// Under controlled scheduling the timeout is modelled, not timed:
    /// a timed waiter stays *enabled* (§3.2 — the wakeup timer is
    /// physical time, which from the scheduler's logical perspective may
    /// fire at any moment), so the scheduler may run it at any point, and
    /// running it unsignalled means the timeout expired. A timed waiter
    /// that has not yet run can still *eat* a signal.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        timeout_ms: u64,
    ) -> (MutexGuard<'a, T>, bool) {
        self.wait_impl(guard, true, timeout_ms)
    }

    fn wait_impl<'a, T>(
        &self,
        mut guard: MutexGuard<'a, T>,
        timed: bool,
        timeout_ms: u64,
    ) -> (MutexGuard<'a, T>, bool) {
        let mutex = guard.mutex;
        match current_rt() {
            None => {
                // Pure native.
                let native = guard.native.as_mut().expect("guard is live");
                if timed {
                    let deadline = std::time::Duration::from_millis(timeout_ms);
                    let res = self.native.wait_for(native, deadline);
                    let signaled = !res.timed_out();
                    (guard, signaled)
                } else {
                    self.native.wait(native);
                    (guard, true)
                }
            }
            Some((rt, tid)) if !rt.mode().is_controlled() => {
                // tsan11: native blocking, plus the mutex happens-before
                // transfer across the release/reacquire the wait implies.
                // The holder bookkeeping mirrors the native lock's state:
                // the wait releases it, the return reacquires it.
                if let Some(mid) = mutex.id {
                    rt.enter(tid);
                    with_ctx(|ctx| {
                        let mut ms = ctx.rt.mutexes.lock();
                        let rec = &mut ms[mid.0 as usize];
                        rec.sync.join(&ctx.view.clock);
                        rec.holder = None;
                        drop(ms);
                        ctx.view.tick(); // after publication
                    });
                    rt.exit(tid);
                }
                let signaled = {
                    let native = guard.native.as_mut().expect("guard is live");
                    if timed {
                        let deadline = std::time::Duration::from_millis(timeout_ms);
                        !self.native.wait_for(native, deadline).timed_out()
                    } else {
                        self.native.wait(native);
                        true
                    }
                };
                if let Some(mid) = mutex.id {
                    rt.enter(tid);
                    with_ctx(|ctx| {
                        let mut ms = ctx.rt.mutexes.lock();
                        let rec = &mut ms[mid.0 as usize];
                        rec.holder = Some(tid);
                        let sync = rec.sync.clone();
                        drop(ms);
                        ctx.view.clock.join(&sync);
                        ctx.view.tick();
                    });
                    rt.exit(tid);
                }
                (guard, signaled)
            }
            Some((rt, tid)) => {
                // Controlled: Figure 5. One critical section covers
                // CondWait + mutex_unlock + MutexUnlock; the reacquire is
                // the ordinary Figure 4 loop, giving other threads a
                // window to take the mutex in between.
                let cid = self.id.expect("controlled condvar is registered");
                let mid = mutex.id.expect("controlled mutex is registered");
                // Drop the data lock; skip the guard's own unlock protocol
                // (we perform it manually inside this critical section).
                guard.native.take();
                std::mem::forget(guard);

                rt.enter(tid);
                if !self.internal {
                    rt.sync_event(|tick| SyncEvent::CondWaitBegin {
                        tid: tid.0,
                        cond: cid.0,
                        mutex: mid.0,
                        tick,
                    });
                }
                rt.conds.lock()[cid.0 as usize].waiters.push((tid, timed));
                if !timed {
                    rt.sched().cond_block(tid, cid);
                }
                with_ctx(|ctx| {
                    ctx.rt.mutex_release(mid, tid, &ctx.view);
                    ctx.view.tick(); // after publication (FastTrack discipline)
                });
                rt.sync_event(|tick| SyncEvent::MutexRelease {
                    tid: tid.0,
                    mutex: mid.0,
                    tick,
                });
                rt.sched().mutex_unlock(mid);
                rt.exit(tid);

                let new_guard = mutex.lock();

                let signaled = {
                    let mut conds = rt.conds.lock();
                    let rec = &mut conds[cid.0 as usize];
                    let was = match rec.signaled.iter().position(|t| *t == tid) {
                        Some(i) => {
                            rec.signaled.remove(i);
                            true
                        }
                        None => false,
                    };
                    if let Some(i) = rec.waiters.iter().position(|(t, _)| *t == tid) {
                        // Timed waiter that ran without being signalled:
                        // its timeout expired; stop eating signals.
                        rec.waiters.remove(i);
                    }
                    was
                };
                if !self.internal {
                    rt.sync_event(|tick| SyncEvent::CondWaitReturn {
                        tid: tid.0,
                        cond: cid.0,
                        mutex: mid.0,
                        tick,
                        signaled,
                    });
                }
                (new_guard, signaled)
            }
        }
    }

    /// Signals one waiter.
    pub fn notify_one(&self) {
        let Some((id, rt, tid)) = self.ctx() else {
            self.native.notify_one();
            return;
        };
        rt.enter(tid);
        with_ctx(|ctx| ctx.view.tick());
        if !self.internal {
            rt.sync_event(|tick| SyncEvent::CondNotify {
                tid: tid.0,
                cond: id.0,
                tick,
                all: false,
            });
        }
        let woken = {
            let mut conds = rt.conds.lock();
            let rec = &mut conds[id.0 as usize];
            if rec.waiters.is_empty() {
                None
            } else {
                let tids: Vec<Tid> = rec.waiters.iter().map(|(t, _)| *t).collect();
                let pick = rt.sched().pick_one_of(&tids);
                let pos = rec
                    .waiters
                    .iter()
                    .position(|(t, _)| *t == pick)
                    .expect("member");
                let (tid, timed) = rec.waiters.remove(pos);
                rec.signaled.push(tid);
                Some((tid, timed))
            }
        };
        if let Some((woken_tid, timed)) = woken {
            if !timed {
                rt.sched().cond_wake(woken_tid);
            }
        }
        rt.exit(tid);
    }

    /// Signals all waiters.
    pub fn notify_all(&self) {
        let Some((id, rt, tid)) = self.ctx() else {
            self.native.notify_all();
            return;
        };
        rt.enter(tid);
        with_ctx(|ctx| ctx.view.tick());
        if !self.internal {
            rt.sync_event(|tick| SyncEvent::CondNotify {
                tid: tid.0,
                cond: id.0,
                tick,
                all: true,
            });
        }
        let woken: Vec<(Tid, bool)> = {
            let mut conds = rt.conds.lock();
            let rec = &mut conds[id.0 as usize];
            let all = std::mem::take(&mut rec.waiters);
            for (t, _) in &all {
                rec.signaled.push(*t);
            }
            all
        };
        for (woken_tid, timed) in woken {
            if !timed {
                rt.sched().cond_wake(woken_tid);
            }
        }
        rt.exit(tid);
    }

    fn ctx(&self) -> Option<(CondId, Arc<Runtime>, Tid)> {
        let id = self.id?;
        let (rt, tid) = current_rt()?;
        Some((id, rt, tid))
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn native_mutex_guards_data() {
        let m = Mutex::new(5);
        {
            let mut g = m.lock();
            *g += 1;
        }
        assert_eq!(*m.lock(), 6);
    }

    #[test]
    fn native_try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn native_condvar_timeout() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let g = m.lock();
        let (_g, signaled) = cv.wait_timeout(g, 10);
        assert!(!signaled, "nobody signalled: timeout");
    }

    #[test]
    fn native_condvar_signal() {
        use std::sync::Arc;
        let m = Arc::new(Mutex::new(false));
        let cv = Arc::new(Condvar::new());
        let m2 = Arc::clone(&m);
        let cv2 = Arc::clone(&cv);
        let h = std::thread::spawn(move || {
            let mut g = m2.lock();
            *g = true;
            cv2.notify_one();
            drop(g);
        });
        let mut g = m.lock();
        while !*g {
            let (g2, _signaled) = cv.wait_timeout(g, 50);
            g = g2;
        }
        drop(g);
        h.join().unwrap();
    }
}
