//! Instrumented plain (non-atomic) shared memory.
//!
//! [`Shared<T>`] models an ordinary shared variable: accesses are
//! *invisible* operations (no scheduling point — Figure 3's parallelism
//! applies), but every access is checked by the FastTrack race detector
//! against the accessing thread's vector clock, exactly as tsan
//! instruments plain loads and stores.
//!
//! Physically the value lives in a relaxed `AtomicU64`, so a *detected*
//! race in the modelled program is never an actual data race in the
//! host process.

use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering as StdOrd};

use srr_analysis::SyncEvent;
use srr_racedet::{AccessKind, LocationId};

use crate::atomic::Scalar;
use crate::config::PlanDecision;
use crate::runtime::with_ctx;

/// A plain shared variable under race detection.
pub struct Shared<T: Scalar> {
    loc: Option<LocationId>,
    /// Interned location id in the sync trace (tracing runs only); shares
    /// the label namespace with [`Atomic::labeled`](crate::Atomic), so an
    /// atomic and a `Shared` with one label model one memory location.
    trace_loc: Option<u32>,
    /// The access plan's ruling on this location, computed once at
    /// construction. `Record` when no plan is armed, so the hot path
    /// stays a single enum compare.
    plan: PlanDecision,
    native: AtomicU64,
    _marker: PhantomData<T>,
}

impl<T: Scalar> Shared<T> {
    /// Creates a shared variable with a diagnostic label (shown in race
    /// reports).
    #[must_use]
    pub fn new(label: &str, value: T) -> Self {
        let reg = with_ctx(|ctx| {
            if ctx.rt.mode().is_instrumented() {
                let loc = ctx.rt.racedet.lock().register_location(label);
                let plan = match &ctx.rt.config.access_plan {
                    Some(plan) => {
                        ctx.rt.plan_sites.fetch_add(1, StdOrd::Relaxed);
                        let decision = plan.decide(label);
                        if decision == PlanDecision::Unplanned {
                            ctx.rt.plan_unplanned.lock().insert(label.to_owned());
                        }
                        decision
                    }
                    None => PlanDecision::Record,
                };
                Some((loc, ctx.rt.sync_loc(label), plan))
            } else {
                None
            }
        })
        .flatten();
        let (loc, trace_loc, plan) = match reg {
            Some((loc, t, plan)) => (Some(loc), t, plan),
            None => (None, None, PlanDecision::Record),
        };
        Shared {
            loc,
            trace_loc,
            plan,
            native: AtomicU64::new(value.to_bits()),
            _marker: PhantomData,
        }
    }

    /// Plain read (invisible operation; race-checked).
    pub fn read(&self) -> T {
        self.check(AccessKind::Read);
        T::from_bits(self.native.load(StdOrd::Relaxed))
    }

    /// Plain write (invisible operation; race-checked).
    pub fn write(&self, value: T) {
        self.check(AccessKind::Write);
        self.native.store(value.to_bits(), StdOrd::Relaxed);
    }

    /// Read-modify-write *as two plain accesses* (what `x += 1` compiles
    /// to for a non-atomic variable): racy by construction if concurrent.
    pub fn update(&self, f: impl FnOnce(T) -> T) -> T {
        let v = f(self.read());
        self.write(v);
        v
    }

    fn check(&self, kind: AccessKind) {
        let Some(loc) = self.loc else { return };
        with_ctx(|ctx| {
            if !ctx.rt.config.detect_races {
                return;
            }
            if let Some(trace_loc) = self.trace_loc.filter(|_| ctx.rt.config.trace_access) {
                // Sparse-by-proof: statically proven sites are dropped
                // from the trace ring (the race detector below still sees
                // every access — the plan filters the *recording* only).
                if self.plan == PlanDecision::Filtered {
                    ctx.rt.plan_filtered.fetch_add(1, StdOrd::Relaxed);
                } else {
                    let tid = ctx.tid.0;
                    ctx.rt.sync_event(|tick| SyncEvent::PlainAccess {
                        tid,
                        loc: trace_loc,
                        tick,
                        write: kind == AccessKind::Write,
                    });
                }
            }
            // Plain accesses do not tick the clock; the clock advances at
            // visible operations only, so all plain accesses between two
            // visible operations share one epoch (as in tsan).
            let mut det = ctx.rt.racedet.lock();
            det.on_access(loc, ctx.tid.index(), &ctx.view.clock, kind);
        });
    }
}

impl<T: Scalar + std::fmt::Debug> std::fmt::Debug for Shared<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared")
            .field("value", &T::from_bits(self.native.load(StdOrd::Relaxed)))
            .field("instrumented", &self.loc.is_some())
            .finish()
    }
}

/// A fixed-size array of race-checked plain cells, for workloads that
/// share buffers (the PARSEC kernels index these heavily).
pub struct SharedArray<T: Scalar> {
    cells: Vec<Shared<T>>,
}

impl<T: Scalar> SharedArray<T> {
    /// Creates `len` cells initialized to `init`, labelled
    /// `label[0]`, `label[1]`, …
    #[must_use]
    pub fn new(label: &str, len: usize, init: T) -> Self {
        let cells = (0..len)
            .map(|i| Shared::new(&format!("{label}[{i}]"), init))
            .collect();
        SharedArray { cells }
    }

    /// Number of cells.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the array is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Plain read of cell `i`.
    pub fn read(&self, i: usize) -> T {
        self.cells[i].read()
    }

    /// Plain write of cell `i`.
    pub fn write(&self, i: usize, value: T) {
        self.cells[i].write(value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn native_shared_reads_and_writes() {
        let s = Shared::new("x", 1u32);
        assert_eq!(s.read(), 1);
        s.write(2);
        assert_eq!(s.read(), 2);
        assert_eq!(s.update(|v| v * 10), 20);
        assert_eq!(s.read(), 20);
    }

    #[test]
    fn shared_array_native() {
        let a = SharedArray::new("buf", 4, 0u64);
        assert_eq!(a.len(), 4);
        assert!(!a.is_empty());
        a.write(2, 9);
        assert_eq!(a.read(2), 9);
        assert_eq!(a.read(0), 0);
    }

    #[test]
    fn debug_formats() {
        let s = Shared::new("x", 5i32);
        assert!(format!("{s:?}").contains('5'));
    }
}
