//! The controlled scheduler: the `Wait()`/`Tick()` protocol of §3.
//!
//! Scheduling decisions live in shared state; threads cooperate through a
//! protocol built on two functions (§3.1):
//!
//! * [`Scheduler::wait`] — block the calling thread until the scheduler
//!   activates it. On success the thread owns the current *critical
//!   section* and the global tick is assigned to it.
//! * [`Scheduler::tick`] — close the critical section: log it (queue/slice
//!   strategies), deliver deferred signals, replay due SIGNAL/ASYNC
//!   events, and choose the next thread per the strategy.
//!
//! Exactly one thread is ever inside a critical section; threads executing
//! invisible operations run in parallel (Figure 3). The record/replay
//! engine (§4) lives directly in the scheduler state: the QUEUE order,
//! SIGNAL pins and ASYNC floats are recorded under the scheduler lock and
//! enforced from the same place on replay.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::{Condvar, Mutex};
use srr_obs::{EventKind, Obs, ObsOp, StreamId};
use srr_replay::{AsyncEvent, HardDesync, QueueStream, SignalEvent};

use crate::config::Strategy;
use crate::ids::{CondId, MutexId, Tid};
use crate::prng::Prng;
use crate::report::{SchedCounters, TraceEvent};

/// Why the execution was aborted by the scheduler.
#[derive(Debug, Clone)]
pub enum FailReason {
    /// All live threads are disabled: a genuine program deadlock,
    /// preserved rather than masked (§3.2).
    Deadlock,
    /// Replay could not enforce a demo constraint (§4).
    Desync(HardDesync),
    /// A program thread panicked; the run is torn down.
    ProgramPanic(String),
}

/// Panic payload used to unwind threads out of a failed execution.
///
/// The harness recognises this payload and converts it into a structured
/// report instead of propagating the panic.
#[derive(Debug, Clone)]
pub struct SchedAbort(pub FailReason);

/// Why a thread disabled itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitReason {
    /// `ThreadJoin(tid)`: waiting for a thread to finish.
    Join(Tid),
    /// `MutexLockFail(m)`: waiting for a mutex.
    Mutex(MutexId),
    /// Untimed conditional wait: waiting for a signal/broadcast.
    Cond(CondId),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Enabled,
    Disabled(WaitReason),
    Finished,
}

struct ThreadState {
    status: Status,
    /// Tick value seen at this thread's most recent `Tick()` (§4.3).
    last_tick: u64,
    pending_signals: VecDeque<i32>,
    /// This thread's parking slot: a condvar waited on (against the one
    /// scheduler mutex) by this thread alone, so the scheduler can wake
    /// exactly the thread it chose instead of broadcasting to the herd.
    slot: Arc<Condvar>,
    /// Blocked inside `Wait()`.
    in_wait: bool,
    /// Between `Wait()` success and `Tick()` completion.
    in_cs: bool,
    /// Queue strategy: present in the arrival queue.
    queued: bool,
    /// Replay (queue/slice): the next tick this thread runs (0 = none).
    next_due: u64,
    /// The tick assigned to this thread's in-flight critical section.
    cs_tick: u64,
    /// Slice strategy: visible ops left in the current quantum.
    slice_left: u32,
    /// Wall-clock start of the in-flight critical section; only taken
    /// when observability tracing is on.
    cs_start: Option<Instant>,
}

impl std::fmt::Debug for ThreadState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // The vendored condvar has no Debug impl; the slot carries no
        // inspectable state anyway.
        f.debug_struct("ThreadState")
            .field("status", &self.status)
            .field("last_tick", &self.last_tick)
            .field("pending_signals", &self.pending_signals)
            .field("in_wait", &self.in_wait)
            .field("in_cs", &self.in_cs)
            .field("queued", &self.queued)
            .field("next_due", &self.next_due)
            .field("cs_tick", &self.cs_tick)
            .field("slice_left", &self.slice_left)
            .finish_non_exhaustive()
    }
}

impl ThreadState {
    fn new() -> Self {
        ThreadState {
            status: Status::Enabled,
            last_tick: 0,
            pending_signals: VecDeque::new(),
            slot: Arc::new(Condvar::new()),
            in_wait: false,
            in_cs: false,
            queued: false,
            next_due: 0,
            cs_tick: 0,
            slice_left: 0,
            cs_start: None,
        }
    }
}

/// Replay inputs, pre-indexed for O(1) consumption.
#[derive(Debug, Default)]
struct ReplayState {
    active: bool,
    /// `(tid, tick)` → signals to raise at the end of that thread's tick.
    signals: HashMap<(u32, u64), Vec<i32>>,
    /// tick → async events floated to the end of that tick.
    async_events: HashMap<u64, Vec<AsyncEvent>>,
    first_tick: Vec<u64>,
    next_ticks: Vec<u64>,
}

/// Record buffers.
#[derive(Debug, Default)]
struct RecordState {
    active: bool,
    queue_order: Vec<(u32, u64)>,
    signals: Vec<SignalEvent>,
    async_events: Vec<AsyncEvent>,
}

struct SchedState {
    tick: u64,
    active: Option<Tid>,
    threads: Vec<ThreadState>,
    arrivals: VecDeque<Tid>,
    prng: Prng,
    strategy: Strategy,
    record: RecordState,
    replay: ReplayState,
    /// Signals that arrived while their target was mid-critical-section;
    /// delivered at the target's own next `Tick()` so the recorded tick
    /// value is the one the paper's semantics require. The flag says
    /// whether the signal came from the environment (recordable) or was
    /// raised synchronously by the program (reoccurs by itself, §4.3).
    deferred_signals: Vec<(Tid, i32, bool)>,
    fail: Option<FailReason>,
    live: usize,
    in_wait_count: usize,
    cs_in_flight: bool,
    /// PCT-style hot thread.
    hot: Tid,
    /// Delay-bounding: remaining delay budget.
    delay_budget: u32,
    /// Jitter source for slice quanta. Deliberately *separate* from the
    /// replayable PRNG: real rr's time slices carry timing noise that
    /// breaks phase-locked livelocks (a deterministic op-count quantum
    /// can synchronize with a lock's hold pattern so that a contender's
    /// trylock always lands while the lock is held). Slice schedules are
    /// recorded in QUEUE and enforced from there on replay, so this
    /// stream needs no replay determinism.
    slice_jitter: Prng,
    /// Optional schedule trace for debugging/diffing runs.
    trace: Option<Vec<TraceEvent>>,
    /// Targeted wakeups issued (one parked thread notified).
    wakeups_issued: u64,
    /// Broadcast wakeups issued (every parked thread notified).
    broadcasts: u64,
    /// Wakeups observed by a thread that found itself ineligible and went
    /// back to sleep.
    spurious_wakeups: u64,
    /// Structured observability collector (`Config::with_trace`). `None`
    /// when tracing is off: every instrumentation site is then a single
    /// `Option` check. `Obs` takes no locks besides its own, so it is a
    /// safe leaf under the scheduler mutex.
    obs: Option<Arc<Obs>>,
    /// Handles onto the unified metrics plane (`Config::with_metrics`).
    /// Pre-registered at enable time so the hot path is one `Option`
    /// check plus a relaxed atomic bump — no registry lock.
    metrics: Option<SchedMetrics>,
}

/// Scheduler counters mirrored onto the metrics registry.
struct SchedMetrics {
    wakeups: srr_obs::Counter,
    broadcasts: srr_obs::Counter,
    spurious: srr_obs::Counter,
    stalls: srr_obs::Counter,
}

/// The controlled scheduler shared by all threads of one execution.
///
/// Wakeups are *targeted*: each thread parks on its own condvar (its
/// [`ThreadState::slot`]) against the one state mutex, and `Tick()`
/// notifies exactly the thread the strategy chose ([`SchedState::wake_next`]).
/// Broadcasts survive only where every parked thread genuinely must wake:
/// execution failure (deadlock/desync/panic teardown) and replay-stall
/// detection ([`SchedState::wake_all`]).
pub struct Scheduler {
    state: Mutex<SchedState>,
}

impl Scheduler {
    /// Creates a scheduler for a fresh execution with the main thread
    /// (tid 0) registered and active.
    pub fn new(strategy: Strategy, prng: Prng) -> Self {
        let slice_jitter = Prng::from_seeds([0x51ce ^ prng.draws(), 0x1177]);
        let mut threads = Vec::new();
        let mut main = ThreadState::new();
        if let Strategy::Slice { quantum } = strategy {
            main.slice_left = quantum;
        }
        threads.push(main);
        let active = match strategy {
            Strategy::Queue => None,
            _ => Some(Tid::MAIN),
        };
        let delay_budget = match strategy {
            Strategy::Delay { budget, .. } => budget,
            _ => 0,
        };
        Scheduler {
            state: Mutex::new(SchedState {
                tick: 0,
                active,
                threads,
                arrivals: VecDeque::new(),
                prng,
                strategy,
                record: RecordState::default(),
                replay: ReplayState::default(),
                deferred_signals: Vec::new(),
                fail: None,
                live: 1,
                in_wait_count: 0,
                cs_in_flight: false,
                hot: Tid::MAIN,
                delay_budget,
                slice_jitter,
                trace: None,
                wakeups_issued: 0,
                broadcasts: 0,
                spurious_wakeups: 0,
                obs: None,
                metrics: None,
            }),
        }
    }

    /// Switches on recording.
    pub fn enable_recording(&self) {
        self.state.lock().record.active = true;
    }

    /// Switches on schedule tracing (diagnostics: every `(tid, tick)`).
    pub fn enable_trace(&self) {
        self.state.lock().trace = Some(Vec::new());
    }

    /// Attaches the structured observability collector.
    pub fn enable_obs(&self, obs: Arc<Obs>) {
        self.state.lock().obs = Some(obs);
    }

    /// Mirrors the scheduler counters onto the unified metrics plane.
    /// Handles are registered once here; bumping them afterwards is a
    /// single relaxed atomic op under the scheduler mutex.
    pub fn enable_metrics(&self, registry: &srr_obs::MetricsRegistry) {
        self.state.lock().metrics = Some(SchedMetrics {
            wakeups: registry.counter("sched_wakeups_total"),
            broadcasts: registry.counter("sched_broadcasts_total"),
            spurious: registry.counter("sched_spurious_wakeups_total"),
            stalls: registry.counter("sched_replay_stalls_total"),
        });
    }

    /// The collected schedule trace, if tracing was enabled.
    pub fn take_trace(&self) -> Vec<TraceEvent> {
        self.state.lock().trace.take().unwrap_or_default()
    }

    /// Switches on replay from the given streams.
    pub fn enable_replay(
        &self,
        queue: &QueueStream,
        signals: &[SignalEvent],
        async_events: &[AsyncEvent],
    ) {
        let mut g = self.state.lock();
        let mut sig_map: HashMap<(u32, u64), Vec<i32>> = HashMap::new();
        for s in signals {
            sig_map.entry((s.tid, s.tick)).or_default().push(s.signo);
        }
        let mut async_map: HashMap<u64, Vec<AsyncEvent>> = HashMap::new();
        for e in async_events {
            async_map.entry(e.tick()).or_default().push(*e);
        }
        g.replay = ReplayState {
            active: true,
            signals: sig_map,
            async_events: async_map,
            first_tick: queue.first_tick.clone(),
            next_ticks: queue.next_ticks.clone(),
        };
        if g.strategy.needs_queue_stream() {
            g.threads[0].next_due = g.replay.first_tick.first().copied().unwrap_or(0);
            g.active = None;
        }
        // Signals recorded against tick 0 arrived before the thread's
        // first Tick(): pend them immediately.
        if let Some(signos) = g.replay.signals.remove(&(0, 0)) {
            g.threads[0].pending_signals.extend(signos);
        }
    }

    /// Whether this execution is a replay.
    #[allow(dead_code)]
    pub fn is_replaying(&self) -> bool {
        self.state.lock().replay.active
    }

    /// `Wait()` (§3.1): block until scheduled. On return the calling
    /// thread owns the critical section of tick [`Scheduler::tick_value`].
    ///
    /// # Panics
    ///
    /// Panics with [`SchedAbort`] if the execution failed (deadlock,
    /// desynchronisation, program panic) — the harness catches this.
    pub fn wait(&self, tid: Tid) {
        let mut g = self.state.lock();
        let mut slept = false;
        loop {
            if let Some(f) = &g.fail {
                let f = f.clone();
                drop(g);
                std::panic::panic_any(SchedAbort(f));
            }
            if g.eligible(tid) {
                break;
            }
            if slept {
                g.spurious_wakeups += 1;
                if let Some(m) = &g.metrics {
                    m.spurious.inc();
                }
            }
            g.threads[tid.index()].in_wait = true;
            g.in_wait_count += 1;
            if g.replay.active {
                g.check_replay_stall();
                if g.fail.is_some() {
                    // This thread completed the all-parked condition and
                    // must not sleep through its own stall verdict.
                    g.in_wait_count -= 1;
                    g.threads[tid.index()].in_wait = false;
                    continue;
                }
            }
            let slot = Arc::clone(&g.threads[tid.index()].slot);
            slot.wait(&mut g);
            slept = true;
            g.in_wait_count -= 1;
            g.threads[tid.index()].in_wait = false;
        }
        g.tick += 1;
        let tick = g.tick;
        let st = &mut g.threads[tid.index()];
        st.in_wait = false;
        st.in_cs = true;
        st.cs_tick = tick;
        g.cs_in_flight = true;
        if g.obs.is_some() {
            g.threads[tid.index()].cs_start = Some(Instant::now());
            if let Some(obs) = &g.obs {
                obs.thread_event(tid.0, tick, EventKind::TickBegin);
            }
        }
        if g.trace.is_some() {
            let (tick, draws) = (g.tick, g.prng.draws());
            if let Some(trace) = &mut g.trace {
                trace.push(TraceEvent::Wait {
                    tid: tid.0,
                    tick,
                    draws,
                });
            }
        }
    }

    /// `Tick()` (§3.1): close the critical section and choose the next
    /// thread.
    pub fn tick(&self, tid: Tid) {
        self.tick_op(tid, ObsOp::Other);
    }

    /// [`Scheduler::tick`] with the visible-operation class attached, so
    /// the trace can label the critical section (atomic / sync / …).
    pub fn tick_op(&self, tid: Tid, op: ObsOp) {
        let mut g = self.state.lock();
        // The critical section's own tick, assigned at Wait() success
        // (identical to the global counter given in-flight exclusion, but
        // robust by construction).
        let k = g.threads[tid.index()].cs_tick;
        {
            let st = &mut g.threads[tid.index()];
            st.last_tick = k;
            st.in_cs = false;
        }
        g.cs_in_flight = false;
        if g.obs.is_some() {
            let dur_nanos = g.threads[tid.index()]
                .cs_start
                .take()
                .map_or(0, |s| s.elapsed().as_nanos() as u64);
            if let Some(obs) = &g.obs {
                obs.tick_end(tid.0, k, dur_nanos, op);
            }
        }

        if g.record.active && g.strategy.needs_queue_stream() {
            g.record.queue_order.push((tid.0, k));
        }
        if g.trace.is_some() {
            let draws = g.prng.draws();
            if let Some(trace) = &mut g.trace {
                trace.push(TraceEvent::Tick {
                    tid: tid.0,
                    tick: k,
                    draws,
                });
            }
        }

        // Deferred signal delivery: the signal arrived while this thread
        // was mid-critical-section; deliver it now so the recorded tick is
        // "the value seen at the most recent Tick()" (§4.3).
        let mine: Vec<(i32, bool)> = {
            let mut mine = Vec::new();
            g.deferred_signals.retain(|(t, s, env)| {
                if *t == tid {
                    mine.push((*s, *env));
                    false
                } else {
                    true
                }
            });
            mine
        };
        for (signo, from_env) in mine {
            g.deliver_now(tid, signo, from_env);
        }

        // Replay: raise recorded signals pinned to (tid, k), and apply
        // signal wakeups for tick k. Wakeups were recorded during the
        // recording run's signal pump, which runs *before* Tick()'s
        // strategy choice — so they must be re-applied before the choice
        // here, or the choice would see a different enabled set (and, for
        // seed-driven strategies, desynchronise the PRNG).
        if g.replay.active {
            if let Some(signos) = g.replay.signals.remove(&(tid.0, k)) {
                g.threads[tid.index()].pending_signals.extend(signos);
            }
            if let Some(events) = g.replay.async_events.get_mut(&k) {
                let events = std::mem::take(events);
                let (wakeups, rest): (Vec<_>, Vec<_>) = events
                    .into_iter()
                    .partition(|e| matches!(e, AsyncEvent::SignalWakeup { .. }));
                g.replay.async_events.insert(k, rest);
                for ev in wakeups {
                    g.apply_async(ev);
                }
            }
        }

        // Strategy: choose the next thread.
        g.choose_next(tid, k);
        if let Some(obs) = &g.obs {
            let next = if g.replay.active && g.strategy.needs_queue_stream() {
                let due = k + 1;
                g.threads
                    .iter()
                    .position(|t| t.next_due == due)
                    .map(|i| i as u32)
            } else {
                g.active.map(|t| t.0)
            };
            obs.sched_event(tid.0, k, EventKind::Decision { next });
        }

        // Replay: apply the remaining async events floated to the end of
        // tick k — reschedules happen after the recording run's Tick()
        // completed, so they float here (Figure 7).
        if g.replay.active {
            if let Some(events) = g.replay.async_events.remove(&k) {
                for ev in events {
                    g.apply_async(ev);
                }
            }
        }

        g.wake_next();
    }

    /// The tick value of the critical section currently owned by the
    /// caller (valid between `wait` and `tick`).
    pub fn tick_value(&self) -> u64 {
        self.state.lock().tick
    }

    /// Slice-mode continuation barrier: blocks until the calling thread is
    /// scheduled again, *without* opening a critical section.
    ///
    /// rr sequentializes everything, including computation between
    /// syscalls; calling this after every `Tick()` makes a thread run its
    /// invisible code only while it holds the slice, reproducing that.
    /// (The sparse tool never calls this: invisible parallelism is its
    /// headline advantage — Figure 3.)
    pub fn hold(&self, tid: Tid) {
        let mut g = self.state.lock();
        let mut slept = false;
        loop {
            if let Some(f) = &g.fail {
                let f = f.clone();
                drop(g);
                std::panic::panic_any(SchedAbort(f));
            }
            if g.threads[tid.index()].status == Status::Finished {
                return;
            }
            if g.eligible(tid) {
                return;
            }
            if slept {
                g.spurious_wakeups += 1;
                if let Some(m) = &g.metrics {
                    m.spurious.inc();
                }
            }
            g.threads[tid.index()].in_wait = true;
            g.in_wait_count += 1;
            if g.replay.active {
                g.check_replay_stall();
                if g.fail.is_some() {
                    g.in_wait_count -= 1;
                    g.threads[tid.index()].in_wait = false;
                    continue;
                }
            }
            let slot = Arc::clone(&g.threads[tid.index()].slot);
            slot.wait(&mut g);
            slept = true;
            g.in_wait_count -= 1;
            g.threads[tid.index()].in_wait = false;
        }
    }

    /// `ThreadNew(tid)` (§3.2): registers a newly created thread; returns
    /// its tid. Must be called inside the parent's critical section.
    pub fn thread_new(&self) -> Tid {
        let mut g = self.state.lock();
        let tid = Tid(g.threads.len() as u32);
        let mut st = ThreadState::new();
        if let Strategy::Slice { quantum } = g.strategy {
            st.slice_left = quantum;
        }
        if g.replay.active && g.strategy.needs_queue_stream() {
            st.next_due = g.replay.first_tick.get(tid.index()).copied().unwrap_or(0);
        }
        if g.replay.active {
            if let Some(signos) = g.replay.signals.remove(&(tid.0, 0)) {
                st.pending_signals.extend(signos);
            }
        }
        g.threads.push(st);
        g.live += 1;
        tid
    }

    /// `ThreadDelete()` (§3.2): the calling thread has finished; enables
    /// any joiner. Must be called inside the thread's final critical
    /// section.
    pub fn thread_finish(&self, tid: Tid) {
        let mut g = self.state.lock();
        g.threads[tid.index()].status = Status::Finished;
        g.live -= 1;
        let joiners: Vec<Tid> = g
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.status == Status::Disabled(WaitReason::Join(tid)))
            .map(|(i, _)| Tid(i as u32))
            .collect();
        for j in joiners {
            g.enable_thread(j);
        }
        // No wakeup: ThreadDelete runs inside the finishing thread's final
        // critical section, so the joiners only become schedulable at the
        // strategy choice of the Tick() that follows — which wakes the one
        // it picks.
    }

    /// `ThreadJoin(tid)` (§3.2): returns `true` if `target` already
    /// finished; otherwise disables the caller until it does.
    pub fn thread_join(&self, tid: Tid, target: Tid) -> bool {
        let mut g = self.state.lock();
        if g.threads[target.index()].status == Status::Finished {
            return true;
        }
        g.disable_thread(tid, WaitReason::Join(target));
        false
    }

    /// `MutexLockFail(m)` (§3.2, Figure 4): the trylock failed; disable
    /// the caller until the mutex is released.
    pub fn mutex_lock_fail(&self, tid: Tid, m: MutexId) {
        let mut g = self.state.lock();
        g.disable_thread(tid, WaitReason::Mutex(m));
    }

    /// `MutexUnlock(m)` (§3.2): re-enables one thread blocked on `m`
    /// (chosen per strategy); returns it, if any.
    pub fn mutex_unlock(&self, m: MutexId) -> Option<Tid> {
        let mut g = self.state.lock();
        let waiters: Vec<Tid> = g
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.status == Status::Disabled(WaitReason::Mutex(m)))
            .map(|(i, _)| Tid(i as u32))
            .collect();
        if waiters.is_empty() {
            return None;
        }
        let chosen = g.pick_one(&waiters);
        g.enable_thread(chosen);
        // No wakeup: MutexUnlock runs inside the releasing thread's
        // critical section (MutexGuard::drop between enter and exit), so
        // the woken waiter cannot run before that section's Tick() picks
        // the next thread anyway.
        Some(chosen)
    }

    /// `CondWait(c)` for an *untimed* wait: disables the caller until a
    /// signal or broadcast re-enables it. Timed waits stay enabled (§3.2)
    /// and are only registered by the sync layer.
    pub fn cond_block(&self, tid: Tid, c: CondId) {
        let mut g = self.state.lock();
        g.disable_thread(tid, WaitReason::Cond(c));
    }

    /// `CondSignal(c)`: re-enables `target` (chosen by the sync layer from
    /// the condvar's waiter list, via [`Scheduler::pick_one_of`]).
    pub fn cond_wake(&self, target: Tid) {
        let mut g = self.state.lock();
        g.enable_thread(target);
        // No wakeup: CondSignal/CondBroadcast run inside the signalling
        // thread's critical section; the re-enabled waiter is woken by the
        // Tick() that chooses it. (Condvar broadcast *semantics* need no
        // OS-level broadcast either — the sync layer calls this once per
        // woken waiter, and each becomes schedulable individually.)
    }

    /// Strategy-appropriate choice among candidates: FIFO order for
    /// queue/slice, PRNG for random/pct. Used for mutex and condvar
    /// wake-ups so the choice is replayable.
    pub fn pick_one_of(&self, candidates: &[Tid]) -> Tid {
        assert!(!candidates.is_empty());
        let mut g = self.state.lock();
        g.pick_one(candidates)
    }

    /// A draw from the scheduler PRNG for non-scheduling nondeterministic
    /// choices (§4: weak-memory load selection). Returns a value `< n`.
    pub fn draw(&self, n: usize) -> usize {
        self.state.lock().prng.below(n)
    }

    /// Delivers a signal to `target`. `from_env` distinguishes genuinely
    /// asynchronous environment signals (recorded in SIGNAL; suppressed
    /// during replay, where the stream raises them) from synchronous,
    /// program-raised signals (never recorded: they reoccur by themselves,
    /// §4.3).
    pub fn deliver_signal(&self, target: Tid, signo: i32, from_env: bool) {
        let mut g = self.state.lock();
        if g.replay.active && from_env {
            return; // replay raises environment signals from SIGNAL
        }
        if g.threads[target.index()].in_cs {
            g.deferred_signals.push((target, signo, from_env));
        } else {
            g.deliver_now(target, signo, from_env);
        }
        // Unlike the mid-critical-section sites above, signals can arrive
        // from invisible code (`signals::raise`) with no Tick() pending,
        // and `deliver_now` may have just enabled a parked thread — hand
        // the wakeup decision to the targeting logic.
        g.wake_next();
    }

    /// Takes a pending signal for `tid`, if any (checked on `Wait()` return
    /// by the instrumentation layer: the handler entry is its own visible
    /// operation).
    pub fn take_pending_signal(&self, tid: Tid) -> Option<i32> {
        self.state.lock().threads[tid.index()]
            .pending_signals
            .pop_front()
    }

    /// `Reschedule()` (§3.3): called by the liveness background thread.
    /// Returns `true` if a reschedule was applied (and, when recording,
    /// logged as an ASYNC event).
    pub fn reschedule(&self) -> bool {
        let mut g = self.state.lock();
        if g.cs_in_flight || g.fail.is_some() || g.replay.active {
            return false;
        }
        let Some(active) = g.active else {
            return false;
        };
        // Only force a reschedule when the active thread is off executing
        // invisible operations while others sit blocked in Wait().
        if g.threads[active.index()].in_wait {
            return false;
        }
        let someone_waiting = g
            .threads
            .iter()
            .enumerate()
            .any(|(i, t)| Tid(i as u32) != active && t.in_wait && t.status == Status::Enabled);
        if !someone_waiting {
            return false;
        }
        let applied = match g.strategy {
            Strategy::Queue | Strategy::Slice { .. } => {
                // FCFS liveness: hand the slot to the next arrival; the
                // displaced thread re-enqueues at its next Wait(). No PRNG
                // draw, so nothing to record (the QUEUE stream captures
                // the final order).
                if let Some(next) = g.arrivals.pop_front() {
                    g.threads[next.index()].queued = false;
                    g.active = Some(next);
                    true
                } else if matches!(g.strategy, Strategy::Slice { .. }) {
                    g.rotate_slice(active)
                } else {
                    false
                }
            }
            Strategy::Random | Strategy::Pct { .. } | Strategy::Delay { .. } => {
                // Logical candidate set (all enabled except the active
                // thread) so the replayed draw sees the same set.
                let candidates: Vec<Tid> = g
                    .threads
                    .iter()
                    .enumerate()
                    .filter(|(i, t)| t.status == Status::Enabled && Tid(*i as u32) != active)
                    .map(|(i, _)| Tid(i as u32))
                    .collect();
                if candidates.is_empty() {
                    false
                } else {
                    let pick = candidates[g.prng.below(candidates.len())];
                    g.active = Some(pick);
                    if let Strategy::Pct { .. } = g.strategy {
                        g.hot = pick;
                    }
                    let tick = g.tick;
                    if g.record.active {
                        g.record.async_events.push(AsyncEvent::Reschedule { tick });
                    }
                    true
                }
            }
        };
        if applied {
            // The reschedule moved `active`; wake the new owner.
            g.wake_next();
        }
        applied
    }

    /// Snapshot of the wakeup accounting.
    pub fn counters(&self) -> SchedCounters {
        let g = self.state.lock();
        SchedCounters {
            ticks: g.tick,
            wakeups_issued: g.wakeups_issued,
            broadcasts: g.broadcasts,
            spurious_wakeups: g.spurious_wakeups,
        }
    }

    /// Marks the execution as failed; all threads unwind via `SchedAbort`.
    pub fn fail(&self, reason: FailReason) {
        let mut g = self.state.lock();
        if g.fail.is_none() {
            g.fail = Some(reason);
        }
        // Teardown is a genuine broadcast point: every parked thread must
        // wake to unwind via SchedAbort.
        g.wake_all();
    }

    /// The failure, if any.
    pub fn failure(&self) -> Option<FailReason> {
        self.state.lock().fail.clone()
    }

    /// Total critical sections executed.
    pub fn total_ticks(&self) -> u64 {
        self.state.lock().tick
    }

    /// Number of live (unfinished) threads.
    #[allow(dead_code)]
    pub fn live_threads(&self) -> usize {
        self.state.lock().live
    }

    /// Extracts the recorded scheduling streams: `(QUEUE, SIGNAL, ASYNC)`.
    pub fn take_recording(&self) -> (QueueStream, Vec<SignalEvent>, Vec<AsyncEvent>) {
        let mut g = self.state.lock();
        let order = std::mem::take(&mut g.record.queue_order);
        let signals = std::mem::take(&mut g.record.signals);
        let async_events = std::mem::take(&mut g.record.async_events);
        (
            build_queue_stream(&order, g.threads.len()),
            signals,
            async_events,
        )
    }
}

/// Builds the paper's QUEUE representation (§4.2) from the per-tick
/// `(tid, tick)` log: the first tick per thread plus, for each critical
/// section in order, the tick at which its thread runs next (0 = never).
fn build_queue_stream(order: &[(u32, u64)], nthreads: usize) -> QueueStream {
    QueueStream::from_order(order, nthreads)
}

impl SchedState {
    fn eligible(&mut self, tid: Tid) -> bool {
        let st = &self.threads[tid.index()];
        if st.status != Status::Enabled {
            return false;
        }
        if self.replay.active && self.strategy.needs_queue_stream() {
            // The in-flight exclusion matters: without it, the thread due
            // at tick k+1 could enter while the owner of tick k is still
            // inside its critical section, corrupting the tick numbering
            // (record mode is protected by `active` instead).
            return !self.cs_in_flight && st.next_due != 0 && st.next_due == self.tick + 1;
        }
        match self.strategy {
            Strategy::Queue => {
                if self.active == Some(tid) {
                    return true;
                }
                if !self.threads[tid.index()].queued {
                    self.arrivals.push_back(tid);
                    self.threads[tid.index()].queued = true;
                }
                if self.active.is_none() && self.arrivals.front() == Some(&tid) {
                    self.arrivals.pop_front();
                    self.threads[tid.index()].queued = false;
                    self.active = Some(tid);
                    return true;
                }
                false
            }
            _ => self.active == Some(tid),
        }
    }

    fn choose_next(&mut self, tid: Tid, k: u64) {
        if self.replay.active && self.strategy.needs_queue_stream() {
            // Consume the next-tick entry for critical section k (§4.2).
            let idx = (k - 1) as usize;
            match self.replay.next_ticks.get(idx) {
                Some(&next) => {
                    self.threads[tid.index()].next_due = next;
                    if let Some(obs) = &self.obs {
                        obs.sched_event(
                            tid.0,
                            k,
                            EventKind::StreamCursor {
                                stream: StreamId::Queue,
                                offset: idx as u64,
                            },
                        );
                    }
                }
                None => {
                    if let Some(obs) = &self.obs {
                        obs.sched_event(tid.0, k, EventKind::Desync);
                    }
                    self.fail = Some(FailReason::Desync(
                        HardDesync::new(
                            k,
                            "queue-schedule",
                            "a next-tick entry",
                            &format!("QUEUE stream exhausted at critical section {k}"),
                        )
                        .with_stream("QUEUE", idx as u64)
                        .with_context(vec![format!("failing thread: T{}", tid.0)]),
                    ));
                }
            }
            return;
        }
        match self.strategy {
            Strategy::Random => {
                let enabled = self.enabled_tids();
                if enabled.is_empty() {
                    self.active = None;
                    self.check_deadlock();
                } else {
                    self.active = Some(enabled[self.prng.below(enabled.len())]);
                }
            }
            Strategy::Pct { switch_denom } => {
                let enabled = self.enabled_tids();
                if enabled.is_empty() {
                    self.active = None;
                    self.check_deadlock();
                } else {
                    let hot_ok = enabled.contains(&self.hot);
                    if !hot_ok || self.prng.below(switch_denom as usize) == 0 {
                        self.hot = enabled[self.prng.below(enabled.len())];
                    }
                    self.active = Some(self.hot);
                }
            }
            Strategy::Queue => {
                if let Some(next) = self.arrivals.pop_front() {
                    self.threads[next.index()].queued = false;
                    self.active = Some(next);
                } else {
                    self.active = None;
                    self.check_deadlock();
                }
            }
            Strategy::Delay { denom, .. } => {
                // Non-preemptive baseline: keep the current thread while
                // it stays enabled; inject a PRNG-placed delay while the
                // budget lasts. Fully derivable from the seeds, so no
                // QUEUE stream is needed.
                let enabled = self.enabled_tids();
                if enabled.is_empty() {
                    self.active = None;
                    self.check_deadlock();
                } else {
                    let current_ok = self.threads[tid.index()].status == Status::Enabled;
                    let delay = self.delay_budget > 0
                        && current_ok
                        && self.prng.below(denom.max(1) as usize) == 0;
                    if delay {
                        self.delay_budget -= 1;
                    }
                    if current_ok && !delay {
                        self.active = Some(tid);
                    } else {
                        // Round-robin to the next enabled thread.
                        let n = self.threads.len();
                        let next = (1..=n)
                            .map(|off| (tid.index() + off) % n)
                            .find(|&i| self.threads[i].status == Status::Enabled)
                            .map(|i| Tid(i as u32));
                        self.active = next;
                        if self.active.is_none() {
                            self.check_deadlock();
                        }
                    }
                }
            }
            Strategy::Slice { quantum } => {
                let st = &mut self.threads[tid.index()];
                if st.slice_left > 0 {
                    st.slice_left -= 1;
                }
                let keep = st.slice_left > 0 && st.status == Status::Enabled;
                if keep {
                    self.active = Some(tid);
                } else {
                    let next_quantum = self.jittered_quantum(quantum);
                    self.threads[tid.index()].slice_left = next_quantum;
                    if !self.rotate_slice(tid) {
                        self.active = None;
                        self.check_deadlock();
                    }
                }
            }
        }
    }

    /// Round-robin rotation for the slice strategy; returns `false` when
    /// no enabled thread exists.
    fn rotate_slice(&mut self, from: Tid) -> bool {
        let n = self.threads.len();
        for off in 1..=n {
            let idx = (from.index() + off) % n;
            if self.threads[idx].status == Status::Enabled {
                if let Strategy::Slice { quantum } = self.strategy {
                    self.threads[idx].slice_left = self.jittered_quantum(quantum);
                }
                self.active = Some(Tid(idx as u32));
                return true;
            }
        }
        false
    }

    /// A quantum with ±25% timing noise (see `slice_jitter`).
    fn jittered_quantum(&mut self, quantum: u32) -> u32 {
        let spread = (quantum / 2).max(1) as usize;
        let base = quantum.saturating_sub(quantum / 4).max(1);
        base + self.slice_jitter.below(spread + 1) as u32
    }

    fn enabled_tids(&self) -> Vec<Tid> {
        self.threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.status == Status::Enabled)
            .map(|(i, _)| Tid(i as u32))
            .collect()
    }

    fn pick_one(&mut self, candidates: &[Tid]) -> Tid {
        match self.strategy {
            Strategy::Queue | Strategy::Slice { .. } | Strategy::Delay { .. } => candidates[0],
            Strategy::Random | Strategy::Pct { .. } => {
                candidates[self.prng.below(candidates.len())]
            }
        }
    }

    fn enable_thread(&mut self, tid: Tid) {
        let st = &mut self.threads[tid.index()];
        if !matches!(st.status, Status::Disabled(_)) {
            return;
        }
        st.status = Status::Enabled;
        // Queue strategy: `eligible()` enqueues a thread when the thread
        // itself checks eligibility — but a thread already parked in
        // `Wait()` will not re-check until woken, and targeted wakeup only
        // wakes threads the strategy can choose, i.e. queued ones. Break
        // the cycle by enqueueing at enable time. Restricted to parked
        // threads: a thread that is still running re-checks (and enqueues)
        // itself at its next `Wait()`, and enqueueing it early would let
        // it disable itself again mid-section while sitting in `arrivals`,
        // violating the invariant that the queue only holds enabled,
        // blocked threads.
        if st.in_wait
            && !st.queued
            && matches!(self.strategy, Strategy::Queue)
            && !self.replay.active
        {
            self.threads[tid.index()].queued = true;
            self.arrivals.push_back(tid);
        }
    }

    fn disable_thread(&mut self, tid: Tid, reason: WaitReason) {
        // No deadlock check here: a thread disabling itself is always
        // mid-critical-section, and the same section may yet enable
        // others (Figure 5's conditional wait disables, *then* releases
        // the mutex and wakes a waiter). Deadlock is judged at the
        // section's Tick(), when the state has settled.
        self.threads[tid.index()].status = Status::Disabled(reason);
    }

    /// A deadlock exists when live threads remain but none is enabled.
    fn check_deadlock(&mut self) {
        if self.fail.is_some() || self.live == 0 {
            return;
        }
        let any_enabled = self.threads.iter().any(|t| t.status == Status::Enabled);
        if !any_enabled {
            self.fail = Some(FailReason::Deadlock);
        }
    }

    /// Targeted wakeup: notify exactly the thread the scheduler wants to
    /// run next, if it is parked. Called wherever the schedulable set may
    /// have changed outside a critical section (end of `Tick()`, async
    /// signal delivery, liveness reschedules).
    fn wake_next(&mut self) {
        if self.fail.is_some() {
            self.wake_all();
            return;
        }
        let target = if self.replay.active && self.strategy.needs_queue_stream() {
            // The demo dictates the owner of the next critical section.
            if self.cs_in_flight {
                None
            } else {
                let due = self.tick + 1;
                (0..self.threads.len()).map(|i| Tid(i as u32)).find(|t| {
                    let st = &self.threads[t.index()];
                    st.status == Status::Enabled && st.next_due == due
                })
            }
        } else if self.active.is_some() {
            self.active
        } else if matches!(self.strategy, Strategy::Queue) {
            // Queue with no active thread: the front arrival claims the
            // slot inside its own `eligible()` check — wake it so it can.
            self.arrivals.front().copied()
        } else {
            None
        };
        if let Some(t) = target {
            if self.threads[t.index()].in_wait {
                self.wakeups_issued += 1;
                if let Some(m) = &self.metrics {
                    m.wakeups.inc();
                }
                if let Some(obs) = &self.obs {
                    obs.sched_event(t.0, self.tick, EventKind::Wakeup { target: t.0 });
                }
                self.threads[t.index()].slot.notify_one();
            }
        }
    }

    /// Broadcast: notify every thread's parking slot. Only for states all
    /// parked threads must observe (execution failure, replay stall).
    fn wake_all(&mut self) {
        self.broadcasts += 1;
        if let Some(m) = &self.metrics {
            m.broadcasts.inc();
        }
        if let Some(obs) = &self.obs {
            obs.sched_event(u32::MAX, self.tick, EventKind::Broadcast);
        }
        for t in &self.threads {
            t.slot.notify_one();
        }
    }

    /// Replay stall: every live thread is blocked in `Wait()` and none is
    /// eligible — the demo's schedule cannot be enforced.
    fn check_replay_stall(&mut self) {
        if self.fail.is_some() || self.live == 0 {
            return;
        }
        // A critical section is executing: its Tick() has yet to choose
        // the next thread, so an apparently-stalled state is transient.
        if self.cs_in_flight {
            return;
        }
        // The caller has already set in_wait and incremented the count.
        if self.in_wait_count < self.live_unfinished_running() {
            return;
        }
        let someone_eligible = (0..self.threads.len()).any(|i| {
            let t = &self.threads[i];
            t.status == Status::Enabled && {
                if self.strategy.needs_queue_stream() {
                    t.next_due != 0 && t.next_due == self.tick + 1
                } else {
                    self.active == Some(Tid(i as u32))
                }
            }
        });
        if !someone_eligible {
            let statuses: Vec<String> = self
                .threads
                .iter()
                .enumerate()
                .map(|(i, t)| {
                    format!(
                        "T{i}:{:?} in_wait={} next_due={} pending={}",
                        t.status,
                        t.in_wait,
                        t.next_due,
                        t.pending_signals.len()
                    )
                })
                .collect();
            if let Some(m) = &self.metrics {
                m.stalls.inc();
            }
            if let Some(obs) = &self.obs {
                obs.sched_event(u32::MAX, self.tick, EventKind::Desync);
            }
            self.fail = Some(FailReason::Desync(
                HardDesync::new(
                    self.tick,
                    "schedule-stall",
                    "an eligible thread per the demo",
                    &format!(
                        "all live threads blocked in Wait() (active={:?}; {})",
                        self.active,
                        statuses.join("; ")
                    ),
                )
                .with_stream("QUEUE", self.tick)
                .with_context(statuses),
            ));
            self.wake_all();
        }
    }

    fn live_unfinished_running(&self) -> usize {
        self.threads
            .iter()
            .filter(|t| t.status != Status::Finished)
            .count()
    }

    /// Immediate signal delivery: record the SIGNAL entry against the
    /// target's most recent tick, pend the signal, and wake the target if
    /// it was disabled (recording the SignalWakeup async event, §4.5).
    fn deliver_now(&mut self, target: Tid, signo: i32, from_env: bool) {
        let last_tick = self.threads[target.index()].last_tick;
        if self.record.active && from_env {
            self.record.signals.push(SignalEvent {
                tid: target.0,
                tick: last_tick,
                signo,
            });
        }
        self.threads[target.index()]
            .pending_signals
            .push_back(signo);
        if let Some(obs) = &self.obs {
            obs.thread_event(target.0, last_tick, EventKind::SignalDelivered { signo });
        }
        if matches!(self.threads[target.index()].status, Status::Disabled(_)) {
            self.enable_thread(target);
            let tick = self.tick;
            if self.record.active {
                self.record.async_events.push(AsyncEvent::SignalWakeup {
                    tid: target.0,
                    tick,
                });
            }
        }
    }

    fn apply_async(&mut self, ev: AsyncEvent) {
        match ev {
            AsyncEvent::Reschedule { .. } => {
                // Burn the same PRNG draw the record-side reschedule used,
                // and (for seed-driven strategies) apply the same re-pick.
                let active = self.active;
                let candidates: Vec<Tid> = self
                    .threads
                    .iter()
                    .enumerate()
                    .filter(|(i, t)| t.status == Status::Enabled && Some(Tid(*i as u32)) != active)
                    .map(|(i, _)| Tid(i as u32))
                    .collect();
                if !candidates.is_empty() {
                    let pick = candidates[self.prng.below(candidates.len())];
                    if !self.strategy.needs_queue_stream() {
                        self.active = Some(pick);
                        if let Strategy::Pct { .. } = self.strategy {
                            self.hot = pick;
                        }
                    }
                }
            }
            AsyncEvent::SignalWakeup { tid, .. } => {
                self.enable_thread(Tid(tid));
            }
        }
    }
}

/// Lock-free-of-context helper so tests can poke internal state is not
/// provided: the scheduler is exercised through the runtime integration
/// tests. A few direct protocol tests live below.
#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn sched(strategy: Strategy) -> Arc<Scheduler> {
        Arc::new(Scheduler::new(strategy, Prng::from_seeds([1, 2])))
    }

    #[test]
    fn main_thread_runs_first_cs_immediately() {
        let s = sched(Strategy::Random);
        s.wait(Tid::MAIN);
        assert_eq!(s.tick_value(), 1);
        s.tick(Tid::MAIN);
        assert_eq!(s.total_ticks(), 1);
    }

    #[test]
    fn queue_strategy_first_arrival_claims() {
        let s = sched(Strategy::Queue);
        s.wait(Tid::MAIN);
        s.tick(Tid::MAIN);
        s.wait(Tid::MAIN);
        s.tick(Tid::MAIN);
        assert_eq!(s.total_ticks(), 2);
    }

    #[test]
    fn two_threads_alternate_under_protocol() {
        let s = sched(Strategy::Random);
        // Register a second thread from within main's critical section.
        s.wait(Tid::MAIN);
        let t1 = s.thread_new();
        s.tick(Tid::MAIN);

        let s2 = Arc::clone(&s);
        let count = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&count);
        let h = std::thread::spawn(move || {
            for _ in 0..10 {
                s2.wait(t1);
                c2.fetch_add(1, Ordering::Relaxed);
                s2.tick(t1);
            }
            s2.wait(t1);
            s2.thread_finish(t1);
            s2.tick(t1);
        });
        for _ in 0..10 {
            s.wait(Tid::MAIN);
            count.fetch_add(1, Ordering::Relaxed);
            s.tick(Tid::MAIN);
        }
        s.wait(Tid::MAIN);
        s.thread_finish(Tid::MAIN);
        s.tick(Tid::MAIN);
        h.join().unwrap();
        assert_eq!(count.load(Ordering::Relaxed), 20);
        assert_eq!(s.total_ticks(), 23); // registration cs + 20 loop cs + 2 finish cs
        assert!(s.failure().is_none());
    }

    #[test]
    fn join_blocks_until_target_finishes() {
        let s = sched(Strategy::Random);
        s.wait(Tid::MAIN);
        let t1 = s.thread_new();
        s.tick(Tid::MAIN);

        let s2 = Arc::clone(&s);
        let h = std::thread::spawn(move || {
            s2.wait(t1);
            s2.thread_finish(t1);
            s2.tick(t1);
        });

        // ThreadJoin loop as in the instrumentation layer.
        loop {
            s.wait(Tid::MAIN);
            let done = s.thread_join(Tid::MAIN, t1);
            s.tick(Tid::MAIN);
            if done {
                break;
            }
        }
        h.join().unwrap();
        assert!(s.failure().is_none());
    }

    #[test]
    fn deadlock_is_detected_when_all_disable() {
        let s = sched(Strategy::Random);
        s.wait(Tid::MAIN);
        // Main disables itself waiting on a mutex no one holds open.
        s.mutex_lock_fail(Tid::MAIN, MutexId(0));
        s.tick(Tid::MAIN);
        assert!(matches!(s.failure(), Some(FailReason::Deadlock)));
        // The next wait unwinds with SchedAbort.
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            s.wait(Tid::MAIN);
        }))
        .unwrap_err();
        assert!(err.downcast_ref::<SchedAbort>().is_some());
    }

    #[test]
    fn mutex_unlock_wakes_one_waiter() {
        let s = sched(Strategy::Random);
        s.wait(Tid::MAIN);
        let t1 = s.thread_new();
        s.tick(Tid::MAIN);
        // t1 blocks on the mutex (simulated directly).
        {
            let mut g = s.state.lock();
            g.threads[t1.index()].status = Status::Disabled(WaitReason::Mutex(MutexId(7)));
        }
        let woken = s.mutex_unlock(MutexId(7));
        assert_eq!(woken, Some(t1));
        assert_eq!(s.state.lock().threads[t1.index()].status, Status::Enabled);
        assert_eq!(s.mutex_unlock(MutexId(7)), None, "no more waiters");
    }

    #[test]
    fn signal_to_idle_thread_is_pended_and_recorded() {
        let s = sched(Strategy::Random);
        s.enable_recording();
        s.wait(Tid::MAIN);
        s.tick(Tid::MAIN); // last_tick = 1
        s.deliver_signal(Tid::MAIN, 15, true);
        assert_eq!(s.take_pending_signal(Tid::MAIN), Some(15));
        assert_eq!(s.take_pending_signal(Tid::MAIN), None);
        let (_, signals, _) = s.take_recording();
        assert_eq!(
            signals,
            vec![SignalEvent {
                tid: 0,
                tick: 1,
                signo: 15
            }]
        );
    }

    #[test]
    fn signal_mid_cs_is_deferred_to_own_tick() {
        let s = sched(Strategy::Random);
        s.enable_recording();
        s.wait(Tid::MAIN); // tick 1 in flight
        s.deliver_signal(Tid::MAIN, 9, true);
        assert_eq!(s.take_pending_signal(Tid::MAIN), None, "not yet delivered");
        s.tick(Tid::MAIN);
        assert_eq!(s.take_pending_signal(Tid::MAIN), Some(9));
        let (_, signals, _) = s.take_recording();
        assert_eq!(
            signals,
            vec![SignalEvent {
                tid: 0,
                tick: 1,
                signo: 9
            }]
        );
    }

    #[test]
    fn signal_to_disabled_thread_records_wakeup() {
        let s = sched(Strategy::Random);
        s.enable_recording();
        s.wait(Tid::MAIN);
        let t1 = s.thread_new();
        s.tick(Tid::MAIN);
        {
            let mut g = s.state.lock();
            g.threads[t1.index()].status = Status::Disabled(WaitReason::Mutex(MutexId(0)));
        }
        s.deliver_signal(t1, 2, true);
        assert_eq!(s.state.lock().threads[t1.index()].status, Status::Enabled);
        let (_, signals, async_events) = s.take_recording();
        assert_eq!(signals.len(), 1);
        assert_eq!(
            async_events,
            vec![AsyncEvent::SignalWakeup { tid: 1, tick: 1 }]
        );
    }

    #[test]
    fn queue_recording_builds_stream() {
        let s = sched(Strategy::Queue);
        s.enable_recording();
        for _ in 0..3 {
            s.wait(Tid::MAIN);
            s.tick(Tid::MAIN);
        }
        let (q, _, _) = s.take_recording();
        assert_eq!(q.first_tick, vec![1]);
        assert_eq!(q.next_ticks, vec![2, 3, 0]);
    }

    #[test]
    fn queue_replay_enforces_recorded_order() {
        let s = sched(Strategy::Queue);
        s.enable_replay(
            &QueueStream {
                first_tick: vec![1],
                next_ticks: vec![2, 0],
            },
            &[],
            &[],
        );
        assert!(s.is_replaying());
        s.wait(Tid::MAIN);
        s.tick(Tid::MAIN);
        s.wait(Tid::MAIN);
        s.tick(Tid::MAIN);
        assert!(s.failure().is_none());
    }

    #[test]
    fn queue_replay_underrun_is_hard_desync() {
        let s = sched(Strategy::Queue);
        s.enable_replay(
            &QueueStream {
                first_tick: vec![1],
                next_ticks: vec![2],
            },
            &[],
            &[],
        );
        s.wait(Tid::MAIN);
        s.tick(Tid::MAIN);
        s.wait(Tid::MAIN);
        s.tick(Tid::MAIN); // consumes entry for cs 2: absent
        match s.failure() {
            Some(FailReason::Desync(d)) => assert_eq!(d.constraint, "queue-schedule"),
            other => panic!("expected desync, got {other:?}"),
        }
    }

    #[test]
    fn replay_signal_raised_at_matching_tick() {
        let s = sched(Strategy::Random);
        s.enable_replay(
            &QueueStream::default(),
            &[SignalEvent {
                tid: 0,
                tick: 2,
                signo: 15,
            }],
            &[],
        );
        s.wait(Tid::MAIN);
        s.tick(Tid::MAIN); // tick 1: nothing
        assert_eq!(s.take_pending_signal(Tid::MAIN), None);
        s.wait(Tid::MAIN);
        s.tick(Tid::MAIN); // tick 2: signal raised at end of Tick()
        assert_eq!(s.take_pending_signal(Tid::MAIN), Some(15));
    }

    #[test]
    fn replay_signal_against_tick_zero_pends_immediately() {
        let s = sched(Strategy::Random);
        s.enable_replay(
            &QueueStream::default(),
            &[SignalEvent {
                tid: 0,
                tick: 0,
                signo: 7,
            }],
            &[],
        );
        assert_eq!(s.take_pending_signal(Tid::MAIN), Some(7));
    }

    #[test]
    fn replay_async_wakeup_enables_thread() {
        let s = sched(Strategy::Random);
        s.enable_replay(
            &QueueStream::default(),
            &[],
            &[AsyncEvent::SignalWakeup { tid: 1, tick: 1 }],
        );
        s.wait(Tid::MAIN);
        let t1 = s.thread_new();
        {
            let mut g = s.state.lock();
            g.threads[t1.index()].status = Status::Disabled(WaitReason::Mutex(MutexId(0)));
        }
        s.tick(Tid::MAIN); // tick 1: wakeup applied after the tick
        assert_eq!(s.state.lock().threads[t1.index()].status, Status::Enabled);
    }

    #[test]
    fn draw_and_pick_are_strategy_appropriate() {
        let s = sched(Strategy::Queue);
        assert!(s.draw(10) < 10);
        let c = [Tid(2), Tid(5)];
        assert_eq!(s.pick_one_of(&c), Tid(2), "queue picks FIFO-first");
        let s = sched(Strategy::Random);
        assert!(c.contains(&s.pick_one_of(&c)));
    }

    #[test]
    fn identical_seeds_give_identical_random_schedules() {
        // Run two executions with three "threads" driven round-robin by
        // one test thread and check the chosen active sequence matches.
        let run = |seeds: [u64; 2]| -> Vec<u32> {
            let s = Scheduler::new(Strategy::Random, Prng::from_seeds(seeds));
            s.wait(Tid::MAIN);
            let _t1 = s.thread_new();
            let _t2 = s.thread_new();
            s.tick(Tid::MAIN);
            let mut picks = Vec::new();
            for _ in 0..20 {
                let active = s.state.lock().active.unwrap();
                picks.push(active.0);
                s.wait(active);
                s.tick(active);
            }
            picks
        };
        assert_eq!(run([7, 9]), run([7, 9]));
        assert_ne!(
            run([7, 9]),
            run([8, 10]),
            "different seeds diverge (w.h.p.)"
        );
    }

    #[test]
    fn pct_strategy_runs_hot_thread_in_streaks() {
        let s = Scheduler::new(
            Strategy::Pct { switch_denom: 1000 },
            Prng::from_seeds([3, 4]),
        );
        s.wait(Tid::MAIN);
        let _t1 = s.thread_new();
        let _t2 = s.thread_new();
        s.tick(Tid::MAIN);
        let mut picks = Vec::new();
        for _ in 0..30 {
            let active = s.state.lock().active.unwrap();
            picks.push(active.0);
            s.wait(active);
            s.tick(active);
        }
        let switches = picks.windows(2).filter(|w| w[0] != w[1]).count();
        assert!(switches <= 3, "hot thread dominates: {picks:?}");
    }

    #[test]
    fn slice_strategy_preempts_and_round_robins() {
        let s = Scheduler::new(Strategy::Slice { quantum: 3 }, Prng::from_seeds([1, 1]));
        s.wait(Tid::MAIN);
        let _t1 = s.thread_new();
        s.tick(Tid::MAIN);
        let mut picks = vec![0u32];
        for _ in 0..20 {
            let active = s.state.lock().active.unwrap();
            picks.push(active.0);
            s.wait(active);
            s.tick(active);
        }
        // Quanta carry ±25% jitter (see `slice_jitter`), so we check the
        // shape, not the exact pattern: both threads run, in runs (few
        // switches), alternating.
        assert!(picks.contains(&0) && picks.contains(&1), "{picks:?}");
        let switches = picks.windows(2).filter(|w| w[0] != w[1]).count();
        assert!(switches >= 2, "preemption happens: {picks:?}");
        assert!(
            switches * 2 <= picks.len(),
            "runs, not fine interleaving: {picks:?}"
        );
    }

    #[test]
    fn delay_strategy_is_nonpreemptive_with_bounded_delays() {
        let s = Scheduler::new(
            Strategy::Delay {
                budget: 2,
                denom: 4,
            },
            Prng::from_seeds([9, 4]),
        );
        s.wait(Tid::MAIN);
        let _t1 = s.thread_new();
        s.tick(Tid::MAIN);
        let mut picks = Vec::new();
        for _ in 0..40 {
            let active = s.state.lock().active.unwrap();
            picks.push(active.0);
            s.wait(active);
            s.tick(active);
        }
        // Non-preemptive baseline + at most `budget` delays: the schedule
        // has at most budget+? switches... each delay causes one switch,
        // and the displaced thread resumes only when the other blocks or
        // is itself delayed — so switches <= 2 * budget.
        let switches = picks.windows(2).filter(|w| w[0] != w[1]).count();
        assert!(switches <= 4, "bounded delays: {picks:?}");
        assert!(picks.contains(&0), "baseline runs main");
    }

    #[test]
    fn delay_strategy_same_seeds_same_schedule() {
        let run = |seeds: [u64; 2]| -> Vec<u32> {
            let s = Scheduler::new(
                Strategy::Delay {
                    budget: 3,
                    denom: 4,
                },
                Prng::from_seeds(seeds),
            );
            s.wait(Tid::MAIN);
            let _t1 = s.thread_new();
            let _t2 = s.thread_new();
            s.tick(Tid::MAIN);
            let mut picks = Vec::new();
            for _ in 0..30 {
                let active = s.state.lock().active.unwrap();
                picks.push(active.0);
                s.wait(active);
                s.tick(active);
            }
            picks
        };
        assert_eq!(run([5, 5]), run([5, 5]));
    }

    #[test]
    fn wakeups_bounded_by_ticks_plus_broadcasts() {
        // With the liveness rescheduler absent and no signals, the only
        // wakeup sources are Tick()'s targeted choice (≤ 1 per tick) and
        // teardown broadcasts — so `wakeups_issued ≤ ticks + broadcasts`.
        // And because every targeted wakeup names an eligible thread, no
        // woken thread should ever find itself ineligible.
        let s = sched(Strategy::Random);
        s.wait(Tid::MAIN);
        let t1 = s.thread_new();
        s.tick(Tid::MAIN);

        let s2 = Arc::clone(&s);
        let h = std::thread::spawn(move || {
            for _ in 0..50 {
                s2.wait(t1);
                s2.tick(t1);
            }
            s2.wait(t1);
            s2.thread_finish(t1);
            s2.tick(t1);
        });
        for _ in 0..50 {
            s.wait(Tid::MAIN);
            s.tick(Tid::MAIN);
        }
        s.wait(Tid::MAIN);
        s.thread_finish(Tid::MAIN);
        s.tick(Tid::MAIN);
        h.join().unwrap();

        let c = s.counters();
        assert!(c.ticks > 0);
        assert!(
            c.wakeups_issued <= c.ticks + c.broadcasts,
            "wakeups {} > ticks {} + broadcasts {}",
            c.wakeups_issued,
            c.ticks,
            c.broadcasts
        );
        assert_eq!(
            c.spurious_wakeups, 0,
            "targeted wakeup must only wake eligible threads"
        );
    }

    #[test]
    fn queue_enable_while_parked_enqueues_for_wakeup() {
        // A thread parked in Wait() while Disabled must be entered into
        // the arrival queue when it is re-enabled, or no targeted wakeup
        // would ever name it (eligible()'s self-enqueue needs the thread
        // to run). Regression test for the enable-time enqueue.
        let s = sched(Strategy::Queue);
        s.wait(Tid::MAIN);
        let t1 = s.thread_new();
        s.tick(Tid::MAIN);

        let s2 = Arc::clone(&s);
        let h = std::thread::spawn(move || {
            // t1 blocks on a mutex inside its first critical section,
            // then parks in Wait() as a Disabled thread.
            s2.wait(t1);
            s2.mutex_lock_fail(t1, MutexId(3));
            s2.tick(t1);
            s2.wait(t1); // parks Disabled; woken only after re-enable
            s2.thread_finish(t1);
            s2.tick(t1);
        });

        // Give t1 time to park, then release the mutex from main's next
        // critical section.
        while !s.state.lock().threads[t1.index()].in_wait {
            std::thread::yield_now();
        }
        s.wait(Tid::MAIN);
        assert_eq!(s.mutex_unlock(MutexId(3)), Some(t1));
        s.tick(Tid::MAIN);
        s.wait(Tid::MAIN);
        s.thread_finish(Tid::MAIN);
        s.tick(Tid::MAIN);
        h.join().unwrap();
        assert!(s.failure().is_none());
    }

    #[test]
    fn fail_unwinds_waiters() {
        let s = sched(Strategy::Random);
        s.fail(FailReason::ProgramPanic("boom".into()));
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            s.wait(Tid::MAIN);
        }))
        .unwrap_err();
        let abort = err
            .downcast_ref::<SchedAbort>()
            .expect("SchedAbort payload");
        assert!(matches!(abort.0, FailReason::ProgramPanic(_)));
    }
}
