//! The execution harness: runs a program under a tool configuration,
//! optionally recording or replaying a demo.

use std::sync::atomic::Ordering as AOrd;
use std::sync::Arc;
use std::time::Instant;

use srr_memmodel::ThreadView;
use srr_obs::{DesyncDiagnostics, StreamCounter};
use srr_replay::{Demo, DemoHeader};
use srr_vos::{AllocMode, Vos, VosConfig};

use crate::config::{Config, RecordMode};
use crate::ids::Tid;
use crate::prng::Prng;
use crate::report::{ExecReport, Outcome};
use crate::runtime::{clear_ctx, install_ctx, Runtime};
use crate::sched::{FailReason, SchedAbort, Scheduler};
use crate::thread::{finish_thread, handle_panic};

/// Installs (once, process-wide) a panic hook that silences the
/// intentional [`SchedAbort`] unwinds the scheduler uses as control flow
/// — they would otherwise spam stderr with backtraces on every detected
/// deadlock or desynchronisation. All other panics keep the default
/// behaviour.
fn install_quiet_abort_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<SchedAbort>().is_some() {
                return; // expected unwind; the harness reports it
            }
            default_hook(info);
        }));
    });
}

/// World-setup callback installed via [`Execution::setup`].
type SetupFn = Box<dyn FnOnce(&Vos) + Send>;

/// Builder for one program execution.
///
/// ```
/// use tsan11rec::{Config, Execution, Mode, Strategy};
///
/// let report = Execution::new(
///     Config::new(Mode::Tsan11Rec(Strategy::Random)).with_seeds([1, 2]),
/// )
/// .run(|| {
///     tsan11rec::sys::println("hello");
/// });
/// assert!(report.outcome.is_ok());
/// assert_eq!(report.console_text(), "hello\n");
/// ```
pub struct Execution {
    config: Config,
    vos_config: VosConfig,
    setup: Option<SetupFn>,
}

impl Execution {
    /// An execution under `config` with a deterministic virtual world.
    #[must_use]
    pub fn new(config: Config) -> Self {
        Execution {
            config,
            vos_config: VosConfig::deterministic(0x5eed),
            setup: None,
        }
    }

    /// Replaces the virtual-OS configuration.
    #[must_use]
    pub fn with_vos(mut self, vos_config: VosConfig) -> Self {
        self.vos_config = vos_config;
        self
    }

    /// Installs world state (listeners, devices, files, signal sources)
    /// before the program starts.
    #[must_use]
    pub fn setup(mut self, f: impl FnOnce(&Vos) + Send + 'static) -> Self {
        self.setup = Some(Box::new(f));
        self
    }

    /// Runs `program` without recording.
    pub fn run<F>(self, program: F) -> ExecReport
    where
        F: FnOnce() + Send + 'static,
    {
        self.launch(program, RecordMode::Off, None).0
    }

    /// Runs `program` while recording; returns the report and the demo.
    ///
    /// # Panics
    ///
    /// Panics if the mode is not `Tsan11Rec` (only controlled executions
    /// can record).
    pub fn record<F>(self, program: F) -> (ExecReport, Demo)
    where
        F: FnOnce() + Send + 'static,
    {
        assert!(
            self.config.mode.is_controlled(),
            "recording requires a controlled (Tsan11Rec) mode"
        );
        let (report, demo) = self.launch(program, RecordMode::Record, None);
        (report, demo.expect("record mode produces a demo"))
    }

    /// Replays `demo` over `program`.
    ///
    /// # Panics
    ///
    /// Panics if the mode is not `Tsan11Rec`, or if the demo's strategy
    /// does not match the configuration's.
    pub fn replay<F>(mut self, demo: &Demo, program: F) -> ExecReport
    where
        F: FnOnce() + Send + 'static,
    {
        let strategy = self
            .config
            .mode
            .strategy()
            .expect("replay requires a controlled (Tsan11Rec) mode");
        assert_eq!(
            demo.header.strategy,
            strategy.name(),
            "demo was recorded under a different strategy"
        );
        // Replay reuses the recorded seeds: for the random strategy they
        // *are* the interleaving (§4.2).
        self.config.seeds = Some(demo.header.seeds);
        // A comprehensive demo carries the allocator stream; replaying it
        // reproduces pointer values (what rr does, §5.5).
        if !demo.alloc.is_empty() {
            self.vos_config = self.vos_config.with_alloc(AllocMode::Scripted {
                addresses: demo.alloc.clone(),
            });
        }
        self.launch(program, RecordMode::Replay, Some(demo)).0
    }

    fn launch<F>(
        self,
        program: F,
        rec_mode: RecordMode,
        demo: Option<&Demo>,
    ) -> (ExecReport, Option<Demo>)
    where
        F: FnOnce() + Send + 'static,
    {
        install_quiet_abort_hook();
        let Execution {
            config,
            vos_config,
            setup,
        } = self;
        let seeds = config.seeds.unwrap_or_else(Prng::environment_seeds);
        let record_alloc = config.record_alloc;
        let vos = Arc::new(Vos::new(vos_config));
        if let Some(setup) = setup {
            setup(&vos);
        }

        let strategy = config.mode.strategy();
        let liveness = config.liveness;
        let trace_schedule = config.trace_schedule;
        let trace_sync = config.trace_sync;
        let race_target = config.race_target.clone();
        let metrics = config.metrics.clone();
        let rt = Runtime::new(config, Arc::clone(&vos), seeds);
        if let Some((label, a, b)) = &race_target {
            rt.racedet
                .lock()
                .set_target(label.clone(), *a as usize, *b as usize);
        }
        if trace_schedule && rt.mode().is_controlled() {
            rt.sched().enable_trace();
        }
        if trace_sync && rt.mode().is_controlled() {
            rt.enable_sync_trace();
        }
        if let Some(reg) = &metrics {
            if rt.mode().is_controlled() {
                rt.sched().enable_metrics(reg);
            }
        }

        match (&rec_mode, demo) {
            (RecordMode::Record, _) => {
                rt.sched().enable_recording();
                rt.set_record_mode(RecordMode::Record, Vec::new());
            }
            (RecordMode::Replay, Some(demo)) => {
                rt.sched()
                    .enable_replay(&demo.queue, &demo.signals, &demo.async_events);
                rt.set_record_mode(RecordMode::Replay, demo.syscalls.clone());
            }
            _ => {}
        }

        // The liveness rescheduler (§3.3): tsan's background thread
        // periodically forces a reschedule when the active thread sits in
        // invisible code.
        let liveness_handle = match (rt.mode().is_controlled(), liveness) {
            (true, Some(interval)) => {
                let rt2 = Arc::clone(&rt);
                Some(std::thread::spawn(move || {
                    while !rt2.stop_liveness.load(AOrd::Relaxed) {
                        std::thread::sleep(interval);
                        rt2.sched().reschedule();
                    }
                }))
            }
            _ => None,
        };

        let start = Instant::now();
        let rt_main = Arc::clone(&rt);
        let main = std::thread::spawn(move || {
            install_ctx(Arc::clone(&rt_main), Tid::MAIN, ThreadView::new(0));
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(program));
            match outcome {
                Ok(()) => finish_thread(&rt_main, Tid::MAIN),
                Err(payload) => handle_panic(&rt_main, Tid::MAIN, payload),
            }
            clear_ctx();
        });
        let _ = main.join();

        // Wait for every program thread (programs may leak unjoined
        // threads; their logical ThreadDelete keeps the scheduler sound,
        // and we still want the OS threads gone before reporting).
        loop {
            let handle = rt.os_handles.lock().pop();
            match handle {
                Some(h) => {
                    let _ = h.join();
                }
                None => break,
            }
        }
        // Measure before reaping the liveness thread: its sleep interval
        // must not put a floor under short executions' durations.
        let duration = start.elapsed();
        rt.stop_liveness.store(true, AOrd::Relaxed);
        if let Some(h) = liveness_handle {
            let _ = h.join();
        }

        let mut outcome = match rt.sched.as_ref().and_then(|s| s.failure()) {
            Some(FailReason::Deadlock) => Outcome::Deadlock,
            Some(FailReason::Desync(d)) => Outcome::HardDesync(d),
            Some(FailReason::ProgramPanic(msg)) => Outcome::Panicked(msg),
            None => match rt.panic_note.lock().clone() {
                Some(msg) => Outcome::Panicked(msg),
                None => Outcome::Completed,
            },
        };

        let (races, race_reports, suppressed, race_target_hit) = {
            let mut det = rt.racedet.lock();
            let races = det.race_count();
            let mut sink = srr_racedet::CollectSink::default();
            det.drain_into(&mut sink);
            let hit = race_target.is_some().then(|| det.target_hit());
            (races, sink.reports, det.suppressed_count(), hit)
        };

        let produced_demo = if rec_mode == RecordMode::Record {
            let (queue, signals, async_events) = rt.sched().take_recording();
            let strategy = strategy.expect("record mode is controlled");
            let mut d = Demo::new(DemoHeader::new("tsan11rec", strategy.name(), seeds));
            d.queue = queue;
            d.signals = signals;
            d.async_events = async_events;
            d.syscalls = rt.take_syscall_recording();
            if record_alloc {
                d.alloc = vos.alloc_log();
            }
            Some(d)
        } else {
            None
        };

        let sync_trace = rt.take_sync_trace().unwrap_or_default();
        let analysis = if sync_trace.events.is_empty() {
            Vec::new()
        } else {
            srr_analysis::analyze(&sync_trace)
        };

        let mut obs_report = rt.obs.as_ref().map(|o| o.finish()).unwrap_or_default();
        // Stream counters describe the demo the run produced or consumed;
        // they cost nothing to compute and are reported even with the
        // event trace off.
        if let Some(d) = produced_demo.as_ref().or(demo) {
            obs_report.streams = demo_stream_counters(d);
        }
        if let Outcome::HardDesync(hd) = &mut outcome {
            // Diagnose the divergence: the demo's intended schedule vs
            // the ticks the trace actually saw (empty without tracing —
            // the report still pinpoints the failing stream entry).
            let recorded = demo.map(|d| d.queue.schedule_order()).unwrap_or_default();
            let diag = DesyncDiagnostics::build(
                hd.tick,
                &hd.constraint,
                &hd.stream,
                hd.offset,
                &recorded,
                &obs_report,
            );
            hd.context.extend(diag.summary_lines());
            obs_report.desync = Some(diag);
        }

        let report = ExecReport {
            outcome,
            races,
            race_reports,
            suppressed,
            race_target_hit,
            ticks: rt.sched.as_ref().map_or(0, |s| s.total_ticks()),
            visible_ops: rt.visible_ops(),
            syscalls: vos.syscall_count(),
            duration,
            console: vos.console(),
            demo_bytes: produced_demo.as_ref().map(Demo::size_bytes),
            replay_leftover_syscalls: rt.replay_leftover(),
            schedule_trace: rt
                .sched
                .as_ref()
                .map(|s| s.take_trace())
                .unwrap_or_default(),
            strace: vos.take_strace(),
            sync_trace,
            analysis,
            sched: rt
                .sched
                .as_ref()
                .map(Scheduler::counters)
                .unwrap_or_default(),
            obs: obs_report,
            plan: rt.plan_counters(),
        };
        if let Some(reg) = &metrics {
            vos.publish_metrics(reg);
            reg.gauge("run_ticks").set(report.ticks);
            reg.gauge("run_visible_ops").set(report.visible_ops);
            if report.plan.sites > 0 {
                reg.counter("plan_sites_total").add(report.plan.sites);
                reg.counter("plan_filtered_total")
                    .add(report.plan.filtered_events);
            }
            for s in &report.obs.streams {
                reg.gauge(&format!("vos_stream_entries{{stream=\"{}\"}}", s.stream))
                    .set(s.entries);
                reg.gauge(&format!("vos_stream_bytes{{stream=\"{}\"}}", s.stream))
                    .set(s.bytes);
            }
        }
        (report, produced_demo)
    }
}

/// Per-stream entry and serialized-byte counters for a demo, keyed the
/// way the demo directory is laid out on disk.
fn demo_stream_counters(demo: &Demo) -> Vec<StreamCounter> {
    let sizes = demo.to_string_map();
    let bytes = |name: &str| sizes.get(name).map_or(0, |t| t.len() as u64);
    let entry = |name: &str, entries: u64| StreamCounter {
        stream: name.to_owned(),
        entries,
        bytes: bytes(name),
    };
    vec![
        entry("HEADER", 1),
        entry(
            "QUEUE",
            (demo.queue.first_tick.len() + demo.queue.next_ticks.len()) as u64,
        ),
        entry("SIGNAL", demo.signals.len() as u64),
        entry("SYSCALL", demo.syscalls.len() as u64),
        entry("ASYNC", demo.async_events.len() as u64),
        entry("ALLOC", demo.alloc.len() as u64),
    ]
}
