//! Tool configuration: modes, strategies and the sparse recording set.

use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Duration;

use srr_obs::{MetricsRegistry, TraceSpec};

/// Scheduling strategy for controlled modes (§3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// Pick the next thread uniformly at random among enabled threads at
    /// each tick. The whole interleaving is a function of the seeds.
    Random,
    /// First-come-first-served among threads arriving at `Wait()`;
    /// order is physical-timing-dependent and recorded in QUEUE.
    Queue,
    /// PCT-style skewed random (the paper's §7 future-work direction):
    /// keep scheduling one "hot" thread; with probability `1/switch_denom`
    /// per tick, move the hot role to a uniformly random thread.
    Pct {
        /// Expected run length: hot thread switches with probability
        /// `1/switch_denom` per tick.
        switch_denom: u32,
    },
    /// rr-style sequentialized round-robin with a visible-op time slice
    /// (used by the `srr-rr` baseline). Order recorded in QUEUE.
    Slice {
        /// Visible operations per slice before preemption.
        quantum: u32,
    },
    /// Delay bounding (Emmi et al., POPL 2011 — the §7 future-work
    /// direction): a deterministic non-preemptive round-robin baseline
    /// scheduler, plus a small budget of PRNG-placed *delays*, each of
    /// which deschedules the running thread at one point. Empirically,
    /// most concurrency bugs need only a few delays.
    Delay {
        /// Maximum delays injected per execution.
        budget: u32,
        /// A delay fires with probability `1/denom` per visible
        /// operation while budget remains.
        denom: u32,
    },
}

impl Strategy {
    /// Name written into demo headers.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Strategy::Random => "random",
            Strategy::Queue => "queue",
            Strategy::Pct { .. } => "pct",
            Strategy::Slice { .. } => "slice",
            Strategy::Delay { .. } => "delay",
        }
    }

    /// Whether this strategy's interleaving must be recorded in QUEUE
    /// (physically-timed strategies) or is derivable from the seeds.
    #[must_use]
    pub fn needs_queue_stream(self) -> bool {
        matches!(self, Strategy::Queue | Strategy::Slice { .. })
    }
}

/// Top-level tool mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// No instrumentation beyond pass-through: the native baseline.
    Native,
    /// tsan11: race detection + weak memory semantics, OS scheduling,
    /// no record/replay.
    Tsan11,
    /// tsan11rec: controlled scheduling + race detection + optional
    /// record/replay.
    Tsan11Rec(Strategy),
}

impl Mode {
    /// Whether visible operations are wrapped in `Wait()`/`Tick()`.
    #[must_use]
    pub fn is_controlled(self) -> bool {
        matches!(self, Mode::Tsan11Rec(_))
    }

    /// Whether race detection and the weak memory model are active.
    #[must_use]
    pub fn is_instrumented(self) -> bool {
        !matches!(self, Mode::Native)
    }

    /// The strategy, if controlled.
    #[must_use]
    pub fn strategy(self) -> Option<Strategy> {
        match self {
            Mode::Tsan11Rec(s) => Some(s),
            _ => None,
        }
    }
}

/// Which syscalls the sparse recorder captures (§4.4).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SparseConfig {
    /// Syscall kinds to record.
    recorded: BTreeSet<String>,
    /// Record `read`/`write` when the fd is a pipe (the paper found this
    /// necessary for IPC pipes but wasteful for regular files).
    pub record_pipe_rw: bool,
    /// Record `read`/`write` when the fd is a regular file.
    pub record_file_rw: bool,
    /// Ignore `ioctl` entirely: do not record it while recording and
    /// re-issue it natively during replay (the §5.4 games workaround).
    pub ignore_ioctl: bool,
}

impl SparseConfig {
    /// The paper's supported set: read, write, recvmsg, recv, sendmsg,
    /// accept, accept4, clock_gettime, ioctl, select and bind — with
    /// pipe-but-not-file read/write recording.
    #[must_use]
    pub fn paper_default() -> Self {
        let recorded = [
            "read",
            "write",
            "recvmsg",
            "recv",
            "send", // the paper's examples record send results too (Fig 2)
            "sendmsg",
            "accept",
            "accept4",
            "clock_gettime",
            "ioctl",
            "select",
            "poll", // httpd's epoll→poll workaround makes poll essential
            "bind",
        ];
        SparseConfig {
            recorded: recorded.iter().map(|s| (*s).to_owned()).collect(),
            record_pipe_rw: true,
            record_file_rw: false,
            ignore_ioctl: false,
        }
    }

    /// The games configuration: the paper's set with ioctl ignored.
    #[must_use]
    pub fn games() -> Self {
        let mut c = SparseConfig::paper_default();
        c.ignore_ioctl = true;
        c
    }

    /// Record nothing (the "empty demo": trivially synchronised, soft
    /// desynchronised nearly everywhere).
    #[must_use]
    pub fn none() -> Self {
        SparseConfig {
            recorded: BTreeSet::new(),
            record_pipe_rw: false,
            record_file_rw: false,
            ignore_ioctl: true,
        }
    }

    /// Record every syscall kind the vOS offers (what a comprehensive,
    /// rr-style recorder does).
    #[must_use]
    pub fn comprehensive() -> Self {
        let mut c = SparseConfig::paper_default();
        c.recorded.insert("open".into());
        c.recorded.insert("close".into());
        c.recorded.insert("pipe".into());
        c.record_file_rw = true;
        c
    }

    /// Adds a syscall kind to the recorded set.
    #[must_use]
    pub fn with(mut self, kind: &str) -> Self {
        self.recorded.insert(kind.to_owned());
        self
    }

    /// Removes a syscall kind from the recorded set.
    #[must_use]
    pub fn without(mut self, kind: &str) -> Self {
        self.recorded.remove(kind);
        self
    }

    /// Whether `kind` is in the recorded set (before fd classification).
    #[must_use]
    pub fn records_kind(&self, kind: &str) -> bool {
        self.recorded.contains(kind)
    }

    /// Number of recorded kinds.
    #[must_use]
    pub fn recorded_len(&self) -> usize {
        self.recorded.len()
    }
}

impl Default for SparseConfig {
    fn default() -> Self {
        SparseConfig::paper_default()
    }
}

/// How a plan rules on one plain-access label.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlanDecision {
    /// A statically proven `Conflict` site (or no plan armed): record.
    Record,
    /// Statically proven `Local`/`Guarded`: the access still feeds the
    /// race detector but is filtered out of the trace ring.
    Filtered,
    /// The plan has never heard of this label — the plan is stale or
    /// the label is built at runtime. Fail open: record, and flag it.
    Unplanned,
}

/// Runtime form of an `srr plan` access plan: which plain-access labels
/// must still be recorded (`Conflict`-classified sites) and which the
/// analysis has proven race-free. Built from an `srr-plan` report by
/// the CLI/harness; srr-core stays independent of the analysis crate.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AccessPlan {
    /// Labels whose accesses stay in the trace ring.
    record: BTreeSet<String>,
    /// Every label the plan classified (recorded or filtered).
    known: BTreeSet<String>,
}

impl AccessPlan {
    /// Builds a plan from the set of labels to keep recording and the
    /// set of all statically known labels (a superset of `record`).
    #[must_use]
    pub fn new(
        record: impl IntoIterator<Item = String>,
        known: impl IntoIterator<Item = String>,
    ) -> Self {
        let record: BTreeSet<String> = record.into_iter().collect();
        let mut known: BTreeSet<String> = known.into_iter().collect();
        known.extend(record.iter().cloned());
        AccessPlan { record, known }
    }

    /// Rules on a runtime location label. `SharedArray` cells are
    /// labeled `base[i]`; they inherit the base label's ruling.
    #[must_use]
    pub fn decide(&self, label: &str) -> PlanDecision {
        let base = match label.rfind('[') {
            Some(at) if label.ends_with(']') => &label[..at],
            _ => label,
        };
        if self.record.contains(label) || self.record.contains(base) {
            PlanDecision::Record
        } else if self.known.contains(label) || self.known.contains(base) {
            PlanDecision::Filtered
        } else {
            PlanDecision::Unplanned
        }
    }

    /// Number of labels the plan keeps recording.
    #[must_use]
    pub fn recorded_len(&self) -> usize {
        self.record.len()
    }

    /// Number of labels the plan knows.
    #[must_use]
    pub fn known_len(&self) -> usize {
        self.known.len()
    }
}

/// Record/replay selection for an execution.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum RecordMode {
    /// Neither record nor replay.
    #[default]
    Off,
    /// Record a demo.
    Record,
    /// Replay the given demo (held by the harness).
    Replay,
}

/// Full tool configuration.
#[derive(Clone, Debug)]
pub struct Config {
    /// Tool mode.
    pub mode: Mode,
    /// PRNG seeds; `None` means sample from the environment.
    pub seeds: Option<[u64; 2]>,
    /// Materialize race reports (§5.2's "Race reports" vs "No reports").
    pub report_races: bool,
    /// The sparse recording set.
    pub sparse: SparseConfig,
    /// Liveness reschedule interval (§3.3); `None` disables the
    /// background rescheduler.
    pub liveness: Option<Duration>,
    /// Per-location store-history bound for the weak memory model.
    pub history_cap: usize,
    /// Thread that receives asynchronous process-directed signals.
    pub signal_target: u32,
    /// Record the allocator's address stream (comprehensive, rr-style
    /// recorders only — sparse tsan11rec deliberately does not, §5.5).
    pub record_alloc: bool,
    /// Collect the full `(tid, tick)` schedule trace into the report
    /// (diagnostics; off by default).
    pub trace_schedule: bool,
    /// Collect the structured synchronisation-event trace and run the
    /// offline analysis passes (`srr-analysis`) over it at the end of the
    /// run. Controlled modes only; off by default.
    pub trace_sync: bool,
    /// Run the race detector and weak memory model. Disabled by the
    /// plain-rr baseline, which sequentializes and records but performs
    /// no analysis (§5's "rr" rows, as opposed to "tsan11 + rr").
    pub detect_races: bool,
    /// Structured observability tracing (`srr-obs`): per-thread event
    /// rings, latency histograms and exporters. `None` (the default)
    /// means no collector is even constructed, so the hot path pays only
    /// an `Option` check.
    pub trace: Option<TraceSpec>,
    /// Also emit plain `Shared` accesses into the sync-event trace
    /// (needed by predictive race detection; off by default because
    /// plain accesses dominate trace volume). Requires `trace_sync`.
    pub trace_access: bool,
    /// Pair-targeted race checking: `(location label, tid A, tid B)`.
    /// When the detector fires on that location between those threads,
    /// `ExecReport::race_target_hit` is set — how witness replays confirm
    /// a predicted race fired at the predicted pair.
    pub race_target: Option<(String, u32, u32)>,
    /// The unified metrics plane (`srr-obs::metrics`). When set, the
    /// scheduler, the vOS and the demo-stream accounting publish named
    /// counters here; `None` (the default) skips registration entirely.
    pub metrics: Option<Arc<MetricsRegistry>>,
    /// Static sparsification plan (`srr plan`): when set (implies
    /// `trace_access`), only `Conflict`-classified labels emit
    /// `PlainAccess` trace events — sparse by proof. Unplanned labels
    /// fail open (recorded + counted as plan staleness). Race
    /// detection itself is unaffected; the plan filters the *trace*.
    pub access_plan: Option<Arc<AccessPlan>>,
}

impl Config {
    /// A configuration for the given mode with paper defaults.
    #[must_use]
    pub fn new(mode: Mode) -> Self {
        Config {
            mode,
            seeds: None,
            report_races: true,
            sparse: SparseConfig::paper_default(),
            liveness: Some(Duration::from_millis(10)),
            history_cap: srr_memmodel::DEFAULT_HISTORY_CAP,
            signal_target: 0,
            record_alloc: false,
            trace_schedule: false,
            trace_sync: false,
            detect_races: true,
            trace: None,
            trace_access: false,
            race_target: None,
            metrics: None,
            access_plan: None,
        }
    }

    /// Sets fixed seeds (tests and replay).
    #[must_use]
    pub fn with_seeds(mut self, seeds: [u64; 2]) -> Self {
        self.seeds = Some(seeds);
        self
    }

    /// Disables race-report materialization.
    #[must_use]
    pub fn without_reports(mut self) -> Self {
        self.report_races = false;
        self
    }

    /// Replaces the sparse set.
    #[must_use]
    pub fn with_sparse(mut self, sparse: SparseConfig) -> Self {
        self.sparse = sparse;
        self
    }

    /// Disables the liveness rescheduler (fully deterministic runs).
    #[must_use]
    pub fn without_liveness(mut self) -> Self {
        self.liveness = None;
        self
    }

    /// Sets the signal target thread.
    #[must_use]
    pub fn with_signal_target(mut self, tid: u32) -> Self {
        self.signal_target = tid;
        self
    }

    /// Enables allocator-stream recording (the rr baseline's behaviour).
    #[must_use]
    pub fn with_alloc_recording(mut self) -> Self {
        self.record_alloc = true;
        self
    }

    /// Enables schedule tracing (diagnostics).
    #[must_use]
    pub fn with_schedule_trace(mut self) -> Self {
        self.trace_schedule = true;
        self
    }

    /// Enables sync-event tracing and post-run analysis.
    #[must_use]
    pub fn with_sync_trace(mut self) -> Self {
        self.trace_sync = true;
        self
    }

    /// Disables race detection and the weak memory model entirely
    /// (visible operations remain scheduling points). The plain-rr
    /// baseline configuration.
    #[must_use]
    pub fn without_race_detection(mut self) -> Self {
        self.detect_races = false;
        self
    }

    /// Enables structured observability tracing (event rings, histograms,
    /// exporters) with the given spec.
    #[must_use]
    pub fn with_trace(mut self, spec: TraceSpec) -> Self {
        self.trace = Some(spec);
        self
    }

    /// Also records plain `Shared` accesses into the sync-event trace
    /// (implies [`Config::with_sync_trace`]). Predictive race detection
    /// needs the access stream; the misuse lints benefit from it too.
    #[must_use]
    pub fn with_access_trace(mut self) -> Self {
        self.trace_sync = true;
        self.trace_access = true;
        self
    }

    /// Attaches the unified metrics plane: scheduler wakeup/stall
    /// counters, per-stream demo bytes and vOS totals are published onto
    /// `registry` during the run.
    #[must_use]
    pub fn with_metrics(mut self, registry: Arc<MetricsRegistry>) -> Self {
        self.metrics = Some(registry);
        self
    }

    /// Arms pair-targeted race checking on `label` between threads `a`
    /// and `b` (order-insensitive).
    #[must_use]
    pub fn with_race_target(mut self, label: &str, a: u32, b: u32) -> Self {
        self.race_target = Some((label.to_owned(), a, b));
        self
    }

    /// Arms a static access plan (implies [`Config::with_access_trace`]):
    /// only labels the plan marked `Conflict` keep emitting `PlainAccess`
    /// events; statically proven sites are filtered, and labels the plan
    /// has never seen fail open (recorded, flagged as plan staleness).
    #[must_use]
    pub fn with_access_plan(mut self, plan: AccessPlan) -> Self {
        self.trace_sync = true;
        self.trace_access = true;
        self.access_plan = Some(Arc::new(plan));
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_names_and_queue_needs() {
        assert_eq!(Strategy::Random.name(), "random");
        assert_eq!(Strategy::Queue.name(), "queue");
        assert_eq!(Strategy::Pct { switch_denom: 8 }.name(), "pct");
        assert_eq!(Strategy::Slice { quantum: 10 }.name(), "slice");
        assert!(!Strategy::Random.needs_queue_stream());
        assert!(!Strategy::Pct { switch_denom: 8 }.needs_queue_stream());
        assert!(Strategy::Queue.needs_queue_stream());
        assert!(Strategy::Slice { quantum: 10 }.needs_queue_stream());
    }

    #[test]
    fn mode_classification() {
        assert!(!Mode::Native.is_controlled());
        assert!(!Mode::Native.is_instrumented());
        assert!(!Mode::Tsan11.is_controlled());
        assert!(Mode::Tsan11.is_instrumented());
        let rec = Mode::Tsan11Rec(Strategy::Random);
        assert!(rec.is_controlled());
        assert!(rec.is_instrumented());
        assert_eq!(rec.strategy(), Some(Strategy::Random));
        assert_eq!(Mode::Tsan11.strategy(), None);
    }

    #[test]
    fn paper_default_matches_section_4_4() {
        let c = SparseConfig::paper_default();
        for kind in [
            "read",
            "write",
            "recvmsg",
            "recv",
            "sendmsg",
            "accept",
            "accept4",
            "clock_gettime",
            "ioctl",
            "select",
            "bind",
        ] {
            assert!(c.records_kind(kind), "{kind} must be in the paper's set");
        }
        assert!(c.record_pipe_rw);
        assert!(!c.record_file_rw);
        assert!(!c.ignore_ioctl);
    }

    #[test]
    fn games_config_ignores_ioctl() {
        assert!(SparseConfig::games().ignore_ioctl);
    }

    #[test]
    fn with_without_modify_set() {
        let c = SparseConfig::none().with("recv");
        assert!(c.records_kind("recv"));
        assert_eq!(c.recorded_len(), 1);
        let c = c.without("recv");
        assert!(!c.records_kind("recv"));
    }

    #[test]
    fn comprehensive_is_superset() {
        let c = SparseConfig::comprehensive();
        assert!(c.records_kind("open"));
        assert!(c.record_file_rw);
    }

    #[test]
    fn access_plan_rules_on_labels_and_array_cells() {
        let plan = AccessPlan::new(
            ["cell".to_owned()],
            ["cell".to_owned(), "scratch".to_owned(), "slots".to_owned()],
        );
        assert_eq!(plan.decide("cell"), PlanDecision::Record);
        assert_eq!(plan.decide("scratch"), PlanDecision::Filtered);
        assert_eq!(plan.decide("slots[3]"), PlanDecision::Filtered);
        assert_eq!(plan.decide("cell[0]"), PlanDecision::Record);
        assert_eq!(plan.decide("mystery"), PlanDecision::Unplanned);
        assert_eq!(plan.recorded_len(), 1);
        assert_eq!(plan.known_len(), 3);
    }

    #[test]
    fn access_plan_known_is_superset_of_record() {
        let plan = AccessPlan::new(["hot".to_owned()], []);
        assert_eq!(plan.decide("hot"), PlanDecision::Record);
        assert_eq!(plan.known_len(), 1);
    }

    #[test]
    fn with_access_plan_implies_access_trace() {
        let c = Config::new(Mode::Tsan11Rec(Strategy::Queue))
            .with_access_plan(AccessPlan::new(["cell".to_owned()], []));
        assert!(c.trace_sync);
        assert!(c.trace_access);
        let plan = c.access_plan.as_ref().expect("plan armed");
        assert_eq!(plan.decide("cell"), PlanDecision::Record);
    }

    #[test]
    fn config_builders() {
        let c = Config::new(Mode::Tsan11Rec(Strategy::Queue))
            .with_seeds([1, 2])
            .without_reports()
            .without_liveness()
            .with_signal_target(2);
        assert_eq!(c.seeds, Some([1, 2]));
        assert!(!c.report_races);
        assert!(c.liveness.is_none());
        assert_eq!(c.signal_target, 2);
        assert!(c.trace.is_none(), "tracing is off by default");
        let traced = c.with_trace(TraceSpec::new().with_ring_capacity(64));
        assert_eq!(traced.trace.unwrap().ring_capacity, 64);
    }

    #[test]
    fn access_trace_implies_sync_trace() {
        let c = Config::new(Mode::Tsan11Rec(Strategy::Queue)).with_access_trace();
        assert!(c.trace_sync);
        assert!(c.trace_access);
        assert!(
            !Config::new(Mode::Tsan11Rec(Strategy::Queue))
                .with_sync_trace()
                .trace_access,
            "sync trace alone leaves plain accesses out"
        );
        let t = c.with_race_target("x", 2, 1);
        assert_eq!(t.race_target, Some(("x".to_owned(), 2, 1)));
    }
}
