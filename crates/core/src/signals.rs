//! Signal-handler registration (§3.2, §4.3).
//!
//! The `signal` function that binds a handler is itself a visible
//! operation; the *entry* into a handler is likewise a visible operation,
//! managed by the runtime's `enter` (a pending signal is consumed at a
//! `Wait()` boundary and its handler runs in its own critical section,
//! which on replay makes the asynchronous signal synchronous — Figure 6).

use std::sync::Arc;

use crate::runtime::{current_rt, with_ctx};

/// Installs `handler` for `signo` (the `signal(2)` analogue).
///
/// Inside a handler, only atomic operations interact with the rest of the
/// process (§4.3) — the handler body may freely use [`crate::Atomic`].
pub fn set_handler(signo: i32, handler: impl Fn() + Send + Sync + 'static) {
    let Some((rt, tid)) = current_rt() else {
        panic!("signals::set_handler outside an execution");
    };
    rt.enter(tid);
    with_ctx(|ctx| ctx.view.tick());
    rt.set_handler(signo, Arc::new(handler));
    rt.exit(tid);
}

/// Raises `signo` synchronously on the current thread: the handler runs
/// at the next visible-operation boundary.
pub fn raise(signo: i32) {
    let Some((rt, tid)) = current_rt() else {
        panic!("signals::raise outside an execution");
    };
    if rt.mode().is_controlled() {
        rt.sched().deliver_signal(tid, signo, false);
    } else {
        rt.free_pending.lock().entry(tid.0).or_default().push(signo);
    }
}
