//! Instrumented atomics with C++11 weak-memory semantics.
//!
//! [`Atomic<T>`] is the program-facing equivalent of `std::atomic<T>`: in
//! instrumented modes every operation is a visible operation routed
//! through the scheduler and the tsan11-style memory model (loads may
//! observe stale-but-coherent stores); in native mode it degrades to a
//! plain `std::sync::atomic::AtomicU64` with the corresponding ordering.

use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering as StdOrd};

use srr_analysis::SyncEvent;
use srr_memmodel::MemOrder;

use crate::ids::AtomicId;
use crate::runtime::{current_rt, with_ctx};

/// Value types storable in an [`Atomic`] or
/// [`Shared`](crate::shared::Shared) cell (≤ 64 bits, bit-convertible).
pub trait Scalar: Copy + Send + 'static {
    /// Bit-packs into the 64-bit storage representation.
    fn to_bits(self) -> u64;
    /// Unpacks from the storage representation.
    fn from_bits(bits: u64) -> Self;
}

macro_rules! scalar_int {
    ($($t:ty),*) => {$(
        impl Scalar for $t {
            fn to_bits(self) -> u64 { self as u64 }
            #[allow(clippy::cast_possible_truncation)]
            fn from_bits(bits: u64) -> Self { bits as $t }
        }
    )*};
}
scalar_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Scalar for bool {
    fn to_bits(self) -> u64 {
        u64::from(self)
    }
    fn from_bits(bits: u64) -> Self {
        bits != 0
    }
}

impl Scalar for f32 {
    fn to_bits(self) -> u64 {
        u64::from(self.to_bits())
    }
    fn from_bits(bits: u64) -> Self {
        f32::from_bits(bits as u32)
    }
}

impl Scalar for f64 {
    fn to_bits(self) -> u64 {
        self.to_bits()
    }
    fn from_bits(bits: u64) -> Self {
        f64::from_bits(bits)
    }
}

fn map_order(o: MemOrder) -> StdOrd {
    match o {
        MemOrder::Relaxed => StdOrd::Relaxed,
        MemOrder::Acquire => StdOrd::Acquire,
        MemOrder::Release => StdOrd::Release,
        MemOrder::AcqRel => StdOrd::AcqRel,
        MemOrder::SeqCst => StdOrd::SeqCst,
    }
}

fn load_order(o: MemOrder) -> StdOrd {
    match o {
        MemOrder::Release | MemOrder::AcqRel => StdOrd::Acquire,
        other => map_order(other),
    }
}

fn store_order(o: MemOrder) -> StdOrd {
    match o {
        MemOrder::Acquire | MemOrder::AcqRel => StdOrd::Release,
        other => map_order(other),
    }
}

/// An atomic cell with instrumented C++11 semantics.
///
/// Construct it *inside* an execution (the creating thread's clock stamps
/// the initialization write). Constructed outside any execution, it
/// behaves natively.
pub struct Atomic<T: Scalar> {
    id: Option<AtomicId>,
    /// Interned location id in the sync trace (tracing runs only).
    trace_loc: Option<u32>,
    native: AtomicU64,
    _marker: PhantomData<T>,
}

impl<T: Scalar> Atomic<T> {
    /// Creates a new atomic holding `value`.
    #[must_use]
    pub fn new(value: T) -> Self {
        Atomic::build(value, None)
    }

    /// Creates an atomic with a diagnostic label. The analysis passes use
    /// labels to identify locations: an `Atomic` and a
    /// [`Shared`](crate::shared::Shared) carrying the *same* label model
    /// two views of one memory location (the mixed-access lint).
    #[must_use]
    pub fn labeled(value: T, label: &str) -> Self {
        Atomic::build(value, Some(label))
    }

    fn build(value: T, label: Option<&str>) -> Self {
        let reg = with_ctx(|ctx| {
            if ctx.rt.mode().is_instrumented() {
                let id = ctx.rt.register_atomic(value.to_bits(), &ctx.view);
                let trace_loc = match label {
                    Some(l) => ctx.rt.sync_loc(l),
                    None => ctx.rt.sync_loc(&format!("atomic#{}", id.0)),
                };
                Some((id, trace_loc))
            } else {
                None
            }
        })
        .flatten();
        let (id, trace_loc) = match reg {
            Some((id, loc)) => (Some(id), loc),
            None => (None, None),
        };
        Atomic {
            id,
            trace_loc,
            native: AtomicU64::new(value.to_bits()),
            _marker: PhantomData,
        }
    }

    /// Atomic load at `order`.
    pub fn load(&self, order: MemOrder) -> T {
        let Some(id) = self.instrumented() else {
            return self.scheduling_only(|| T::from_bits(self.native.load(load_order(order))));
        };
        let (rt, tid) = current_rt().expect("instrumented cell outside execution");
        rt.enter(tid);
        let (bits, writer) = with_ctx(|ctx| {
            let mut chooser = ctx.rt.chooser();
            let mut mem = ctx.rt.mem.lock();
            let res = mem.cells[id.0 as usize].load_with_writer(&mut ctx.view, order, &mut chooser);
            // FastTrack discipline: the clock advances *after* the
            // operation, so later accesses are distinguishable from the
            // clock any acquirer obtained here.
            ctx.view.tick();
            res
        })
        .expect("context present");
        if let Some(loc) = self.trace_loc {
            rt.sync_event(|tick| SyncEvent::AtomicLoad {
                tid: tid.0,
                loc,
                tick,
                relaxed: order == MemOrder::Relaxed,
                writer: writer as u32,
            });
        }
        rt.exit(tid);
        T::from_bits(bits)
    }

    /// Atomic store at `order`.
    pub fn store(&self, value: T, order: MemOrder) {
        let Some(id) = self.instrumented() else {
            return self.scheduling_only(|| self.native.store(value.to_bits(), store_order(order)));
        };
        let (rt, tid) = current_rt().expect("instrumented cell outside execution");
        rt.enter(tid);
        with_ctx(|ctx| {
            let mut mem = ctx.rt.mem.lock();
            mem.cells[id.0 as usize].store(&mut ctx.view, value.to_bits(), order);
            ctx.view.tick(); // after publication (FastTrack discipline)
        });
        if let Some(loc) = self.trace_loc {
            rt.sync_event(|tick| SyncEvent::AtomicStore {
                tid: tid.0,
                loc,
                tick,
                rmw: false,
            });
        }
        self.native.store(value.to_bits(), StdOrd::Relaxed);
        rt.exit(tid);
    }

    /// Atomic read-modify-write; returns the previous value.
    pub fn fetch_update(&self, order: MemOrder, f: impl Fn(T) -> T) -> T {
        let Some(id) = self.instrumented() else {
            return self.scheduling_only(|| {
                let mut cur = self.native.load(StdOrd::Relaxed);
                loop {
                    let next = f(T::from_bits(cur)).to_bits();
                    match self.native.compare_exchange_weak(
                        cur,
                        next,
                        map_order(order),
                        StdOrd::Relaxed,
                    ) {
                        Ok(prev) => return T::from_bits(prev),
                        Err(now) => cur = now,
                    }
                }
            });
        };
        let (rt, tid) = current_rt().expect("instrumented cell outside execution");
        rt.enter(tid);
        let old = with_ctx(|ctx| {
            let mut mem = ctx.rt.mem.lock();
            let old = mem.cells[id.0 as usize].rmw(
                &mut ctx.view,
                |v| f(T::from_bits(v)).to_bits(),
                order,
            );
            ctx.view.tick(); // after publication (FastTrack discipline)
            old
        })
        .expect("context present");
        if let Some(loc) = self.trace_loc {
            rt.sync_event(|tick| SyncEvent::AtomicStore {
                tid: tid.0,
                loc,
                tick,
                rmw: true,
            });
        }
        self.native
            .store(f(T::from_bits(old)).to_bits(), StdOrd::Relaxed);
        rt.exit(tid);
        T::from_bits(old)
    }

    /// `fetch_add` for integer-like scalars (wrapping).
    pub fn fetch_add(&self, delta: u64, order: MemOrder) -> T {
        self.fetch_update(order, |v| T::from_bits(v.to_bits().wrapping_add(delta)))
    }

    /// `fetch_sub` (wrapping).
    pub fn fetch_sub(&self, delta: u64, order: MemOrder) -> T {
        self.fetch_update(order, |v| T::from_bits(v.to_bits().wrapping_sub(delta)))
    }

    /// Atomic swap; returns the previous value.
    pub fn swap(&self, value: T, order: MemOrder) -> T {
        self.fetch_update(order, |_| value)
    }

    /// Strong compare-exchange. `Ok(previous)` on success, `Err(actual)`
    /// on failure.
    pub fn compare_exchange(
        &self,
        expected: T,
        new: T,
        success: MemOrder,
        failure: MemOrder,
    ) -> Result<T, T> {
        let Some(id) = self.instrumented() else {
            return self.scheduling_only(|| {
                self.native
                    .compare_exchange(
                        expected.to_bits(),
                        new.to_bits(),
                        map_order(success),
                        load_order(failure),
                    )
                    .map(T::from_bits)
                    .map_err(T::from_bits)
            });
        };
        let (rt, tid) = current_rt().expect("instrumented cell outside execution");
        rt.enter(tid);
        let res = with_ctx(|ctx| {
            let mut mem = ctx.rt.mem.lock();
            let res = mem.cells[id.0 as usize].compare_exchange(
                &mut ctx.view,
                expected.to_bits(),
                new.to_bits(),
                success,
                failure,
            );
            ctx.view.tick(); // after publication (FastTrack discipline)
            res
        })
        .expect("context present");
        if res.is_ok() {
            if let Some(loc) = self.trace_loc {
                rt.sync_event(|tick| SyncEvent::AtomicStore {
                    tid: tid.0,
                    loc,
                    tick,
                    rmw: true,
                });
            }
            self.native.store(new.to_bits(), StdOrd::Relaxed);
        }
        rt.exit(tid);
        res.map(T::from_bits).map_err(T::from_bits)
    }

    fn instrumented(&self) -> Option<AtomicId> {
        // The id is only meaningful while an execution is live; a cell
        // created natively stays native. With race detection off (the
        // plain-rr baseline) the weak memory model is bypassed, but the
        // operation must remain a scheduling point — callers handle that
        // through `scheduling_only`.
        self.id.filter(|_| match current_rt() {
            Some((rt, _)) => rt.config.detect_races,
            None => false,
        })
    }

    /// With analysis off but a controlled scheduler present, atomics are
    /// still visible operations: bracket the native op in enter/exit.
    fn scheduling_only<R>(&self, op: impl FnOnce() -> R) -> R {
        match current_rt() {
            Some((rt, tid)) if rt.mode().is_controlled() && !rt.config.detect_races => {
                rt.enter(tid);
                with_ctx(|ctx| ctx.view.tick());
                let r = op();
                rt.exit(tid);
                r
            }
            _ => op(),
        }
    }
}

impl<T: Scalar + std::fmt::Debug> std::fmt::Debug for Atomic<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Atomic")
            .field("value", &T::from_bits(self.native.load(StdOrd::Relaxed)))
            .field("instrumented", &self.id.is_some())
            .finish()
    }
}

/// An atomic thread fence at `order` (§2: fence operations are
/// instrumented visible operations).
pub fn fence(order: MemOrder) {
    let Some((rt, tid)) = current_rt() else {
        std::sync::atomic::fence(map_order(order));
        return;
    };
    if !rt.mode().is_instrumented() {
        std::sync::atomic::fence(map_order(order));
        return;
    }
    rt.enter(tid);
    with_ctx(|ctx| {
        let mut mem = ctx.rt.mem.lock();
        match order {
            MemOrder::Relaxed => {}
            MemOrder::Acquire => ctx.view.acquire_fence(),
            MemOrder::Release => ctx.view.release_fence(),
            MemOrder::AcqRel => {
                ctx.view.acquire_fence();
                ctx.view.release_fence();
            }
            MemOrder::SeqCst => mem.sc.sc_fence(&mut ctx.view),
        }
        ctx.view.tick(); // after publication (FastTrack discipline)
    });
    rt.exit(tid);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(u32::from_bits(7u32.to_bits()), 7);
        assert_eq!(i64::from_bits((-3i64).to_bits()), -3);
        assert!(bool::from_bits(true.to_bits()));
        assert_eq!(f32::from_bits(1.5f32.to_bits()), 1.5);
        assert_eq!(f64::from_bits((-0.25f64).to_bits()), -0.25);
        assert_eq!(i8::from_bits((-1i8).to_bits()), -1);
    }

    #[test]
    fn native_atomic_works_outside_execution() {
        let a = Atomic::new(5u32);
        assert_eq!(a.load(MemOrder::SeqCst), 5);
        a.store(9, MemOrder::Release);
        assert_eq!(a.load(MemOrder::Acquire), 9);
        assert_eq!(a.fetch_add(1, MemOrder::AcqRel), 9);
        assert_eq!(a.swap(100, MemOrder::SeqCst), 10);
        assert_eq!(
            a.compare_exchange(100, 1, MemOrder::SeqCst, MemOrder::Relaxed),
            Ok(100)
        );
        assert_eq!(
            a.compare_exchange(100, 2, MemOrder::SeqCst, MemOrder::Relaxed),
            Err(1)
        );
    }

    #[test]
    fn native_fence_is_a_noop_wrapper() {
        fence(MemOrder::SeqCst); // must not panic outside an execution
    }

    #[test]
    fn debug_shows_value() {
        let a = Atomic::new(3u8);
        let s = format!("{a:?}");
        assert!(s.contains('3'));
        assert!(s.contains("instrumented: false"));
    }
}
