//! The instrumented syscall layer (§4.4).
//!
//! Every function here is the analogue of a glibc wrapper interception:
//! a visible operation (scheduling point) that executes against the
//! virtual OS and participates in sparse record/replay. For a *recorded*
//! kind, the return value, errno and output buffers are stored in the
//! SYSCALL stream during recording and enforced during replay — the call
//! is still re-issued against the live world (so unrecorded state, like
//! the display driver of §5.4, keeps advancing), but its results are
//! overwritten by the demo, exactly as the paper describes.
//!
//! Unrecorded syscalls run natively in both directions; that is the
//! sparse bet, and the reason replay does not need a live server
//! (Figure 2's motivation).

use srr_vos::{Errno, Fd, PollFd, SysResult};

use crate::ids::Tid;
use crate::runtime::{current_rt, with_ctx, Runtime};
use srr_obs::ObsOp;
use srr_replay::SyscallRecord;
use std::sync::Arc;

enum Plan {
    Passthrough,
    Record,
    Replay(SyscallRecord),
}

fn ctx(kind: &str) -> (Arc<Runtime>, Tid) {
    current_rt().unwrap_or_else(|| panic!("sys::{kind} outside an execution"))
}

fn plan(rt: &Arc<Runtime>, tid: Tid, kind: &str, fd: Option<Fd>) -> Plan {
    if !rt.should_record_syscall(kind, fd) {
        return Plan::Passthrough;
    }
    match rt.replay_syscall(tid, kind) {
        Some(rec) => Plan::Replay(rec),
        None => Plan::Record,
    }
}

fn encode(res: SysResult) -> (i64, i32) {
    match res {
        Ok(v) => (v, 0),
        Err(e) => (-1, e.code()),
    }
}

fn decode(ret: i64, errno: i32) -> SysResult {
    if errno != 0 {
        Err(Errno::from_code(errno).unwrap_or(Errno::EINVAL))
    } else {
        Ok(ret)
    }
}

/// Shared flow for syscalls whose single output buffer is a filled prefix
/// of `buf` (read/recv/recvmsg).
fn bufferful_in(
    kind: &'static str,
    fd: Fd,
    buf: &mut [u8],
    live: impl FnOnce(&Arc<Runtime>, &mut [u8]) -> SysResult,
) -> SysResult {
    let (rt, tid) = ctx(kind);
    rt.enter(tid);
    with_ctx(|ctx| ctx.view.tick());
    let live_res = live(&rt, buf);
    let res = match plan(&rt, tid, kind, Some(fd)) {
        Plan::Passthrough => live_res,
        Plan::Record => {
            let (ret, errno) = encode(live_res);
            let filled = usize::try_from(ret.max(0)).unwrap_or(0).min(buf.len());
            rt.record_syscall(tid, kind, ret, errno, vec![buf[..filled].to_vec()]);
            live_res
        }
        Plan::Replay(rec) => {
            let data = rec.bufs.first().map(Vec::as_slice).unwrap_or(&[]);
            let n = data.len().min(buf.len());
            buf[..n].copy_from_slice(&data[..n]);
            decode(rec.ret, rec.errno)
        }
    };
    rt.exit_op(tid, ObsOp::Syscall);
    res
}

/// Shared flow for syscalls with no output buffers.
fn bufferless(
    kind: &'static str,
    fd: Option<Fd>,
    live: impl FnOnce(&Arc<Runtime>) -> SysResult,
) -> SysResult {
    let (rt, tid) = ctx(kind);
    rt.enter(tid);
    with_ctx(|ctx| ctx.view.tick());
    let live_res = live(&rt);
    let res = match plan(&rt, tid, kind, fd) {
        Plan::Passthrough => live_res,
        Plan::Record => {
            let (ret, errno) = encode(live_res);
            rt.record_syscall(tid, kind, ret, errno, vec![]);
            live_res
        }
        Plan::Replay(rec) => decode(rec.ret, rec.errno),
    };
    rt.exit_op(tid, ObsOp::Syscall);
    res
}

/// `read(2)`.
pub fn read(fd: Fd, buf: &mut [u8]) -> SysResult {
    bufferful_in("read", fd, buf, |rt, b| rt.vos.read(fd, b))
}

/// `recv(2)`.
pub fn recv(fd: Fd, buf: &mut [u8]) -> SysResult {
    bufferful_in("recv", fd, buf, |rt, b| rt.vos.recv(fd, b))
}

/// `recvmsg(2)` (flags are modelled as always zero).
pub fn recvmsg(fd: Fd, buf: &mut [u8]) -> SysResult {
    bufferful_in("recvmsg", fd, buf, |rt, b| {
        let mut flags = [0u8; 4];
        rt.vos.recvmsg(fd, b, &mut flags)
    })
}

/// `write(2)`.
pub fn write(fd: Fd, data: &[u8]) -> SysResult {
    bufferless("write", Some(fd), |rt| rt.vos.write(fd, data))
}

/// `send(2)`.
pub fn send(fd: Fd, data: &[u8]) -> SysResult {
    bufferless("send", Some(fd), |rt| rt.vos.send(fd, data))
}

/// `sendmsg(2)`.
pub fn sendmsg(fd: Fd, data: &[u8]) -> SysResult {
    bufferless("sendmsg", Some(fd), |rt| rt.vos.sendmsg(fd, data))
}

/// `bind(2)` against a pre-installed listener port; returns the
/// listener fd.
pub fn bind(port: u16) -> SysResult {
    bufferless("bind", None, |rt| rt.vos.bind(port))
}

/// `accept(2)`; returns the connection fd, or `EAGAIN`.
pub fn accept(fd: Fd) -> SysResult {
    bufferless("accept", Some(fd), |rt| rt.vos.accept(fd))
}

/// `accept4(2)`.
pub fn accept4(fd: Fd) -> SysResult {
    bufferless("accept4", Some(fd), |rt| rt.vos.accept4(fd))
}

/// `clock_gettime(2)`: nanoseconds of virtual time.
pub fn clock_gettime() -> SysResult {
    bufferless("clock_gettime", None, |rt| rt.vos.clock_gettime())
}

/// `open(2)`.
pub fn open(path: &str, create: bool) -> SysResult {
    bufferless("open", None, |rt| rt.vos.open(path, create))
}

/// `close(2)`.
pub fn close(fd: Fd) -> SysResult {
    bufferless("close", Some(fd), |rt| rt.vos.close(fd))
}

/// `poll(2)`: fills `revents`; never blocks (callers loop, as the paper's
/// clients do — Figure 2).
pub fn poll(fds: &mut [PollFd]) -> SysResult {
    poll_like("poll", fds)
}

/// `select(2)`, modelled as readability-oriented poll (§5.2's httpd
/// workaround path).
pub fn select(fds: &mut [PollFd]) -> SysResult {
    poll_like("select", fds)
}

fn poll_like(kind: &'static str, fds: &mut [PollFd]) -> SysResult {
    let (rt, tid) = ctx(kind);
    rt.enter(tid);
    with_ctx(|ctx| ctx.view.tick());
    let live_res = if kind == "select" {
        rt.vos.select(fds)
    } else {
        rt.vos.poll(fds)
    };
    let res = match plan(&rt, tid, kind, None) {
        Plan::Passthrough => live_res,
        Plan::Record => {
            let (ret, errno) = encode(live_res);
            let revents: Vec<u8> = fds.iter().map(|p| p.revents.to_bits()).collect();
            rt.record_syscall(tid, kind, ret, errno, vec![revents]);
            live_res
        }
        Plan::Replay(rec) => {
            let bits = rec.bufs.first().map(Vec::as_slice).unwrap_or(&[]);
            for (p, &b) in fds.iter_mut().zip(bits) {
                p.revents = srr_vos::PollEvents::from_bits(b);
            }
            decode(rec.ret, rec.errno)
        }
    };
    rt.exit_op(tid, ObsOp::Syscall);
    res
}

/// `epoll_wait(2)`: unsupported by the sparse recorder (§5.2 — its
/// union-returning interface cannot be captured); always `ENOTSUP` so
/// applications switch to `poll`, exactly as httpd was configured.
pub fn epoll_wait() -> SysResult {
    bufferless("epoll_wait", None, |rt| rt.vos.epoll_wait())
}

/// `ioctl(2)` on a device fd. Under `SparseConfig::games()` this runs
/// natively in both record and replay (§5.4's workaround for the
/// proprietary display driver).
pub fn ioctl(fd: Fd, request: u64, arg: &mut [u8]) -> SysResult {
    let (rt, tid) = ctx("ioctl");
    rt.enter(tid);
    with_ctx(|ctx| ctx.view.tick());
    let live_res = rt.vos.ioctl(fd, request, arg);
    let res = match plan(&rt, tid, "ioctl", Some(fd)) {
        Plan::Passthrough => live_res,
        Plan::Record | Plan::Replay(_) if rt.vos.fd_is_opaque_device(fd) => {
            // The §5.4 situation: a proprietary device whose ioctl
            // traffic cannot be captured. A comprehensive recorder (rr)
            // must give up here; the sparse answer is
            // `SparseConfig::games()`, which never reaches this arm.
            rt.hard_desync_at(
                "unsupported-ioctl",
                "ioctl on an opaque (proprietary) device",
                "a recordable device",
                "SYSCALL",
                rt.replay_cursor(),
            )
        }
        Plan::Record => {
            let (ret, errno) = encode(live_res);
            rt.record_syscall(tid, "ioctl", ret, errno, vec![arg.to_vec()]);
            live_res
        }
        Plan::Replay(rec) => {
            let data = rec.bufs.first().map(Vec::as_slice).unwrap_or(&[]);
            let n = data.len().min(arg.len());
            arg[..n].copy_from_slice(&data[..n]);
            decode(rec.ret, rec.errno)
        }
    };
    rt.exit_op(tid, ObsOp::Syscall);
    res
}

/// `pipe(2)`: returns `(read_end, write_end)`.
pub fn pipe() -> (Fd, Fd) {
    let (rt, tid) = ctx("pipe");
    rt.enter(tid);
    with_ctx(|ctx| ctx.view.tick());
    let fds = rt.vos.pipe();
    rt.exit_op(tid, ObsOp::Syscall);
    fds
}

/// Opens a connection to a peer (the `connect(2)` analogue). Not
/// recorded: fd numbering is deterministic given the schedule, and all
/// subsequent traffic on the socket is covered by recv/send recording.
pub fn connect(peer: Box<dyn srr_vos::Peer>) -> Fd {
    let (rt, tid) = ctx("connect");
    rt.enter(tid);
    with_ctx(|ctx| ctx.view.tick());
    let fd = rt.vos.connect(peer);
    rt.exit_op(tid, ObsOp::Syscall);
    fd
}

/// Sleeps (invisible operation — no scheduling point; §3.3's liveness
/// rescheduler exists precisely because threads may do this).
///
/// The physical sleep is bounded at 50ms per call to keep pathological
/// test programs from stalling the suite.
pub fn sleep_ms(ms: u64) {
    if let Some((rt, _)) = current_rt() {
        rt.vos.advance_time(ms * 1_000_000);
    }
    std::thread::sleep(std::time::Duration::from_millis(ms.min(50)));
}

/// Allocates `size` bytes of virtual memory, returning the address
/// (the `malloc` analogue; invisible operation). Under sparse recording
/// addresses are *not* recorded — the §5.5 limitation; the comprehensive
/// rr baseline records them via the ALLOC stream.
pub fn valloc(size: u64) -> u64 {
    let (rt, _) = ctx("valloc");
    rt.vos.valloc(size)
}

/// Writes a line to the console (fd 1) — the observable output used for
/// soft-desynchronisation comparison.
pub fn println(line: &str) {
    let mut data = line.as_bytes().to_vec();
    data.push(b'\n');
    let _ = write(Fd(1), &data);
}
