//! **tsan11rec** — sparse record and replay with controlled scheduling.
//!
//! A Rust reproduction of the PLDI 2019 tool of the same name (Lidbury &
//! Donaldson): dynamic analysis that combines
//!
//! 1. **controlled concurrency testing** — a cooperative scheduler
//!    serializes *visible operations* (atomics, mutex/condvar operations,
//!    thread management, syscalls, signal-handler entries) via the
//!    `Wait()`/`Tick()` protocol of §3, with `random`, `queue` and
//!    PCT-style strategies, while invisible code runs in parallel;
//! 2. **sparse record and replay** — a configurable, minimal set of
//!    nondeterminism sources (the interleaving, asynchronous signals, a
//!    per-application set of syscalls, async scheduler events) is captured
//!    into a *demo* and enforced on replay (§4);
//! 3. **C++11 data-race detection** — FastTrack-style happens-before
//!    checking over a tsan11-style operational weak memory model, so
//!    races that require stale-but-coherent atomic reads are found and
//!    the runs that found them replayed.
//!
//! Programs under test are written against this crate's API — the
//! library-level equivalent of tsan's compiler instrumentation:
//! [`Atomic`], [`Shared`], [`Mutex`], [`Condvar`], [`thread`], [`sys`] and
//! [`signals`]. The OS under the program is the virtual kernel of
//! `srr-vos`, so network/clock/device nondeterminism is real enough to
//! need recording yet controllable enough to test.
//!
//! # Quickstart
//!
//! ```
//! use tsan11rec::{Atomic, Config, Execution, MemOrder, Mode, Strategy};
//! use std::sync::Arc;
//!
//! let config = Config::new(Mode::Tsan11Rec(Strategy::Random)).with_seeds([1, 2]);
//! let report = Execution::new(config).run(|| {
//!     let flag = Arc::new(Atomic::new(0u32));
//!     let f2 = Arc::clone(&flag);
//!     let t = tsan11rec::thread::spawn(move || {
//!         f2.store(1, MemOrder::Release);
//!     });
//!     t.join();
//!     assert_eq!(flag.load(MemOrder::Acquire), 1);
//! });
//! assert!(report.outcome.is_ok());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod atomic;
mod config;
mod exec;
mod ids;
mod prng;
mod report;
mod runtime;
mod rwlock;
mod sched;
mod shared;
mod sync;

pub mod signals;
pub mod sys;
pub mod thread;

pub use atomic::{fence, Atomic, Scalar};
pub use config::{AccessPlan, Config, Mode, PlanDecision, RecordMode, SparseConfig, Strategy};
pub use exec::Execution;
pub use ids::{AtomicId, CondId, MutexId, Tid};
pub use prng::Prng;
pub use report::{
    soft_desync, soft_desync_report, ExecReport, Outcome, PlanCounters, SchedCounters, TraceEvent,
};
pub use rwlock::{Barrier, RwLock, RwLockReadGuard, RwLockWriteGuard};
pub use shared::{Shared, SharedArray};
pub use sync::{Condvar, Mutex, MutexGuard};

// The memory orders and vOS types appear throughout program code; re-export
// them so workloads depend on one crate.
pub use srr_analysis::{Finding, FindingKind, SyncEvent, SyncTrace};
pub use srr_memmodel::MemOrder;
pub use srr_obs as obs;
pub use srr_obs::{chrome_trace, text_timeline, DesyncDiagnostics, ObsOp, ObsReport, TraceSpec};
pub use srr_replay::{Demo, DemoHeader, HardDesync, SoftDesync};
pub use srr_vos as vos;
pub use srr_vos::{Errno, Fd, PollFd, SysResult};
