//! An instrumented reader/writer lock.
//!
//! Built entirely from the instrumented [`Mutex`](crate::Mutex) and
//! [`Condvar`](crate::Condvar), so the §3.2 protocols (Figure 4's trylock
//! loop, Figure 5's conditional wait) govern every blocking step in
//! controlled modes — and record/replay works with no extra machinery.
//! Writer-preference is implemented the classic way (writers register as
//! waiting, readers defer to them), matching the behaviour of glibc's
//! default `pthread_rwlock` closely enough for workload modelling.

use crate::sync::{Condvar, Mutex};

#[derive(Debug, Default)]
struct RwState {
    readers: u32,
    writer: bool,
    waiting_writers: u32,
}

/// An instrumented reader/writer lock.
pub struct RwLock<T> {
    state: Mutex<RwState>,
    cond: Condvar,
    data: parking_lot::RwLock<T>,
}

/// Shared (read) guard.
pub struct RwLockReadGuard<'a, T> {
    native: Option<parking_lot::RwLockReadGuard<'a, T>>,
    lock: &'a RwLock<T>,
}

/// Exclusive (write) guard.
pub struct RwLockWriteGuard<'a, T> {
    native: Option<parking_lot::RwLockWriteGuard<'a, T>>,
    lock: &'a RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a reader/writer lock protecting `value`.
    #[must_use]
    pub fn new(value: T) -> Self {
        RwLock {
            // Labelled for diagnostics; the condvar is runtime-internal so
            // its polling wait loop stays out of the sync trace.
            state: Mutex::labeled(RwState::default(), "rwlock.state"),
            cond: Condvar::internal(),
            data: parking_lot::RwLock::new(value),
        }
    }

    /// Acquires shared access. Readers defer to waiting writers
    /// (writer preference).
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let mut g = self.state.lock();
        while g.writer || g.waiting_writers > 0 {
            let (g2, _signaled) = self.cond.wait_timeout(g, 1);
            g = g2;
        }
        g.readers += 1;
        drop(g);
        let native = self
            .data
            .try_read()
            .expect("logical reader grant guarantees no writer holds the data");
        RwLockReadGuard {
            native: Some(native),
            lock: self,
        }
    }

    /// Attempts shared access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        let mut g = self.state.lock();
        if g.writer || g.waiting_writers > 0 {
            return None;
        }
        g.readers += 1;
        drop(g);
        let native = self.data.try_read().expect("logical grant");
        Some(RwLockReadGuard {
            native: Some(native),
            lock: self,
        })
    }

    /// Acquires exclusive access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let mut g = self.state.lock();
        g.waiting_writers += 1;
        while g.writer || g.readers > 0 {
            let (g2, _signaled) = self.cond.wait_timeout(g, 1);
            g = g2;
        }
        g.waiting_writers -= 1;
        g.writer = true;
        drop(g);
        let native = self
            .data
            .try_write()
            .expect("logical writer grant guarantees exclusivity");
        RwLockWriteGuard {
            native: Some(native),
            lock: self,
        }
    }

    /// Attempts exclusive access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        let mut g = self.state.lock();
        if g.writer || g.readers > 0 {
            return None;
        }
        g.writer = true;
        drop(g);
        let native = self.data.try_write().expect("logical grant");
        Some(RwLockWriteGuard {
            native: Some(native),
            lock: self,
        })
    }
}

impl<T> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.native.as_ref().expect("guard is live")
    }
}

impl<T> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        self.native.take();
        if std::thread::panicking() {
            return;
        }
        let mut g = self.lock.state.lock();
        g.readers -= 1;
        let empty = g.readers == 0;
        drop(g);
        if empty {
            self.lock.cond.notify_all();
        }
    }
}

impl<T> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.native.as_ref().expect("guard is live")
    }
}

impl<T> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.native.as_mut().expect("guard is live")
    }
}

impl<T> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        self.native.take();
        if std::thread::panicking() {
            return;
        }
        let mut g = self.lock.state.lock();
        g.writer = false;
        drop(g);
        self.lock.cond.notify_all();
    }
}

/// A blocking barrier (the `pthread_barrier` analogue), composed from the
/// instrumented mutex and condition variable so it behaves correctly
/// under every tool mode, including record/replay.
pub struct Barrier {
    state: Mutex<(u32, u32)>, // (arrived, generation)
    cond: Condvar,
    total: u32,
}

impl Barrier {
    /// A barrier for `total` participants (≥ 1).
    #[must_use]
    pub fn new(total: u32) -> Self {
        assert!(total >= 1, "a barrier needs at least one participant");
        Barrier {
            state: Mutex::labeled((0, 0), "barrier.state"),
            cond: Condvar::internal(),
            total,
        }
    }

    /// Blocks until all participants arrive. Returns `true` for exactly
    /// one participant per generation (the "leader", as in
    /// `pthread_barrier`'s serial thread).
    pub fn wait(&self) -> bool {
        let mut g = self.state.lock();
        let gen = g.1;
        g.0 += 1;
        if g.0 == self.total {
            g.0 = 0;
            g.1 += 1;
            drop(g);
            self.cond.notify_all();
            true
        } else {
            while g.1 == gen {
                g = self.cond.wait(g);
            }
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn native_rwlock_basic() {
        let l = RwLock::new(5);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!((*r1, *r2), (5, 5));
            assert!(l.try_write().is_none(), "readers block writers");
        }
        {
            let mut w = l.write();
            *w = 9;
            assert!(l.try_read().is_none(), "writer blocks readers");
        }
        assert_eq!(*l.read(), 9);
    }

    #[test]
    fn native_rwlock_try_paths() {
        let l = RwLock::new(0);
        let r = l.try_read().expect("free lock");
        assert!(l.try_read().is_some(), "shared");
        assert!(l.try_write().is_none());
        drop(r);
        let w = l.try_write().expect("free lock");
        assert!(l.try_read().is_none());
        drop(w);
    }

    #[test]
    fn native_barrier_releases_all() {
        use std::sync::atomic::{AtomicU32, Ordering};
        use std::sync::Arc;
        let b = Arc::new(Barrier::new(3));
        let leaders = Arc::new(AtomicU32::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let b = Arc::clone(&b);
                let leaders = Arc::clone(&leaders);
                std::thread::spawn(move || {
                    if b.wait() {
                        leaders.fetch_add(1, Ordering::SeqCst);
                    }
                })
            })
            .collect();
        if b.wait() {
            leaders.fetch_add(1, Ordering::SeqCst);
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(leaders.load(Ordering::SeqCst), 1, "exactly one leader");
    }

    #[test]
    #[should_panic(expected = "at least one participant")]
    fn zero_barrier_rejected() {
        let _ = Barrier::new(0);
    }
}
