//! The tool's replayable PRNG.
//!
//! Every scheduling choice and every weak-memory read choice flows through
//! one xoshiro256\*\* stream seeded from two values (the paper seeds "by two
//! calls to `rdtsc()`"; we default to two monotonic-clock samples). The
//! seeds are written into the demo header, so for the random strategy the
//! *entire interleaving* is reproduced from the header alone (§4.2).
//!
//! The generator is implemented here rather than taken from a crate because
//! stream stability across builds is part of the replay contract.

/// xoshiro256\*\* with SplitMix64 seed expansion.
#[derive(Debug, Clone)]
pub struct Prng {
    s: [u64; 4],
    draws: u64,
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Prng {
    /// Creates a generator from the demo-header seed pair.
    #[must_use]
    pub fn from_seeds(seeds: [u64; 2]) -> Self {
        let mut sm = seeds[0] ^ seeds[1].rotate_left(32) ^ 0x9E37_79B9;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix(&mut sm);
        }
        // All-zero state would be a fixed point; splitmix of any seed is
        // astronomically unlikely to produce it, but guard anyway.
        if s == [0; 4] {
            s[0] = 1;
        }
        Prng { s, draws: 0 }
    }

    /// Samples two environment-derived seeds (the `rdtsc()` analogue).
    #[must_use]
    pub fn environment_seeds() -> [u64; 2] {
        let sample = || {
            let t = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap_or_default();
            t.as_nanos() as u64 ^ (t.subsec_nanos() as u64).rotate_left(17)
        };
        let a = sample();
        // A second sample, perturbed so equal clock reads still differ.
        let b = sample().wrapping_mul(0x2545_F491_4F6C_DD1D) ^ a.rotate_left(7);
        [a, b]
    }

    /// Next raw value.
    pub fn next_u64(&mut self) -> u64 {
        self.draws += 1;
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `0..n` (`n ≥ 1`).
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n >= 1);
        ((u128::from(self.next_u64()) * n as u128) >> 64) as usize
    }

    /// Picks one element of `items` (non-empty).
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len())]
    }

    /// Total draws so far — the replay-alignment diagnostic the paper's
    /// §4.5 reasoning is about ("the PRNG will be called the same number
    /// of times in each critical section").
    #[must_use]
    pub fn draws(&self) -> u64 {
        self.draws
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seeds_same_stream() {
        let mut a = Prng::from_seeds([1, 2]);
        let mut b = Prng::from_seeds([1, 2]);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_different_streams() {
        let mut a = Prng::from_seeds([1, 2]);
        let mut b = Prng::from_seeds([2, 1]);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn below_stays_in_range_and_covers() {
        let mut p = Prng::from_seeds([3, 4]);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let v = p.below(5);
            assert!(v < 5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit in 1000 draws");
    }

    #[test]
    fn choose_returns_member() {
        let mut p = Prng::from_seeds([5, 6]);
        let items = [10, 20, 30];
        for _ in 0..50 {
            assert!(items.contains(p.choose(&items)));
        }
    }

    #[test]
    fn draws_counts_every_draw() {
        let mut p = Prng::from_seeds([7, 8]);
        assert_eq!(p.draws(), 0);
        p.next_u64();
        p.below(3);
        assert_eq!(p.draws(), 2);
    }

    #[test]
    fn environment_seeds_differ_between_calls() {
        let a = Prng::environment_seeds();
        let b = Prng::environment_seeds();
        assert_ne!(a, b);
    }

    #[test]
    fn zero_seeds_are_usable() {
        let mut p = Prng::from_seeds([0, 0]);
        let v: Vec<u64> = (0..4).map(|_| p.next_u64()).collect();
        assert!(v.iter().any(|&x| x != 0));
    }
}
