//! Identifier newtypes used across the runtime.

use std::fmt;

/// A logical thread id handed out by the scheduler, dense from 0
/// (the main thread).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tid(pub u32);

impl Tid {
    /// The main thread.
    pub const MAIN: Tid = Tid(0);

    /// Dense index for vector-clock components and tables.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Tid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Identifier of an instrumented mutex.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MutexId(pub u32);

/// Identifier of an instrumented condition variable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CondId(pub u32);

/// Identifier of an instrumented atomic location.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct AtomicId(pub u32);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tid_display_and_index() {
        assert_eq!(Tid(3).to_string(), "T3");
        assert_eq!(Tid(3).index(), 3);
        assert_eq!(Tid::MAIN, Tid(0));
    }
}
