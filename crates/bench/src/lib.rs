//! Shared helpers for the table-regenerating benchmark harnesses.
//!
//! Each `[[bench]]` target in this crate regenerates one table or figure
//! of the paper (see `DESIGN.md`'s per-experiment index) and prints rows
//! in the paper's format. Absolute numbers differ from the paper's
//! i7-4770 testbed — the substrate is a virtual OS, not their hardware —
//! but the *shape* (who wins, rough factors, crossovers) is the claim
//! being reproduced; `EXPERIMENTS.md` records both sides.
//!
//! Scaling: set `SRR_BENCH_RUNS` to override the per-cell repetition
//! count and `SRR_BENCH_SCALE` to scale workload sizes (both default to
//! quick-run values so `cargo bench` completes in minutes). Pass
//! `--quick` (or set `SRR_BENCH_QUICK=1`) for the CI smoke profile:
//! fewer repetitions, smaller workloads, same `BENCH_*.json` schema.
//!
//! Every table bench also writes a machine-readable
//! `BENCH_<table>.json` at the repository root — see [`report`].

#![forbid(unsafe_code)]

use std::fmt::Write as _;

pub mod report;

pub use srr_apps::harness::{ms, run_tool, SchedTotals, Stats, StreamTotals, Tool};

/// Whether the CI smoke profile was requested, via a `--quick` argument
/// (cargo forwards unknown args to `harness = false` bench binaries) or
/// `SRR_BENCH_QUICK` set to anything but `0`/empty.
#[must_use]
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
        || std::env::var("SRR_BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Per-cell repetitions (default 10; the paper uses 1000 for Table 1 and
/// 10 for the application tables).
#[must_use]
pub fn bench_runs(default: usize) -> usize {
    std::env::var("SRR_BENCH_RUNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Workload scale multiplier (default 1).
#[must_use]
pub fn bench_scale() -> usize {
    std::env::var("SRR_BENCH_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

/// Seeds for repetition `i` (distinct streams per repetition, stable
/// across invocations so tables are comparable run to run).
#[must_use]
pub fn seeds_for(i: usize) -> [u64; 2] {
    let i = i as u64;
    [
        i.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1),
        i.wrapping_mul(31) ^ 0x5eed,
    ]
}

/// A fixed-width table printer.
pub struct TablePrinter {
    widths: Vec<usize>,
}

impl TablePrinter {
    /// Creates a printer and prints the header row.
    #[must_use]
    pub fn new(headers: &[&str], widths: &[usize]) -> Self {
        assert_eq!(headers.len(), widths.len());
        let p = TablePrinter {
            widths: widths.to_vec(),
        };
        p.row(headers);
        let rule: String = widths.iter().map(|w| "-".repeat(w + 2)).collect();
        println!("{rule}");
        p
    }

    /// Prints one row.
    pub fn row(&self, cells: &[&str]) {
        let mut line = String::new();
        for (cell, width) in cells.iter().zip(&self.widths) {
            let _ = write!(line, "{cell:>width$}  ", width = width);
        }
        println!("{}", line.trim_end());
    }
}

/// Formats `mean (stddev)` in the paper's Table 1 style.
#[must_use]
pub fn mean_sd(s: &Stats) -> String {
    format!("{:.1} ({:.2})", s.mean, s.stddev)
}

/// Formats an overhead multiple (`12.3x`).
#[must_use]
pub fn overhead(native_mean: f64, mean: f64) -> String {
    if native_mean <= 0.0 {
        return "-".into();
    }
    format!("{:.1}x", mean / native_mean)
}

/// Prints a section banner.
pub fn banner(title: &str) {
    println!();
    println!("==== {title} ====");
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_differ_per_repetition() {
        assert_ne!(seeds_for(0), seeds_for(1));
        assert_eq!(seeds_for(3), seeds_for(3));
    }

    #[test]
    fn overhead_formats() {
        assert_eq!(overhead(2.0, 6.0), "3.0x");
        assert_eq!(overhead(0.0, 6.0), "-");
    }

    #[test]
    fn mean_sd_formats() {
        let s = Stats::of(&[1.0, 3.0]);
        assert_eq!(mean_sd(&s), "2.0 (1.00)");
    }

    #[test]
    fn bench_knobs_have_defaults() {
        assert!(bench_runs(7) >= 1);
        assert!(bench_scale() >= 1);
    }
}
