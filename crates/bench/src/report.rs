//! Machine-readable bench reports.
//!
//! Every table bench emits, next to its stdout table, a
//! `BENCH_<table>.json` file at the repository root (override the
//! directory with `SRR_BENCH_OUT`). The schema is consumed by the CI
//! regression gate (`check_bench`) and by future PRs tracking the perf
//! trajectory:
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "table": "table2",
//!   "title": "httpd throughput",
//!   "quick": true,
//!   "runs": 3,
//!   "scale": 1,
//!   "rows": [
//!     {
//!       "workload": "httpd w8", "config": "queue",
//!       "metric": "qps", "higher_is_better": true,
//!       "mean": 812.4, "stddev": 31.2, "n": 3,
//!       "overhead_vs_native": 2.1,
//!       "ticks": 48123, "wakeups_issued": 48120,
//!       "broadcasts": 2, "spurious_wakeups": 14
//!     }
//!   ]
//! }
//! ```
//!
//! The workspace has no JSON dependency; the deliberately small JSON
//! value type lives in `srr-obs` (shared with the trace exporters) and is
//! re-exported here — the same code serializes the reports and lets the
//! gate read them back.

use std::path::PathBuf;

use tsan11rec::SchedCounters;

use crate::Stats;

/// Current report schema version (bump on breaking changes).
pub const SCHEMA_VERSION: u64 = 1;

// ---------------------------------------------------------------------
// Minimal JSON (moved to `srr-obs` so the exporters share it; re-exported
// here because the gate binary and older callers import it from this
// module)
// ---------------------------------------------------------------------

pub use srr_obs::Json;

// ---------------------------------------------------------------------
// Bench report schema
// ---------------------------------------------------------------------

pub use srr_apps::harness::StreamTotals;

/// One measured configuration of one workload.
#[derive(Debug, Clone)]
pub struct BenchRow {
    /// Workload identifier (e.g. `"httpd w8"`, `"pbzip"`).
    pub workload: String,
    /// Tool configuration label (e.g. `"queue"`, `"rnd + rec"`).
    pub config: String,
    /// Metric unit (`"qps"`, `"ms"`, `"s"`, `"fps"`).
    pub metric: String,
    /// Regression direction: `true` when larger means faster.
    pub higher_is_better: bool,
    /// Sample count.
    pub n: usize,
    /// Mean of the samples.
    pub mean: f64,
    /// Population standard deviation of the samples.
    pub stddev: f64,
    /// Overhead multiple vs the native configuration of the same
    /// workload (`None` for the native row itself or when no native
    /// baseline exists).
    pub overhead_vs_native: Option<f64>,
    /// Scheduler wakeup counters summed over the row's runs (`None`
    /// for uncontrolled configurations).
    pub sched: Option<SchedCounters>,
    /// Demo-stream totals summed over the row's runs (`None` when the
    /// runs neither recorded nor replayed a demo).
    pub streams: Option<StreamTotals>,
}

impl BenchRow {
    /// A row from measured [`Stats`].
    #[must_use]
    pub fn from_stats(
        workload: &str,
        config: &str,
        metric: &str,
        higher_is_better: bool,
        stats: &Stats,
    ) -> Self {
        BenchRow {
            workload: workload.to_owned(),
            config: config.to_owned(),
            metric: metric.to_owned(),
            higher_is_better,
            n: stats.n,
            mean: stats.mean,
            stddev: stats.stddev,
            overhead_vs_native: None,
            sched: None,
            streams: None,
        }
    }

    /// Sets the overhead-vs-native multiple.
    #[must_use]
    pub fn with_overhead(mut self, overhead: f64) -> Self {
        self.overhead_vs_native = Some(overhead);
        self
    }

    /// Attaches summed scheduler counters.
    #[must_use]
    pub fn with_sched(mut self, sched: SchedCounters) -> Self {
        self.sched = Some(sched);
        self
    }

    /// Attaches summed demo-stream totals.
    #[must_use]
    pub fn with_streams(mut self, streams: StreamTotals) -> Self {
        self.streams = Some(streams);
        self
    }

    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("workload".to_owned(), Json::Str(self.workload.clone())),
            ("config".to_owned(), Json::Str(self.config.clone())),
            ("metric".to_owned(), Json::Str(self.metric.clone())),
            (
                "higher_is_better".to_owned(),
                Json::Bool(self.higher_is_better),
            ),
            ("mean".to_owned(), Json::Num(self.mean)),
            ("stddev".to_owned(), Json::Num(self.stddev)),
            ("n".to_owned(), Json::Num(self.n as f64)),
            (
                "overhead_vs_native".to_owned(),
                match self.overhead_vs_native {
                    Some(o) => Json::Num(o),
                    None => Json::Null,
                },
            ),
        ];
        if let Some(s) = self.sched {
            fields.push(("ticks".to_owned(), Json::Num(s.ticks as f64)));
            fields.push((
                "wakeups_issued".to_owned(),
                Json::Num(s.wakeups_issued as f64),
            ));
            fields.push(("broadcasts".to_owned(), Json::Num(s.broadcasts as f64)));
            fields.push((
                "spurious_wakeups".to_owned(),
                Json::Num(s.spurious_wakeups as f64),
            ));
        }
        if let Some(t) = self.streams {
            fields.push(("demo_bytes".to_owned(), Json::Num(t.demo_bytes as f64)));
            fields.push((
                "queue_entries".to_owned(),
                Json::Num(t.queue_entries as f64),
            ));
            fields.push((
                "syscall_entries".to_owned(),
                Json::Num(t.syscall_entries as f64),
            ));
            fields.push((
                "signal_entries".to_owned(),
                Json::Num(t.signal_entries as f64),
            ));
            fields.push((
                "async_entries".to_owned(),
                Json::Num(t.async_entries as f64),
            ));
        }
        Json::Obj(fields)
    }
}

/// A full per-table report, written as `BENCH_<table>.json`.
#[derive(Debug, Clone)]
pub struct BenchReport {
    table: String,
    title: String,
    quick: bool,
    runs: usize,
    scale: usize,
    rows: Vec<BenchRow>,
    notes: Vec<(String, Json)>,
}

impl BenchReport {
    /// Creates an empty report for `table` (e.g. `"table2"`).
    #[must_use]
    pub fn new(table: &str, title: &str, runs: usize, scale: usize) -> Self {
        BenchReport {
            table: table.to_owned(),
            title: title.to_owned(),
            quick: crate::quick_mode(),
            runs,
            scale,
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a measured row.
    pub fn push(&mut self, row: BenchRow) {
        self.rows.push(row);
    }

    /// Attaches a free-form top-level field (reference measurements,
    /// shape-check summaries).
    pub fn note(&mut self, key: &str, value: Json) {
        self.notes.push((key.to_owned(), value));
    }

    /// The report as a JSON value.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            (
                "schema_version".to_owned(),
                Json::Num(SCHEMA_VERSION as f64),
            ),
            ("table".to_owned(), Json::Str(self.table.clone())),
            ("title".to_owned(), Json::Str(self.title.clone())),
            ("quick".to_owned(), Json::Bool(self.quick)),
            ("runs".to_owned(), Json::Num(self.runs as f64)),
            ("scale".to_owned(), Json::Num(self.scale as f64)),
            (
                "rows".to_owned(),
                Json::Arr(self.rows.iter().map(BenchRow::to_json).collect()),
            ),
        ];
        fields.extend(self.notes.iter().cloned());
        Json::Obj(fields)
    }

    /// Writes `BENCH_<table>.json` into [`out_dir`]; returns the path.
    pub fn write(&self) -> std::io::Result<PathBuf> {
        let path = out_dir().join(format!("BENCH_{}.json", self.table));
        std::fs::write(&path, self.to_json().to_pretty())?;
        println!("[bench] wrote {}", path.display());
        Ok(path)
    }
}

/// Where `BENCH_*.json` files go: `SRR_BENCH_OUT` when set, else the
/// workspace root (two levels above this crate's manifest).
#[must_use]
pub fn out_dir() -> PathBuf {
    match std::env::var_os("SRR_BENCH_OUT") {
        Some(dir) => PathBuf::from(dir),
        None => PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .canonicalize()
            .unwrap_or_else(|_| PathBuf::from(".")),
    }
}

// ---------------------------------------------------------------------
// Regression gate
// ---------------------------------------------------------------------

/// Outcome of comparing one current report against a committed baseline.
#[derive(Debug, Default)]
pub struct GateResult {
    /// Human-readable descriptions of metrics that regressed.
    pub failures: Vec<String>,
    /// Rows compared against a baseline row.
    pub checked: usize,
    /// Rows present on one side only (informational).
    pub skipped: Vec<String>,
}

/// Duration cells below this many seconds (or the equivalent in ms) are
/// too noisy to gate: quick-mode cells in the tens of milliseconds swing
/// well past 25% between identical runs. They stay in the report as
/// information; only cells above the floor are tracked.
const DURATION_FLOOR_SECS: f64 = 0.05;

/// Rows whose baseline mean clears the per-metric noise floor are
/// *tracked*; the rest are skipped with a notice. Derived `x_native`
/// rows are never tracked (their underlying time rows are).
fn noise_floor(metric: &str) -> Option<f64> {
    match metric {
        "ms" => Some(DURATION_FLOOR_SECS * 1_000.0),
        "s" => Some(DURATION_FLOOR_SECS),
        "x_native" => None, // derived, never tracked
        _ => Some(0.0),     // throughput metrics: always tracked
    }
}

/// When a controlled run's spurious wakeups exceed this fraction of its
/// ticks, the targeted-wakeup fast path has regressed to herd behaviour
/// (the broadcast scheduler showed spurious ≫ ticks; targeted shows ~0).
const SPURIOUS_WAKEUP_FRACTION: f64 = 0.25;

/// Compares `current` against `baseline` (both `BENCH_*.json` documents
/// for the same table). A tracked metric fails when it moves more than
/// `threshold` (e.g. `0.25`) in its bad direction *and* beyond the
/// sampling-noise slack `3 × (baseline stddev + current stddev)`; rows
/// are matched by `(workload, config, metric)` and unmatched rows are
/// skipped so new configurations can land before the baseline is
/// refreshed. Independently of the baseline, any row whose
/// `spurious_wakeups` exceed [`SPURIOUS_WAKEUP_FRACTION`] of its `ticks`
/// fails: that is the thundering-herd signature the targeted-wakeup
/// scheduler removed.
#[must_use]
pub fn check_regressions(baseline: &Json, current: &Json, threshold: f64) -> GateResult {
    let mut result = GateResult::default();
    let table = current
        .get("table")
        .and_then(Json::as_str)
        .unwrap_or("<unknown>");
    let empty: &[Json] = &[];
    let base_rows = baseline
        .get("rows")
        .and_then(Json::as_array)
        .unwrap_or(empty);
    let cur_rows = current
        .get("rows")
        .and_then(Json::as_array)
        .unwrap_or(empty);

    let key = |row: &Json| -> Option<(String, String, String)> {
        Some((
            row.get("workload")?.as_str()?.to_owned(),
            row.get("config")?.as_str()?.to_owned(),
            row.get("metric")?.as_str()?.to_owned(),
        ))
    };

    for cur in cur_rows {
        let Some(k) = key(cur) else { continue };

        // Thundering-herd sanity check: baseline-independent, so it also
        // covers rows the noise model below skips.
        let ticks = cur.get("ticks").and_then(Json::as_f64).unwrap_or(0.0);
        let spurious = cur
            .get("spurious_wakeups")
            .and_then(Json::as_f64)
            .unwrap_or(0.0);
        if ticks > 0.0 && spurious > ticks * SPURIOUS_WAKEUP_FRACTION {
            result.failures.push(format!(
                "{table}: {} / {} has {spurious:.0} spurious wakeups over {ticks:.0} ticks — \
                 the targeted-wakeup fast path has regressed to broadcast behaviour",
                k.0, k.1
            ));
        }

        let Some(base) = base_rows.iter().find(|b| key(b).as_ref() == Some(&k)) else {
            result
                .skipped
                .push(format!("{table}: no baseline for {k:?}"));
            continue;
        };
        let (Some(base_mean), Some(cur_mean)) = (
            base.get("mean").and_then(Json::as_f64),
            cur.get("mean").and_then(Json::as_f64),
        ) else {
            continue;
        };
        if base_mean <= 0.0 {
            continue;
        }
        let floor = match noise_floor(&k.2) {
            Some(f) => f,
            None => {
                result
                    .skipped
                    .push(format!("{table}: {} / {} [{}] is derived", k.0, k.1, k.2));
                continue;
            }
        };
        if base_mean < floor {
            result.skipped.push(format!(
                "{table}: {} / {} [{}] below noise floor ({base_mean:.3} < {floor:.3})",
                k.0, k.1, k.2
            ));
            continue;
        }
        result.checked += 1;
        let higher_is_better = cur
            .get("higher_is_better")
            .and_then(Json::as_bool)
            .unwrap_or(false);
        // Sampling-noise slack: with few runs per cell the stddevs are the
        // best available noise estimate; a real regression must clear both
        // the relative threshold and the combined spread.
        let base_sd = base.get("stddev").and_then(Json::as_f64).unwrap_or(0.0);
        let cur_sd = cur.get("stddev").and_then(Json::as_f64).unwrap_or(0.0);
        let slack = 3.0 * (base_sd + cur_sd);
        let change = cur_mean / base_mean - 1.0;
        let beyond_threshold = if higher_is_better {
            cur_mean < base_mean * (1.0 - threshold)
        } else {
            cur_mean > base_mean * (1.0 + threshold)
        };
        if beyond_threshold && (cur_mean - base_mean).abs() > slack {
            result.failures.push(format!(
                "{table}: {} / {} [{}] regressed {:+.1}% (baseline {:.3}, current {:.3}, \
                 threshold ±{:.0}%, noise slack {:.3})",
                k.0,
                k.1,
                k.2,
                change * 100.0,
                base_mean,
                cur_mean,
                threshold * 100.0,
                slack
            ));
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_with(mean: f64, higher: bool) -> Json {
        let stats = Stats::of(&[mean]);
        let mut report = BenchReport::new("tablet", "test", 1, 1);
        report.push(
            BenchRow::from_stats("w", "queue", "qps", higher, &stats)
                .with_overhead(2.0)
                .with_sched(tsan11rec::SchedCounters {
                    ticks: 10,
                    wakeups_issued: 9,
                    broadcasts: 1,
                    spurious_wakeups: 0,
                }),
        );
        report.to_json()
    }

    #[test]
    fn report_schema_fields_present() {
        let json = report_with(100.0, true);
        assert_eq!(
            json.get("schema_version").and_then(Json::as_f64),
            Some(SCHEMA_VERSION as f64)
        );
        let rows = json.get("rows").and_then(Json::as_array).unwrap();
        let row = &rows[0];
        for field in [
            "workload",
            "config",
            "metric",
            "mean",
            "stddev",
            "n",
            "overhead_vs_native",
            "ticks",
            "wakeups_issued",
            "broadcasts",
            "spurious_wakeups",
        ] {
            assert!(row.get(field).is_some(), "missing {field}");
        }
    }

    #[test]
    fn gate_passes_within_threshold() {
        let base = report_with(100.0, true);
        let cur = report_with(80.0, true); // -20% > -25%: ok
        let r = check_regressions(&base, &cur, 0.25);
        assert_eq!(r.checked, 1);
        assert!(r.failures.is_empty(), "{:?}", r.failures);
    }

    #[test]
    fn gate_fails_on_big_drop_when_higher_is_better() {
        let base = report_with(100.0, true);
        let cur = report_with(70.0, true); // -30%
        let r = check_regressions(&base, &cur, 0.25);
        assert_eq!(r.failures.len(), 1, "{:?}", r.failures);
    }

    #[test]
    fn gate_fails_on_big_rise_when_lower_is_better() {
        let base = report_with(100.0, false);
        let cur = report_with(130.0, false); // +30% of a time metric
        let r = check_regressions(&base, &cur, 0.25);
        assert_eq!(r.failures.len(), 1, "{:?}", r.failures);
        // And improvement in the same direction passes.
        let faster = report_with(50.0, false);
        assert!(check_regressions(&base, &faster, 0.25).failures.is_empty());
    }

    #[test]
    fn gate_skips_unmatched_rows() {
        let base = Json::parse(r#"{"table":"t","rows":[]}"#).unwrap();
        let cur = report_with(100.0, true);
        let r = check_regressions(&base, &cur, 0.25);
        assert_eq!(r.checked, 0);
        assert_eq!(r.skipped.len(), 1);
        assert!(r.failures.is_empty());
    }

    fn duration_report(metric: &str, mean: f64, stddev: f64) -> Json {
        let mut report = BenchReport::new("tablet", "test", 2, 1);
        report.push(BenchRow {
            workload: "w".into(),
            config: "queue".into(),
            metric: metric.into(),
            higher_is_better: false,
            n: 2,
            mean,
            stddev,
            overhead_vs_native: None,
            sched: None,
            streams: None,
        });
        report.to_json()
    }

    #[test]
    fn gate_skips_duration_cells_below_noise_floor() {
        // Quick-mode cells in the tens of ms swing past 25% between
        // identical runs; they must be informational, not gated.
        let base = duration_report("s", 0.02, 0.002);
        let cur = duration_report("s", 0.05, 0.002); // +150%, tiny cell
        let r = check_regressions(&base, &cur, 0.25);
        assert_eq!(r.checked, 0);
        assert!(r.failures.is_empty(), "{:?}", r.failures);
        assert_eq!(r.skipped.len(), 1);
    }

    #[test]
    fn gate_noise_slack_absorbs_wide_stddev() {
        // +30% exceeds the threshold but not 3 x (sum of stddevs).
        let base = duration_report("s", 1.0, 0.1);
        let cur = duration_report("s", 1.3, 0.1);
        let r = check_regressions(&base, &cur, 0.25);
        assert_eq!(r.checked, 1);
        assert!(r.failures.is_empty(), "{:?}", r.failures);
        // The same move with tight stddevs is a real regression.
        let tight_base = duration_report("s", 1.0, 0.01);
        let tight_cur = duration_report("s", 1.3, 0.01);
        let r = check_regressions(&tight_base, &tight_cur, 0.25);
        assert_eq!(r.failures.len(), 1, "{:?}", r.failures);
    }

    #[test]
    fn gate_skips_derived_overhead_rows() {
        let base = duration_report("x_native", 2.0, 0.0);
        let cur = duration_report("x_native", 9.0, 0.0);
        let r = check_regressions(&base, &cur, 0.25);
        assert_eq!(r.checked, 0);
        assert!(r.failures.is_empty(), "{:?}", r.failures);
    }

    #[test]
    fn gate_flags_spurious_wakeup_herd() {
        let herd = |spurious: u64| -> Json {
            let mut report = BenchReport::new("tablet", "test", 1, 1);
            report.push(
                BenchRow::from_stats("w", "queue", "qps", true, &Stats::of(&[100.0])).with_sched(
                    tsan11rec::SchedCounters {
                        ticks: 100,
                        wakeups_issued: 100,
                        broadcasts: 1,
                        spurious_wakeups: spurious,
                    },
                ),
            );
            report.to_json()
        };
        // Baseline-independent: matched against itself it still fails.
        let bad = herd(80);
        let r = check_regressions(&bad, &bad, 0.25);
        assert_eq!(r.failures.len(), 1, "{:?}", r.failures);
        assert!(r.failures[0].contains("spurious"));
        let good = herd(3);
        assert!(check_regressions(&good, &good, 0.25).failures.is_empty());
    }
}
