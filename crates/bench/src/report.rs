//! Machine-readable bench reports.
//!
//! Every table bench emits, next to its stdout table, a
//! `BENCH_<table>.json` file at the repository root (override the
//! directory with `SRR_BENCH_OUT`). The schema is consumed by the CI
//! regression gate (`check_bench`) and by future PRs tracking the perf
//! trajectory:
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "table": "table2",
//!   "title": "httpd throughput",
//!   "quick": true,
//!   "runs": 3,
//!   "scale": 1,
//!   "rows": [
//!     {
//!       "workload": "httpd w8", "config": "queue",
//!       "metric": "qps", "higher_is_better": true,
//!       "mean": 812.4, "stddev": 31.2, "n": 3,
//!       "overhead_vs_native": 2.1,
//!       "ticks": 48123, "wakeups_issued": 48120,
//!       "broadcasts": 2, "spurious_wakeups": 14
//!     }
//!   ]
//! }
//! ```
//!
//! The workspace has no JSON dependency, so this module carries a
//! deliberately small JSON value type with a writer and a parser — the
//! same code serializes the reports and lets the gate read them back.

use std::fmt::Write as _;
use std::path::PathBuf;

use tsan11rec::SchedCounters;

use crate::Stats;

/// Current report schema version (bump on breaking changes).
pub const SCHEMA_VERSION: u64 = 1;

// ---------------------------------------------------------------------
// Minimal JSON
// ---------------------------------------------------------------------

/// A minimal JSON value: enough for the bench reports and the gate.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (serialized via Rust's shortest-f64 formatting).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved when serializing.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (`None` on non-objects and absent keys).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// String value, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Bool value, if this is a bool.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array elements, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes with two-space indentation and a trailing newline.
    #[must_use]
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth + 1);
        let close_pad = "  ".repeat(depth);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    let _ = write!(out, "{n}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_json_string(out, s),
            Json::Arr(items) if items.is_empty() => out.push_str("[]"),
            Json::Arr(items) => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad);
                    item.write_pretty(out, depth + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                out.push_str(&close_pad);
                out.push(']');
            }
            Json::Obj(fields) if fields.is_empty() => out.push_str("{}"),
            Json::Obj(fields) => {
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    out.push_str(&pad);
                    write_json_string(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                    out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
                }
                out.push_str(&close_pad);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (strict enough for what [`Json::to_pretty`]
    /// produces; numbers are f64, escapes limited to the common set).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected '{}' at byte {} (found {:?})",
            b as char,
            *pos,
            bytes.get(*pos).map(|b| *b as char)
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    other => return Err(format!("expected ',' or '}}', found {other:?}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    other => return Err(format!("expected ',' or ']', found {other:?}")),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') if bytes[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if bytes[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if bytes[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|e| format!("bad number {text:?}: {e}"))
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    let mut chunk_start = *pos;
    while *pos < bytes.len() {
        match bytes[*pos] {
            b'"' => {
                out.push_str(
                    std::str::from_utf8(&bytes[chunk_start..*pos]).map_err(|e| e.to_string())?,
                );
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                out.push_str(
                    std::str::from_utf8(&bytes[chunk_start..*pos]).map_err(|e| e.to_string())?,
                );
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
                chunk_start = *pos;
            }
            _ => *pos += 1,
        }
    }
    Err("unterminated string".into())
}

// ---------------------------------------------------------------------
// Bench report schema
// ---------------------------------------------------------------------

/// One measured configuration of one workload.
#[derive(Debug, Clone)]
pub struct BenchRow {
    /// Workload identifier (e.g. `"httpd w8"`, `"pbzip"`).
    pub workload: String,
    /// Tool configuration label (e.g. `"queue"`, `"rnd + rec"`).
    pub config: String,
    /// Metric unit (`"qps"`, `"ms"`, `"s"`, `"fps"`).
    pub metric: String,
    /// Regression direction: `true` when larger means faster.
    pub higher_is_better: bool,
    /// Sample count.
    pub n: usize,
    /// Mean of the samples.
    pub mean: f64,
    /// Population standard deviation of the samples.
    pub stddev: f64,
    /// Overhead multiple vs the native configuration of the same
    /// workload (`None` for the native row itself or when no native
    /// baseline exists).
    pub overhead_vs_native: Option<f64>,
    /// Scheduler wakeup counters summed over the row's runs (`None`
    /// for uncontrolled configurations).
    pub sched: Option<SchedCounters>,
}

impl BenchRow {
    /// A row from measured [`Stats`].
    #[must_use]
    pub fn from_stats(
        workload: &str,
        config: &str,
        metric: &str,
        higher_is_better: bool,
        stats: &Stats,
    ) -> Self {
        BenchRow {
            workload: workload.to_owned(),
            config: config.to_owned(),
            metric: metric.to_owned(),
            higher_is_better,
            n: stats.n,
            mean: stats.mean,
            stddev: stats.stddev,
            overhead_vs_native: None,
            sched: None,
        }
    }

    /// Sets the overhead-vs-native multiple.
    #[must_use]
    pub fn with_overhead(mut self, overhead: f64) -> Self {
        self.overhead_vs_native = Some(overhead);
        self
    }

    /// Attaches summed scheduler counters.
    #[must_use]
    pub fn with_sched(mut self, sched: SchedCounters) -> Self {
        self.sched = Some(sched);
        self
    }

    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("workload".to_owned(), Json::Str(self.workload.clone())),
            ("config".to_owned(), Json::Str(self.config.clone())),
            ("metric".to_owned(), Json::Str(self.metric.clone())),
            (
                "higher_is_better".to_owned(),
                Json::Bool(self.higher_is_better),
            ),
            ("mean".to_owned(), Json::Num(self.mean)),
            ("stddev".to_owned(), Json::Num(self.stddev)),
            ("n".to_owned(), Json::Num(self.n as f64)),
            (
                "overhead_vs_native".to_owned(),
                match self.overhead_vs_native {
                    Some(o) => Json::Num(o),
                    None => Json::Null,
                },
            ),
        ];
        if let Some(s) = self.sched {
            fields.push(("ticks".to_owned(), Json::Num(s.ticks as f64)));
            fields.push((
                "wakeups_issued".to_owned(),
                Json::Num(s.wakeups_issued as f64),
            ));
            fields.push(("broadcasts".to_owned(), Json::Num(s.broadcasts as f64)));
            fields.push((
                "spurious_wakeups".to_owned(),
                Json::Num(s.spurious_wakeups as f64),
            ));
        }
        Json::Obj(fields)
    }
}

/// A full per-table report, written as `BENCH_<table>.json`.
#[derive(Debug, Clone)]
pub struct BenchReport {
    table: String,
    title: String,
    quick: bool,
    runs: usize,
    scale: usize,
    rows: Vec<BenchRow>,
    notes: Vec<(String, Json)>,
}

impl BenchReport {
    /// Creates an empty report for `table` (e.g. `"table2"`).
    #[must_use]
    pub fn new(table: &str, title: &str, runs: usize, scale: usize) -> Self {
        BenchReport {
            table: table.to_owned(),
            title: title.to_owned(),
            quick: crate::quick_mode(),
            runs,
            scale,
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a measured row.
    pub fn push(&mut self, row: BenchRow) {
        self.rows.push(row);
    }

    /// Attaches a free-form top-level field (reference measurements,
    /// shape-check summaries).
    pub fn note(&mut self, key: &str, value: Json) {
        self.notes.push((key.to_owned(), value));
    }

    /// The report as a JSON value.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            (
                "schema_version".to_owned(),
                Json::Num(SCHEMA_VERSION as f64),
            ),
            ("table".to_owned(), Json::Str(self.table.clone())),
            ("title".to_owned(), Json::Str(self.title.clone())),
            ("quick".to_owned(), Json::Bool(self.quick)),
            ("runs".to_owned(), Json::Num(self.runs as f64)),
            ("scale".to_owned(), Json::Num(self.scale as f64)),
            (
                "rows".to_owned(),
                Json::Arr(self.rows.iter().map(BenchRow::to_json).collect()),
            ),
        ];
        fields.extend(self.notes.iter().cloned());
        Json::Obj(fields)
    }

    /// Writes `BENCH_<table>.json` into [`out_dir`]; returns the path.
    pub fn write(&self) -> std::io::Result<PathBuf> {
        let path = out_dir().join(format!("BENCH_{}.json", self.table));
        std::fs::write(&path, self.to_json().to_pretty())?;
        println!("[bench] wrote {}", path.display());
        Ok(path)
    }
}

/// Where `BENCH_*.json` files go: `SRR_BENCH_OUT` when set, else the
/// workspace root (two levels above this crate's manifest).
#[must_use]
pub fn out_dir() -> PathBuf {
    match std::env::var_os("SRR_BENCH_OUT") {
        Some(dir) => PathBuf::from(dir),
        None => PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .canonicalize()
            .unwrap_or_else(|_| PathBuf::from(".")),
    }
}

// ---------------------------------------------------------------------
// Regression gate
// ---------------------------------------------------------------------

/// Outcome of comparing one current report against a committed baseline.
#[derive(Debug, Default)]
pub struct GateResult {
    /// Human-readable descriptions of metrics that regressed.
    pub failures: Vec<String>,
    /// Rows compared against a baseline row.
    pub checked: usize,
    /// Rows present on one side only (informational).
    pub skipped: Vec<String>,
}

/// Duration cells below this many seconds (or the equivalent in ms) are
/// too noisy to gate: quick-mode cells in the tens of milliseconds swing
/// well past 25% between identical runs. They stay in the report as
/// information; only cells above the floor are tracked.
const DURATION_FLOOR_SECS: f64 = 0.05;

/// Rows whose baseline mean clears the per-metric noise floor are
/// *tracked*; the rest are skipped with a notice. Derived `x_native`
/// rows are never tracked (their underlying time rows are).
fn noise_floor(metric: &str) -> Option<f64> {
    match metric {
        "ms" => Some(DURATION_FLOOR_SECS * 1_000.0),
        "s" => Some(DURATION_FLOOR_SECS),
        "x_native" => None, // derived, never tracked
        _ => Some(0.0),     // throughput metrics: always tracked
    }
}

/// When a controlled run's spurious wakeups exceed this fraction of its
/// ticks, the targeted-wakeup fast path has regressed to herd behaviour
/// (the broadcast scheduler showed spurious ≫ ticks; targeted shows ~0).
const SPURIOUS_WAKEUP_FRACTION: f64 = 0.25;

/// Compares `current` against `baseline` (both `BENCH_*.json` documents
/// for the same table). A tracked metric fails when it moves more than
/// `threshold` (e.g. `0.25`) in its bad direction *and* beyond the
/// sampling-noise slack `3 × (baseline stddev + current stddev)`; rows
/// are matched by `(workload, config, metric)` and unmatched rows are
/// skipped so new configurations can land before the baseline is
/// refreshed. Independently of the baseline, any row whose
/// `spurious_wakeups` exceed [`SPURIOUS_WAKEUP_FRACTION`] of its `ticks`
/// fails: that is the thundering-herd signature the targeted-wakeup
/// scheduler removed.
#[must_use]
pub fn check_regressions(baseline: &Json, current: &Json, threshold: f64) -> GateResult {
    let mut result = GateResult::default();
    let table = current
        .get("table")
        .and_then(Json::as_str)
        .unwrap_or("<unknown>");
    let empty: &[Json] = &[];
    let base_rows = baseline
        .get("rows")
        .and_then(Json::as_array)
        .unwrap_or(empty);
    let cur_rows = current
        .get("rows")
        .and_then(Json::as_array)
        .unwrap_or(empty);

    let key = |row: &Json| -> Option<(String, String, String)> {
        Some((
            row.get("workload")?.as_str()?.to_owned(),
            row.get("config")?.as_str()?.to_owned(),
            row.get("metric")?.as_str()?.to_owned(),
        ))
    };

    for cur in cur_rows {
        let Some(k) = key(cur) else { continue };

        // Thundering-herd sanity check: baseline-independent, so it also
        // covers rows the noise model below skips.
        let ticks = cur.get("ticks").and_then(Json::as_f64).unwrap_or(0.0);
        let spurious = cur
            .get("spurious_wakeups")
            .and_then(Json::as_f64)
            .unwrap_or(0.0);
        if ticks > 0.0 && spurious > ticks * SPURIOUS_WAKEUP_FRACTION {
            result.failures.push(format!(
                "{table}: {} / {} has {spurious:.0} spurious wakeups over {ticks:.0} ticks — \
                 the targeted-wakeup fast path has regressed to broadcast behaviour",
                k.0, k.1
            ));
        }

        let Some(base) = base_rows.iter().find(|b| key(b).as_ref() == Some(&k)) else {
            result
                .skipped
                .push(format!("{table}: no baseline for {k:?}"));
            continue;
        };
        let (Some(base_mean), Some(cur_mean)) = (
            base.get("mean").and_then(Json::as_f64),
            cur.get("mean").and_then(Json::as_f64),
        ) else {
            continue;
        };
        if base_mean <= 0.0 {
            continue;
        }
        let floor = match noise_floor(&k.2) {
            Some(f) => f,
            None => {
                result
                    .skipped
                    .push(format!("{table}: {} / {} [{}] is derived", k.0, k.1, k.2));
                continue;
            }
        };
        if base_mean < floor {
            result.skipped.push(format!(
                "{table}: {} / {} [{}] below noise floor ({base_mean:.3} < {floor:.3})",
                k.0, k.1, k.2
            ));
            continue;
        }
        result.checked += 1;
        let higher_is_better = cur
            .get("higher_is_better")
            .and_then(Json::as_bool)
            .unwrap_or(false);
        // Sampling-noise slack: with few runs per cell the stddevs are the
        // best available noise estimate; a real regression must clear both
        // the relative threshold and the combined spread.
        let base_sd = base.get("stddev").and_then(Json::as_f64).unwrap_or(0.0);
        let cur_sd = cur.get("stddev").and_then(Json::as_f64).unwrap_or(0.0);
        let slack = 3.0 * (base_sd + cur_sd);
        let change = cur_mean / base_mean - 1.0;
        let beyond_threshold = if higher_is_better {
            cur_mean < base_mean * (1.0 - threshold)
        } else {
            cur_mean > base_mean * (1.0 + threshold)
        };
        if beyond_threshold && (cur_mean - base_mean).abs() > slack {
            result.failures.push(format!(
                "{table}: {} / {} [{}] regressed {:+.1}% (baseline {:.3}, current {:.3}, \
                 threshold ±{:.0}%, noise slack {:.3})",
                k.0,
                k.1,
                k.2,
                change * 100.0,
                base_mean,
                cur_mean,
                threshold * 100.0,
                slack
            ));
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrip() {
        let doc = Json::Obj(vec![
            ("a".into(), Json::Num(1.5)),
            ("b".into(), Json::Str("x \"quoted\"\nline".into())),
            (
                "c".into(),
                Json::Arr(vec![Json::Bool(true), Json::Null, Json::Num(-2e3)]),
            ),
            ("empty_arr".into(), Json::Arr(vec![])),
            ("empty_obj".into(), Json::Obj(vec![])),
        ]);
        let text = doc.to_pretty();
        let back = Json::parse(&text).expect("parse");
        assert_eq!(back, doc);
    }

    #[test]
    fn json_accessors() {
        let doc = Json::parse(r#"{"x": 3, "s": "hi", "b": false, "arr": [1,2]}"#).unwrap();
        assert_eq!(doc.get("x").and_then(Json::as_f64), Some(3.0));
        assert_eq!(doc.get("s").and_then(Json::as_str), Some("hi"));
        assert_eq!(doc.get("b").and_then(Json::as_bool), Some(false));
        assert_eq!(
            doc.get("arr").and_then(Json::as_array).map(<[_]>::len),
            Some(2)
        );
        assert!(doc.get("missing").is_none());
    }

    #[test]
    fn json_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    fn report_with(mean: f64, higher: bool) -> Json {
        let stats = Stats::of(&[mean]);
        let mut report = BenchReport::new("tablet", "test", 1, 1);
        report.push(
            BenchRow::from_stats("w", "queue", "qps", higher, &stats)
                .with_overhead(2.0)
                .with_sched(tsan11rec::SchedCounters {
                    ticks: 10,
                    wakeups_issued: 9,
                    broadcasts: 1,
                    spurious_wakeups: 0,
                }),
        );
        report.to_json()
    }

    #[test]
    fn report_schema_fields_present() {
        let json = report_with(100.0, true);
        assert_eq!(
            json.get("schema_version").and_then(Json::as_f64),
            Some(SCHEMA_VERSION as f64)
        );
        let rows = json.get("rows").and_then(Json::as_array).unwrap();
        let row = &rows[0];
        for field in [
            "workload",
            "config",
            "metric",
            "mean",
            "stddev",
            "n",
            "overhead_vs_native",
            "ticks",
            "wakeups_issued",
            "broadcasts",
            "spurious_wakeups",
        ] {
            assert!(row.get(field).is_some(), "missing {field}");
        }
    }

    #[test]
    fn gate_passes_within_threshold() {
        let base = report_with(100.0, true);
        let cur = report_with(80.0, true); // -20% > -25%: ok
        let r = check_regressions(&base, &cur, 0.25);
        assert_eq!(r.checked, 1);
        assert!(r.failures.is_empty(), "{:?}", r.failures);
    }

    #[test]
    fn gate_fails_on_big_drop_when_higher_is_better() {
        let base = report_with(100.0, true);
        let cur = report_with(70.0, true); // -30%
        let r = check_regressions(&base, &cur, 0.25);
        assert_eq!(r.failures.len(), 1, "{:?}", r.failures);
    }

    #[test]
    fn gate_fails_on_big_rise_when_lower_is_better() {
        let base = report_with(100.0, false);
        let cur = report_with(130.0, false); // +30% of a time metric
        let r = check_regressions(&base, &cur, 0.25);
        assert_eq!(r.failures.len(), 1, "{:?}", r.failures);
        // And improvement in the same direction passes.
        let faster = report_with(50.0, false);
        assert!(check_regressions(&base, &faster, 0.25).failures.is_empty());
    }

    #[test]
    fn gate_skips_unmatched_rows() {
        let base = Json::parse(r#"{"table":"t","rows":[]}"#).unwrap();
        let cur = report_with(100.0, true);
        let r = check_regressions(&base, &cur, 0.25);
        assert_eq!(r.checked, 0);
        assert_eq!(r.skipped.len(), 1);
        assert!(r.failures.is_empty());
    }

    fn duration_report(metric: &str, mean: f64, stddev: f64) -> Json {
        let mut report = BenchReport::new("tablet", "test", 2, 1);
        report.push(BenchRow {
            workload: "w".into(),
            config: "queue".into(),
            metric: metric.into(),
            higher_is_better: false,
            n: 2,
            mean,
            stddev,
            overhead_vs_native: None,
            sched: None,
        });
        report.to_json()
    }

    #[test]
    fn gate_skips_duration_cells_below_noise_floor() {
        // Quick-mode cells in the tens of ms swing past 25% between
        // identical runs; they must be informational, not gated.
        let base = duration_report("s", 0.02, 0.002);
        let cur = duration_report("s", 0.05, 0.002); // +150%, tiny cell
        let r = check_regressions(&base, &cur, 0.25);
        assert_eq!(r.checked, 0);
        assert!(r.failures.is_empty(), "{:?}", r.failures);
        assert_eq!(r.skipped.len(), 1);
    }

    #[test]
    fn gate_noise_slack_absorbs_wide_stddev() {
        // +30% exceeds the threshold but not 3 x (sum of stddevs).
        let base = duration_report("s", 1.0, 0.1);
        let cur = duration_report("s", 1.3, 0.1);
        let r = check_regressions(&base, &cur, 0.25);
        assert_eq!(r.checked, 1);
        assert!(r.failures.is_empty(), "{:?}", r.failures);
        // The same move with tight stddevs is a real regression.
        let tight_base = duration_report("s", 1.0, 0.01);
        let tight_cur = duration_report("s", 1.3, 0.01);
        let r = check_regressions(&tight_base, &tight_cur, 0.25);
        assert_eq!(r.failures.len(), 1, "{:?}", r.failures);
    }

    #[test]
    fn gate_skips_derived_overhead_rows() {
        let base = duration_report("x_native", 2.0, 0.0);
        let cur = duration_report("x_native", 9.0, 0.0);
        let r = check_regressions(&base, &cur, 0.25);
        assert_eq!(r.checked, 0);
        assert!(r.failures.is_empty(), "{:?}", r.failures);
    }

    #[test]
    fn gate_flags_spurious_wakeup_herd() {
        let herd = |spurious: u64| -> Json {
            let mut report = BenchReport::new("tablet", "test", 1, 1);
            report.push(
                BenchRow::from_stats("w", "queue", "qps", true, &Stats::of(&[100.0])).with_sched(
                    tsan11rec::SchedCounters {
                        ticks: 100,
                        wakeups_issued: 100,
                        broadcasts: 1,
                        spurious_wakeups: spurious,
                    },
                ),
            );
            report.to_json()
        };
        // Baseline-independent: matched against itself it still fails.
        let bad = herd(80);
        let r = check_regressions(&bad, &bad, 0.25);
        assert_eq!(r.failures.len(), 1, "{:?}", r.failures);
        assert!(r.failures[0].contains("spurious"));
        let good = herd(3);
        assert!(check_regressions(&good, &good, 0.25).failures.is_empty());
    }
}
