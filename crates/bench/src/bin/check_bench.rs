//! CI regression gate for the `BENCH_*.json` reports.
//!
//! ```text
//! check_bench [--threshold 0.25] <bench/baseline.json> <BENCH_*.json>...
//! ```
//!
//! The baseline file maps table names to full report documents (see
//! `bench/baseline.json` and `srr_bench::report`). Each current report
//! is matched to its baseline table and every row is compared by
//! `(workload, config, metric)`; a tracked metric that moves more than
//! the threshold in its bad direction fails the gate (exit code 1).
//! Tables or rows absent from the baseline are skipped with a notice so
//! new benchmarks can land before the baseline is refreshed.

use std::process::ExitCode;

use srr_bench::report::{check_regressions, Json};

const DEFAULT_THRESHOLD: f64 = 0.25;

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    Json::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let mut threshold = DEFAULT_THRESHOLD;
    let mut paths: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--threshold" {
            let Some(v) = args.next().and_then(|v| v.parse::<f64>().ok()) else {
                eprintln!("check_bench: --threshold needs a number (e.g. 0.25)");
                return ExitCode::FAILURE;
            };
            threshold = v;
        } else {
            paths.push(arg);
        }
    }
    if paths.len() < 2 {
        eprintln!("usage: check_bench [--threshold 0.25] <baseline.json> <BENCH_*.json>...");
        return ExitCode::FAILURE;
    }

    let baseline = match load(&paths[0]) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("check_bench: baseline unreadable: {e}");
            return ExitCode::FAILURE;
        }
    };
    let tables = baseline.get("tables").unwrap_or(&Json::Null);

    let mut failures = 0usize;
    let mut checked = 0usize;
    for path in &paths[1..] {
        let current = match load(path) {
            Ok(j) => j,
            Err(e) => {
                eprintln!("check_bench: {e}");
                return ExitCode::FAILURE;
            }
        };
        let Some(table) = current.get("table").and_then(Json::as_str) else {
            eprintln!("check_bench: {path}: no \"table\" field — not a bench report");
            return ExitCode::FAILURE;
        };
        let Some(base) = tables.get(table) else {
            println!("[gate] {table}: no baseline entry, skipping (refresh bench/baseline.json)");
            continue;
        };
        let result = check_regressions(base, &current, threshold);
        for note in &result.skipped {
            println!("[gate] skipped: {note}");
        }
        for failure in &result.failures {
            println!("[gate] FAIL: {failure}");
        }
        println!(
            "[gate] {table}: {} rows checked, {} regression(s)",
            result.checked,
            result.failures.len()
        );
        checked += result.checked;
        failures += result.failures.len();
    }

    println!(
        "[gate] total: {checked} rows checked, {failures} regression(s), threshold ±{:.0}%",
        threshold * 100.0
    );
    if failures > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
