//! **Ablation A1**: run-length encoding on vs off for the QUEUE and
//! SYSCALL streams — demo size impact.
//!
//! The paper's Table 2 discussion estimates ~4.8KB per request and
//! suggests "more aggressive compression" as a trade-off; this ablation
//! quantifies what the *existing* RLE buys by re-serializing recorded
//! demos with the codecs disabled (literal token per value / hex per
//! byte).

use srr_apps::httpd::{server, world, HttpdParams};
use srr_apps::litmus::table1_suite;
use srr_bench::{banner, bench_scale, run_tool, seeds_for, TablePrinter, Tool};
use srr_replay::rle;
use tsan11rec::Demo;

/// Size of the demo with RLE replaced by naive encodings.
fn naive_size(demo: &Demo) -> usize {
    let mut total = demo.to_string_map().len(); // file-count overhead parity
                                                // HEADER unchanged.
    total += demo.to_string_map()["HEADER"].len();
    // QUEUE: one decimal literal per tick value.
    let naive_u64s =
        |vals: &[u64]| -> usize { vals.iter().map(|v| v.to_string().len() + 1).sum::<usize>() };
    total += naive_u64s(&demo.queue.first_tick) + naive_u64s(&demo.queue.next_ticks) + 12;
    // SIGNAL/ASYNC unchanged (already minimal).
    total += demo.to_string_map()["SIGNAL"].len() + demo.to_string_map()["ASYNC"].len();
    // SYSCALL: plain hex for every buffer byte.
    for s in &demo.syscalls {
        total += 48 + s.kind.len(); // header line estimate
        for b in &s.bufs {
            total += 8 + b.len() * 2;
        }
    }
    // ALLOC: literals.
    total += naive_u64s(&demo.alloc);
    total
}

fn main() {
    let scale = bench_scale();
    banner("Ablation A1: RLE on vs off — demo bytes");
    let table = TablePrinter::new(
        &["workload", "rle bytes", "naive bytes", "saving"],
        &[22, 12, 12, 8],
    );

    // Queue-heavy demo: a litmus loop (interleaving dominates).
    {
        let litmus = table1_suite().into_iter().next_back().expect("suite");
        let r = run_tool(Tool::QueueRec, seeds_for(3), |_| {}, litmus.run);
        let demo = r.demo.expect("recorded");
        let (a, b) = (demo.size_bytes(), naive_size(&demo));
        table.row(&[
            &format!("litmus/{}", litmus.name),
            &a.to_string(),
            &b.to_string(),
            &format!("{:.0}%", 100.0 * (1.0 - a as f64 / b as f64)),
        ]);
    }

    // Syscall-heavy demo: httpd (payload buffers dominate).
    {
        let params = HttpdParams {
            workers: 4,
            clients: 8,
            total_queries: (80 * scale) as u32,
            response_bytes: 256,
            service_latency_us: 0,
        };
        let r = run_tool(Tool::QueueRec, seeds_for(3), world(params), server(params));
        let demo = r.demo.expect("recorded");
        let (a, b) = (demo.size_bytes(), naive_size(&demo));
        table.row(&[
            "httpd",
            &a.to_string(),
            &b.to_string(),
            &format!("{:.0}%", 100.0 * (1.0 - a as f64 / b as f64)),
        ]);
    }

    // A synthetic run-heavy byte buffer, to bound the best case.
    {
        let data = vec![0u8; 64 * 1024];
        let a = rle::encode_bytes(&data).len();
        let b = data.len() * 2;
        table.row(&[
            "64KiB zero buffer",
            &a.to_string(),
            &b.to_string(),
            &format!("{:.0}%", 100.0 * (1.0 - a as f64 / b as f64)),
        ]);
    }
}
