//! **Tables 3 & 4**: PARSEC + pbzip execution times (seconds) per tool
//! configuration, and the overheads vs native computed from them.
//!
//! Writes `BENCH_table3.json` (times) and `BENCH_table4.json` (derived
//! overheads); pass `--quick` for the CI smoke profile.

use srr_apps::harness::{SchedTotals, Stats, Tool};
use srr_apps::parsec::{table3_suite, ParsecParams};
use srr_apps::pbzip::{pbzip, world as pbzip_world, PbzipParams};
use srr_bench::report::{BenchReport, BenchRow};
use srr_bench::{banner, bench_runs, bench_scale, quick_mode, seeds_for, TablePrinter};
use tsan11rec::{ExecReport, Execution};

const TOOLS: [Tool; 8] = [
    Tool::Native,
    Tool::Tsan11,
    Tool::Rr,
    Tool::Tsan11Rr,
    Tool::Rnd,
    Tool::Queue,
    Tool::RndRec,
    Tool::QueueRec,
];

fn run_once(
    tool: Tool,
    setup: impl FnOnce(&tsan11rec::vos::Vos) + Send + 'static,
    program: impl FnOnce() + Send + 'static,
    i: usize,
) -> ExecReport {
    let exec = Execution::new(tool.config(seeds_for(i))).setup(setup);
    let report = if tool.records() {
        exec.record(program).0
    } else {
        exec.run(program)
    };
    assert!(report.outcome.is_ok(), "{tool}: {:?}", report.outcome);
    report
}

/// One measured cell: per-run times in seconds plus summed scheduler
/// counters.
fn cell(times: &[f64], sched: SchedTotals, workload: &str, tool: Tool, native: f64) -> BenchRow {
    let s = Stats::of(times);
    let mut row = BenchRow::from_stats(workload, tool.label(), "s", false, &s);
    if native > 0.0 && tool != Tool::Native {
        row = row.with_overhead(s.mean / native);
    }
    if sched.any() {
        row = row.with_sched(sched.total());
        if let Some(t) = sched.streams() {
            row = row.with_streams(t);
        }
    }
    row
}

fn main() {
    let quick = quick_mode();
    let runs = if quick { 2 } else { bench_runs(5) };
    let scale = bench_scale();
    // Quick mode shrinks the problem sizes too: the CI smoke job only
    // checks shape and relative overheads, not absolute times.
    let qdiv = if quick { 4 } else { 1 };
    // Per-kernel problem sizes chosen so the native run is long enough to
    // measure (tens of milliseconds) with each kernel exercising its
    // characteristic communication pattern at realistic density.
    let size_of = |name: &str| -> usize {
        let base = scale
            * match name {
                "blackscholes" => 40_000,  // pure compute per thread
                "fluidanimate" => 500,     // one lock pair per cell per step
                "streamcluster" => 30_000, // shared reads per phase
                "bodytrack" => 2_000,      // work items per frame
                "ferret" => 1_500,         // pipeline queries
                _ => 400,
            };
        (base / qdiv).max(16)
    };
    let pbzip_params = PbzipParams {
        threads: 4,
        blocks: (10 * scale / qdiv).max(4),
        block_size: 64 * 1024,
    };
    let mut json = BenchReport::new("table3", "PARSEC + pbzip execution times (s)", runs, scale);

    banner(&format!(
        "Table 3: execution times (s), 4 threads, {runs} runs per cell"
    ));
    println!("(per-kernel sizes; see source — native runs are tens of ms)");
    println!();
    let headers: Vec<&str> = std::iter::once("program")
        .chain(TOOLS.iter().map(|t| t.label()))
        .collect();
    let widths = vec![14usize, 9, 9, 9, 10, 9, 9, 10, 11];
    let table = TablePrinter::new(&headers, &widths);

    // Collect means for Table 4.
    let mut names: Vec<String> = Vec::new();
    let mut means: Vec<Vec<f64>> = Vec::new();

    // pbzip row first, as in the paper.
    {
        let mut row_means = Vec::new();
        let mut cells: Vec<String> = vec!["pbzip".into()];
        let mut native = 0.0;
        for tool in TOOLS {
            let mut times = Vec::with_capacity(runs);
            let mut sched = SchedTotals::default();
            for i in 0..runs {
                let r = run_once(tool, pbzip_world(pbzip_params), pbzip(pbzip_params), i);
                times.push(r.duration.as_secs_f64());
                sched.add(&r);
            }
            let s = Stats::of(&times);
            if tool == Tool::Native {
                native = s.mean;
            }
            json.push(cell(&times, sched, "pbzip", tool, native));
            row_means.push(s.mean);
            cells.push(format!("{:.3}", s.mean));
        }
        let refs: Vec<&str> = cells.iter().map(String::as_str).collect();
        table.row(&refs);
        names.push("pbzip".into());
        means.push(row_means);
    }

    for kernel in table3_suite() {
        let params = ParsecParams {
            threads: 4,
            size: size_of(kernel.name),
        };
        let mut row_means = Vec::new();
        let mut cells: Vec<String> = vec![kernel.name.to_owned()];
        let mut native = 0.0;
        for tool in TOOLS {
            let run = kernel.run;
            let mut times = Vec::with_capacity(runs);
            let mut sched = SchedTotals::default();
            for i in 0..runs {
                let r = run_once(tool, |_| {}, move || run(params), i);
                times.push(r.duration.as_secs_f64());
                sched.add(&r);
            }
            let s = Stats::of(&times);
            if tool == Tool::Native {
                native = s.mean;
            }
            json.push(cell(&times, sched, kernel.name, tool, native));
            row_means.push(s.mean);
            cells.push(format!("{:.3}", s.mean));
        }
        let refs: Vec<&str> = cells.iter().map(String::as_str).collect();
        table.row(&refs);
        names.push(kernel.name.to_owned());
        means.push(row_means);
    }
    json.write().expect("write BENCH_table3.json");

    banner("Table 4: overheads vs native (computed from Table 3)");
    let mut json4 = BenchReport::new("table4", "overheads vs native (from Table 3)", runs, scale);
    let table4 = TablePrinter::new(&headers, &widths);
    for (name, row) in names.iter().zip(&means) {
        let native = row[0];
        let mut cells: Vec<String> = vec![name.clone()];
        for (tool, m) in TOOLS.iter().zip(row) {
            let ovh = m / native;
            if *tool != Tool::Native {
                json4.push(
                    BenchRow::from_stats(name, tool.label(), "x_native", false, &Stats::of(&[ovh]))
                        .with_overhead(ovh),
                );
            }
            cells.push(format!("{ovh:.1}x"));
        }
        let refs: Vec<&str> = cells.iter().map(String::as_str).collect();
        table4.row(&refs);
    }
    json4.write().expect("write BENCH_table4.json");

    println!();
    println!("Shape checks vs the paper:");
    println!("  * blackscholes: rr's sequentialization beats nobody — tsan11rec");
    println!("    configurations stay close to tsan11 (high parallelism, few visible ops).");
    println!("  * fluidanimate: every controlled configuration pays heavily (per-cell locks).");
    println!("  * recording on/off makes little difference for tsan11rec (the paper's");
    println!("    'whether recording is enabled or not makes little difference').");
    println!("  * tsan11+rr is the most expensive configuration across the board.");
}
