//! **Tables 3 & 4**: PARSEC + pbzip execution times (seconds) per tool
//! configuration, and the overheads vs native computed from them.

use srr_apps::harness::{Stats, Tool};
use srr_apps::parsec::{table3_suite, ParsecParams};
use srr_apps::pbzip::{pbzip, world as pbzip_world, PbzipParams};
use srr_bench::{banner, bench_runs, bench_scale, seeds_for, TablePrinter};
use tsan11rec::Execution;

const TOOLS: [Tool; 8] = [
    Tool::Native,
    Tool::Tsan11,
    Tool::Rr,
    Tool::Tsan11Rr,
    Tool::Rnd,
    Tool::Queue,
    Tool::RndRec,
    Tool::QueueRec,
];

fn run_once(
    tool: Tool,
    setup: impl FnOnce(&tsan11rec::vos::Vos) + Send + 'static,
    program: impl FnOnce() + Send + 'static,
    i: usize,
) -> f64 {
    let exec = Execution::new(tool.config(seeds_for(i))).setup(setup);
    let report = if tool.records() {
        exec.record(program).0
    } else {
        exec.run(program)
    };
    assert!(report.outcome.is_ok(), "{tool}: {:?}", report.outcome);
    report.duration.as_secs_f64()
}

fn main() {
    let runs = bench_runs(5);
    let scale = bench_scale();
    // Per-kernel problem sizes chosen so the native run is long enough to
    // measure (tens of milliseconds) with each kernel exercising its
    // characteristic communication pattern at realistic density.
    let size_of = |name: &str| -> usize {
        scale
            * match name {
                "blackscholes" => 40_000,  // pure compute per thread
                "fluidanimate" => 500,     // one lock pair per cell per step
                "streamcluster" => 30_000, // shared reads per phase
                "bodytrack" => 2_000,      // work items per frame
                "ferret" => 1_500,         // pipeline queries
                _ => 400,
            }
    };
    let pbzip_params = PbzipParams {
        threads: 4,
        blocks: 10 * scale,
        block_size: 64 * 1024,
    };

    banner(&format!(
        "Table 3: execution times (s), 4 threads, {runs} runs per cell"
    ));
    println!("(per-kernel sizes; see source — native runs are tens of ms)");
    println!();
    let headers: Vec<&str> = std::iter::once("program")
        .chain(TOOLS.iter().map(|t| t.label()))
        .collect();
    let widths = vec![14usize, 9, 9, 9, 10, 9, 9, 10, 11];
    let table = TablePrinter::new(&headers, &widths);

    // Collect means for Table 4.
    let mut names: Vec<String> = Vec::new();
    let mut means: Vec<Vec<f64>> = Vec::new();

    // pbzip row first, as in the paper.
    {
        let mut row_means = Vec::new();
        let mut cells: Vec<String> = vec!["pbzip".into()];
        for tool in TOOLS {
            let times: Vec<f64> = (0..runs)
                .map(|i| run_once(tool, pbzip_world(pbzip_params), pbzip(pbzip_params), i))
                .collect();
            let s = Stats::of(&times);
            row_means.push(s.mean);
            cells.push(format!("{:.3}", s.mean));
        }
        let refs: Vec<&str> = cells.iter().map(String::as_str).collect();
        table.row(&refs);
        names.push("pbzip".into());
        means.push(row_means);
    }

    for kernel in table3_suite() {
        let params = ParsecParams {
            threads: 4,
            size: size_of(kernel.name),
        };
        let mut row_means = Vec::new();
        let mut cells: Vec<String> = vec![kernel.name.to_owned()];
        for tool in TOOLS {
            let run = kernel.run;
            let times: Vec<f64> = (0..runs)
                .map(|i| run_once(tool, |_| {}, move || run(params), i))
                .collect();
            let s = Stats::of(&times);
            row_means.push(s.mean);
            cells.push(format!("{:.3}", s.mean));
        }
        let refs: Vec<&str> = cells.iter().map(String::as_str).collect();
        table.row(&refs);
        names.push(kernel.name.to_owned());
        means.push(row_means);
    }

    banner("Table 4: overheads vs native (computed from Table 3)");
    let table4 = TablePrinter::new(&headers, &widths);
    for (name, row) in names.iter().zip(&means) {
        let native = row[0];
        let mut cells: Vec<String> = vec![name.clone()];
        for m in row {
            cells.push(format!("{:.1}x", m / native));
        }
        let refs: Vec<&str> = cells.iter().map(String::as_str).collect();
        table4.row(&refs);
    }

    println!();
    println!("Shape checks vs the paper:");
    println!("  * blackscholes: rr's sequentialization beats nobody — tsan11rec");
    println!("    configurations stay close to tsan11 (high parallelism, few visible ops).");
    println!("  * fluidanimate: every controlled configuration pays heavily (per-cell locks).");
    println!("  * recording on/off makes little difference for tsan11rec (the paper's");
    println!("    'whether recording is enabled or not makes little difference').");
    println!("  * tsan11+rr is the most expensive configuration across the board.");
}
