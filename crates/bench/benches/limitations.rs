//! **§5.5 limitation**: memory-layout nondeterminism (SQLite /
//! SpiderMonkey). Sparse replay hard-desynchronises when pointer values
//! steer control flow; the rr baseline (which records the allocator) and
//! the deterministic-allocator mitigation both survive.

use srr_apps::harness::Tool;
use srr_apps::ptrmap::{aslr_world, deterministic_world, ptrmap, PtrMapParams};
use srr_bench::{banner, TablePrinter};
use srr_rr::{rr_config, RrOptions};
use tsan11rec::{Execution, Outcome};

fn verdict(outcome: &Outcome) -> String {
    match outcome {
        Outcome::Completed => "replays fine".into(),
        Outcome::HardDesync(d) => format!("HARD DESYNC ({})", d.constraint),
        other => format!("{other:?}"),
    }
}

fn main() {
    banner("S5.5: pointer-order workload (ptrmap-sim) across recorders and allocators");
    let params = PtrMapParams { objects: 16 };
    let table = TablePrinter::new(&["recorder", "allocator", "replay outcome"], &[22, 24, 28]);

    // 1. Sparse tsan11rec, ASLR allocator, fresh entropy on replay.
    {
        let (_, demo) = Execution::new(Tool::QueueRec.config([2, 3]))
            .with_vos(aslr_world(111))
            .record(ptrmap(params));
        let rep = Execution::new(Tool::QueueRec.config([2, 3]))
            .with_vos(aslr_world(999))
            .replay(&demo, ptrmap(params));
        table.row(&[
            "tsan11rec (sparse)",
            "randomized (ASLR-like)",
            &verdict(&rep.outcome),
        ]);
    }

    // 2. rr baseline, same ASLR situation: the ALLOC stream saves it.
    {
        let (_, demo) = Execution::new(rr_config(RrOptions::default()))
            .with_vos(aslr_world(111))
            .record(ptrmap(params));
        let rep = Execution::new(rr_config(RrOptions::default()))
            .with_vos(aslr_world(999))
            .replay(&demo, ptrmap(params));
        table.row(&[
            "rr (comprehensive)",
            "randomized (ASLR-like)",
            &verdict(&rep.outcome),
        ]);
    }

    // 3. The mitigation: deterministic allocator under sparse recording.
    {
        let (_, demo) = Execution::new(Tool::QueueRec.config([2, 3]))
            .with_vos(deterministic_world())
            .record(ptrmap(params));
        let rep = Execution::new(Tool::QueueRec.config([2, 3]))
            .with_vos(deterministic_world())
            .replay(&demo, ptrmap(params));
        table.row(&[
            "tsan11rec (sparse)",
            "deterministic (mitigation)",
            &verdict(&rep.outcome),
        ]);
    }

    println!();
    println!("Shape check vs the paper: sparse replay desynchronises on layout");
    println!("nondeterminism; rr does not (it enforces the layout); replacing the");
    println!("allocator with a deterministic one is the paper's suggested fix.");
}
